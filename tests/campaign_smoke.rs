//! Reduced-scale campaign smoke test: the checked-in example spec must
//! load, expand, run end-to-end, aggregate with finite mean ± CI per
//! point, and produce a round-trippable `CAMPAIGN_*.json` artifact.

use pcmac_campaign::{run_campaign, CampaignReport, CampaignSpec};

fn example_spec() -> CampaignSpec {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/paper_load_sweep.json"
    );
    let text = std::fs::read_to_string(path).expect("example spec is checked in");
    let spec = CampaignSpec::from_json(&text).expect("example spec parses");
    spec.validate().expect("example spec is valid");
    spec
}

#[test]
fn example_spec_meets_the_acceptance_shape() {
    let spec = example_spec();
    let axes = spec.axes.as_ref().expect("legacy grid");
    let loads = axes.loads_kbps.as_ref().expect("load axis");
    assert!(loads.len() >= 3, "acceptance: >= 3-point load sweep");
    assert!(spec.seeds.len() >= 2, "acceptance: >= 2 seeds");
    let points = spec.expand_vec().expect("expands");
    assert_eq!(points.len(), spec.point_count());
    for p in &points {
        assert_eq!(p.scenarios.len(), spec.seeds.len());
        for cfg in &p.scenarios {
            cfg.validate().expect("every expanded scenario is valid");
        }
    }
}

/// The pre-redesign spec files must keep expanding to the same configs:
/// the legacy `axes` grid is sugar over the general axis list, not a
/// second code path.
#[test]
fn legacy_grid_lowering_reproduces_the_old_expansion() {
    let spec = example_spec();
    let points = spec.expand_vec().expect("expands");
    // Old nesting order: load outermost, variant innermost.
    let loads = [300.0, 650.0, 1000.0];
    let variants = ["Basic 802.11", "PCMAC"];
    assert_eq!(points.len(), loads.len() * variants.len());
    for (i, p) in points.iter().enumerate() {
        assert_eq!(p.key.load_kbps, loads[i / variants.len()]);
        assert_eq!(p.key.variant, variants[i % variants.len()]);
        assert_eq!(p.key.patches, None, "no patch axes in the legacy grid");
        for cfg in &p.scenarios {
            assert!((cfg.offered_load_kbps() - p.key.load_kbps).abs() < 1e-9);
        }
    }
}

/// The other pre-redesign example must load and expand unchanged too:
/// a base-only variant axis (null) means one point per load.
#[test]
fn hotspot_example_still_loads_and_expands() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/hotspot_poisson.json");
    let text = std::fs::read_to_string(path).expect("example spec is checked in");
    let spec = CampaignSpec::from_json(&text).expect("example spec parses");
    spec.validate().expect("example spec is valid");
    let points = spec.expand_vec().expect("expands");
    assert_eq!(points.len(), 3, "3 loads x base variant");
    for (p, load) in points.iter().zip([150.0, 300.0, 450.0]) {
        assert_eq!(p.key.load_kbps, load);
        assert_eq!(p.key.variant, "PCMAC");
        assert_eq!(p.scenarios.len(), 3, "3 seeds");
    }
}

#[test]
fn reduced_campaign_runs_and_aggregates() {
    let mut spec = example_spec();
    // Shrink for test runtime: same grid, 5 simulated seconds.
    spec.duration_s = Some(5.0);

    let outcome = run_campaign(&spec, 0).expect("campaign runs");
    assert_eq!(outcome.runs.len(), spec.run_count());
    assert_eq!(outcome.report.points.len(), spec.point_count());
    assert_eq!(outcome.report.runs, spec.run_count());

    for p in &outcome.report.points {
        assert_eq!(p.seeds.len(), spec.seeds.len(), "every seed aggregated");
        for (metric, m) in [
            ("throughput", &p.throughput_kbps),
            ("delay", &p.mean_delay_ms),
            ("pdr", &p.pdr),
            ("fairness", &p.jain_fairness),
            ("radiated", &p.radiated_mj),
        ] {
            assert!(m.mean.is_finite(), "{metric} mean finite");
            assert!(m.ci95.is_finite() && m.ci95 >= 0.0, "{metric} ci valid");
            assert!(m.min <= m.mean && m.mean <= m.max, "{metric} ordered");
        }
        assert!(
            p.throughput_kbps.mean > 0.0,
            "a 5 s paper scenario delivers something at {} kbps",
            p.key.load_kbps
        );
    }

    // The artifact is machine-readable and stable under re-serialization.
    let json = outcome.report.to_json();
    let back = CampaignReport::from_json(&json).expect("artifact reparses");
    assert_eq!(back.to_json(), json);
    assert_eq!(back.points.len(), outcome.report.points.len());

    // The raw runs line up with the expansion: point-major, seed-minor.
    for (i, p) in outcome.report.points.iter().enumerate() {
        for (j, &seed) in p.seeds.iter().enumerate() {
            let run = &outcome.runs[i * spec.seeds.len() + j];
            assert_eq!(run.seed, seed);
            assert_eq!(run.protocol, p.key.variant);
        }
    }
}
