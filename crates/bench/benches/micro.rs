//! Criterion micro-benchmarks for the hot paths of the simulator: event
//! queue churn, propagation math, radio bookkeeping, backoff draws, and a
//! full small simulation as an end-to-end cost anchor.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use pcmac::{ScenarioConfig, Simulator, Variant};
use pcmac_engine::{Duration, EventQueue, Milliwatts, Point, RngStream, SimTime};
use pcmac_phy::{Propagation, Radio, RadioConfig, TwoRayGround};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("engine/queue_push_pop_10k", |b| {
        let mut rng = RngStream::derive(1, "bench.queue");
        b.iter_batched(
            || {
                (0..10_000u64)
                    .map(|_| SimTime::from_nanos(rng.below(1 << 40)))
                    .collect::<Vec<_>>()
            },
            |times| {
                let mut q: EventQueue<u64> = EventQueue::with_capacity(10_000);
                for (i, t) in times.iter().enumerate() {
                    q.schedule_at(*t, i as u64);
                }
                let mut acc = 0u64;
                while let Some(e) = q.pop() {
                    acc = acc.wrapping_add(e.event);
                }
                black_box(acc)
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_propagation(c: &mut Criterion) {
    let model = TwoRayGround::ns2_default();
    let a = Point::new(12.0, 400.0);
    c.bench_function("phy/two_ray_gain_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for d in 1..1000 {
                let p = Point::new(12.0 + d as f64, 400.0);
                acc += model.gain(black_box(a), black_box(p));
            }
            black_box(acc)
        });
    });
    c.bench_function("phy/range_for", |b| {
        b.iter(|| {
            black_box(model.range_for(
                black_box(Milliwatts(281.83815)),
                black_box(Milliwatts(3.652e-7)),
            ))
        });
    });
}

fn bench_radio(c: &mut Criterion) {
    c.bench_function("phy/radio_50_arrivals", |b| {
        b.iter_batched(
            || Radio::<u32>::new(RadioConfig::ns2_default()),
            |mut radio| {
                let mut out = Vec::new();
                for k in 0..50u64 {
                    radio.on_arrival_start(
                        k,
                        Milliwatts(1e-6 * (k + 1) as f64),
                        SimTime::MAX,
                        &0,
                        &mut out,
                    );
                }
                for k in 0..50u64 {
                    radio.on_arrival_end(k, &mut out);
                }
                black_box(out.len())
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_backoff(c: &mut Criterion) {
    use pcmac_mac::backoff::Backoff;
    c.bench_function("mac/backoff_grow_draw_cycle", |b| {
        let mut rng = RngStream::derive(7, "bench.backoff");
        b.iter(|| {
            let mut bo = Backoff::new(31, 1023);
            for _ in 0..7 {
                bo.grow();
                bo.draw(&mut rng);
            }
            black_box(bo.slots())
        });
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    // A complete small simulation: the end-to-end cost anchor. Two nodes,
    // 1 second of 200 kbps CBR under PCMAC (~1000 events).
    c.bench_function("sim/two_node_pcmac_1s", |b| {
        b.iter(|| {
            let cfg = ScenarioConfig::two_nodes(Variant::Pcmac, 80.0, 200_000.0, 42)
                .with_duration(Duration::from_secs(1));
            let report = Simulator::new(cfg).run();
            black_box(report.delivered_packets)
        });
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(20);
    targets = bench_event_queue, bench_propagation, bench_radio, bench_backoff, bench_end_to_end
);
criterion_main!(micro);
