//! Traffic sources.
//!
//! A source answers one question for the simulation core: "given that I
//! just emitted (or am starting), when is my next packet and what does it
//! look like?" The core schedules accordingly, so sources stay free of
//! event-queue plumbing and are directly unit-testable.

use pcmac_engine::{Duration, FlowId, NodeId, PacketId, RngStream, SimTime};
use pcmac_net::Packet;

/// A packet generator for one flow.
pub trait Source {
    /// The flow this source feeds.
    fn flow(&self) -> FlowId;
    /// Network-layer source address.
    fn src(&self) -> NodeId;
    /// When the next packet should be emitted, or `None` when the flow has
    /// finished. Monotone non-decreasing across calls.
    fn next_time(&mut self) -> Option<SimTime>;
    /// Build the packet for the emission at `now`.
    fn emit(&mut self, now: SimTime) -> Packet;
    /// Total packets emitted so far.
    fn emitted(&self) -> u64;
}

fn traffic_packet_id(flow: FlowId, counter: u64) -> PacketId {
    // Namespace 1 (traffic), then flow, then counter: unique network-wide.
    PacketId((1 << 56) | ((flow.0 as u64) << 32) | counter)
}

/// Constant bit rate over UDP: one `bytes`-sized packet every `interval`.
#[derive(Debug, Clone)]
pub struct CbrSource {
    flow: FlowId,
    src: NodeId,
    dst: NodeId,
    bytes: u32,
    interval: Duration,
    stop: SimTime,
    next: SimTime,
    count: u64,
}

impl CbrSource {
    /// A CBR flow of `rate_bps` application bits per second in
    /// `bytes`-sized packets, active on `[start, stop)`.
    pub fn new(
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        bytes: u32,
        rate_bps: f64,
        start: SimTime,
        stop: SimTime,
    ) -> Self {
        assert!(rate_bps > 0.0 && bytes > 0);
        let interval = Duration::from_secs_f64(bytes as f64 * 8.0 / rate_bps);
        CbrSource {
            flow,
            src,
            dst,
            bytes,
            interval,

            stop,
            next: start,
            count: 0,
        }
    }

    /// The paper's packet size (512 B) at the given per-flow rate.
    pub fn paper_flow(
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        rate_bps: f64,
        start: SimTime,
        stop: SimTime,
    ) -> Self {
        CbrSource::new(flow, src, dst, 512, rate_bps, start, stop)
    }

    /// The emission interval.
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// Destination of the flow.
    pub fn dst(&self) -> NodeId {
        self.dst
    }
}

impl Source for CbrSource {
    fn flow(&self) -> FlowId {
        self.flow
    }

    fn src(&self) -> NodeId {
        self.src
    }

    fn next_time(&mut self) -> Option<SimTime> {
        (self.next < self.stop).then_some(self.next)
    }

    fn emit(&mut self, now: SimTime) -> Packet {
        debug_assert_eq!(now, self.next);
        let p = Packet::data(
            traffic_packet_id(self.flow, self.count),
            self.flow,
            self.src,
            self.dst,
            self.bytes,
            now,
        );
        self.count += 1;
        self.next += self.interval;
        p
    }

    fn emitted(&self) -> u64 {
        self.count
    }
}

/// Poisson arrivals: exponential inter-packet gaps with the same mean rate
/// as the equivalent CBR flow.
#[derive(Debug, Clone)]
pub struct PoissonSource {
    flow: FlowId,
    src: NodeId,
    dst: NodeId,
    bytes: u32,
    mean_interval: f64,
    stop: SimTime,
    next: SimTime,
    count: u64,
    rng: RngStream,
}

impl PoissonSource {
    /// A Poisson flow averaging `rate_bps` in `bytes`-sized packets.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        bytes: u32,
        rate_bps: f64,
        start: SimTime,
        stop: SimTime,
        mut rng: RngStream,
    ) -> Self {
        let mean_interval = bytes as f64 * 8.0 / rate_bps;
        let first = start + Duration::from_secs_f64(rng.exponential(mean_interval));
        PoissonSource {
            flow,
            src,
            dst,
            bytes,
            mean_interval,
            stop,
            next: first,
            count: 0,
            rng,
        }
    }
}

impl Source for PoissonSource {
    fn flow(&self) -> FlowId {
        self.flow
    }

    fn src(&self) -> NodeId {
        self.src
    }

    fn next_time(&mut self) -> Option<SimTime> {
        (self.next < self.stop).then_some(self.next)
    }

    fn emit(&mut self, now: SimTime) -> Packet {
        let p = Packet::data(
            traffic_packet_id(self.flow, self.count),
            self.flow,
            self.src,
            self.dst,
            self.bytes,
            now,
        );
        self.count += 1;
        self.next = now + Duration::from_secs_f64(self.rng.exponential(self.mean_interval));
        p
    }

    fn emitted(&self) -> u64 {
        self.count
    }
}

/// On/off bursts: exponentially-distributed on and off periods; CBR at
/// `peak_rate_bps` during on periods.
#[derive(Debug, Clone)]
pub struct OnOffSource {
    inner: CbrSource,
    mean_on: f64,
    mean_off: f64,
    phase_end: SimTime,
    on: bool,
    stop: SimTime,
    rng: RngStream,
}

impl OnOffSource {
    /// Build with mean on/off durations in seconds.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        bytes: u32,
        peak_rate_bps: f64,
        mean_on_s: f64,
        mean_off_s: f64,
        start: SimTime,
        stop: SimTime,
        mut rng: RngStream,
    ) -> Self {
        let first_on = Duration::from_secs_f64(rng.exponential(mean_on_s));
        OnOffSource {
            inner: CbrSource::new(flow, src, dst, bytes, peak_rate_bps, start, stop),
            mean_on: mean_on_s,
            mean_off: mean_off_s,
            phase_end: start + first_on,
            on: true,
            stop,
            rng,
        }
    }
}

impl Source for OnOffSource {
    fn flow(&self) -> FlowId {
        self.inner.flow()
    }

    fn src(&self) -> NodeId {
        self.inner.src()
    }

    fn next_time(&mut self) -> Option<SimTime> {
        loop {
            let next = self.inner.next_time()?;
            if next >= self.stop {
                return None;
            }
            if next < self.phase_end {
                if self.on {
                    return Some(next);
                }
                // Off phase: skip emissions up to the phase end.
                self.inner.next = self.phase_end;
                continue;
            }
            // Phase rollover.
            self.on = !self.on;
            let mean = if self.on { self.mean_on } else { self.mean_off };
            self.phase_end += Duration::from_secs_f64(self.rng.exponential(mean));
        }
    }

    fn emit(&mut self, now: SimTime) -> Packet {
        self.inner.emit(now)
    }

    fn emitted(&self) -> u64 {
        self.inner.emitted()
    }
}

mod snap {
    //! Checkpoint capture of traffic sources: emission counters, next-emit
    //! instants and (for the stochastic sources) the RNG position, so the
    //! post-restore emission schedule continues the original sequence.

    use super::{CbrSource, OnOffSource, PoissonSource};

    pcmac_snap::snap_struct!(CbrSource {
        flow,
        src,
        dst,
        bytes,
        interval,
        stop,
        next,
        count,
    });

    pcmac_snap::snap_struct!(PoissonSource {
        flow,
        src,
        dst,
        bytes,
        mean_interval,
        stop,
        next,
        count,
        rng,
    });

    pcmac_snap::snap_struct!(OnOffSource {
        inner,
        mean_on,
        mean_off,
        phase_end,
        on,
        stop,
        rng,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn cbr_interval_matches_rate() {
        // 512 B at 40.96 kbps → exactly 100 ms.
        let c = CbrSource::new(
            FlowId(0),
            NodeId(1),
            NodeId(2),
            512,
            40_960.0,
            t(0.0),
            t(10.0),
        );
        assert_eq!(c.interval(), Duration::from_millis(100));
    }

    #[test]
    fn cbr_emits_metronomically() {
        let mut c = CbrSource::new(
            FlowId(0),
            NodeId(1),
            NodeId(2),
            512,
            40_960.0,
            t(0.0),
            t(1.0),
        );
        let mut times = Vec::new();
        while let Some(at) = c.next_time() {
            times.push(at);
            let p = c.emit(at);
            assert_eq!(p.src, NodeId(1));
            assert_eq!(p.dst, NodeId(2));
            assert_eq!(p.created_at, at);
        }
        assert_eq!(times.len(), 10, "10 packets in 1 s at 100 ms spacing");
        assert_eq!(times[0], t(0.0));
        assert_eq!(times[9], t(0.9));
        assert_eq!(c.emitted(), 10);
    }

    #[test]
    fn cbr_stops_at_stop_time() {
        let mut c = CbrSource::new(
            FlowId(0),
            NodeId(1),
            NodeId(2),
            512,
            40_960.0,
            t(0.0),
            t(0.25),
        );
        let mut n = 0;
        while let Some(at) = c.next_time() {
            c.emit(at);
            n += 1;
        }
        assert_eq!(n, 3, "emissions at 0, 0.1, 0.2 only");
    }

    #[test]
    fn packet_ids_are_unique_across_flows() {
        let mut a = CbrSource::new(FlowId(1), NodeId(1), NodeId(2), 512, 1e5, t(0.0), t(1.0));
        let mut b = CbrSource::new(FlowId(2), NodeId(3), NodeId(4), 512, 1e5, t(0.0), t(1.0));
        let ta = a.next_time().unwrap();
        let tb = b.next_time().unwrap();
        assert_ne!(a.emit(ta).id, b.emit(tb).id);
    }

    #[test]
    fn poisson_mean_rate_is_close() {
        let rng = RngStream::derive(5, "poisson-test");
        let mut p = PoissonSource::new(
            FlowId(0),
            NodeId(1),
            NodeId(2),
            512,
            40_960.0, // mean interval 100 ms
            t(0.0),
            t(200.0),
            rng,
        );
        let mut n = 0u64;
        while let Some(at) = p.next_time() {
            p.emit(at);
            n += 1;
        }
        // Expect ~2000 emissions; allow 10%.
        assert!((1800..2200).contains(&n), "poisson count {n}");
    }

    #[test]
    fn onoff_emits_less_than_pure_cbr() {
        let rng = RngStream::derive(6, "onoff-test");
        let mut s = OnOffSource::new(
            FlowId(0),
            NodeId(1),
            NodeId(2),
            512,
            40_960.0,
            1.0,
            1.0,
            t(0.0),
            t(100.0),
            rng,
        );
        let mut n = 0u64;
        while let Some(at) = s.next_time() {
            s.emit(at);
            n += 1;
        }
        // Pure CBR would emit 1000; 50% duty cycle should roughly halve it.
        assert!(
            n < 800,
            "on/off duty cycle must suppress emissions, got {n}"
        );
        assert!(n > 200, "but the flow must not starve, got {n}");
    }

    #[test]
    fn emission_times_are_monotone() {
        let rng = RngStream::derive(7, "monotone-test");
        let mut s = PoissonSource::new(
            FlowId(0),
            NodeId(1),
            NodeId(2),
            512,
            1e5,
            t(0.0),
            t(50.0),
            rng,
        );
        let mut last = SimTime::ZERO;
        while let Some(at) = s.next_time() {
            assert!(at >= last);
            last = at;
            s.emit(at);
        }
    }
}
