//! dot11RTSThreshold behaviour: small frames skip the RTS/CTS exchange.

use pcmac_engine::{Duration, FlowId, Milliwatts, NodeId, PacketId, SimTime, TimerToken};
use pcmac_mac::{DcfMac, Frame, FrameBody, FrameKind, MacAction, MacConfig, MacTimerKind, Variant};
use pcmac_net::Packet;

const MAX_P: Milliwatts = Milliwatts(281.83815);

fn t(us: u64) -> SimTime {
    SimTime::ZERO + Duration::from_micros(us)
}

fn mac_with_threshold(variant: Variant, threshold: u32) -> DcfMac {
    let mut cfg = MacConfig::paper_default(variant);
    cfg.rts_threshold = threshold;
    DcfMac::new(NodeId(1), cfg, 42)
}

fn small_packet(n: u64) -> Packet {
    // 64 B payload → 64+28+28 = 120 B on air.
    Packet::data(
        PacketId(n),
        FlowId(0),
        NodeId(1),
        NodeId(2),
        64,
        SimTime::ZERO,
    )
}

fn big_packet(n: u64) -> Packet {
    Packet::data(
        PacketId(n),
        FlowId(0),
        NodeId(1),
        NodeId(2),
        512,
        SimTime::ZERO,
    )
}

fn armed(out: &[MacAction], kind: MacTimerKind) -> Option<(Duration, TimerToken)> {
    out.iter().find_map(|a| match a {
        MacAction::Arm {
            kind: k,
            delay,
            token,
        } if *k == kind => Some((*delay, *token)),
        _ => None,
    })
}

fn first_tx(out: &[MacAction]) -> Option<Frame> {
    out.iter().find_map(|a| match a {
        MacAction::TxFrame { frame, .. } => Some(frame.clone()),
        _ => None,
    })
}

/// Walk enqueue → defer (→ backoff) → first frame on air.
fn launch(m: &mut DcfMac, pkt: Packet) -> (Frame, SimTime) {
    let mut out = Vec::new();
    m.enqueue(pkt, NodeId(2), t(0), &mut out);
    let (d, tok) = armed(&out, MacTimerKind::Defer).expect("defer");
    let mut now = t(0) + d;
    out.clear();
    m.on_timer(MacTimerKind::Defer, tok, now, &mut out);
    if let Some((bd, tok2)) = armed(&out, MacTimerKind::Backoff) {
        now += bd;
        out.clear();
        m.on_timer(MacTimerKind::Backoff, tok2, now, &mut out);
    }
    (first_tx(&out).expect("a frame"), now)
}

#[test]
fn small_frame_skips_rts() {
    let mut m = mac_with_threshold(Variant::Basic, 256);
    let (frame, _) = launch(&mut m, small_packet(1));
    assert_eq!(frame.kind, FrameKind::Data, "direct DATA below threshold");
    match &frame.body {
        FrameBody::Data { needs_ack, .. } => assert!(*needs_ack),
        b => panic!("{b:?}"),
    }
    assert_eq!(
        frame.duration,
        Duration::from_micros(10 + 304),
        "reserves the ACK"
    );
    assert_eq!(m.counters.rts_sent, 0);
    assert_eq!(m.counters.data_sent, 1);
}

#[test]
fn large_frame_still_uses_rts() {
    let mut m = mac_with_threshold(Variant::Basic, 256);
    let (frame, _) = launch(&mut m, big_packet(1));
    assert_eq!(frame.kind, FrameKind::Rts, "568 B on air > 256 threshold");
}

#[test]
fn zero_threshold_means_always_rts() {
    let mut m = mac_with_threshold(Variant::Basic, 0);
    let (frame, _) = launch(&mut m, small_packet(1));
    assert_eq!(frame.kind, FrameKind::Rts, "paper/ns-2 configuration");
}

#[test]
fn direct_data_completes_on_ack() {
    let mut m = mac_with_threshold(Variant::Basic, 256);
    let (_, t0) = launch(&mut m, small_packet(1));
    let mut out = Vec::new();
    // DATA (120 B at 2 Mbps + PLCP) ends.
    let t1 = t0 + Duration::from_micros(192 + 120 * 4);
    m.on_tx_end(t1, &mut out);
    assert!(armed(&out, MacTimerKind::AckTimeout).is_some());
    out.clear();
    let ack = Frame {
        kind: FrameKind::Ack,
        tx: NodeId(2),
        rx: NodeId(1),
        duration: Duration::ZERO,
        tx_power: MAX_P,
        body: FrameBody::Ack,
    };
    m.on_rx_end(
        ack,
        Milliwatts(1e-4),
        true,
        t1 + Duration::from_micros(314),
        &mut out,
    );
    assert_eq!(m.queue_len(), 0, "exchange complete");
    assert_eq!(m.counters.retry_drops, 0);
}

#[test]
fn direct_data_retries_then_drops_without_ack() {
    let mut m = mac_with_threshold(Variant::Basic, 256);
    let (_, mut now) = launch(&mut m, small_packet(1));
    let mut out = Vec::new();
    let mut drops = 0;
    for _attempt in 0..4 {
        now += Duration::from_micros(192 + 120 * 4);
        out.clear();
        m.on_tx_end(now, &mut out);
        let (ato, tok) = armed(&out, MacTimerKind::AckTimeout).expect("ack timer");
        now += ato;
        out.clear();
        m.on_timer(MacTimerKind::AckTimeout, tok, now, &mut out);
        if out
            .iter()
            .any(|a| matches!(a, MacAction::LinkFailure { .. }))
        {
            drops += 1;
            break;
        }
        // Walk the retry to the next transmission.
        let (d, tok) = armed(&out, MacTimerKind::Defer).expect("retry defer");
        now += d;
        out.clear();
        m.on_timer(MacTimerKind::Defer, tok, now, &mut out);
        if let Some((bd, tok2)) = armed(&out, MacTimerKind::Backoff) {
            now += bd;
            out.clear();
            m.on_timer(MacTimerKind::Backoff, tok2, now, &mut out);
        }
        let f = first_tx(&out).expect("retry frame");
        assert_eq!(f.kind, FrameKind::Data, "retry is still a direct DATA");
    }
    assert_eq!(drops, 1, "long retry limit (4) exhausts");
    assert_eq!(m.counters.ack_timeouts, 4);
}

#[test]
fn pcmac_data_ignores_threshold() {
    let mut m = mac_with_threshold(Variant::Pcmac, 10_000);
    let (frame, _) = launch(&mut m, big_packet(1));
    assert_eq!(
        frame.kind,
        FrameKind::Rts,
        "PCMAC data needs the CTS echo, threshold or not"
    );
}

#[test]
fn pcmac_routing_unicast_respects_threshold() {
    use pcmac_net::{Payload, Rrep};
    let mut m = mac_with_threshold(Variant::Pcmac, 256);
    let rrep = Packet::control(
        PacketId(5),
        NodeId(1),
        NodeId(2),
        SimTime::ZERO,
        Payload::Rrep(Rrep {
            origin: NodeId(3),
            target: NodeId(2),
            target_seq: 1,
            hop_count: 1,
        }),
    );
    let mut out = Vec::new();
    m.enqueue(rrep, NodeId(2), t(0), &mut out);
    let (d, tok) = armed(&out, MacTimerKind::Defer).unwrap();
    let mut now = t(0) + d;
    out.clear();
    m.on_timer(MacTimerKind::Defer, tok, now, &mut out);
    if let Some((bd, tok2)) = armed(&out, MacTimerKind::Backoff) {
        now += bd;
        out.clear();
        m.on_timer(MacTimerKind::Backoff, tok2, now, &mut out);
    }
    let f = first_tx(&out).expect("frame");
    assert_eq!(
        f.kind,
        FrameKind::Data,
        "small routing unicast (68 B on air) goes direct"
    );
}
