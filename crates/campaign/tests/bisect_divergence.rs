//! The divergence bisector must localize an injected single-event
//! difference between two otherwise-identical scenarios to the exact
//! simulated instant, event class, and node — and report two truly
//! identical runs as identical.

use pcmac::{CrashWindow, FaultConfig, FlowShape, ScenarioConfig, Variant};
use pcmac_campaign::{
    bisect_configs, NodesSpec, PlacementSpec, ScenarioSpec, TrafficPattern, TrafficSpec,
};
use pcmac_engine::Duration;

fn base_config(seed: u64) -> ScenarioConfig {
    ScenarioSpec {
        name: "bisect".into(),
        variant: Variant::Basic,
        duration_s: 2.0,
        field: (500.0, 500.0),
        nodes: NodesSpec {
            count: Some(4),
            placement: PlacementSpec::Ring { radius: 80.0 },
            mobility: None,
        },
        traffic: TrafficSpec {
            pattern: TrafficPattern::NeighbourPairs { flows: 2 },
            bytes: 512,
            offered_load_kbps: 100.0,
            shape: FlowShape::Cbr,
        },
        power_levels_mw: None,
        shadowing: None,
        protocol: None,
        radio: None,
        aodv: None,
        faults: None,
        metrics: None,
        trace: None,
        execution: None,
    }
    .materialize(seed)
    .expect("spec materializes")
}

#[test]
fn identical_runs_report_identical() {
    let cfg = base_config(7);
    let report = bisect_configs(cfg.clone(), cfg, Duration::from_millis(250));
    assert!(report.identical, "same config twice: {}", report.render());
    assert!(report.cuts_compared >= 4);
    assert!(report.divergence.is_none());
    assert!(report.render().contains("identical"));
}

#[test]
fn bisector_localizes_an_injected_crash_to_time_class_and_node() {
    let cfg_a = base_config(7);
    let mut cfg_b = cfg_a.clone();
    // The single planted difference: node 2 crashes at t = 0.9 s in
    // run B only.
    cfg_b.faults = Some(FaultConfig {
        crashes: Some(vec![CrashWindow {
            node: 2,
            at_s: 0.9,
            recover_s: None,
        }]),
        ..FaultConfig::default()
    });

    let report = bisect_configs(cfg_a, cfg_b, Duration::from_millis(250));
    assert!(!report.identical);

    // The crash event sits in B's pending queue from t = 0, so the
    // state fingerprints differ from the very first cut: a
    // config-induced divergence with no common prefix.
    assert!(report.last_common_cut.is_none());
    assert!(report.first_divergent_cut.is_some());

    // The replay pins the first divergent *dispatch* to the planted
    // event itself: NodeDown, node 2, exactly t = 0.9 s.
    let d = report
        .divergence
        .as_ref()
        .expect("the event streams diverge");
    assert_eq!(d.class, "NodeDown", "full report:\n{}", report.render());
    assert_eq!(d.node, Some(2));
    assert_eq!(d.at.as_nanos(), 900_000_000);
    // Only one side dispatches the planted event at that position.
    assert_ne!(d.a, d.b);
    assert!(report.render().contains("NodeDown"));
}
