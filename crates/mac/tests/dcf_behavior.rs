//! Behavioural tests of the DCF state machine.
//!
//! The MAC is a pure state machine, so we can script it: feed radio
//! indications and fire timers by hand, then assert on the emitted
//! actions. Full medium-in-the-loop tests live in the workspace-level
//! integration suite; here we pin the protocol logic itself.

use pcmac_engine::{
    Duration, FlowId, Milliwatts, NodeId, PacketId, SessionId, SimTime, TimerToken,
};
use pcmac_mac::{
    CtrlFrame, DcfMac, Frame, FrameBody, FrameKind, MacAction, MacConfig, MacTimerKind, Variant,
};
use pcmac_net::{Packet, Payload, Rrep};

const MAX_P: Milliwatts = Milliwatts(281.83815);

fn t(us: u64) -> SimTime {
    SimTime::ZERO + Duration::from_micros(us)
}

fn mac(id: u32, variant: Variant) -> DcfMac {
    DcfMac::new(NodeId(id), MacConfig::paper_default(variant), 42)
}

fn data_packet(n: u64, src: u32, dst: u32) -> Packet {
    Packet::data(
        PacketId(n),
        FlowId(0),
        NodeId(src),
        NodeId(dst),
        512,
        SimTime::ZERO,
    )
}

/// Pull the single Arm action of the given kind out of an action list.
fn armed(out: &[MacAction], kind: MacTimerKind) -> Option<(Duration, TimerToken)> {
    out.iter().find_map(|a| match a {
        MacAction::Arm {
            kind: k,
            delay,
            token,
        } if *k == kind => Some((*delay, *token)),
        _ => None,
    })
}

fn tx_frames(out: &[MacAction]) -> Vec<(&Frame, Milliwatts)> {
    out.iter()
        .filter_map(|a| match a {
            MacAction::TxFrame { frame, power } => Some((frame, *power)),
            _ => None,
        })
        .collect()
}

/// Drive a sender from enqueue to its RTS hitting the air on an idle
/// medium. Returns the RTS frame+power and the time it launched.
fn launch_rts(
    m: &mut DcfMac,
    pkt: Packet,
    next_hop: u32,
    start: SimTime,
) -> (Frame, Milliwatts, SimTime) {
    let mut out = Vec::new();
    m.enqueue(pkt, NodeId(next_hop), start, &mut out);
    let (difs, tok) = armed(&out, MacTimerKind::Defer).expect("defer armed on idle medium");
    let t1 = start + difs;
    out.clear();
    m.on_timer(MacTimerKind::Defer, tok, t1, &mut out);
    // A fresh arrival on an idle medium transmits right after DIFS (no
    // backoff needed) — or counts down a residual first.
    if let Some((delay, tok2)) = armed(&out, MacTimerKind::Backoff) {
        let t2 = t1 + delay;
        out.clear();
        m.on_timer(MacTimerKind::Backoff, tok2, t2, &mut out);
        let frames = tx_frames(&out);
        assert_eq!(frames.len(), 1, "exactly one frame: {out:?}");
        let (f, p) = frames[0];
        return (f.clone(), p, t2);
    }
    let frames = tx_frames(&out);
    assert_eq!(frames.len(), 1, "exactly one frame: {out:?}");
    let (f, p) = frames[0];
    (f.clone(), p, t1)
}

#[test]
fn fresh_packet_on_idle_medium_sends_rts_after_difs() {
    let mut m = mac(1, Variant::Basic);
    let (rts, power, _) = launch_rts(&mut m, data_packet(1, 1, 2), 2, t(0));
    assert_eq!(rts.kind, FrameKind::Rts);
    assert_eq!(rts.tx, NodeId(1));
    assert_eq!(rts.rx, NodeId(2));
    assert_eq!(power, MAX_P, "basic 802.11 sends at max power");
    // The RTS must reserve the whole 4-way exchange.
    assert!(rts.duration > Duration::from_micros(3000));
}

#[test]
fn broadcast_skips_rts() {
    let mut m = mac(1, Variant::Basic);
    let mut out = Vec::new();
    let pkt = Packet::control(
        PacketId(1),
        NodeId(1),
        NodeId::BROADCAST,
        SimTime::ZERO,
        Payload::Rrep(Rrep {
            origin: NodeId(1),
            target: NodeId(2),
            target_seq: 0,
            hop_count: 0,
        }),
    );
    m.enqueue(pkt, NodeId::BROADCAST, t(0), &mut out);
    let (difs, tok) = armed(&out, MacTimerKind::Defer).unwrap();
    out.clear();
    m.on_timer(MacTimerKind::Defer, tok, t(0) + difs, &mut out);
    let frames = tx_frames(&out);
    assert_eq!(frames.len(), 1);
    assert_eq!(frames[0].0.kind, FrameKind::Data);
    assert!(frames[0].0.is_broadcast());
    assert_eq!(frames[0].1, MAX_P, "broadcasts always at normal power");
}

#[test]
fn busy_medium_defers_until_idle() {
    let mut m = mac(1, Variant::Basic);
    let mut out = Vec::new();
    m.on_carrier(true, t(0), &mut out);
    m.enqueue(data_packet(1, 1, 2), NodeId(2), t(5), &mut out);
    assert!(
        armed(&out, MacTimerKind::Defer).is_none(),
        "no defer while busy"
    );
    out.clear();
    m.on_carrier(false, t(100), &mut out);
    assert!(
        armed(&out, MacTimerKind::Defer).is_some(),
        "defer starts on the idle edge"
    );
}

#[test]
fn post_busy_access_uses_backoff() {
    let mut m = mac(1, Variant::Basic);
    let mut out = Vec::new();
    m.on_carrier(true, t(0), &mut out);
    m.enqueue(data_packet(1, 1, 2), NodeId(2), t(5), &mut out);
    out.clear();
    m.on_carrier(false, t(100), &mut out);
    let (difs, tok) = armed(&out, MacTimerKind::Defer).unwrap();
    out.clear();
    m.on_timer(MacTimerKind::Defer, tok, t(100) + difs, &mut out);
    // After a busy period 802.11 must draw a backoff; with seed 42 the
    // draw may legitimately be zero, so accept either an immediate TX or
    // a backoff arm — but at least one of them.
    let has_backoff = armed(&out, MacTimerKind::Backoff).is_some();
    let has_tx = !tx_frames(&out).is_empty();
    assert!(
        has_backoff || has_tx,
        "either counting or transmitting: {out:?}"
    );
}

#[test]
fn overheard_rts_sets_nav_and_blocks_access() {
    let mut m = mac(3, Variant::Basic);
    let mut out = Vec::new();
    // Overhear an RTS reserving 5000 µs, addressed to someone else.
    let rts = Frame {
        kind: FrameKind::Rts,
        tx: NodeId(1),
        rx: NodeId(2),
        duration: Duration::from_micros(5000),
        tx_power: MAX_P,
        body: FrameBody::Rts { sender_noise: None },
    };
    m.on_rx_end(rts, Milliwatts(1e-4), true, t(0), &mut out);
    assert!(
        armed(&out, MacTimerKind::NavExpire).is_some(),
        "nav timer armed"
    );
    out.clear();
    // Enqueue during the NAV window: no access.
    m.enqueue(data_packet(1, 3, 4), NodeId(4), t(10), &mut out);
    assert!(
        armed(&out, MacTimerKind::Defer).is_none(),
        "NAV blocks access"
    );
}

#[test]
fn corrupted_rx_defers_eifs() {
    let mut m = mac(3, Variant::Basic);
    let mut out = Vec::new();
    let junk = Frame {
        kind: FrameKind::Data,
        tx: NodeId(9),
        rx: NodeId(8),
        duration: Duration::ZERO,
        tx_power: MAX_P,
        body: FrameBody::Ack,
    };
    m.on_rx_end(junk, Milliwatts(1e-6), false, t(0), &mut out);
    let (delay, _) = armed(&out, MacTimerKind::NavExpire).expect("EIFS modelled via NAV");
    assert_eq!(delay, Duration::from_micros(364), "EIFS = 364 µs");
    assert_eq!(m.counters.rx_errors, 1);
}

#[test]
fn receiver_responds_cts_after_sifs() {
    let mut m = mac(2, Variant::Basic);
    let mut out = Vec::new();
    let rts = Frame {
        kind: FrameKind::Rts,
        tx: NodeId(1),
        rx: NodeId(2),
        duration: Duration::from_micros(4000),
        tx_power: MAX_P,
        body: FrameBody::Rts { sender_noise: None },
    };
    m.on_rx_end(rts, Milliwatts(1e-4), true, t(0), &mut out);
    let (sifs, tok) = armed(&out, MacTimerKind::Response).expect("CTS scheduled");
    assert_eq!(sifs, Duration::from_micros(10));
    out.clear();
    m.on_timer(MacTimerKind::Response, tok, t(10), &mut out);
    let frames = tx_frames(&out);
    assert_eq!(frames.len(), 1);
    let (cts, power) = frames[0];
    assert_eq!(cts.kind, FrameKind::Cts);
    assert_eq!(cts.rx, NodeId(1));
    assert_eq!(power, MAX_P);
    // CTS duration = RTS duration − SIFS − CTS airtime.
    assert_eq!(cts.duration, Duration::from_micros(4000 - 10 - 304),);
}

#[test]
fn receiver_with_nav_ignores_rts() {
    let mut m = mac(2, Variant::Basic);
    let mut out = Vec::new();
    // NAV set by an overheard CTS.
    let foreign = Frame {
        kind: FrameKind::Cts,
        tx: NodeId(8),
        rx: NodeId(9),
        duration: Duration::from_micros(3000),
        tx_power: MAX_P,
        body: FrameBody::Cts {
            required_data_power: None,
            last_received: None,
        },
    };
    m.on_rx_end(foreign, Milliwatts(1e-4), true, t(0), &mut out);
    out.clear();
    let rts = Frame {
        kind: FrameKind::Rts,
        tx: NodeId(1),
        rx: NodeId(2),
        duration: Duration::from_micros(4000),
        tx_power: MAX_P,
        body: FrameBody::Rts { sender_noise: None },
    };
    m.on_rx_end(rts, Milliwatts(1e-4), true, t(10), &mut out);
    assert!(
        armed(&out, MacTimerKind::Response).is_none(),
        "802.11: NAV-busy station must not answer RTS"
    );
}

#[test]
fn full_four_way_sender_side() {
    let mut m = mac(1, Variant::Basic);
    let (rts, _, t0) = launch_rts(&mut m, data_packet(1, 1, 2), 2, t(0));
    assert_eq!(rts.kind, FrameKind::Rts);

    // RTS finishes on air.
    let mut out = Vec::new();
    let t1 = t0 + Duration::from_micros(352);
    m.on_tx_end(t1, &mut out);
    let (cto, _) = armed(&out, MacTimerKind::CtsTimeout).expect("waiting for CTS");
    assert_eq!(cto, Duration::from_micros(10 + 304 + 40));

    // CTS arrives.
    out.clear();
    let cts = Frame {
        kind: FrameKind::Cts,
        tx: NodeId(2),
        rx: NodeId(1),
        duration: Duration::from_micros(3000),
        tx_power: MAX_P,
        body: FrameBody::Cts {
            required_data_power: None,
            last_received: None,
        },
    };
    let t2 = t1 + Duration::from_micros(10 + 304);
    m.on_rx_end(cts, Milliwatts(1e-4), true, t2, &mut out);
    let (sifs, tok) = armed(&out, MacTimerKind::Response).expect("DATA follows CTS");
    assert_eq!(sifs, Duration::from_micros(10));

    // DATA goes out.
    out.clear();
    let t3 = t2 + sifs;
    m.on_timer(MacTimerKind::Response, tok, t3, &mut out);
    let frames = tx_frames(&out);
    assert_eq!(frames.len(), 1);
    let data = frames[0].0.clone();
    assert_eq!(data.kind, FrameKind::Data);
    match &data.body {
        FrameBody::Data { needs_ack, .. } => assert!(*needs_ack, "basic 802.11 wants the ACK"),
        b => panic!("expected data body, got {b:?}"),
    }
    // DATA duration reserves SIFS + ACK.
    assert_eq!(data.duration, Duration::from_micros(10 + 304));

    // DATA tx ends → ACK timeout armed.
    out.clear();
    let t4 = t3 + Duration::from_micros(2464);
    m.on_tx_end(t4, &mut out);
    assert!(armed(&out, MacTimerKind::AckTimeout).is_some());

    // ACK arrives → success, post-backoff for the (empty) queue.
    out.clear();
    let ack = Frame {
        kind: FrameKind::Ack,
        tx: NodeId(2),
        rx: NodeId(1),
        duration: Duration::ZERO,
        tx_power: MAX_P,
        body: FrameBody::Ack,
    };
    m.on_rx_end(
        ack,
        Milliwatts(1e-4),
        true,
        t4 + Duration::from_micros(314),
        &mut out,
    );
    assert_eq!(m.queue_len(), 0, "job complete");
}

#[test]
fn receiver_delivers_data_and_acks() {
    let mut m = mac(2, Variant::Basic);
    let mut out = Vec::new();
    let session = SessionId::for_pair(NodeId(1), NodeId(2));
    let data = Frame {
        kind: FrameKind::Data,
        tx: NodeId(1),
        rx: NodeId(2),
        duration: Duration::from_micros(314),
        tx_power: MAX_P,
        body: FrameBody::Data {
            packet: data_packet(7, 1, 2),
            seq: 0,
            session,
            needs_ack: true,
        },
    };
    m.on_rx_end(data.clone(), Milliwatts(1e-4), true, t(0), &mut out);
    assert!(
        out.iter()
            .any(|a| matches!(a, MacAction::Deliver { packet, from }
            if packet.id == PacketId(7) && *from == NodeId(1))),
        "packet delivered upward"
    );
    let (_, tok) = armed(&out, MacTimerKind::Response).expect("ACK scheduled");
    out.clear();
    m.on_timer(MacTimerKind::Response, tok, t(10), &mut out);
    assert_eq!(tx_frames(&out)[0].0.kind, FrameKind::Ack);

    // A duplicate of the same frame is ACKed again but not re-delivered.
    out.clear();
    m.on_tx_end(t(324), &mut out); // finish our ACK first
    out.clear();
    m.on_rx_end(data, Milliwatts(1e-4), true, t(400), &mut out);
    assert!(
        !out.iter().any(|a| matches!(a, MacAction::Deliver { .. })),
        "duplicate suppressed"
    );
    assert!(
        armed(&out, MacTimerKind::Response).is_some(),
        "dup still ACKed"
    );
    assert_eq!(m.counters.duplicates, 1);
}

#[test]
fn cts_timeout_retries_then_drops_with_link_failure() {
    let mut m = mac(1, Variant::Basic);
    let (_, _, mut now) = launch_rts(&mut m, data_packet(1, 1, 2), 2, t(0));
    let mut out = Vec::new();
    let mut failures = 0;
    for attempt in 0..7 {
        now += Duration::from_micros(352);
        out.clear();
        m.on_tx_end(now, &mut out);
        let (cto, tok) = armed(&out, MacTimerKind::CtsTimeout).expect("cts timer");
        now += cto;
        out.clear();
        m.on_timer(MacTimerKind::CtsTimeout, tok, now, &mut out);
        if let Some(a) = out
            .iter()
            .find(|a| matches!(a, MacAction::LinkFailure { .. }))
        {
            failures += 1;
            assert_eq!(attempt, 6, "seven attempts then give up: {a:?}");
            break;
        }
        // Retry path: defer re-armed; walk it to the next RTS.
        let (d, tok) = armed(&out, MacTimerKind::Defer).expect("retry re-arms defer");
        now += d;
        out.clear();
        m.on_timer(MacTimerKind::Defer, tok, now, &mut out);
        if let Some((bd, tok2)) = armed(&out, MacTimerKind::Backoff) {
            now += bd;
            out.clear();
            m.on_timer(MacTimerKind::Backoff, tok2, now, &mut out);
        }
        assert_eq!(tx_frames(&out).len(), 1, "retry RTS on air");
    }
    assert_eq!(failures, 1);
    assert_eq!(m.counters.cts_timeouts, 7);
    assert_eq!(m.counters.retry_drops, 1);
}

// ----------------------------------------------------------------------
// PCMAC behaviour
// ----------------------------------------------------------------------

#[test]
fn pcmac_rts_carries_noise_and_uses_learned_power() {
    let mut m = mac(1, Variant::Pcmac);
    // Teach the table: a frame from node 2 heard strongly.
    let mut out = Vec::new();
    let teach = Frame {
        kind: FrameKind::Ack,
        tx: NodeId(2),
        rx: NodeId(1),
        duration: Duration::ZERO,
        tx_power: MAX_P,
        body: FrameBody::Ack,
    };
    // gain = 1e-3/281.8 ≈ 3.55e-6 → needed ≈ 0.103 mW → class 1 mW.
    m.on_rx_end(teach, Milliwatts(1e-3), true, t(0), &mut out);
    m.set_noise(Milliwatts(5e-9));

    let (rts, power, _) = launch_rts(&mut m, data_packet(1, 1, 2), 2, t(10));
    assert_eq!(power, Milliwatts(1.0), "learned class, not max");
    match rts.body {
        FrameBody::Rts { sender_noise } => {
            assert_eq!(sender_noise, Some(Milliwatts(5e-9)), "noise advertised")
        }
        b => panic!("not an RTS body: {b:?}"),
    }
    // Three-way handshake: RTS reserves 2×SIFS + CTS + DATA only.
    let expect = Duration::from_micros(2 * 10 + 304 + 192 + 568 * 4);
    assert_eq!(rts.duration, expect);
}

#[test]
fn pcmac_data_needs_no_ack_and_finishes_after_tx() {
    let mut m = mac(1, Variant::Pcmac);
    let (_, _, t0) = launch_rts(&mut m, data_packet(1, 1, 2), 2, t(0));
    let mut out = Vec::new();
    let t1 = t0 + Duration::from_micros(352);
    m.on_tx_end(t1, &mut out);
    out.clear();
    let cts = Frame {
        kind: FrameKind::Cts,
        tx: NodeId(2),
        rx: NodeId(1),
        duration: Duration::from_micros(2500),
        tx_power: Milliwatts(1.0),
        body: FrameBody::Cts {
            required_data_power: Some(Milliwatts(2.0)),
            last_received: None,
        },
    };
    let t2 = t1 + Duration::from_micros(314);
    m.on_rx_end(cts, Milliwatts(1e-3), true, t2, &mut out);
    let (_, tok) = armed(&out, MacTimerKind::Response).unwrap();
    out.clear();
    m.on_timer(
        MacTimerKind::Response,
        tok,
        t2 + Duration::from_micros(10),
        &mut out,
    );
    let frames = tx_frames(&out);
    let (data, p) = (&frames[0].0, frames[0].1);
    assert_eq!(p, Milliwatts(2.0), "CTS dictated the DATA power");
    match &data.body {
        FrameBody::Data { needs_ack, .. } => assert!(!needs_ack, "three-way handshake"),
        b => panic!("{b:?}"),
    }
    assert_eq!(data.duration, Duration::ZERO, "no ACK to reserve for");
    // DATA ends → exchange complete without any ACK timer.
    out.clear();
    m.on_tx_end(t2 + Duration::from_micros(2500), &mut out);
    assert!(armed(&out, MacTimerKind::AckTimeout).is_none());
    assert_eq!(m.queue_len(), 0);
}

#[test]
fn pcmac_routing_unicast_keeps_four_way() {
    let mut m = mac(1, Variant::Pcmac);
    let rrep = Packet::control(
        PacketId(5),
        NodeId(1),
        NodeId(2),
        SimTime::ZERO,
        Payload::Rrep(Rrep {
            origin: NodeId(3),
            target: NodeId(2),
            target_seq: 1,
            hop_count: 1,
        }),
    );
    let (_, _, t0) = launch_rts(&mut m, rrep, 2, t(0));
    let mut out = Vec::new();
    let t1 = t0 + Duration::from_micros(352);
    m.on_tx_end(t1, &mut out);
    out.clear();
    let cts = Frame {
        kind: FrameKind::Cts,
        tx: NodeId(2),
        rx: NodeId(1),
        duration: Duration::from_micros(2000),
        tx_power: Milliwatts(1.0),
        body: FrameBody::Cts {
            required_data_power: Some(Milliwatts(1.0)),
            last_received: None,
        },
    };
    let t2 = t1 + Duration::from_micros(314);
    m.on_rx_end(cts, Milliwatts(1e-3), true, t2, &mut out);
    let (_, tok) = armed(&out, MacTimerKind::Response).unwrap();
    out.clear();
    m.on_timer(
        MacTimerKind::Response,
        tok,
        t2 + Duration::from_micros(10),
        &mut out,
    );
    match &tx_frames(&out)[0].0.body {
        FrameBody::Data { needs_ack, .. } => {
            assert!(*needs_ack, "routing packets keep RTS-CTS-DATA-ACK")
        }
        b => panic!("{b:?}"),
    }
}

#[test]
fn pcmac_receiver_broadcasts_tolerance_on_data_rx_start() {
    let mut m = mac(2, Variant::Pcmac);
    let mut out = Vec::new();
    let session = SessionId::for_pair(NodeId(1), NodeId(2));
    let data = Frame {
        kind: FrameKind::Data,
        tx: NodeId(1),
        rx: NodeId(2),
        duration: Duration::ZERO,
        tx_power: Milliwatts(2.0),
        body: FrameBody::Data {
            packet: data_packet(1, 1, 2),
            seq: 0,
            session,
            needs_ack: false,
        },
    };
    // Signal 1e-3 mW, noise 1e-6 mW → tolerance = 1e-4 − 1e-6 > 0.
    m.on_rx_start(
        &data,
        Milliwatts(1e-3),
        Milliwatts(1e-6),
        Duration::from_micros(2464),
        t(0),
        &mut out,
    );
    let ctrl = out
        .iter()
        .find_map(|a| match a {
            MacAction::TxCtrl { frame, .. } => Some(frame.clone()),
            _ => None,
        })
        .expect("tolerance broadcast");
    assert_eq!(ctrl.receiver, NodeId(2));
    assert!((ctrl.noise_tolerance.value() - (1e-4 - 1e-6)).abs() < 1e-12);
    assert_eq!(ctrl.remaining, Duration::from_micros(2464));
    assert_eq!(m.counters.ctrl_broadcasts, 1);

    // Non-PCMAC MACs stay silent.
    let mut basic = mac(3, Variant::Basic);
    let mut out2 = Vec::new();
    let data3 = Frame {
        rx: NodeId(3),
        ..data
    };
    basic.on_rx_start(
        &data3,
        Milliwatts(1e-3),
        Milliwatts(1e-6),
        Duration::from_micros(2464),
        t(0),
        &mut out2,
    );
    assert!(out2.is_empty());
}

#[test]
fn pcmac_defers_rts_for_protected_receiver() {
    let mut m = mac(1, Variant::Pcmac);
    // Hear a tolerance broadcast: receiver 5, tiny tolerance, strong gain.
    m.on_ctrl_rx(
        CtrlFrame {
            receiver: NodeId(5),
            noise_tolerance: Milliwatts(1e-9),
            remaining: Duration::from_millis(2),
            tx_power: MAX_P,
        },
        MAX_P * 1e-3, // gain 1e-3 toward the receiver
        t(0),
    );
    let mut out = Vec::new();
    m.enqueue(data_packet(1, 1, 2), NodeId(2), t(10), &mut out);
    let (difs, tok) = armed(&out, MacTimerKind::Defer).unwrap();
    out.clear();
    m.on_timer(MacTimerKind::Defer, tok, t(10) + difs, &mut out);
    // Backoff may come first depending on the draw.
    if let Some((bd, tok2)) = armed(&out, MacTimerKind::Backoff) {
        out.clear();
        m.on_timer(MacTimerKind::Backoff, tok2, t(10) + difs + bd, &mut out);
    }
    assert!(tx_frames(&out).is_empty(), "RTS must be withheld: {out:?}");
    let (delay, _) = armed(&out, MacTimerKind::CtrlRetry).expect("retry at tolerance expiry");
    assert!(delay > Duration::ZERO);
    assert_eq!(m.counters.ctrl_deferrals, 1);
}

#[test]
fn pcmac_cts_echo_mismatch_triggers_retransmission() {
    let mut m = mac(1, Variant::Pcmac);
    let _session = SessionId::for_pair(NodeId(1), NodeId(2));

    // First packet: full exchange, receiver echoes nothing (fresh).
    let (_, _, t0) = launch_rts(&mut m, data_packet(1, 1, 2), 2, t(0));
    let mut out = Vec::new();
    let t1 = t0 + Duration::from_micros(352);
    m.on_tx_end(t1, &mut out);
    out.clear();
    let cts = |echo: Option<(SessionId, u32)>| Frame {
        kind: FrameKind::Cts,
        tx: NodeId(2),
        rx: NodeId(1),
        duration: Duration::from_micros(2500),
        tx_power: Milliwatts(1.0),
        body: FrameBody::Cts {
            required_data_power: Some(Milliwatts(1.0)),
            last_received: echo,
        },
    };
    let t2 = t1 + Duration::from_micros(314);
    m.on_rx_end(cts(None), Milliwatts(1e-3), true, t2, &mut out);
    let (_, tok) = armed(&out, MacTimerKind::Response).unwrap();
    out.clear();
    m.on_timer(
        MacTimerKind::Response,
        tok,
        t2 + Duration::from_micros(10),
        &mut out,
    );
    let first_data = tx_frames(&out)[0].0.clone();
    let first_seq = match first_data.body {
        FrameBody::Data { seq, .. } => seq,
        _ => unreachable!(),
    };
    out.clear();
    let t3 = t2 + Duration::from_micros(2500);
    m.on_tx_end(t3, &mut out); // DATA done; packet 1 provisionally delivered

    // Second packet.
    out.clear();
    m.enqueue(
        data_packet(2, 1, 2),
        NodeId(2),
        t3 + Duration::from_micros(5),
        &mut out,
    );
    // Walk to the RTS.
    let (d, tok) = armed(&out, MacTimerKind::Defer).unwrap();
    let mut now = t3 + Duration::from_micros(5) + d;
    out.clear();
    m.on_timer(MacTimerKind::Defer, tok, now, &mut out);
    if let Some((bd, tok2)) = armed(&out, MacTimerKind::Backoff) {
        now += bd;
        out.clear();
        m.on_timer(MacTimerKind::Backoff, tok2, now, &mut out);
    }
    assert_eq!(tx_frames(&out)[0].0.kind, FrameKind::Rts);
    out.clear();
    now += Duration::from_micros(352);
    m.on_tx_end(now, &mut out);

    // The CTS echo does NOT confirm packet 1 (receiver never got it).
    out.clear();
    now += Duration::from_micros(314);
    m.on_rx_end(cts(None), Milliwatts(1e-3), true, now, &mut out);
    let (_, tok) = armed(&out, MacTimerKind::Response).unwrap();
    out.clear();
    m.on_timer(
        MacTimerKind::Response,
        tok,
        now + Duration::from_micros(10),
        &mut out,
    );
    let retx = tx_frames(&out)[0].0.clone();
    match retx.body {
        FrameBody::Data { seq, packet, .. } => {
            assert_eq!(seq, first_seq, "stored copy keeps its sequence number");
            assert_eq!(packet.id, PacketId(1), "packet 1 retransmitted");
        }
        b => panic!("{b:?}"),
    }
    assert_eq!(m.counters.implicit_retx, 1);

    // After the retransmission completes, packet 2 is still pending.
    out.clear();
    now += Duration::from_micros(10 + 2500);
    m.on_tx_end(now, &mut out);
    assert_eq!(m.queue_len(), 1, "fresh packet still owns the queue head");
}

#[test]
fn pcmac_cts_echo_match_confirms_delivery() {
    let mut m = mac(1, Variant::Pcmac);
    let session = SessionId::for_pair(NodeId(1), NodeId(2));

    // Packet 1 exchange.
    let (_, _, t0) = launch_rts(&mut m, data_packet(1, 1, 2), 2, t(0));
    let mut out = Vec::new();
    let t1 = t0 + Duration::from_micros(352);
    m.on_tx_end(t1, &mut out);
    out.clear();
    let mk_cts = |echo: Option<(SessionId, u32)>| Frame {
        kind: FrameKind::Cts,
        tx: NodeId(2),
        rx: NodeId(1),
        duration: Duration::from_micros(2500),
        tx_power: Milliwatts(1.0),
        body: FrameBody::Cts {
            required_data_power: Some(Milliwatts(1.0)),
            last_received: echo,
        },
    };
    let t2 = t1 + Duration::from_micros(314);
    m.on_rx_end(mk_cts(None), Milliwatts(1e-3), true, t2, &mut out);
    let (_, tok) = armed(&out, MacTimerKind::Response).unwrap();
    out.clear();
    m.on_timer(
        MacTimerKind::Response,
        tok,
        t2 + Duration::from_micros(10),
        &mut out,
    );
    let seq1 = match tx_frames(&out)[0].0.body {
        FrameBody::Data { seq, .. } => seq,
        _ => unreachable!(),
    };
    out.clear();
    let t3 = t2 + Duration::from_micros(2510);
    m.on_tx_end(t3, &mut out);

    // Packet 2: the receiver's echo confirms packet 1.
    out.clear();
    m.enqueue(
        data_packet(2, 1, 2),
        NodeId(2),
        t3 + Duration::from_micros(5),
        &mut out,
    );
    let (d, tok) = armed(&out, MacTimerKind::Defer).unwrap();
    let mut now = t3 + Duration::from_micros(5) + d;
    out.clear();
    m.on_timer(MacTimerKind::Defer, tok, now, &mut out);
    if let Some((bd, tok2)) = armed(&out, MacTimerKind::Backoff) {
        now += bd;
        out.clear();
        m.on_timer(MacTimerKind::Backoff, tok2, now, &mut out);
    }
    out.clear();
    now += Duration::from_micros(352);
    m.on_tx_end(now, &mut out);
    out.clear();
    now += Duration::from_micros(314);
    m.on_rx_end(
        mk_cts(Some((session, seq1))),
        Milliwatts(1e-3),
        true,
        now,
        &mut out,
    );
    let (_, tok) = armed(&out, MacTimerKind::Response).unwrap();
    out.clear();
    m.on_timer(
        MacTimerKind::Response,
        tok,
        now + Duration::from_micros(10),
        &mut out,
    );
    match &tx_frames(&out)[0].0.body {
        FrameBody::Data { packet, .. } => {
            assert_eq!(packet.id, PacketId(2), "fresh packet, no retransmission")
        }
        b => panic!("{b:?}"),
    }
    assert_eq!(m.counters.implicit_retx, 0);
}

#[test]
fn pcmac_power_steps_up_on_cts_timeout() {
    let mut m = mac(1, Variant::Pcmac);
    // Teach a low class toward node 2.
    let mut out = Vec::new();
    let teach = Frame {
        kind: FrameKind::Ack,
        tx: NodeId(2),
        rx: NodeId(1),
        duration: Duration::ZERO,
        tx_power: MAX_P,
        body: FrameBody::Ack,
    };
    m.on_rx_end(teach, Milliwatts(1e-3), true, t(0), &mut out);

    let (_, p0, t0) = launch_rts(&mut m, data_packet(1, 1, 2), 2, t(10));
    assert_eq!(p0, Milliwatts(1.0));
    let mut out = Vec::new();
    let t1 = t0 + Duration::from_micros(352);
    m.on_tx_end(t1, &mut out);
    let (cto, tok) = armed(&out, MacTimerKind::CtsTimeout).unwrap();
    out.clear();
    m.on_timer(MacTimerKind::CtsTimeout, tok, t1 + cto, &mut out);
    // Walk the retry to the air and check the power went up a class.
    let (d, tok) = armed(&out, MacTimerKind::Defer).unwrap();
    let mut now = t1 + cto + d;
    out.clear();
    m.on_timer(MacTimerKind::Defer, tok, now, &mut out);
    if let Some((bd, tok2)) = armed(&out, MacTimerKind::Backoff) {
        now += bd;
        out.clear();
        m.on_timer(MacTimerKind::Backoff, tok2, now, &mut out);
    }
    let (_, p1) = tx_frames(&out)[0];
    assert_eq!(p1, Milliwatts(2.0), "one class up after timeout");
    assert_eq!(m.counters.power_step_ups, 1);
}

#[test]
fn scheme2_rts_uses_learned_level_scheme1_uses_max() {
    for (variant, want) in [
        (Variant::Scheme1, MAX_P),
        (Variant::Scheme2, Milliwatts(1.0)),
    ] {
        let mut m = mac(1, variant);
        let mut out = Vec::new();
        let teach = Frame {
            kind: FrameKind::Ack,
            tx: NodeId(2),
            rx: NodeId(1),
            duration: Duration::ZERO,
            tx_power: MAX_P,
            body: FrameBody::Ack,
        };
        m.on_rx_end(teach, Milliwatts(1e-3), true, t(0), &mut out);
        let (_, p, _) = launch_rts(&mut m, data_packet(1, 1, 2), 2, t(10));
        assert_eq!(p, want, "{variant:?}");
    }
}

#[test]
fn queue_overflow_reports_drop() {
    let mut m = mac(1, Variant::Basic);
    let mut out = Vec::new();
    // One current + 50 queued fills everything.
    for n in 0..52 {
        m.enqueue(data_packet(n, 1, 2), NodeId(2), t(0), &mut out);
    }
    let drops = out
        .iter()
        .filter(|a| matches!(a, MacAction::QueueDrop { .. }))
        .count();
    assert_eq!(drops, 1);
    assert_eq!(m.counters.queue_drops, 1);
}
