//! The simulator: event dispatch and the wireless channel.
//!
//! The channel is not an object — it is a *pattern*: when a node
//! transmits, the simulator computes the received power at every
//! candidate receiver from the propagation model and current positions,
//! and schedules `ArrivalStart`/`ArrivalEnd` events after the
//! speed-of-light delay. Each receiver's radio then decides locally what
//! it heard. Arrivals weaker than the configured interference floor are
//! culled (they cannot affect carrier sense or any plausible SINR).
//!
//! # The hot path
//!
//! Candidate receivers come from a [`UniformGrid`] spatial index sized
//! to the maximum reception range (max transmit power against the
//! interference floor), so a transmission visits only the cells its
//! signal can reach instead of scanning all N nodes
//! ([`ChannelIndexMode::BruteForce`] keeps the O(N) reference scan for
//! equivalence tests and benchmarks — both paths schedule the identical
//! arrival sequence). Candidate lists are sorted by node id, so the
//! event schedule is independent of the index's internal bucket order.
//!
//! Propagation is dispatched statically through [`PropagationModel`];
//! fully static scenarios additionally precompute every pairwise gain in
//! a [`GainCache`] so the per-receiver work degenerates to a table
//! lookup. Event dispatch draws its scratch buffers from per-type pools
//! on the simulator, so the steady state allocates nothing.

use std::sync::Arc;

use pcmac_engine::{
    Duration, EventQueue, Milliwatts, NodeId, Point, RngStream, SimTime, UniformGrid,
};
use pcmac_mac::{CtrlFrame, Frame, MacAction};
use pcmac_mobility::{placement, Mobility, RandomWaypoint};
use pcmac_phy::energy::RadioMode;
use pcmac_phy::radio::RadioEvent;
use pcmac_phy::{GainCache, PropagationModel, Shadowed, TwoRayGround};

use crate::config::{ChannelIndexMode, NodeSetup, ScenarioConfig};
use crate::event::SimEvent;
use crate::node::{Node, TrafficSource};
use crate::report::RunReport;

/// Speed of light (m/s) for propagation delays.
const C: f64 = 299_792_458.0;

/// Relative slack on the culling radius, absorbing the floating-point
/// error of inverting the path-loss formula so the spatial index can
/// never drop a receiver the exact power test would keep.
const RADIUS_SLACK: f64 = 1.0 + 1e-9;

/// Gain caches are quadratic in node count; beyond this many nodes the
/// table would dominate memory for little win and the simulator falls
/// back to live (still statically-dispatched) gain evaluation.
const GAIN_CACHE_MAX_NODES: usize = 2048;

/// A free list of scratch buffers: `take` hands out an empty vector
/// (reusing a previously returned allocation when one exists), `put`
/// clears and shelves it. Action application is reentrant — MAC actions
/// can trigger routing actions that trigger MAC actions — and each
/// nesting level simply takes its own buffer, so pooling is safe at any
/// recursion depth while the steady state allocates nothing.
#[derive(Debug)]
struct BufPool<T> {
    free: Vec<Vec<T>>,
}

impl<T> Default for BufPool<T> {
    fn default() -> Self {
        BufPool { free: Vec::new() }
    }
}

impl<T> BufPool<T> {
    fn take(&mut self) -> Vec<T> {
        self.free.pop().unwrap_or_default()
    }

    fn put(&mut self, mut buf: Vec<T>) {
        buf.clear();
        self.free.push(buf);
    }
}

/// A configured, runnable simulation.
pub struct Simulator {
    cfg: ScenarioConfig,
    queue: EventQueue<SimEvent>,
    nodes: Vec<Node>,
    positions: Vec<Point>,
    positions_at: Option<SimTime>,
    any_mobile: bool,
    propagation: PropagationModel,
    /// Spatial index over `positions` (kept in sync by
    /// [`Simulator::refresh_positions`]).
    grid: UniformGrid,
    /// Pairwise gain table (static scenarios only).
    gain_cache: Option<GainCache>,
    use_grid: bool,
    next_key: u64,
    sent_packets: u64,
    // Scratch-buffer pools for allocation-free dispatch.
    rad_pool: BufPool<RadioEvent<Arc<Frame>>>,
    ctrl_pool: BufPool<RadioEvent<CtrlFrame>>,
    mac_pool: BufPool<MacAction>,
    aodv_pool: BufPool<pcmac_aodv::AodvAction>,
    /// Candidate-receiver scratch (used only between a position refresh
    /// and the arrival-scheduling loop, which never re-enters).
    candidates: Vec<u32>,
}

impl Simulator {
    /// Build the network described by `cfg`.
    ///
    /// # Panics
    /// If the scenario fails [`ScenarioConfig::validate`]; the panic
    /// message lists every defect. Loading paths (spec files, campaign
    /// expansion) validate first and surface the same list as a
    /// `Result` instead.
    pub fn new(cfg: ScenarioConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("{e}");
        }
        let n = cfg.nodes.count();
        let mut nodes = Vec::with_capacity(n);
        let mut positions = Vec::with_capacity(n);
        let mut any_mobile = false;

        let starts: Vec<Point> = match &cfg.nodes {
            NodeSetup::UniformWaypoint { count, .. } => {
                let mut rng = RngStream::derive(cfg.seed, "scenario.placement");
                placement::uniform(*count, cfg.field.0, cfg.field.1, &mut rng)
            }
            NodeSetup::Static(pts) => pts.clone(),
            NodeSetup::WaypointFrom { starts, .. } => starts.clone(),
        };

        for (i, start) in starts.iter().enumerate() {
            let mobility = match &cfg.nodes {
                NodeSetup::UniformWaypoint { speed, pause, .. }
                | NodeSetup::WaypointFrom { speed, pause, .. } => {
                    any_mobile = true;
                    Mobility::Waypoint(RandomWaypoint::new(
                        *start,
                        cfg.field.0,
                        cfg.field.1,
                        *speed,
                        *pause,
                        RngStream::derive_sub(cfg.seed, "mobility", i as u64),
                    ))
                }
                NodeSetup::Static(_) => Mobility::Static(*start),
            };
            nodes.push(Node::new(
                NodeId(i as u32),
                *start,
                mobility,
                cfg.radio.clone(),
                cfg.mac.clone(),
                cfg.aodv.clone(),
                cfg.seed,
            ));
            positions.push(*start);
        }

        // Attach traffic sources to their homes and schedule first
        // emissions.
        let mut queue = EventQueue::with_capacity(1 << 16);
        for spec in &cfg.flows {
            let home = spec.src.index();
            assert!(home < nodes.len(), "flow source out of range");
            let mut src = TrafficSource::from_spec(spec, cfg.seed);
            if let Some(t0) = src.next_time() {
                let source_idx = nodes[home].sources.len();
                queue.schedule_at(
                    t0,
                    SimEvent::TrafficEmit {
                        node: spec.src,
                        source: source_idx,
                    },
                );
            }
            nodes[home].sources.push(src);
        }

        let propagation = match cfg.shadowing {
            Some(s) => PropagationModel::Shadowed(Shadowed::new(
                TwoRayGround::ns2_default(),
                s.sigma_db,
                s.symmetric,
                cfg.seed,
            )),
            None => PropagationModel::TwoRay(TwoRayGround::ns2_default()),
        };

        // Cell size: the farthest any transmission can matter — maximum
        // transmit power against the interference floor (inflated for the
        // worst-case shadowing boost). The grid may shrink cells slightly
        // to tile the field evenly (and caps the cell count on huge
        // fields), so a max-reach query touches a small O(1) block of
        // cells around the transmitter — typically 3×3, sometimes 4×4.
        let max_reach = cull_radius(&propagation, cfg.mac.max_power(), cfg.interference_floor);
        let cell = if max_reach.is_finite() {
            max_reach.max(1.0)
        } else {
            cfg.field.0.max(cfg.field.1)
        };
        let grid = UniformGrid::new(cfg.field.0, cfg.field.1, cell, &positions);

        // The gain cache belongs to the indexed channel: the brute-force
        // mode is the O(N)-scan-with-live-propagation reference the
        // indexed channel is benchmarked against (cache-vs-live equality
        // is covered by the phy gain-cache tests, so equivalence between
        // the modes is unaffected).
        let use_grid = cfg.channel_index == ChannelIndexMode::Grid;
        let gain_cache = if use_grid && !any_mobile && n <= GAIN_CACHE_MAX_NODES {
            Some(GainCache::build(&propagation, &positions))
        } else {
            None
        };

        Simulator {
            use_grid,
            cfg,
            queue,
            nodes,
            positions,
            positions_at: None,
            any_mobile,
            propagation,
            grid,
            gain_cache,
            next_key: 0,
            sent_packets: 0,
            rad_pool: BufPool::default(),
            ctrl_pool: BufPool::default(),
            mac_pool: BufPool::default(),
            aodv_pool: BufPool::default(),
            candidates: Vec::new(),
        }
    }

    /// Run to the configured duration and produce the report.
    pub fn run(self) -> RunReport {
        self.run_with_observer(|_, _| {})
    }

    /// Like [`Simulator::run`], but calls `observer` with every event
    /// just before it is dispatched — the hook for packet traces,
    /// animations, or custom measurements. The observer sees events in
    /// exact execution order.
    pub fn run_with_observer(mut self, mut observer: impl FnMut(&SimEvent, SimTime)) -> RunReport {
        let wall_start = std::time::Instant::now();
        let end = SimTime::ZERO + self.cfg.duration;
        while let Some(t) = self.queue.peek_time() {
            if t > end {
                break;
            }
            let ev = self.queue.pop().expect("peeked");
            observer(&ev.event, ev.at);
            self.dispatch(ev.event, ev.at);
        }
        for node in &mut self.nodes {
            node.energy.finish(end);
        }
        RunReport::build(
            &self.cfg,
            &self.nodes,
            self.sent_packets,
            self.queue.scheduled_total(),
            wall_start.elapsed().as_secs_f64(),
        )
    }

    // ------------------------------------------------------------------
    // Event dispatch
    // ------------------------------------------------------------------

    fn dispatch(&mut self, ev: SimEvent, now: SimTime) {
        match ev {
            SimEvent::ArrivalStart {
                node,
                key,
                power,
                end,
                frame,
            } => {
                let mut rad = self.rad_pool.take();
                self.nodes[node.index()]
                    .radio
                    .on_arrival_start(key, power, end, &frame, &mut rad);
                self.forward_radio_events(node.index(), rad, now);
            }
            SimEvent::ArrivalEnd { node, key } => {
                let mut rad = self.rad_pool.take();
                self.nodes[node.index()].radio.on_arrival_end(key, &mut rad);
                self.forward_radio_events(node.index(), rad, now);
            }
            SimEvent::TxEnd { node } => {
                let i = node.index();
                let mut rad = self.rad_pool.take();
                self.nodes[i].radio.end_tx(&mut rad);
                self.nodes[i]
                    .energy
                    .set_mode(now, RadioMode::Idle, Milliwatts::ZERO);
                self.forward_radio_events(i, rad, now);
                let mut acts = self.mac_pool.take();
                self.nodes[i].mac.on_tx_end(now, &mut acts);
                self.apply_mac_actions(i, acts, now);
            }
            SimEvent::CtrlArrivalStart {
                node,
                key,
                power,
                end,
                frame,
            } => {
                let mut rad = self.ctrl_pool.take();
                self.nodes[node.index()]
                    .ctrl_radio
                    .on_arrival_start(key, power, end, &frame, &mut rad);
                self.forward_ctrl_events(node.index(), rad, now);
            }
            SimEvent::CtrlArrivalEnd { node, key } => {
                let mut rad = self.ctrl_pool.take();
                self.nodes[node.index()]
                    .ctrl_radio
                    .on_arrival_end(key, &mut rad);
                self.forward_ctrl_events(node.index(), rad, now);
            }
            SimEvent::CtrlTxEnd { node } => {
                let i = node.index();
                let mut rad = self.ctrl_pool.take();
                self.nodes[i].ctrl_radio.end_tx(&mut rad);
                // The tolerance broadcast happens while the data radio is
                // mid-reception; energy for it was accounted at start.
                self.ctrl_pool.put(rad);
                self.nodes[i].mac.on_ctrl_tx_end(now);
            }
            SimEvent::MacTimer { node, kind, token } => {
                let i = node.index();
                let mut acts = self.mac_pool.take();
                self.nodes[i].mac.on_timer(kind, token, now, &mut acts);
                self.apply_mac_actions(i, acts, now);
            }
            SimEvent::AodvTimer { node, dst, token } => {
                let i = node.index();
                let mut acts = self.aodv_pool.take();
                self.nodes[i]
                    .aodv
                    .on_discovery_timeout(dst, token, now, &mut acts);
                self.apply_aodv_actions(i, acts, now);
            }
            SimEvent::TrafficEmit { node, source } => {
                let i = node.index();
                let (packet, next) = {
                    let src = &mut self.nodes[i].sources[source];
                    let packet = src.emit(now);
                    (packet, src.next_time())
                };
                self.sent_packets += 1;
                if let Some(t) = next {
                    self.queue
                        .schedule_at(t, SimEvent::TrafficEmit { node, source });
                }
                let mut acts = self.aodv_pool.take();
                self.nodes[i].aodv.send(packet, now, &mut acts);
                self.apply_aodv_actions(i, acts, now);
            }
        }
    }

    // ------------------------------------------------------------------
    // Radio event forwarding
    // ------------------------------------------------------------------

    fn forward_radio_events(
        &mut self,
        i: usize,
        mut events: Vec<RadioEvent<Arc<Frame>>>,
        now: SimTime,
    ) {
        for ev in events.drain(..) {
            let mut acts = self.mac_pool.take();
            {
                let node = &mut self.nodes[i];
                let noise = node.radio.noise_power();
                node.mac.set_noise(noise);
                match ev {
                    RadioEvent::CarrierBusy => node.mac.on_carrier(true, now, &mut acts),
                    RadioEvent::CarrierIdle => node.mac.on_carrier(false, now, &mut acts),
                    RadioEvent::RxStart { power, frame, .. } => {
                        let remaining = node.mac.config().timing.frame_airtime(&frame);
                        node.mac
                            .on_rx_start(&frame, power, noise, remaining, now, &mut acts);
                    }
                    RadioEvent::RxEnd {
                        power, frame, ok, ..
                    } => {
                        node.mac
                            .on_rx_end((*frame).clone(), power, ok, now, &mut acts);
                    }
                }
            }
            self.apply_mac_actions(i, acts, now);
        }
        self.rad_pool.put(events);
    }

    fn forward_ctrl_events(
        &mut self,
        i: usize,
        mut events: Vec<RadioEvent<CtrlFrame>>,
        now: SimTime,
    ) {
        for ev in events.drain(..) {
            // The control channel is pure broadcast signalling: no carrier
            // sense, no NAV; only successfully-decoded frames matter.
            if let RadioEvent::RxEnd {
                power,
                frame,
                ok: true,
                ..
            } = ev
            {
                self.nodes[i].mac.on_ctrl_rx(frame, power, now);
            }
        }
        self.ctrl_pool.put(events);
    }

    // ------------------------------------------------------------------
    // Action application
    // ------------------------------------------------------------------

    fn apply_mac_actions(&mut self, i: usize, mut actions: Vec<MacAction>, now: SimTime) {
        for a in actions.drain(..) {
            match a {
                MacAction::TxFrame { frame, power } => self.transmit_frame(i, frame, power, now),
                MacAction::TxCtrl { frame, power } => self.transmit_ctrl(i, frame, power, now),
                MacAction::Arm { kind, delay, token } => {
                    self.queue.schedule_at(
                        now + delay,
                        SimEvent::MacTimer {
                            node: NodeId(i as u32),
                            kind,
                            token,
                        },
                    );
                }
                MacAction::Deliver { packet, from } => {
                    let mut acts = self.aodv_pool.take();
                    self.nodes[i].aodv.on_packet(packet, from, now, &mut acts);
                    self.apply_aodv_actions(i, acts, now);
                }
                MacAction::LinkFailure { packet, next_hop } => {
                    // Purge other frames queued for the dead hop first, so
                    // the routing agent can salvage or drop them too.
                    let drained = self.nodes[i].mac.drain_next_hop(next_hop);
                    let mut acts = self.aodv_pool.take();
                    self.nodes[i]
                        .aodv
                        .on_link_failure(packet, next_hop, now, &mut acts);
                    for qp in drained {
                        self.nodes[i]
                            .aodv
                            .on_link_failure(qp.packet, next_hop, now, &mut acts);
                    }
                    self.apply_aodv_actions(i, acts, now);
                }
                MacAction::QueueDrop { .. } => {
                    // Counted inside the MAC; nothing further to do.
                }
            }
        }
        self.mac_pool.put(actions);
    }

    fn apply_aodv_actions(
        &mut self,
        i: usize,
        mut actions: Vec<pcmac_aodv::AodvAction>,
        now: SimTime,
    ) {
        use pcmac_aodv::AodvAction;
        for a in actions.drain(..) {
            match a {
                AodvAction::Transmit { packet, next_hop } => {
                    let mut acts = self.mac_pool.take();
                    self.nodes[i].mac.enqueue(packet, next_hop, now, &mut acts);
                    self.apply_mac_actions(i, acts, now);
                }
                AodvAction::DeliverLocal { packet } => {
                    self.nodes[i].sink.deliver(&packet, now);
                }
                AodvAction::Arm { dst, delay, token } => {
                    self.queue.schedule_at(
                        now + delay,
                        SimEvent::AodvTimer {
                            node: NodeId(i as u32),
                            dst,
                            token,
                        },
                    );
                }
                AodvAction::PeerReset { peer } => {
                    self.nodes[i].mac.reset_peer_state(peer);
                }
                AodvAction::Drop { .. } => {
                    // Counted inside the agent.
                }
            }
        }
        self.aodv_pool.put(actions);
    }

    // ------------------------------------------------------------------
    // The wireless channel
    // ------------------------------------------------------------------

    /// Bring `positions` (and the spatial index) up to `now`.
    ///
    /// The timestamp is recorded on **every** call, so repeated
    /// transmissions at the same instant — common when several nodes
    /// react to the same timer tick — skip the full O(N) mobility rescan
    /// entirely, and static scenarios never pay it at all.
    fn refresh_positions(&mut self, now: SimTime) {
        if self.positions_at == Some(now) {
            return;
        }
        if self.any_mobile {
            for (i, node) in self.nodes.iter_mut().enumerate() {
                let p = node.mobility.position(now);
                if p != self.positions[i] {
                    self.positions[i] = p;
                    if self.use_grid {
                        self.grid.update(i as u32, p);
                    }
                }
            }
        }
        self.positions_at = Some(now);
    }

    /// Fill `self.candidates` with every node (other than `i`, sorted by
    /// id) that could receive a transmission from `i` at `power` above
    /// the interference floor.
    fn collect_receivers(&mut self, i: usize, power: Milliwatts, now: SimTime) {
        self.refresh_positions(now);
        self.candidates.clear();
        if self.use_grid {
            let radius = cull_radius(&self.propagation, power, self.cfg.interference_floor);
            self.grid
                .query_circle(self.positions[i], radius, &mut self.candidates);
            if let Ok(at) = self.candidates.binary_search(&(i as u32)) {
                self.candidates.remove(at);
            }
        } else {
            self.candidates
                .extend((0..self.nodes.len() as u32).filter(|&j| j as usize != i));
        }
    }

    /// Gain from node `i` to node `j` (table lookup when static).
    #[inline]
    fn link_gain(&self, i: usize, j: usize) -> f64 {
        match &self.gain_cache {
            Some(cache) => cache.gain(i, j),
            None => self.propagation.gain(self.positions[i], self.positions[j]),
        }
    }

    fn transmit_frame(&mut self, i: usize, frame: Frame, power: Milliwatts, now: SimTime) {
        let airtime = self.nodes[i].mac.config().timing.frame_airtime(&frame);
        let end = now + airtime;

        let mut rad = self.rad_pool.take();
        self.nodes[i].radio.start_tx(end, &mut rad);
        self.nodes[i]
            .energy
            .set_mode(now, RadioMode::Transmit, power);
        self.forward_radio_events(i, rad, now);
        self.queue.schedule_at(
            end,
            SimEvent::TxEnd {
                node: NodeId(i as u32),
            },
        );

        self.collect_receivers(i, power, now);
        let frame = Arc::new(frame);
        let key = self.next_key;
        self.next_key += 1;
        let src_pos = self.positions[i];
        for c in 0..self.candidates.len() {
            let j = self.candidates[c] as usize;
            let dst_pos = self.positions[j];
            let pr = power * self.link_gain(i, j);
            if pr.value() < self.cfg.interference_floor.value() {
                continue;
            }
            let delay = Duration::from_nanos((src_pos.distance(dst_pos) / C * 1e9).round() as u64);
            self.queue.schedule_at(
                now + delay,
                SimEvent::ArrivalStart {
                    node: NodeId(j as u32),
                    key,
                    power: pr,
                    end: end + delay,
                    frame: frame.clone(),
                },
            );
            self.queue.schedule_at(
                end + delay,
                SimEvent::ArrivalEnd {
                    node: NodeId(j as u32),
                    key,
                },
            );
        }
    }

    fn transmit_ctrl(&mut self, i: usize, frame: CtrlFrame, power: Milliwatts, now: SimTime) {
        let airtime = CtrlFrame::airtime(self.nodes[i].mac.config().pcmac.ctrl_rate_bps);
        let end = now + airtime;

        let mut rad = self.ctrl_pool.take();
        self.nodes[i].ctrl_radio.start_tx(end, &mut rad);
        self.ctrl_pool.put(rad);
        // The ctrl broadcast radiates too (the data radio may be mid-rx;
        // energy is attributed per-channel, transmit wins for the overlap).
        self.queue.schedule_at(
            end,
            SimEvent::CtrlTxEnd {
                node: NodeId(i as u32),
            },
        );

        self.collect_receivers(i, power, now);
        let key = self.next_key;
        self.next_key += 1;
        let src_pos = self.positions[i];
        for c in 0..self.candidates.len() {
            let j = self.candidates[c] as usize;
            let dst_pos = self.positions[j];
            let pr = power * self.link_gain(i, j);
            if pr.value() < self.cfg.interference_floor.value() {
                continue;
            }
            let delay = Duration::from_nanos((src_pos.distance(dst_pos) / C * 1e9).round() as u64);
            self.queue.schedule_at(
                now + delay,
                SimEvent::CtrlArrivalStart {
                    node: NodeId(j as u32),
                    key,
                    power: pr,
                    end: end + delay,
                    frame: frame.clone(),
                },
            );
            self.queue.schedule_at(
                end + delay,
                SimEvent::CtrlArrivalEnd {
                    node: NodeId(j as u32),
                    key,
                },
            );
        }
    }
}

/// The radius beyond which a transmission at `power` cannot reach
/// `floor` under any realisation of `model` (slightly inflated for
/// float-inversion safety). Infinite when the floor is disabled.
fn cull_radius(model: &PropagationModel, power: Milliwatts, floor: Milliwatts) -> f64 {
    if floor.value() <= 0.0 || power.value() <= 0.0 {
        return f64::INFINITY;
    }
    model.max_range_for(power, floor) * RADIUS_SLACK
}
