//! Block-sparse pairwise gain cache for indexed channels.
//!
//! The dense [`GainCache`](crate::GainCache) precomputes all N² gains,
//! which is exact and fast but quadratic in memory and only sound when
//! every position is frozen for the whole run — mobile scenarios and
//! networks beyond a few thousand nodes get nothing. [`SparseGainCache`]
//! drops both restrictions:
//!
//! * **Block-sparse storage.** Entries live in blocks keyed by the
//!   *occupied grid-cell pair* `(cell(i), cell(j))` of their endpoints
//!   (cell ids come from the channel's spatial index). A transmission
//!   only ever touches the handful of cell pairs its signal spans, so
//!   the populated blocks mirror the channel's actual locality instead
//!   of the full N×N pair space. Within a block, pair gains materialize
//!   lazily on first lookup.
//! * **Per-node invalidation on movement.** Every node carries a
//!   generation counter, bumped by [`SparseGainCache::note_move`]
//!   whenever its position changes. Entries remember the generations
//!   they were computed at; a lookup whose generations no longer match
//!   recomputes in place. Paused and static nodes keep their entries hot
//!   while moving nodes invalidate only their own links — this is what
//!   makes *mobile* scenarios cacheable at all (random-waypoint nodes
//!   spend their pauses, and every instant between lazy refreshes, at a
//!   fixed position).
//!
//! Exactness contract: [`SparseGainCache::gain_with`] returns exactly
//! what the supplied closure would — values are only replayed while both
//! endpoint generations are unchanged — so swapping the cache into the
//! channel changes nothing about a run except its speed. Memory is
//! bounded: when the live entry count passes the configured cap the
//! whole cache flushes (an epoch flush — correctness is untouched, the
//! next lookups simply refill).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use serde::{Deserialize, Serialize};

/// Multiply-xor hasher for the packed `u64` keys used here. The std
/// SipHash is DoS-resistant but several times slower; cache keys are
/// internal (never attacker-controlled), so the cheap mix wins.
#[derive(Default)]
pub struct PairHasher(u64);

impl Hasher for PairHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Only u64 keys are ever hashed; this path exists for trait
        // completeness.
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        // splitmix64-style finalizer: full avalanche, two multiplies.
        let mut x = self.0 ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        self.0 = x;
    }
}

type FastMap<V> = HashMap<u64, V, BuildHasherDefault<PairHasher>>;

#[derive(Debug, Clone, Copy)]
struct Entry {
    gain: f64,
    /// Endpoint generations this gain was computed at.
    gi: u32,
    gj: u32,
}

/// Pair gains for one occupied cell pair, filled lazily.
#[derive(Debug, Default)]
struct Block {
    pairs: FastMap<Entry>,
}

/// Running effectiveness counters (bench + report diagnostics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SparseCacheStats {
    /// Lookups answered from a live entry.
    pub hits: u64,
    /// Lookups that (re)computed the gain.
    pub misses: u64,
    /// Occupied cell-pair blocks currently held.
    pub blocks: usize,
    /// Live pair entries currently held.
    pub entries: usize,
    /// Epoch flushes triggered by the memory cap.
    pub flushes: u64,
}

/// Block-sparse, movement-invalidated pairwise gain cache.
#[derive(Debug)]
pub struct SparseGainCache {
    /// Position generation per node (bumped on every actual move).
    gen: Vec<u32>,
    /// Current spatial-index cell per node.
    cell: Vec<u32>,
    blocks: FastMap<Block>,
    entries: usize,
    /// Entry count that triggers an epoch flush.
    cap: usize,
    hits: u64,
    misses: u64,
    flushes: u64,
}

#[inline]
fn pack(a: u32, b: u32) -> u64 {
    (a as u64) << 32 | b as u64
}

impl SparseGainCache {
    /// Cache for `n` nodes. Memory is capped at roughly 64 live entries
    /// per node (and never below 4096), a small multiple of the audible
    /// neighbourhood the channel actually touches; contrast with the
    /// dense cache's unconditional N² table.
    pub fn new(n: usize) -> Self {
        SparseGainCache {
            gen: vec![0; n],
            cell: vec![0; n],
            blocks: FastMap::default(),
            entries: 0,
            cap: (64 * n).max(4096),
            hits: 0,
            misses: 0,
            flushes: 0,
        }
    }

    /// Number of tracked nodes.
    pub fn len(&self) -> usize {
        self.gen.len()
    }

    /// `true` when tracking zero nodes.
    pub fn is_empty(&self) -> bool {
        self.gen.is_empty()
    }

    /// Set `node`'s cell without invalidating anything — initial sync
    /// with the spatial index, before any gains are cached.
    pub fn set_cell(&mut self, node: u32, cell: u32) {
        self.cell[node as usize] = cell;
    }

    /// Record that `node` moved (to a position inside `cell`): all its
    /// cached link gains become stale and will recompute on next touch.
    pub fn note_move(&mut self, node: u32, cell: u32) {
        let i = node as usize;
        self.gen[i] = self.gen[i].wrapping_add(1);
        self.cell[i] = cell;
    }

    /// The gain from `i` to `j`: replayed from the cache when both
    /// endpoints are at the generation the entry was computed at,
    /// otherwise recomputed via `compute` and stored. Returns exactly
    /// what `compute` would return.
    #[inline]
    pub fn gain_with(&mut self, i: u32, j: u32, compute: impl FnOnce() -> f64) -> f64 {
        if self.entries > self.cap {
            self.blocks.clear();
            self.entries = 0;
            self.flushes += 1;
        }
        let (gi, gj) = (self.gen[i as usize], self.gen[j as usize]);
        let block = self
            .blocks
            .entry(pack(self.cell[i as usize], self.cell[j as usize]))
            .or_default();
        match block.pairs.entry(pack(i, j)) {
            std::collections::hash_map::Entry::Occupied(mut o) => {
                let e = o.get_mut();
                if e.gi == gi && e.gj == gj {
                    self.hits += 1;
                    return e.gain;
                }
                self.misses += 1;
                *e = Entry {
                    gain: compute(),
                    gi,
                    gj,
                };
                e.gain
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                self.misses += 1;
                let gain = compute();
                v.insert(Entry { gain, gi, gj });
                self.entries += 1;
                gain
            }
        }
    }

    /// Batched [`SparseGainCache::gain_with`]: resolve the gain from `i`
    /// to every candidate in `js` in one pass, appending to `out` in
    /// candidate order. Sequentially equivalent to calling `gain_with`
    /// per candidate — the per-candidate flush check, hit/miss counting
    /// and insertion order are replicated exactly, so counters and
    /// flush epochs match the scalar path bit for bit — but the block
    /// handle is memoized across candidates sharing the previous
    /// candidate's cell, and the borrow/branch overhead is paid once per
    /// candidate instead of once per closure call.
    pub fn gains_with_into(
        &mut self,
        i: u32,
        js: &[u32],
        out: &mut Vec<f64>,
        mut compute: impl FnMut(u32) -> f64,
    ) {
        out.clear();
        out.reserve(js.len());
        let gi = self.gen[i as usize];
        let cell_i = self.cell[i as usize];
        let mut cur_block_key = u64::MAX;
        for &j in js {
            if self.entries > self.cap {
                self.blocks.clear();
                self.entries = 0;
                self.flushes += 1;
                cur_block_key = u64::MAX; // the memoized handle died
            }
            let gj = self.gen[j as usize];
            let key = pack(cell_i, self.cell[j as usize]);
            if key != cur_block_key {
                // Materialize the block once per run of same-cell
                // candidates; the map lookup below re-borrows it (the
                // borrow cannot be held across the flush check).
                self.blocks.entry(key).or_default();
                cur_block_key = key;
            }
            let block = self.blocks.get_mut(&key).expect("block just ensured");
            let gain = match block.pairs.entry(pack(i, j)) {
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    let e = o.get_mut();
                    if e.gi == gi && e.gj == gj {
                        self.hits += 1;
                        e.gain
                    } else {
                        self.misses += 1;
                        *e = Entry {
                            gain: compute(j),
                            gi,
                            gj,
                        };
                        e.gain
                    }
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    self.misses += 1;
                    let gain = compute(j);
                    v.insert(Entry { gain, gi, gj });
                    self.entries += 1;
                    gain
                }
            };
            out.push(gain);
        }
    }

    /// Current effectiveness counters.
    pub fn stats(&self) -> SparseCacheStats {
        SparseCacheStats {
            hits: self.hits,
            misses: self.misses,
            blocks: self.blocks.len(),
            entries: self.entries,
            flushes: self.flushes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replays_only_while_generations_match() {
        let mut c = SparseGainCache::new(4);
        assert_eq!(c.gain_with(0, 1, || 0.5), 0.5);
        // Hit: the closure's new value must NOT be observed.
        assert_eq!(c.gain_with(0, 1, || 99.0), 0.5);
        // Either endpoint moving invalidates the pair.
        c.note_move(1, 0);
        assert_eq!(c.gain_with(0, 1, || 0.25), 0.25);
        c.note_move(0, 0);
        assert_eq!(c.gain_with(0, 1, || 0.125), 0.125);
        assert_eq!(c.gain_with(0, 1, || 99.0), 0.125);
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (2, 3));
    }

    #[test]
    fn direction_matters() {
        let mut c = SparseGainCache::new(2);
        assert_eq!(c.gain_with(0, 1, || 1.0), 1.0);
        // (1,0) is a distinct pair (asymmetric shadowing support).
        assert_eq!(c.gain_with(1, 0, || 2.0), 2.0);
        assert_eq!(c.gain_with(0, 1, || 9.0), 1.0);
        assert_eq!(c.gain_with(1, 0, || 9.0), 2.0);
    }

    #[test]
    fn blocks_track_occupied_cell_pairs() {
        let mut c = SparseGainCache::new(6);
        for (node, cell) in [(0u32, 0u32), (1, 0), (2, 7), (3, 7), (4, 9), (5, 9)] {
            c.set_cell(node, cell);
        }
        // Touch pairs spanning (0,7), (0,7), (7,9): two distinct blocks.
        c.gain_with(0, 2, || 0.1);
        c.gain_with(1, 3, || 0.2);
        c.gain_with(2, 4, || 0.3);
        let s = c.stats();
        assert_eq!(s.blocks, 2);
        assert_eq!(s.entries, 3);
    }

    #[test]
    fn cell_change_reroutes_to_a_new_block() {
        let mut c = SparseGainCache::new(2);
        c.set_cell(0, 3);
        c.set_cell(1, 5);
        c.gain_with(0, 1, || 0.5);
        c.note_move(0, 4); // crossed into cell 4
                           // New block, and the generation bump forces a recompute anyway.
        assert_eq!(c.gain_with(0, 1, || 0.75), 0.75);
        assert!(c.stats().blocks >= 2);
    }

    #[test]
    fn batched_lookup_matches_scalar_path_including_counters() {
        // Drive two caches through an identical mixed workload — scalar
        // on one, batched on the other — across moves and flushes; the
        // answers AND the counters must agree exactly.
        let n = 80u32; // cap 5120 < 80·79 pairs: the flush path runs too
        let mut scalar = SparseGainCache::new(n as usize);
        let mut batched = SparseGainCache::new(n as usize);
        for c in [&mut scalar, &mut batched] {
            for node in 0..n {
                c.set_cell(node, node / 5);
            }
        }
        let gain_of = |i: u32, j: u32, round: u32| (i * 1000 + j) as f64 + round as f64 * 0.5;
        for round in 0..100u32 {
            let tx = round % n;
            let js: Vec<u32> = (0..n).filter(|&j| j != tx).collect();
            let mut want = Vec::new();
            for &j in &js {
                want.push(scalar.gain_with(tx, j, || gain_of(tx, j, round)));
            }
            let mut got = Vec::new();
            batched.gains_with_into(tx, &js, &mut got, |j| gain_of(tx, j, round));
            assert_eq!(got, want, "round {round}");
            if round % 7 == 3 {
                let mover = (round * 11) % n;
                scalar.note_move(mover, mover % 4);
                batched.note_move(mover, mover % 4);
            }
        }
        assert_eq!(scalar.stats(), batched.stats());
    }

    #[test]
    fn epoch_flush_bounds_memory_without_changing_answers() {
        let mut c = SparseGainCache::new(70);
        // cap = max(64*70, 4096) = 4480 < 70*69 pairs: must flush.
        let mut total = 0.0;
        for _round in 0..3u32 {
            for i in 0..70u32 {
                for j in 0..70u32 {
                    if i != j {
                        let want = (i * 70 + j) as f64;
                        total += c.gain_with(i, j, || want) - want;
                    }
                }
            }
        }
        assert_eq!(total, 0.0, "every lookup must return the exact gain");
        let s = c.stats();
        assert!(s.flushes >= 1, "the cap must have triggered at least once");
        assert!(s.entries <= 4480 + 1);
    }
}
