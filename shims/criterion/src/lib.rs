//! Offline shim for `criterion`.
//!
//! A minimal benchmark harness exposing the criterion API surface this
//! repository's benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: per benchmark it estimates the cost of one
//! iteration during a short calibration phase, then takes `sample_size`
//! samples (each a timed batch sized to ≈5 ms) and reports min / mean /
//! max of the per-iteration time. No statistics beyond that, no plots,
//! no baselines — just honest wall-clock numbers printed to stdout.
//! Means are also recorded in a process-global registry that bench
//! binaries can drain via [`take_measurements`] to export machine-
//! readable results (e.g. `BENCH_channel.json`).

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup cost. The shim times routine and
/// setup together but subtracts a setup-only calibration, so the hint is
/// accepted for API compatibility and otherwise unused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// One recorded measurement: benchmark id and mean ns/iter.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Fully-qualified benchmark name (`group/name` for grouped).
    pub id: String,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
}

static MEASUREMENTS: Mutex<Vec<Measurement>> = Mutex::new(Vec::new());

/// Drain every measurement recorded so far in this process.
pub fn take_measurements() -> Vec<Measurement> {
    std::mem::take(&mut MEASUREMENTS.lock().unwrap())
}

fn record(id: &str, mean_ns: f64) {
    MEASUREMENTS.lock().unwrap().push(Measurement {
        id: id.to_string(),
        mean_ns,
    });
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of samples per benchmark (builder style).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Run one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_bench(&id.to_string(), self.sample_size, &mut f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size,
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Close the group (printing nothing extra; parity with criterion).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; runs and times the workload.
pub struct Bencher {
    /// Samples of (total duration, iterations) collected so far.
    samples: Vec<(Duration, u64)>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Calibrate: how many iterations fit in ~5 ms?
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let per_sample =
            ((Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 100_000)) as u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push((start.elapsed(), per_sample));
        }
    }

    /// Time `routine` on fresh inputs from `setup`, excluding setup cost.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push((start.elapsed(), 1));
        }
    }

    /// Like [`Bencher::iter_batched`] but the routine borrows the input.
    pub fn iter_batched_ref<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> R,
        _size: BatchSize,
    ) {
        for _ in 0..self.sample_size {
            let mut input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(&mut input));
            self.samples.push((start.elapsed(), 1));
        }
    }
}

fn run_bench(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|(d, n)| d.as_nanos() as f64 / *n as f64)
        .collect();
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
    record(id, mean);
    println!(
        "{id:<40} [{} {} {}]",
        human_ns(min),
        human_ns(mean),
        human_ns(max)
    );
}

fn human_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declare a group of benchmark functions, optionally with a config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("shim/iter", |b| b.iter(|| 1 + 1));
        c.bench_function("shim/batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_function("x", |b| b.iter(|| 2 * 2));
        g.finish();
    }

    #[test]
    fn harness_runs_and_records() {
        let mut c = Criterion::default().sample_size(3);
        quick(&mut c);
        let m = take_measurements();
        assert!(m.iter().any(|m| m.id == "shim/iter"));
        assert!(m.iter().any(|m| m.id == "grp/x"));
        assert!(m.iter().all(|m| m.mean_ns >= 0.0));
    }
}
