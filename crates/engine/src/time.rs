//! Simulation time.
//!
//! Time is a monotone `u64` count of **nanoseconds** since the start of the
//! simulation. A 400-second run (the paper's duration) is `4e11` ns, leaving
//! ~46 bits of headroom before overflow; all arithmetic that could overflow
//! is checked or saturating.
//!
//! [`SimTime`] is an absolute instant; [`Duration`] is a length of time.
//! They are deliberately separate types: adding two instants is meaningless
//! and does not compile.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A span of simulation time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Duration(u64);

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Create a duration from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Duration(ns)
    }

    /// Create a duration from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Duration(us * 1_000)
    }

    /// Create a duration from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000_000)
    }

    /// Create a duration from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000_000)
    }

    /// Create a duration from fractional seconds, rounding to the nearest
    /// nanosecond. Negative or non-finite inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return Duration::ZERO;
        }
        Duration((s * 1e9).round() as u64)
    }

    /// Nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds, truncating.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds, truncating.
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating sum of two durations.
    #[inline]
    pub const fn saturating_add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }

    /// Saturating difference (`0` if `rhs > self`).
    #[inline]
    pub const fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }

    /// Integer scaling.
    #[inline]
    pub const fn saturating_mul(self, k: u64) -> Duration {
        Duration(self.0.saturating_mul(k))
    }

    /// `true` if this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.checked_add(rhs.0).expect("Duration overflow"))
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.checked_sub(rhs.0).expect("Duration underflow"))
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, k: u64) -> Duration {
        Duration(self.0.checked_mul(k).expect("Duration overflow"))
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn div(self, k: u64) -> Duration {
        Duration(self.0 / k)
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.6}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{}ns", ns)
        }
    }
}

/// An absolute instant of simulation time (nanoseconds since t=0).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation origin, t = 0.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (useful as an "infinity" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole nanoseconds since t=0.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from fractional seconds since t=0.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime::ZERO + Duration::from_secs_f64(s)
    }

    /// Nanoseconds since t=0.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds since t=0.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`. Panics if `earlier` is later.
    #[inline]
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: negative elapsed time"),
        )
    }

    /// Duration elapsed since `earlier`, clamped to zero if negative.
    #[inline]
    pub const fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: Duration) -> SimTime {
        SimTime(self.0.checked_add(d.as_nanos()).expect("SimTime overflow"))
    }
}

impl AddAssign<Duration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: Duration) {
        *self = *self + d;
    }
}

impl Sub<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, d: Duration) -> SimTime {
        SimTime(self.0.checked_sub(d.as_nanos()).expect("SimTime underflow"))
    }
}

impl Sub for SimTime {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: SimTime) -> Duration {
        self.since(rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.9}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(Duration::from_micros(1).as_nanos(), 1_000);
        assert_eq!(Duration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(Duration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(Duration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
    }

    #[test]
    fn duration_from_secs_f64_clamps_bad_input() {
        assert_eq!(Duration::from_secs_f64(-1.0), Duration::ZERO);
        assert_eq!(Duration::from_secs_f64(f64::NAN), Duration::ZERO);
        assert_eq!(Duration::from_secs_f64(f64::NEG_INFINITY), Duration::ZERO);
    }

    #[test]
    fn duration_arithmetic() {
        let a = Duration::from_micros(10);
        let b = Duration::from_micros(3);
        assert_eq!((a + b).as_micros(), 13);
        assert_eq!((a - b).as_micros(), 7);
        assert_eq!((a * 4).as_micros(), 40);
        assert_eq!((a / 2).as_micros(), 5);
        assert_eq!(a.saturating_sub(Duration::from_secs(1)), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn duration_sub_underflow_panics() {
        let _ = Duration::from_nanos(1) - Duration::from_nanos(2);
    }

    #[test]
    fn simtime_ordering_and_elapsed() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + Duration::from_millis(5);
        let t2 = t1 + Duration::from_millis(5);
        assert!(t0 < t1 && t1 < t2);
        assert_eq!(t2.since(t0), Duration::from_millis(10));
        assert_eq!(t2 - t1, Duration::from_millis(5));
        assert_eq!(t0.saturating_since(t2), Duration::ZERO);
    }

    #[test]
    fn simtime_roundtrip_seconds() {
        let t = SimTime::from_secs_f64(399.999_999);
        assert!((t.as_secs_f64() - 399.999_999).abs() < 1e-9);
    }

    #[test]
    fn display_picks_sensible_unit() {
        assert_eq!(format!("{}", Duration::from_nanos(42)), "42ns");
        assert_eq!(format!("{}", Duration::from_micros(20)), "20.000us");
        assert_eq!(format!("{}", Duration::from_millis(3)), "3.000ms");
        assert_eq!(format!("{}", Duration::from_secs(2)), "2.000000s");
    }
}
