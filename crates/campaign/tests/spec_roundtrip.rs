//! Serde round-trip stability for the spec types: JSON → struct → JSON
//! must be a fixed point, so spec files survive load/save cycles and the
//! `CAMPAIGN_*.json` artifacts are reparseable.

use pcmac::{FlowShape, ScenarioConfig, ShadowingConfig, Variant};
use pcmac_campaign::{
    AxesSpec, CampaignSpec, MobilitySpec, NodesSpec, PlacementSpec, ScenarioSpec, TrafficPattern,
    TrafficSpec,
};
use proptest::prelude::*;

/// Build a scenario spec from fuzzed knobs, exercising every placement,
/// pattern, and shape variant.
fn spec_from(
    placement_idx: usize,
    pattern_idx: usize,
    shape_idx: usize,
    count: usize,
    load: f64,
    mobile: bool,
    shadowed: bool,
) -> ScenarioSpec {
    let placement = match placement_idx % 8 {
        0 => PlacementSpec::Uniform,
        1 => PlacementSpec::Density { per_km2: 40.0 },
        2 => PlacementSpec::Grid { spacing: 120.0 },
        3 => PlacementSpec::Chain { spacing: 80.0 },
        4 => PlacementSpec::Ring { radius: 200.0 },
        5 => PlacementSpec::Clustered {
            clusters: 2,
            spread_m: 60.0,
        },
        6 => PlacementSpec::Corridor { width_m: 100.0 },
        _ => PlacementSpec::Explicit {
            points: (0..count)
                .map(|i| pcmac_engine::Point::new(50.0 + 100.0 * i as f64, 500.0))
                .collect(),
        },
    };
    let pattern = match pattern_idx % 3 {
        0 => TrafficPattern::RandomPairs { flows: 2 },
        1 => TrafficPattern::NeighbourPairs { flows: 2 },
        _ => TrafficPattern::Explicit {
            pairs: vec![(0, 1), (1, 2)],
        },
    };
    let shape = match shape_idx % 3 {
        0 => FlowShape::Cbr,
        1 => FlowShape::Poisson,
        _ => FlowShape::OnOff {
            mean_on_s: 1.5,
            mean_off_s: 0.5,
        },
    };
    // Density and Explicit placements imply their own count.
    let uses_count = !matches!(
        placement,
        PlacementSpec::Explicit { .. } | PlacementSpec::Density { .. }
    );
    ScenarioSpec {
        name: format!("fuzz-{placement_idx}-{pattern_idx}-{shape_idx}"),
        variant: Variant::ALL[placement_idx % 4],
        duration_s: 5.0,
        field: (1000.0, 1000.0),
        nodes: NodesSpec {
            count: uses_count.then_some(count),
            placement,
            mobility: mobile.then_some(MobilitySpec {
                speed_mps: 2.5,
                pause_s: 1.0,
            }),
        },
        traffic: TrafficSpec {
            pattern,
            bytes: 512,
            offered_load_kbps: load,
            shape,
        },
        power_levels_mw: None,
        shadowing: shadowed.then_some(ShadowingConfig {
            sigma_db: 4.0,
            symmetric: true,
        }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// ScenarioSpec: JSON → struct → JSON is a fixed point, and the
    /// reparsed struct is equal to the original.
    #[test]
    fn scenario_spec_json_is_stable(
        placement_idx in 0usize..8,
        pattern_idx in 0usize..3,
        shape_idx in 0usize..3,
        count in 4usize..12,
        load in 50.0f64..500.0,
        mobile in any::<bool>(),
        shadowed in any::<bool>(),
    ) {
        let spec = spec_from(placement_idx, pattern_idx, shape_idx, count, load, mobile, shadowed);
        let json = spec.to_json();
        let back = ScenarioSpec::from_json(&json).expect("reparses");
        prop_assert_eq!(&back, &spec);
        prop_assert_eq!(back.to_json(), json, "second serialization must match the first");
    }

    /// CampaignSpec round trip, including every axis populated.
    #[test]
    fn campaign_spec_json_is_stable(
        placement_idx in 0usize..8,
        seeds in proptest::collection::vec(0u64..1000, 1..4),
        with_counts in any::<bool>(),
        with_levels in any::<bool>(),
    ) {
        let base = spec_from(placement_idx, 0, 0, 8, 200.0, false, false);
        let counts_ok = with_counts && !matches!(
            base.nodes.placement,
            PlacementSpec::Density { .. } | PlacementSpec::Explicit { .. }
        );
        let spec = CampaignSpec {
            name: "fuzz-campaign".into(),
            base,
            duration_s: Some(3.0),
            seeds,
            axes: AxesSpec {
                loads_kbps: Some(vec![100.0, 200.0]),
                node_counts: counts_ok.then(|| vec![6, 10]),
                variants: Some(vec![Variant::Basic, Variant::Pcmac]),
                power_level_sets_mw: with_levels.then(|| vec![
                    vec![281.83815],
                    vec![1.0, 15.0, 281.83815],
                ]),
            },
        };
        let json = spec.to_json();
        let back = CampaignSpec::from_json(&json).expect("reparses");
        prop_assert_eq!(&back, &spec);
        prop_assert_eq!(back.to_json(), json);
    }

    /// ScenarioConfig (the materialized form) also round-trips stably —
    /// covering the WaypointFrom setup and non-CBR shapes the spec layer
    /// can now produce.
    #[test]
    fn materialized_config_json_is_stable(
        placement_idx in 0usize..8,
        shape_idx in 0usize..3,
        seed in 0u64..500,
        mobile in any::<bool>(),
    ) {
        let spec = spec_from(placement_idx, 0, shape_idx, 8, 150.0, mobile, false);
        let cfg = spec.materialize(seed).expect("valid spec materializes");
        let json = cfg.to_json();
        let back = ScenarioConfig::from_json(&json).expect("reparses");
        prop_assert_eq!(back.to_json(), json, "second serialization must match the first");
    }
}

#[test]
fn paper_spec_materializes_identically_to_the_constructor() {
    // The whole point of the refactor: the declarative path must
    // reproduce the constructor-built paper scenario bit for bit, so the
    // figure binaries lose nothing by driving the campaign subsystem.
    for (seed, load) in [(1u64, 300.0), (7, 650.0), (42, 1000.0)] {
        for variant in Variant::ALL {
            let mut spec = ScenarioSpec::paper();
            spec.variant = variant;
            spec.traffic.offered_load_kbps = load;
            let from_spec = spec.materialize(seed).expect("paper spec is valid");
            let from_ctor = ScenarioConfig::paper(variant, load, seed);
            // Compare through JSON: every field except the label must
            // match (names differ: spec names carry the seed).
            let mut a = from_spec.clone();
            let mut b = from_ctor.clone();
            a.name = String::new();
            b.name = String::new();
            assert_eq!(
                a.to_json(),
                b.to_json(),
                "variant {variant:?} load {load} seed {seed}"
            );
        }
    }
}
