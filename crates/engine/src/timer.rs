//! Generation-counted timers.
//!
//! A discrete-event MAC cancels timers constantly (every CTS that arrives
//! cancels a CTS-timeout). Removing entries from a binary heap is O(n), so
//! instead each logical timer owns a [`TimerSlot`] holding a generation
//! counter. Arming the slot bumps the generation and the fired event carries
//! a [`TimerToken`] snapshot; when the event pops, the component asks the
//! slot whether the token is still *live*. Cancelled or re-armed timers
//! leave stale tokens behind that are ignored in O(1).

/// A snapshot of a timer arming, carried inside the scheduled event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerToken(u64);

impl TimerToken {
    /// The generation number this token snapshots. Exposed so callers can
    /// fold timers into content-derived event ordering keys.
    pub fn value(&self) -> u64 {
        self.0
    }

    /// Rebuild a token from a generation captured by
    /// [`TimerToken::value`] (checkpoint restore).
    pub fn from_value(v: u64) -> Self {
        TimerToken(v)
    }
}

/// The per-logical-timer state: a generation counter plus an armed flag.
#[derive(Debug, Clone, Default)]
pub struct TimerSlot {
    generation: u64,
    armed: bool,
}

impl TimerSlot {
    /// A fresh, disarmed slot.
    pub fn new() -> Self {
        TimerSlot::default()
    }

    /// Arm the timer, invalidating any token from a previous arming, and
    /// return the token the caller must embed in the scheduled event.
    pub fn arm(&mut self) -> TimerToken {
        self.generation += 1;
        self.armed = true;
        TimerToken(self.generation)
    }

    /// Cancel the pending timer, if any. The already-scheduled event still
    /// pops from the queue but its token will be stale.
    pub fn cancel(&mut self) {
        self.armed = false;
    }

    /// `true` if a timer is currently pending.
    pub fn is_armed(&self) -> bool {
        self.armed
    }

    /// The live generation counter (checkpoint capture).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Rebuild a slot from captured state (checkpoint restore).
    pub fn from_parts(generation: u64, armed: bool) -> Self {
        TimerSlot { generation, armed }
    }

    /// Called when a timer event pops: returns `true` (and disarms the slot)
    /// iff the token matches the live generation. Stale tokens return
    /// `false` and leave the slot untouched.
    pub fn fire(&mut self, token: TimerToken) -> bool {
        if self.armed && token.0 == self.generation {
            self.armed = false;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fire_matches_live_token() {
        let mut slot = TimerSlot::new();
        let t = slot.arm();
        assert!(slot.is_armed());
        assert!(slot.fire(t));
        assert!(!slot.is_armed());
    }

    #[test]
    fn cancelled_token_is_stale() {
        let mut slot = TimerSlot::new();
        let t = slot.arm();
        slot.cancel();
        assert!(!slot.fire(t));
    }

    #[test]
    fn rearm_invalidates_previous_token() {
        let mut slot = TimerSlot::new();
        let t1 = slot.arm();
        let t2 = slot.arm();
        assert!(!slot.fire(t1), "old token must be stale after re-arm");
        assert!(slot.fire(t2));
    }

    #[test]
    fn fire_consumes_token() {
        let mut slot = TimerSlot::new();
        let t = slot.arm();
        assert!(slot.fire(t));
        assert!(!slot.fire(t), "a token fires at most once");
    }

    #[test]
    fn cancel_then_rearm_works() {
        let mut slot = TimerSlot::new();
        let t1 = slot.arm();
        slot.cancel();
        let t2 = slot.arm();
        assert!(!slot.fire(t1));
        assert!(slot.fire(t2));
    }
}
