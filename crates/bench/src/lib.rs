//! # pcmac-bench — figure regeneration harness
//!
//! Shared machinery for the binaries that regenerate the paper's
//! evaluation artifacts:
//!
//! | binary | regenerates |
//! |---|---|
//! | `fig8_throughput` | Figure 8: aggregate throughput vs offered load |
//! | `fig9_delay` | Figure 9: mean end-to-end delay vs offered load |
//! | `table_power_levels` | §IV power-level ↔ range table |
//! | `ablations` | design-choice sweeps (safety factor, ctrl bandwidth, capture policy, handshake arity) |
//!
//! The sweep grid is (protocol × offered load × seed); runs execute in
//! parallel and seeds are averaged. `--full` switches to the paper's
//! exact 400-second duration (the default is a faster 60 s, which already
//! shows the same curve shapes).
//!
//! The sweep itself is a thin veneer over the `pcmac-campaign` subsystem:
//! [`Sweep::to_campaign`] builds the declarative [`CampaignSpec`] the CLI
//! flags describe, and [`Sweep::run`] executes it through
//! [`pcmac_campaign::run_campaign`], so the figure binaries share the
//! expansion, validation, and per-point mean ± CI aggregation with every
//! spec-file campaign.

pub mod support;

use pcmac::{RunReport, Variant};
use pcmac_campaign::{run_campaign, AxesSpec, CampaignReport, CampaignSpec, ScenarioSpec};
use pcmac_stats::{Series, Table};

// Typed CLI flag parsing shared by every bench binary, re-exported
// from `pcmac_campaign::cli` (the crate below both binary families) so
// one implementation serves the whole workspace. The pre-redesign
// binaries funnelled all flags through one `f64` grabber
// (`grab("--seed", 1.0) as u64`), silently truncating fractional input
// and any seed above 2⁵³.
pub use pcmac_campaign::cli::{
    flag_list_or, flag_opt, flag_or, flag_value, sanitize, try_flag, try_flag_list,
};

/// Sweep parameters shared by the figure binaries.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Offered-load points (kbps). Paper: 300..=1000 step 100.
    pub loads: Vec<f64>,
    /// Simulated seconds per run. Paper: 400.
    pub secs: u64,
    /// Seeds to average over.
    pub seeds: Vec<u64>,
    /// Worker threads (0 = auto).
    pub threads: usize,
}

impl Default for Sweep {
    fn default() -> Self {
        Sweep {
            loads: (3..=10).map(|k| k as f64 * 100.0).collect(),
            secs: 60,
            seeds: vec![1],
            threads: 0,
        }
    }
}

impl Sweep {
    /// Parse the common CLI flags:
    /// `--full` (400 s), `--secs N`, `--seeds a,b,c`, `--loads x,y,z`,
    /// `--threads N`. An explicit `--secs` wins over `--full` regardless
    /// of flag order; malformed values exit with status 2 instead of
    /// silently falling back to defaults.
    pub fn from_args(args: &[String]) -> Self {
        let mut sweep = Sweep::default();
        if args.iter().any(|a| a == "--full") {
            sweep.secs = 400;
        }
        sweep.secs = flag_or(args, "--secs", sweep.secs);
        sweep.seeds = flag_list_or(args, "--seeds", sweep.seeds);
        sweep.loads = flag_list_or(args, "--loads", sweep.loads);
        sweep.threads = flag_or(args, "--threads", 0);
        sweep
    }

    /// The declarative campaign this sweep describes: the paper's base
    /// scenario swept over (offered load × all four variants) × seeds.
    pub fn to_campaign(&self) -> CampaignSpec {
        CampaignSpec {
            name: "figures".into(),
            base: ScenarioSpec::paper(),
            duration_s: Some(self.secs as f64),
            seeds: self.seeds.clone(),
            axes: Some(AxesSpec {
                loads_kbps: Some(self.loads.clone()),
                node_counts: None,
                variants: Some(Variant::ALL.to_vec()),
                power_level_sets_mw: None,
            }),
            sweep: None,
        }
    }

    /// Run the full (protocol × load × seed) grid through the campaign
    /// subsystem.
    ///
    /// Exits with a clean message (status 2) when the CLI flags describe
    /// an invalid sweep — e.g. `--secs` shorter than the flow start
    /// stagger, or non-positive `--loads` values.
    pub fn run(&self) -> SweepResult {
        let outcome = run_campaign(&self.to_campaign(), self.threads).unwrap_or_else(|e| {
            eprintln!("sweep configuration is invalid:");
            for p in &e.problems {
                eprintln!("  - {p}");
            }
            std::process::exit(2);
        });
        SweepResult {
            loads: self.loads.clone(),
            seeds: self.seeds.len(),
            campaign: outcome.report,
            reports: outcome.runs,
        }
    }
}

/// The grid of reports from a sweep.
#[derive(Debug)]
pub struct SweepResult {
    /// Load axis.
    pub loads: Vec<f64>,
    /// Number of seeds averaged.
    pub seeds: usize,
    /// Per-point aggregation (mean ± CI per metric) from the campaign
    /// runner — the `CAMPAIGN_*.json` artifact shape.
    pub campaign: CampaignReport,
    /// All raw reports (point-major: load, then protocol, then seed).
    pub reports: Vec<RunReport>,
}

impl SweepResult {
    /// Mean of `metric` for (protocol, load) across seeds.
    fn mean_metric(&self, protocol: &str, load: f64, metric: impl Fn(&RunReport) -> f64) -> f64 {
        let vals: Vec<f64> = self
            .reports
            .iter()
            .filter(|r| r.protocol == protocol && (r.offered_load_kbps - load).abs() < 1e-6)
            .map(metric)
            .collect();
        if vals.is_empty() {
            return 0.0;
        }
        vals.iter().sum::<f64>() / vals.len() as f64
    }

    /// One series per protocol for the given metric.
    pub fn series(&self, metric: impl Fn(&RunReport) -> f64 + Copy) -> Vec<Series> {
        Variant::ALL
            .iter()
            .map(|v| {
                let mut s = Series::new(v.name());
                for &load in &self.loads {
                    s.push(load, self.mean_metric(v.name(), load, metric));
                }
                s
            })
            .collect()
    }

    /// Figure 8 series: throughput (kbps) per protocol over load.
    pub fn throughput_series(&self) -> Vec<Series> {
        self.series(|r| r.throughput_kbps)
    }

    /// Figure 9 series: mean delay (ms) per protocol over load.
    pub fn delay_series(&self) -> Vec<Series> {
        self.series(|r| r.mean_delay_ms)
    }

    /// Render a family of series as an aligned table (rows = loads).
    pub fn render_table(&self, value_label: &str, series: &[Series]) -> String {
        let mut header: Vec<String> = vec![format!("load kbps ({value_label})")];
        header.extend(series.iter().map(|s| s.name.clone()));
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut table = Table::new(&header_refs);
        for (i, &load) in self.loads.iter().enumerate() {
            let mut row = vec![format!("{load:.0}")];
            for s in series {
                row.push(format!("{:.1}", s.points[i].1));
            }
            table.row(&row);
        }
        table.render()
    }

    /// Dump every report as JSON lines (provenance for EXPERIMENTS.md).
    pub fn to_json_lines(&self) -> String {
        self.reports
            .iter()
            .map(|r| serde_json::to_string(r).expect("reports serialize"))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Shared output plumbing for the figure binaries: when `flag` is
/// present on the command line, write `contents()` to the path that
/// follows it.
pub fn write_output_flag(
    args: &[String],
    flag: &str,
    what: &str,
    contents: impl FnOnce() -> String,
) {
    if let Some(path) = args
        .iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
    {
        std::fs::write(path, contents())
            .unwrap_or_else(|e| panic!("cannot write {what} to {path}: {e}"));
        eprintln!("wrote {what} to {path}");
    }
}

/// Shape checks shared by the figure binaries and the regression tests:
/// the qualitative claims of the paper that must hold for the
/// reproduction to count.
pub fn check_figure8_shape(series: &[Series]) -> Result<(), String> {
    let get = |name: &str| {
        series
            .iter()
            .find(|s| s.name == name)
            .ok_or_else(|| format!("missing series {name}"))
    };
    let pcmac = get("PCMAC")?;
    let basic = get("Basic 802.11")?;
    // At the highest (saturated) load PCMAC must beat Basic.
    let last = pcmac.points.len() - 1;
    let (load, p) = pcmac.points[last];
    let (_, b) = basic.points[last];
    if p <= b {
        return Err(format!(
            "PCMAC ({p:.1}) must exceed Basic ({b:.1}) at saturation (load {load:.0})"
        ));
    }
    // Throughput must be monotone-ish then saturate: the last point of
    // every protocol must be at least 80% of its own maximum (no
    // collapse).
    for s in series {
        let max = s.points.iter().map(|(_, y)| *y).fold(0.0, f64::max);
        let (_, lasty) = *s.points.last().unwrap();
        if lasty < 0.5 * max {
            return Err(format!("{} collapses past saturation", s.name));
        }
    }
    Ok(())
}

/// Figure 9 qualitative checks: delay grows with load for every protocol,
/// and PCMAC's saturated delay stays below Basic's.
pub fn check_figure9_shape(series: &[Series]) -> Result<(), String> {
    let get = |name: &str| {
        series
            .iter()
            .find(|s| s.name == name)
            .ok_or_else(|| format!("missing series {name}"))
    };
    let pcmac = get("PCMAC")?;
    let basic = get("Basic 802.11")?;
    let last = pcmac.points.len() - 1;
    if pcmac.points[last].1 >= basic.points[last].1 {
        return Err(format!(
            "PCMAC delay ({:.1} ms) must stay below Basic ({:.1} ms) at saturation",
            pcmac.points[last].1, basic.points[last].1
        ));
    }
    for s in series {
        let first = s.points.first().unwrap().1;
        let lasty = s.points.last().unwrap().1;
        if lasty < first {
            return Err(format!("{}: delay should grow with load", s.name));
        }
    }
    Ok(())
}
