//! Offline shim for `crossbeam`: the `channel::unbounded` MPMC channel
//! the experiment driver uses, built on `std::sync` primitives.

pub mod channel {
    //! Multi-producer multi-consumer unbounded channel.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
    }

    /// Sending half. Cloneable; the channel closes when all senders drop.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// Receiving half. Cloneable (work-stealing consumers).
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Error returned when sending into a channel with no receivers left.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// Error returned when the channel is empty and all senders dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender(shared.clone()), Receiver(shared))
    }

    impl<T> Sender<T> {
        /// Enqueue a value; never blocks.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.queue.lock().unwrap();
            st.items.push_back(value);
            drop(st);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.queue.lock().unwrap().senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.queue.lock().unwrap();
            st.senders -= 1;
            let closed = st.senders == 0;
            drop(st);
            if closed {
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or every sender has dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.queue.lock().unwrap();
            loop {
                if let Some(v) = st.items.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.0.ready.wait(st).unwrap();
            }
        }

        /// Non-blocking receive: `None` when currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.0.queue.lock().unwrap().items.pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(self.0.clone())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fan_out_consumes_everything() {
        let (tx, rx) = channel::unbounded::<usize>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut got = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let rx = rx.clone();
                let got = &got;
                s.spawn(move || {
                    while let Ok(v) = rx.recv() {
                        got.lock().unwrap().push(v);
                    }
                });
            }
        });
        let mut items = std::mem::take(got.get_mut().unwrap());
        items.sort_unstable();
        assert_eq!(items, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn recv_fails_after_close() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(tx);
        assert!(rx.recv().is_err());
    }
}
