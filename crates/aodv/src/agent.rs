//! The AODV protocol engine.
//!
//! A pure state machine, symmetric with the MAC: packets and timer fires
//! go in, [`AodvAction`]s come out. The simulation core wires the actions
//! to the MAC queue, the local traffic sink and the event queue.

use std::collections::{HashMap, VecDeque};

use pcmac_engine::{NodeId, PacketId, SimTime, TimerSlot, TimerToken};
use pcmac_net::{Packet, Payload, Rerr, Rrep, Rreq};
use pcmac_stats::StreamingQuantile;

use crate::config::AodvConfig;
use crate::table::RouteTable;

/// Why the agent discarded a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Route discovery exhausted its retries.
    NoRoute,
    /// The send buffer was full.
    BufferOverflow,
    /// The packet outlived the buffer timeout.
    BufferTimeout,
    /// The IP TTL ran out.
    TtlExpired,
}

/// Outputs of the routing agent.
#[derive(Debug, Clone)]
pub enum AodvAction {
    /// Hand a packet to the MAC toward `next_hop` ([`NodeId::BROADCAST`]
    /// for floods).
    Transmit {
        /// The packet (possibly a forwarded or generated control packet).
        packet: Packet,
        /// MAC next hop.
        next_hop: NodeId,
    },
    /// The packet reached its destination: deliver to the local agent.
    DeliverLocal {
        /// The packet.
        packet: Packet,
    },
    /// Arm the discovery timer for `dst`.
    Arm {
        /// Destination whose discovery is pending.
        dst: NodeId,
        /// Delay from now.
        delay: pcmac_engine::Duration,
        /// Liveness token.
        token: TimerToken,
    },
    /// Routing state toward `peer` changed in a way that must reset the
    /// PCMAC sent/received tables (paper §III).
    PeerReset {
        /// The affected neighbour.
        peer: NodeId,
    },
    /// A packet was discarded.
    Drop {
        /// The packet.
        packet: Packet,
        /// Why.
        reason: DropReason,
    },
}

/// Timer identities used by the agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AodvTimer {
    /// Route discovery toward the given destination timed out.
    Discovery(NodeId),
}

/// Counters for routing diagnostics.
#[derive(Debug, Clone, Copy, Default)]
pub struct AodvCounters {
    /// RREQ floods originated (including retries).
    pub rreq_originated: u64,
    /// RREQs rebroadcast for others.
    pub rreq_forwarded: u64,
    /// RREPs generated (as destination or fresh intermediate).
    pub rrep_generated: u64,
    /// RREPs forwarded along reverse paths.
    pub rrep_forwarded: u64,
    /// RERRs sent.
    pub rerr_sent: u64,
    /// Discoveries that exhausted their retries.
    pub discoveries_failed: u64,
    /// Data packets forwarded for other nodes.
    pub data_forwarded: u64,
    /// Data packets delivered locally.
    pub data_delivered: u64,
    /// Packets dropped (all reasons).
    pub drops: u64,
}

#[derive(Debug, Clone)]
struct Discovery {
    slot: TimerSlot,
    attempts: u8,
    /// When the discovery was started (latency observability).
    started: SimTime,
}

/// The per-node AODV agent.
#[derive(Debug, Clone)]
pub struct AodvAgent {
    id: NodeId,
    cfg: AodvConfig,
    table: RouteTable,
    own_seq: u32,
    next_rreq_id: u32,
    /// Duplicate-flood suppression: (origin, rreq_id) → insertion time.
    rreq_cache: HashMap<(NodeId, u32), SimTime>,
    discoveries: HashMap<NodeId, Discovery>,
    /// Packets awaiting discovery, with their buffering time.
    buffer: VecDeque<(Packet, SimTime)>,
    next_ctrl_pkt: u64,
    /// Statistics.
    pub counters: AodvCounters,
    /// Discoveries started (observability; pairs with
    /// `counters.discoveries_failed`).
    discoveries_started: u64,
    /// Seconds from discovery start to the route becoming usable —
    /// a constant-memory streaming summary (exact for the first
    /// [`pcmac_stats::quantile::EXACT_CAP`] completions).
    discovery_latency: StreamingQuantile,
}

impl AodvAgent {
    /// A fresh agent for node `id`.
    pub fn new(id: NodeId, cfg: AodvConfig) -> Self {
        AodvAgent {
            id,
            cfg,
            table: RouteTable::new(),
            own_seq: 0,
            next_rreq_id: 0,
            rreq_cache: HashMap::new(),
            discoveries: HashMap::new(),
            buffer: VecDeque::new(),
            next_ctrl_pkt: 0,
            counters: AodvCounters::default(),
            discoveries_started: 0,
            discovery_latency: StreamingQuantile::new(),
        }
    }

    /// Read access to the route table (tests, diagnostics).
    pub fn table(&self) -> &RouteTable {
        &self.table
    }

    /// Route discoveries this agent has started.
    pub fn discoveries_started(&self) -> u64 {
        self.discoveries_started
    }

    /// Completed-discovery latency population summary.
    pub fn discovery_latency(&self) -> &StreamingQuantile {
        &self.discovery_latency
    }

    /// Allocate a control-packet id: namespace 2, node, counter — unique
    /// network-wide without coordination.
    fn ctrl_packet_id(&mut self) -> PacketId {
        let c = self.next_ctrl_pkt;
        self.next_ctrl_pkt += 1;
        PacketId((2 << 56) | ((self.id.0 as u64) << 32) | c)
    }

    // ------------------------------------------------------------------
    // Local origination
    // ------------------------------------------------------------------

    /// Send a locally-generated packet toward `packet.dst`.
    pub fn send(&mut self, packet: Packet, now: SimTime, out: &mut Vec<AodvAction>) {
        debug_assert_eq!(packet.src, self.id);
        if packet.dst == self.id {
            self.counters.data_delivered += 1;
            out.push(AodvAction::DeliverLocal { packet });
            return;
        }
        if let Some(route) = self.table.lookup(packet.dst, now) {
            let next_hop = route.next_hop;
            self.table
                .refresh(packet.dst, self.cfg.active_route_timeout, now);
            self.table
                .refresh(next_hop, self.cfg.active_route_timeout, now);
            out.push(AodvAction::Transmit { packet, next_hop });
            return;
        }
        self.buffer_and_discover(packet, now, out);
    }

    fn buffer_and_discover(&mut self, packet: Packet, now: SimTime, out: &mut Vec<AodvAction>) {
        self.purge_buffer(now, out);
        if self.buffer.len() >= self.cfg.buffer_capacity {
            // Drop the oldest (ns-2 send-buffer behaviour) to make room.
            if let Some((old, _)) = self.buffer.pop_front() {
                self.counters.drops += 1;
                out.push(AodvAction::Drop {
                    packet: old,
                    reason: DropReason::BufferOverflow,
                });
            }
        }
        let dst = packet.dst;
        self.buffer.push_back((packet, now));
        if let std::collections::hash_map::Entry::Vacant(e) = self.discoveries.entry(dst) {
            e.insert(Discovery {
                slot: TimerSlot::new(),
                attempts: 0,
                started: now,
            });
            self.discoveries_started += 1;
            self.emit_rreq(dst, now, out);
        }
    }

    fn emit_rreq(&mut self, dst: NodeId, now: SimTime, out: &mut Vec<AodvAction>) {
        // RFC 3561 §6.3: increment own sequence number before a discovery.
        self.own_seq = self.own_seq.wrapping_add(1);
        self.next_rreq_id = self.next_rreq_id.wrapping_add(1);
        let rreq_id = self.next_rreq_id;
        self.rreq_cache.insert((self.id, rreq_id), now);

        let mut packet = Packet::control(
            self.ctrl_packet_id(),
            self.id,
            NodeId::BROADCAST,
            now,
            Payload::Rreq(Rreq {
                rreq_id,
                origin: self.id,
                origin_seq: self.own_seq,
                target: dst,
                target_seq: self.table.known_seq(dst),
                hop_count: 0,
            }),
        );
        packet.ttl = self.cfg.rreq_ttl;
        self.counters.rreq_originated += 1;
        out.push(AodvAction::Transmit {
            packet,
            next_hop: NodeId::BROADCAST,
        });

        let disc = self.discoveries.get_mut(&dst).expect("discovery exists");
        let token = disc.slot.arm();
        // Binary backoff across retries.
        let delay = self.cfg.rreq_wait.saturating_mul(1 << disc.attempts.min(6));
        out.push(AodvAction::Arm { dst, delay, token });
    }

    /// A discovery timer fired.
    pub fn on_discovery_timeout(
        &mut self,
        dst: NodeId,
        token: TimerToken,
        now: SimTime,
        out: &mut Vec<AodvAction>,
    ) {
        let Some(disc) = self.discoveries.get_mut(&dst) else {
            return;
        };
        if !disc.slot.fire(token) {
            return;
        }
        if self.table.lookup(dst, now).is_some() {
            // An RREP raced the timer: flush and finish.
            if let Some(disc) = self.discoveries.remove(&dst) {
                self.discovery_latency
                    .record(now.saturating_since(disc.started).as_secs_f64());
            }
            self.flush_buffer_for(dst, now, out);
            return;
        }
        disc.attempts += 1;
        if disc.attempts > self.cfg.rreq_retries {
            self.discoveries.remove(&dst);
            self.counters.discoveries_failed += 1;
            // Give up: drop everything buffered for this destination.
            let mut kept = VecDeque::new();
            while let Some((p, t0)) = self.buffer.pop_front() {
                if p.dst == dst {
                    self.counters.drops += 1;
                    out.push(AodvAction::Drop {
                        packet: p,
                        reason: DropReason::NoRoute,
                    });
                } else {
                    kept.push_back((p, t0));
                }
            }
            self.buffer = kept;
            return;
        }
        self.emit_rreq(dst, now, out);
    }

    // ------------------------------------------------------------------
    // Packet reception (from the MAC)
    // ------------------------------------------------------------------

    /// Process a packet handed up by the MAC. `from` is the previous hop.
    pub fn on_packet(
        &mut self,
        mut packet: Packet,
        from: NodeId,
        now: SimTime,
        out: &mut Vec<AodvAction>,
    ) {
        // Hearing anything from a neighbour proves a 1-hop link.
        self.refresh_neighbor(from, now);

        match packet.payload.clone() {
            Payload::Rreq(rreq) => self.handle_rreq(packet, rreq, from, now, out),
            Payload::Rrep(rrep) => self.handle_rrep(packet, rrep, from, now, out),
            Payload::Rerr(rerr) => self.handle_rerr(rerr, from, now, out),
            Payload::Data { .. } => {
                if packet.dst == self.id {
                    self.counters.data_delivered += 1;
                    // Keep the reverse path warm for replies.
                    self.table
                        .refresh(packet.src, self.cfg.active_route_timeout, now);
                    out.push(AodvAction::DeliverLocal { packet });
                    return;
                }
                // Forwarding.
                if packet.ttl <= 1 {
                    self.counters.drops += 1;
                    out.push(AodvAction::Drop {
                        packet,
                        reason: DropReason::TtlExpired,
                    });
                    return;
                }
                packet.ttl -= 1;
                if let Some(route) = self.table.lookup(packet.dst, now) {
                    let next_hop = route.next_hop;
                    self.table
                        .refresh(packet.dst, self.cfg.active_route_timeout, now);
                    self.table
                        .refresh(next_hop, self.cfg.active_route_timeout, now);
                    self.table
                        .refresh(packet.src, self.cfg.active_route_timeout, now);
                    self.counters.data_forwarded += 1;
                    out.push(AodvAction::Transmit { packet, next_hop });
                } else {
                    // Mid-path with no route: report the breakage upstream.
                    let seq = self
                        .table
                        .known_seq(packet.dst)
                        .unwrap_or(0)
                        .wrapping_add(1);
                    self.emit_rerr(vec![(packet.dst, seq)], now, out);
                    self.counters.drops += 1;
                    out.push(AodvAction::Drop {
                        packet,
                        reason: DropReason::NoRoute,
                    });
                }
            }
        }
    }

    fn refresh_neighbor(&mut self, from: NodeId, now: SimTime) {
        if from == self.id || from.is_broadcast() {
            return;
        }
        let seq = self.table.known_seq(from).unwrap_or(0);
        self.table
            .offer(from, from, 1, seq, self.cfg.active_route_timeout, now);
        self.table.refresh(from, self.cfg.active_route_timeout, now);
    }

    fn handle_rreq(
        &mut self,
        mut packet: Packet,
        rreq: Rreq,
        from: NodeId,
        now: SimTime,
        out: &mut Vec<AodvAction>,
    ) {
        // Duplicate suppression.
        self.purge_rreq_cache(now);
        if self.rreq_cache.contains_key(&(rreq.origin, rreq.rreq_id)) {
            return;
        }
        self.rreq_cache.insert((rreq.origin, rreq.rreq_id), now);
        if rreq.origin == self.id {
            return; // our own flood bounced back
        }

        // Learn/refresh the reverse route to the originator.
        self.table.offer(
            rreq.origin,
            from,
            rreq.hop_count + 1,
            rreq.origin_seq,
            self.cfg.active_route_timeout,
            now,
        );

        if rreq.target == self.id {
            // We are the destination: certify with our own sequence number
            // (raised to at least the requested one, RFC 3561 §6.6.1).
            if let Some(req_seq) = rreq.target_seq {
                if crate::seq::seq_newer(req_seq, self.own_seq) {
                    self.own_seq = req_seq;
                }
            }
            self.send_rrep(rreq.origin, self.id, self.own_seq, 0, from, now, out);
            return;
        }

        // Fresh-enough intermediate route?
        if let Some(route) = self.table.lookup(rreq.target, now) {
            let fresh_enough = match rreq.target_seq {
                Some(want) => crate::seq::seq_at_least(route.dst_seq, want),
                None => true,
            };
            if fresh_enough {
                let (seq, hops) = (route.dst_seq, route.hop_count);
                self.send_rrep(rreq.origin, rreq.target, seq, hops, from, now, out);
                return;
            }
        }

        // Rebroadcast the flood.
        if packet.ttl <= 1 {
            return;
        }
        packet.ttl -= 1;
        packet.payload = Payload::Rreq(Rreq {
            hop_count: rreq.hop_count + 1,
            ..rreq
        });
        self.counters.rreq_forwarded += 1;
        out.push(AodvAction::Transmit {
            packet,
            next_hop: NodeId::BROADCAST,
        });
    }

    #[allow(clippy::too_many_arguments)]
    fn send_rrep(
        &mut self,
        origin: NodeId,
        target: NodeId,
        target_seq: u32,
        hop_count: u8,
        toward: NodeId,
        now: SimTime,
        out: &mut Vec<AodvAction>,
    ) {
        let packet = Packet::control(
            self.ctrl_packet_id(),
            self.id,
            origin,
            now,
            Payload::Rrep(Rrep {
                origin,
                target,
                target_seq,
                hop_count,
            }),
        );
        self.counters.rrep_generated += 1;
        out.push(AodvAction::Transmit {
            packet,
            next_hop: toward,
        });
        // Paper §III: sending an RREP resets the PCMAC tables toward the
        // downstream terminal (a new session begins through it).
        out.push(AodvAction::PeerReset { peer: toward });
    }

    fn handle_rrep(
        &mut self,
        packet: Packet,
        rrep: Rrep,
        from: NodeId,
        now: SimTime,
        out: &mut Vec<AodvAction>,
    ) {
        // Learn the forward route to the target.
        self.table.offer(
            rrep.target,
            from,
            rrep.hop_count + 1,
            rrep.target_seq,
            self.cfg.active_route_timeout,
            now,
        );

        if rrep.origin == self.id {
            // Our discovery completed.
            if let Some(mut disc) = self.discoveries.remove(&rrep.target) {
                disc.slot.cancel();
                self.discovery_latency
                    .record(now.saturating_since(disc.started).as_secs_f64());
            }
            self.flush_buffer_for(rrep.target, now, out);
            return;
        }

        // Forward along the reverse path.
        if let Some(route) = self.table.lookup(rrep.origin, now) {
            let next_hop = route.next_hop;
            let mut fwd = packet;
            if fwd.ttl <= 1 {
                return;
            }
            fwd.ttl -= 1;
            fwd.payload = Payload::Rrep(Rrep {
                hop_count: rrep.hop_count + 1,
                ..rrep
            });
            self.counters.rrep_forwarded += 1;
            out.push(AodvAction::Transmit {
                packet: fwd,
                next_hop,
            });
            out.push(AodvAction::PeerReset { peer: next_hop });
        }
        // No reverse route: the RREP dies here (the originator will retry).
    }

    fn handle_rerr(&mut self, rerr: Rerr, from: NodeId, now: SimTime, out: &mut Vec<AodvAction>) {
        // Paper §III: an RERR from a peer resets the PCMAC tables for it.
        out.push(AodvAction::PeerReset { peer: from });
        let mut forward = Vec::new();
        for (dst, seq) in rerr.unreachable {
            if let Some(pair) = self.table.invalidate_from_rerr(dst, seq, from) {
                forward.push(pair);
            }
        }
        if !forward.is_empty() {
            self.emit_rerr(forward, now, out);
        }
    }

    fn emit_rerr(
        &mut self,
        unreachable: Vec<(NodeId, u32)>,
        now: SimTime,
        out: &mut Vec<AodvAction>,
    ) {
        let mut packet = Packet::control(
            self.ctrl_packet_id(),
            self.id,
            NodeId::BROADCAST,
            now,
            Payload::Rerr(Rerr { unreachable }),
        );
        packet.ttl = 1; // one-hop broadcast, receivers re-issue if needed
        self.counters.rerr_sent += 1;
        out.push(AodvAction::Transmit {
            packet,
            next_hop: NodeId::BROADCAST,
        });
    }

    // ------------------------------------------------------------------
    // Link failure (from the MAC)
    // ------------------------------------------------------------------

    /// The MAC exhausted its retries toward `next_hop` while carrying
    /// `packet`.
    pub fn on_link_failure(
        &mut self,
        packet: Packet,
        next_hop: NodeId,
        now: SimTime,
        out: &mut Vec<AodvAction>,
    ) {
        let dead = self.table.invalidate_via(next_hop);
        if !dead.is_empty() {
            self.emit_rerr(dead, now, out);
        }
        if packet.is_routing() {
            return; // control packets are not salvaged
        }
        if packet.src == self.id {
            // We originated it: try a fresh discovery.
            self.buffer_and_discover(packet, now, out);
        } else {
            self.counters.drops += 1;
            out.push(AodvAction::Drop {
                packet,
                reason: DropReason::NoRoute,
            });
        }
    }

    // ------------------------------------------------------------------
    // Buffer plumbing
    // ------------------------------------------------------------------

    fn flush_buffer_for(&mut self, dst: NodeId, now: SimTime, out: &mut Vec<AodvAction>) {
        let mut kept = VecDeque::new();
        while let Some((p, t0)) = self.buffer.pop_front() {
            if p.dst != dst {
                kept.push_back((p, t0));
                continue;
            }
            if now.saturating_since(t0) > self.cfg.buffer_timeout {
                self.counters.drops += 1;
                out.push(AodvAction::Drop {
                    packet: p,
                    reason: DropReason::BufferTimeout,
                });
                continue;
            }
            if let Some(route) = self.table.lookup(dst, now) {
                let next_hop = route.next_hop;
                out.push(AodvAction::Transmit {
                    packet: p,
                    next_hop,
                });
            } else {
                kept.push_back((p, t0));
            }
        }
        self.buffer = kept;
    }

    fn purge_buffer(&mut self, now: SimTime, out: &mut Vec<AodvAction>) {
        let timeout = self.cfg.buffer_timeout;
        let mut kept = VecDeque::new();
        while let Some((p, t0)) = self.buffer.pop_front() {
            if now.saturating_since(t0) > timeout {
                self.counters.drops += 1;
                out.push(AodvAction::Drop {
                    packet: p,
                    reason: DropReason::BufferTimeout,
                });
            } else {
                kept.push_back((p, t0));
            }
        }
        self.buffer = kept;
    }

    fn purge_rreq_cache(&mut self, now: SimTime) {
        let timeout = self.cfg.rreq_cache_timeout;
        self.rreq_cache
            .retain(|_, t0| now.saturating_since(*t0) <= timeout);
    }
}

mod snap {
    //! Checkpoint capture of the routing agent. `id`/`cfg` are rebuilt
    //! from the scenario config; everything that evolves during a run —
    //! route table, sequence counters, flood cache, pending discoveries
    //! and the send buffer — travels through [`AodvAgent::save_state`].

    use super::{AodvAgent, AodvCounters, AodvTimer, Discovery};
    use pcmac_snap::{Snap, SnapError, SnapReader, SnapWriter};

    impl Snap for AodvTimer {
        fn save(&self, w: &mut SnapWriter) {
            match self {
                AodvTimer::Discovery(dst) => {
                    w.u8(0);
                    dst.save(w);
                }
            }
        }
        fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            match r.u8()? {
                0 => Ok(AodvTimer::Discovery(Snap::load(r)?)),
                _ => Err(SnapError::Corrupt("aodv timer tag")),
            }
        }
    }

    pcmac_snap::snap_struct!(AodvCounters {
        rreq_originated,
        rreq_forwarded,
        rrep_generated,
        rrep_forwarded,
        rerr_sent,
        discoveries_failed,
        data_forwarded,
        data_delivered,
        drops,
    });

    pcmac_snap::snap_struct!(Discovery {
        slot,
        attempts,
        started,
    });

    impl AodvAgent {
        /// Serialize every mutable field (everything except `id`/`cfg`).
        pub fn save_state(&self, w: &mut SnapWriter) {
            self.table.save(w);
            self.own_seq.save(w);
            self.next_rreq_id.save(w);
            self.rreq_cache.save(w);
            self.discoveries.save(w);
            self.buffer.save(w);
            self.next_ctrl_pkt.save(w);
            self.counters.save(w);
            self.discoveries_started.save(w);
            self.discovery_latency.save(w);
        }

        /// Overwrite the mutable state of a freshly built agent with
        /// captured state. `id`/`cfg` keep their built values.
        pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
            self.table = Snap::load(r)?;
            self.own_seq = Snap::load(r)?;
            self.next_rreq_id = Snap::load(r)?;
            self.rreq_cache = Snap::load(r)?;
            self.discoveries = Snap::load(r)?;
            self.buffer = Snap::load(r)?;
            self.next_ctrl_pkt = Snap::load(r)?;
            self.counters = Snap::load(r)?;
            self.discoveries_started = Snap::load(r)?;
            self.discovery_latency = Snap::load(r)?;
            Ok(())
        }
    }
}
