//! # pcmac-campaign — scenarios as data
//!
//! The paper's results are all *parameter sweeps over scenarios*; this
//! crate makes both layers declarative:
//!
//! * [`ScenarioSpec`] — one JSON-loadable scenario: a placement from the
//!   `pcmac-mobility` generator library (uniform, density, grid, chain,
//!   ring, clustered hotspots, corridor, explicit points), optional
//!   random-waypoint mobility, a traffic block whose arrival process
//!   can be any `pcmac-traffic` source (CBR, Poisson, on/off), and
//!   optional [`ProtocolSpec`] / [`RadioSpec`] / [`AodvSpec`] overlays
//!   covering the full MAC / radio / routing parameter surface (the
//!   PCMAC safety factor, control-channel rate, handshake arity, capture
//!   policy, thresholds, AODV timers — everything defaults to the
//!   paper's values). [`ScenarioSpec::materialize`] turns it into a
//!   seeded, validated [`pcmac::ScenarioConfig`].
//! * [`CampaignSpec`] — a base spec expanded across named sweep axes
//!   ([`Axis`]): first-class load / node-count / variant / power-level
//!   axes plus generic typed patches over dotted parameter paths
//!   ([`spec::PATCH_PATHS`], e.g. `mac.pcmac.safety_factor`), times a
//!   seed list. The historical fixed grid ([`AxesSpec`]) lowers onto
//!   axes, so old spec files expand unchanged.
//! * [`run_campaign`] — expands lazily ([`CampaignSpec::grid`] +
//!   [`campaign::CampaignGrid::scenarios`] feed the parallel driver's
//!   bounded work channel directly, so huge campaigns never hold the
//!   whole expansion in memory) and collapses each grid point's seeds
//!   into mean / stddev / 95% confidence interval per metric
//!   ([`CampaignReport`], written as the machine-readable
//!   `CAMPAIGN_*.json` artifact).
//!
//! The `pcmac-campaign` binary drives all of this from the command line:
//!
//! ```text
//! pcmac-campaign run examples/paper_load_sweep.json --out CAMPAIGN.json
//! pcmac-campaign run examples/ablation_safety_factor.json
//! pcmac-campaign expand <spec.json>     # show the grid without running
//! pcmac-campaign validate <spec.json>   # actionable errors, exit code
//! pcmac-campaign scenario <spec.json>   # run a single ScenarioSpec
//! pcmac-campaign example                # print a starter campaign spec
//! pcmac-campaign dashboard . --baseline prev/ --band 20
//! ```
//!
//! Adding a new workload — or a new design ablation — is a JSON file,
//! not a Rust constructor.

pub mod aggregate;
pub mod bisect;
pub mod campaign;
pub mod cli;
pub mod dashboard;
pub mod runner;
pub mod spec;

pub use aggregate::{CampaignReport, FailureKind, MetricSummary, PointFailure, PointSummary};
pub use bisect::{bisect_configs, BisectReport, EventDivergence};
pub use campaign::{AxesSpec, Axis, CampaignGrid, CampaignPoint, CampaignSpec, GridCell, PointKey};
pub use dashboard::{MetricsArtifact, MetricsRun};
pub use runner::{run_campaign, run_campaign_with, CampaignOutcome, JobCtl, RunOptions};
pub use spec::{
    AodvSpec, ExecutionSpec, MobilitySpec, NodesSpec, PlacementSpec, ProtocolSpec, RadioSpec,
    ScenarioSpec, SpecError, TrafficPattern, TrafficSpec, PATCH_PATHS,
};
