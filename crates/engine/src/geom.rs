//! 2-D geometry for node positions and motion.
//!
//! The paper's field is a 1000 m × 1000 m plane; all distances are in
//! meters. Antenna heights enter the propagation model as scalar constants,
//! so positions stay two-dimensional.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Mul, Sub};

/// A position on the field, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// East coordinate (m).
    pub x: f64,
    /// North coordinate (m).
    pub y: f64,
}

/// A displacement or velocity (m or m/s).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vector {
    /// East component.
    pub x: f64,
    /// North component.
    pub y: f64,
}

impl Point {
    /// Construct from coordinates.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared distance (avoids the sqrt when only comparing).
    #[inline]
    pub fn distance_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Unit vector pointing from `self` toward `to`; zero vector if the
    /// points coincide.
    pub fn direction_to(self, to: Point) -> Vector {
        let d = self.distance(to);
        if d == 0.0 {
            Vector::default()
        } else {
            Vector {
                x: (to.x - self.x) / d,
                y: (to.y - self.y) / d,
            }
        }
    }

    /// Linear interpolation: `self` at `t = 0`, `to` at `t = 1`.
    pub fn lerp(self, to: Point, t: f64) -> Point {
        Point {
            x: self.x + (to.x - self.x) * t,
            y: self.y + (to.y - self.y) * t,
        }
    }
}

impl Vector {
    /// Construct from components.
    pub const fn new(x: f64, y: f64) -> Self {
        Vector { x, y }
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }
}

impl Add<Vector> for Point {
    type Output = Point;
    #[inline]
    fn add(self, v: Vector) -> Point {
        Point::new(self.x + v.x, self.y + v.y)
    }
}

impl AddAssign<Vector> for Point {
    #[inline]
    fn add_assign(&mut self, v: Vector) {
        self.x += v.x;
        self.y += v.y;
    }
}

impl Sub for Point {
    type Output = Vector;
    #[inline]
    fn sub(self, rhs: Point) -> Vector {
        Vector::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Vector {
    type Output = Vector;
    #[inline]
    fn mul(self, k: f64) -> Vector {
        Vector::new(self.x * k, self.y * k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_345() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
    }

    #[test]
    fn direction_is_unit_length() {
        let a = Point::new(1.0, 1.0);
        let b = Point::new(4.0, 5.0);
        let d = a.direction_to(b);
        assert!((d.norm() - 1.0).abs() < 1e-12);
        // and it actually points at b
        let c = a + d * 5.0;
        assert!((c.x - 4.0).abs() < 1e-12 && (c.y - 5.0).abs() < 1e-12);
    }

    #[test]
    fn direction_to_self_is_zero() {
        let a = Point::new(2.0, 2.0);
        assert_eq!(a.direction_to(a).norm(), 0.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, -10.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(5.0, -5.0));
    }

    #[test]
    fn vector_algebra() {
        let p = Point::new(1.0, 2.0);
        let q = Point::new(4.0, 6.0);
        let v = q - p;
        assert_eq!(v, Vector::new(3.0, 4.0));
        assert_eq!(p + v, q);
        assert_eq!((v * 2.0).norm(), 10.0);
    }
}
