//! Parallel experiment driver.
//!
//! A single DES run is inherently sequential, but the paper's figures are
//! sweeps: (protocol × offered load × seed) grids of independent runs.
//! This driver fans the grid out over worker threads using
//! `std::thread::scope` and a `crossbeam` work channel, collecting
//! results in submission order.
//!
//! Scenarios running under [`ExecutionMode::Sharded`] spawn their own
//! worker threads *inside* the run, so the driver meters total
//! concurrency in thread units, not scenario units: a [`ThreadBudget`]
//! sized at the driver's thread count is debited by each scenario's
//! effective shard count before it starts, keeping `scenarios × shards`
//! at the configured width instead of oversubscribing every core by the
//! shard factor.
//!
//! [`ExecutionMode::Sharded`]: crate::config::ExecutionMode

use std::sync::{Condvar, Mutex};

use crossbeam::channel;

use crate::config::ScenarioConfig;
use crate::report::RunReport;
use crate::sim::Simulator;

fn worker_count(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        threads
    }
}

/// A counting semaphore over OS-thread units. Single-threaded scenarios
/// cost one unit and never block beyond the worker pool itself; sharded
/// scenarios cost their shard count (clamped to the capacity, so one
/// huge run still executes alone rather than deadlocking).
struct ThreadBudget {
    capacity: usize,
    available: Mutex<usize>,
    freed: Condvar,
}

impl ThreadBudget {
    fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        ThreadBudget {
            capacity,
            available: Mutex::new(capacity),
            freed: Condvar::new(),
        }
    }

    /// Block until `want` units (clamped to capacity) are free, take
    /// them, and return how many were taken.
    fn acquire(&self, want: usize) -> usize {
        let want = want.clamp(1, self.capacity);
        let mut avail = self.available.lock().expect("budget lock");
        while *avail < want {
            avail = self.freed.wait(avail).expect("budget lock");
        }
        *avail -= want;
        want
    }

    fn release(&self, n: usize) {
        *self.available.lock().expect("budget lock") += n;
        self.freed.notify_all();
    }
}

/// Run every scenario, `threads`-wide, preserving input order in the
/// output. `threads == 0` means "one per available core".
pub fn run_parallel(scenarios: Vec<ScenarioConfig>, threads: usize) -> Vec<RunReport> {
    let threads = worker_count(threads).min(scenarios.len().max(1));
    run_with_workers(scenarios, threads)
}

/// [`run_parallel`] over a lazily-produced scenario stream: the producer
/// feeds a bounded work channel directly, so at most ~2× the worker
/// count of scenarios exist at any moment. This is how huge campaign
/// expansions run without materializing every `(point × seed)` config up
/// front — runs start while the expansion is still being generated.
/// `threads == 0` means "one per available core".
pub fn run_parallel_iter(
    scenarios: impl IntoIterator<Item = ScenarioConfig>,
    threads: usize,
) -> Vec<RunReport> {
    run_with_workers(scenarios, worker_count(threads))
}

fn run_with_workers(
    scenarios: impl IntoIterator<Item = ScenarioConfig>,
    threads: usize,
) -> Vec<RunReport> {
    let threads = threads.max(1);
    // Bounded: the producer (possibly a lazy expansion) blocks instead of
    // running arbitrarily far ahead of the workers.
    let (tx, rx) = channel::bounded::<(usize, ScenarioConfig)>(2 * threads);
    let (result_tx, result_rx) = channel::unbounded::<(usize, RunReport)>();
    // Sharded scenarios spawn `shards` threads internally; debiting that
    // cost here keeps total concurrency at `threads` OS threads.
    let budget = ThreadBudget::new(threads);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let rx = rx.clone();
            let result_tx = result_tx.clone();
            let budget = &budget;
            scope.spawn(move || {
                while let Ok((idx, cfg)) = rx.recv() {
                    let taken = budget.acquire(cfg.shards());
                    let report = Simulator::new(cfg).run();
                    budget.release(taken);
                    let _ = result_tx.send((idx, report));
                }
            });
        }
        drop(result_tx);
        drop(rx);

        for item in scenarios.into_iter().enumerate() {
            tx.send(item).expect("workers outlive the producer");
        }
        drop(tx);

        let mut out: Vec<(usize, RunReport)> = Vec::new();
        while let Ok(pair) = result_rx.recv() {
            out.push(pair);
        }
        out.sort_unstable_by_key(|&(idx, _)| idx);
        out.into_iter().map(|(_, report)| report).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Variant;
    use pcmac_engine::Duration;

    #[test]
    fn parallel_matches_sequential() {
        let mk = |seed| {
            ScenarioConfig::two_nodes(Variant::Basic, 100.0, 80_000.0, seed)
                .with_duration(Duration::from_secs(2))
        };
        let seq: Vec<_> = (0..4).map(|s| Simulator::new(mk(s)).run()).collect();
        let par = run_parallel((0..4).map(mk).collect(), 4);
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.seed, b.seed, "order preserved");
            assert_eq!(a.delivered_packets, b.delivered_packets, "determinism");
            assert_eq!(a.mac.rts_sent, b.mac.rts_sent);
        }
    }

    #[test]
    fn lazy_iterator_matches_eager_vec() {
        let mk = |seed| {
            ScenarioConfig::two_nodes(Variant::Basic, 100.0, 80_000.0, seed)
                .with_duration(Duration::from_secs(2))
        };
        let eager = run_parallel((0..4).map(mk).collect(), 2);
        // The iterator path generates each config on demand.
        let lazy = run_parallel_iter((0..4).map(mk), 2);
        assert_eq!(eager.len(), lazy.len());
        for (a, b) in eager.iter().zip(&lazy) {
            assert_eq!(a.seed, b.seed, "order preserved");
            assert_eq!(a.delivered_packets, b.delivered_packets);
            assert_eq!(a.events, b.events);
        }
    }

    #[test]
    fn budget_clamps_and_blocks_in_thread_units() {
        let b = ThreadBudget::new(4);
        // A run wider than the budget is clamped, not deadlocked.
        assert_eq!(b.acquire(16), 4);
        b.release(4);
        assert_eq!(b.acquire(3), 3);
        assert_eq!(b.acquire(1), 1);
        // Budget exhausted: another acquire must block until release.
        let blocked = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|scope| {
            let flag = std::sync::Arc::clone(&blocked);
            let b = &b;
            scope.spawn(move || {
                let got = b.acquire(2);
                flag.store(true, std::sync::atomic::Ordering::SeqCst);
                b.release(got);
            });
            std::thread::sleep(std::time::Duration::from_millis(30));
            assert!(
                !blocked.load(std::sync::atomic::Ordering::SeqCst),
                "acquire(2) must block while only 0 units are free"
            );
            b.release(3);
            b.release(1);
        });
        assert!(blocked.load(std::sync::atomic::Ordering::SeqCst));
    }

    #[test]
    fn sharded_scenarios_run_through_the_driver() {
        use crate::config::ExecutionMode;
        let mk = |seed, sharded: bool| {
            let mut cfg = ScenarioConfig::two_nodes(Variant::Basic, 100.0, 80_000.0, seed)
                .with_duration(Duration::from_secs(1));
            cfg.delay_floor_us = Some(10.0);
            cfg.execution = sharded.then_some(ExecutionMode::Sharded { shards: 2 });
            cfg
        };
        // 2 workers × up to 2 shards each, metered by the budget; the
        // sharded runs must match their single-threaded twins exactly.
        let single = run_parallel((0..3).map(|s| mk(s, false)).collect(), 2);
        let sharded = run_parallel_iter((0..3).map(|s| mk(s, true)), 2);
        for (a, b) in single.iter().zip(&sharded) {
            assert_eq!(a.seed, b.seed, "order preserved");
            assert_eq!(a.events, b.events);
            assert_eq!(a.delivered_packets, b.delivered_packets);
        }
    }

    #[test]
    fn zero_threads_means_auto() {
        let cfgs = vec![
            ScenarioConfig::two_nodes(Variant::Basic, 100.0, 50_000.0, 1)
                .with_duration(Duration::from_secs(1)),
        ];
        let out = run_parallel(cfgs, 0);
        assert_eq!(out.len(), 1);
    }
}
