//! MAC frame model.
//!
//! [`Frame`] is what actually flies on the data channel: RTS, CTS, DATA or
//! ACK, with the transmitter/receiver MAC addresses, the NAV duration field
//! and — following the paper — the transmit power level in the header (all
//! power-control variants stamp it so receivers can infer the propagation
//! gain). [`CtrlFrame`] is PCMAC's short broadcast on the separate power
//! control channel.

use pcmac_engine::{Duration, Milliwatts, NodeId, SessionId};
use pcmac_net::Packet;

/// RTS frame size (bytes, including FCS).
pub const RTS_BYTES: u32 = 20;
/// CTS frame size (bytes, including FCS).
pub const CTS_BYTES: u32 = 14;
/// ACK frame size (bytes, including FCS).
pub const ACK_BYTES: u32 = 14;
/// MAC header + FCS overhead on a data frame (bytes).
pub const DATA_HEADER_BYTES: u32 = 28;

/// PCMAC power-control packet: 16-bit preamble + 8-bit node id + 16-bit
/// noise tolerance + 8-bit FEC = 48 bits (paper Fig. 7).
pub const CTRL_FRAME_BITS: u64 = 48;

/// Frame type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// Request to send.
    Rts,
    /// Clear to send.
    Cts,
    /// Data (unicast with handshake, or broadcast without).
    Data,
    /// Acknowledgment.
    Ack,
}

/// Type-specific frame contents.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameBody {
    /// RTS. Under PCMAC it advertises the noise level currently observed
    /// at the sender so the responder can size its CTS power (paper §III
    /// step 2).
    Rts {
        /// Noise observed at the RTS sender (`None` outside PCMAC).
        sender_noise: Option<Milliwatts>,
    },
    /// CTS. Under PCMAC it carries the power the responder wants the DATA
    /// sent at, plus the implicit-acknowledgment echo of the last data
    /// packet received from the requester (paper §III steps 3–4).
    Cts {
        /// Required DATA transmit power (`None` outside PCMAC).
        required_data_power: Option<Milliwatts>,
        /// (session, sequence) of the last DATA received from the
        /// requester; `None` when the table has no entry.
        last_received: Option<(SessionId, u32)>,
    },
    /// A data frame wrapping a network packet.
    Data {
        /// The network packet.
        packet: Packet,
        /// MAC-level sequence number within the session.
        seq: u32,
        /// Session (src, dst MAC pair) the sequence number belongs to.
        session: SessionId,
        /// `false` for PCMAC data frames (three-way handshake, no ACK).
        needs_ack: bool,
    },
    /// An ACK.
    Ack,
}

/// A frame on the data channel.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Frame type (redundant with `body`, kept for cheap dispatch).
    pub kind: FrameKind,
    /// Transmitter MAC address.
    pub tx: NodeId,
    /// Receiver MAC address ([`NodeId::BROADCAST`] for broadcasts).
    pub rx: NodeId,
    /// NAV duration: how long the medium stays reserved *after* this frame
    /// ends.
    pub duration: Duration,
    /// Power this frame was transmitted at (in the header per the paper,
    /// so receivers can estimate the propagation gain).
    pub tx_power: Milliwatts,
    /// Type-specific contents.
    pub body: FrameBody,
}

impl Frame {
    /// On-air size in bytes.
    pub fn size_bytes(&self) -> u32 {
        match &self.body {
            FrameBody::Rts { .. } => RTS_BYTES,
            FrameBody::Cts { .. } => CTS_BYTES,
            FrameBody::Data { packet, .. } => DATA_HEADER_BYTES + packet.size_bytes(),
            FrameBody::Ack => ACK_BYTES,
        }
    }

    /// `true` if this frame is addressed to `node` (including broadcast).
    #[inline]
    pub fn is_for(&self, node: NodeId) -> bool {
        self.rx == node || self.rx.is_broadcast()
    }

    /// `true` for broadcast frames.
    #[inline]
    pub fn is_broadcast(&self) -> bool {
        self.rx.is_broadcast()
    }
}

/// PCMAC's power-control channel broadcast: "I am receiving; I can endure
/// this much extra noise for this much longer."
#[derive(Debug, Clone, PartialEq)]
pub struct CtrlFrame {
    /// The receiving node advertising its tolerance.
    pub receiver: NodeId,
    /// Extra noise (linear power) the reception can endure at the
    /// receiver: `S_r / η_cp − N_r`.
    pub noise_tolerance: Milliwatts,
    /// Time left in the protected reception. Physically derivable from the
    /// fixed data packet length (paper assumption 4); carried explicitly
    /// for simulation convenience.
    pub remaining: Duration,
    /// Power this control frame was transmitted at (always the maximum
    /// level) so hearers can compute the gain toward the receiver.
    pub tx_power: Milliwatts,
}

impl CtrlFrame {
    /// Airtime of the 48-bit control packet on a channel of `rate_bps`
    /// (96 µs at the paper's 500 kbps).
    pub fn airtime(rate_bps: u64) -> Duration {
        Duration::from_nanos(CTRL_FRAME_BITS * 1_000_000_000 / rate_bps)
    }
}

mod snap {
    //! Checkpoint encoding of frames. Frames appear mid-air (inside radio
    //! locks and pending arrivals) and as queued SIFS responses, so a cut
    //! can land while any frame kind is in flight.

    use super::{CtrlFrame, Frame, FrameBody, FrameKind};
    use pcmac_snap::{Snap, SnapError, SnapReader, SnapWriter};

    impl Snap for FrameKind {
        fn save(&self, w: &mut SnapWriter) {
            w.u8(match self {
                FrameKind::Rts => 0,
                FrameKind::Cts => 1,
                FrameKind::Data => 2,
                FrameKind::Ack => 3,
            });
        }
        fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            match r.u8()? {
                0 => Ok(FrameKind::Rts),
                1 => Ok(FrameKind::Cts),
                2 => Ok(FrameKind::Data),
                3 => Ok(FrameKind::Ack),
                _ => Err(SnapError::Corrupt("frame kind tag")),
            }
        }
    }

    impl Snap for FrameBody {
        fn save(&self, w: &mut SnapWriter) {
            match self {
                FrameBody::Rts { sender_noise } => {
                    w.u8(0);
                    sender_noise.save(w);
                }
                FrameBody::Cts {
                    required_data_power,
                    last_received,
                } => {
                    w.u8(1);
                    required_data_power.save(w);
                    last_received.save(w);
                }
                FrameBody::Data {
                    packet,
                    seq,
                    session,
                    needs_ack,
                } => {
                    w.u8(2);
                    packet.save(w);
                    seq.save(w);
                    session.save(w);
                    needs_ack.save(w);
                }
                FrameBody::Ack => w.u8(3),
            }
        }
        fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            match r.u8()? {
                0 => Ok(FrameBody::Rts {
                    sender_noise: Snap::load(r)?,
                }),
                1 => Ok(FrameBody::Cts {
                    required_data_power: Snap::load(r)?,
                    last_received: Snap::load(r)?,
                }),
                2 => Ok(FrameBody::Data {
                    packet: Snap::load(r)?,
                    seq: Snap::load(r)?,
                    session: Snap::load(r)?,
                    needs_ack: Snap::load(r)?,
                }),
                3 => Ok(FrameBody::Ack),
                _ => Err(SnapError::Corrupt("frame body tag")),
            }
        }
    }

    pcmac_snap::snap_struct!(Frame {
        kind,
        tx,
        rx,
        duration,
        tx_power,
        body,
    });

    pcmac_snap::snap_struct!(CtrlFrame {
        receiver,
        noise_tolerance,
        remaining,
        tx_power,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmac_engine::{FlowId, PacketId, SimTime};

    fn data_frame(bytes: u32, rx: NodeId) -> Frame {
        Frame {
            kind: FrameKind::Data,
            tx: NodeId(1),
            rx,
            duration: Duration::ZERO,
            tx_power: Milliwatts(281.83815),
            body: FrameBody::Data {
                packet: Packet::data(
                    PacketId(1),
                    FlowId(0),
                    NodeId(1),
                    NodeId(2),
                    bytes,
                    SimTime::ZERO,
                ),
                seq: 0,
                session: SessionId::for_pair(NodeId(1), NodeId(2)),
                needs_ack: true,
            },
        }
    }

    #[test]
    fn frame_sizes() {
        let rts = Frame {
            kind: FrameKind::Rts,
            tx: NodeId(1),
            rx: NodeId(2),
            duration: Duration::ZERO,
            tx_power: Milliwatts(1.0),
            body: FrameBody::Rts { sender_noise: None },
        };
        assert_eq!(rts.size_bytes(), 20);
        // paper's 512 B payload → 568 B on-air data frame
        assert_eq!(data_frame(512, NodeId(2)).size_bytes(), 568);
    }

    #[test]
    fn addressing() {
        let f = data_frame(10, NodeId(2));
        assert!(f.is_for(NodeId(2)));
        assert!(!f.is_for(NodeId(3)));
        assert!(!f.is_broadcast());
        let b = data_frame(10, NodeId::BROADCAST);
        assert!(b.is_for(NodeId(3)));
        assert!(b.is_broadcast());
    }

    #[test]
    fn ctrl_frame_airtime_at_paper_rate() {
        // 48 bits at 500 kbps = 96 µs.
        assert_eq!(CtrlFrame::airtime(500_000), Duration::from_micros(96));
    }
}
