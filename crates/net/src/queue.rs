//! The interface queue between routing and the MAC.
//!
//! Reproduces ns-2's CMU `PriQueue`: a 50-packet DropTail FIFO in which
//! routing-protocol packets jump to the head (route maintenance must not
//! starve behind a full data backlog, or discoveries time out and the
//! network collapses at exactly the loads the paper studies).

use std::collections::VecDeque;

use pcmac_engine::NodeId;

use crate::packet::Packet;

/// A packet waiting for the MAC, already resolved to a next hop.
#[derive(Debug, Clone, PartialEq)]
pub struct QueuedPacket {
    /// The packet.
    pub packet: Packet,
    /// MAC-level next hop ([`NodeId::BROADCAST`] for flooded frames).
    pub next_hop: NodeId,
}

/// Fixed-capacity DropTail queue with a priority lane for routing packets.
#[derive(Debug, Clone)]
pub struct DropTailQueue {
    items: VecDeque<QueuedPacket>,
    capacity: usize,
    dropped: u64,
    enqueued: u64,
}

impl DropTailQueue {
    /// ns-2's default interface queue length.
    pub const DEFAULT_CAPACITY: usize = 50;

    /// A queue holding at most `capacity` packets.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        DropTailQueue {
            items: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
            enqueued: 0,
        }
    }

    /// Enqueue, honouring the routing-priority lane. Returns the dropped
    /// packet if the queue was full (the caller records the loss).
    pub fn push(&mut self, qp: QueuedPacket) -> Option<QueuedPacket> {
        if self.items.len() >= self.capacity {
            // DropTail: for priority packets evict the newest data packet
            // instead, so control traffic still gets through.
            if qp.packet.is_routing() {
                if let Some(victim_idx) = self.items.iter().rposition(|q| !q.packet.is_routing()) {
                    let victim = self.items.remove(victim_idx).expect("index in range");
                    self.items.push_front(qp);
                    self.enqueued += 1;
                    self.dropped += 1;
                    return Some(victim);
                }
            }
            self.dropped += 1;
            return Some(qp);
        }
        if qp.packet.is_routing() {
            self.items.push_front(qp);
        } else {
            self.items.push_back(qp);
        }
        self.enqueued += 1;
        None
    }

    /// Take the next packet for the MAC.
    pub fn pop(&mut self) -> Option<QueuedPacket> {
        self.items.pop_front()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Packets rejected or evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Packets accepted so far.
    pub fn enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Remove all queued packets destined (next hop) for `hop`, returning
    /// them; used when routing learns a link broke, so stale traffic can be
    /// re-routed or reported instead of burning airtime on a dead link.
    pub fn drain_next_hop(&mut self, hop: NodeId) -> Vec<QueuedPacket> {
        let mut out = Vec::new();
        self.items.retain_mut(|qp| {
            if qp.next_hop == hop {
                out.push(qp.clone());
                false
            } else {
                true
            }
        });
        out
    }
}

mod snap {
    use super::{DropTailQueue, QueuedPacket};

    pcmac_snap::snap_struct!(QueuedPacket { packet, next_hop });

    pcmac_snap::snap_struct!(DropTailQueue {
        items,
        capacity,
        dropped,
        enqueued,
    });
}

impl Default for DropTailQueue {
    fn default() -> Self {
        DropTailQueue::new(Self::DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Payload, Rreq};
    use pcmac_engine::{FlowId, PacketId, SimTime};

    fn data(n: u64) -> QueuedPacket {
        QueuedPacket {
            packet: Packet::data(
                PacketId(n),
                FlowId(0),
                NodeId(1),
                NodeId(2),
                512,
                SimTime::ZERO,
            ),
            next_hop: NodeId(2),
        }
    }

    fn rreq(n: u64) -> QueuedPacket {
        QueuedPacket {
            packet: Packet::control(
                PacketId(n),
                NodeId(1),
                NodeId::BROADCAST,
                SimTime::ZERO,
                Payload::Rreq(Rreq {
                    rreq_id: n as u32,
                    origin: NodeId(1),
                    origin_seq: 0,
                    target: NodeId(5),
                    target_seq: None,
                    hop_count: 0,
                }),
            ),
            next_hop: NodeId::BROADCAST,
        }
    }

    #[test]
    fn fifo_for_data() {
        let mut q = DropTailQueue::new(10);
        q.push(data(1));
        q.push(data(2));
        q.push(data(3));
        assert_eq!(q.pop().unwrap().packet.id, PacketId(1));
        assert_eq!(q.pop().unwrap().packet.id, PacketId(2));
        assert_eq!(q.pop().unwrap().packet.id, PacketId(3));
        assert!(q.pop().is_none());
    }

    #[test]
    fn routing_jumps_the_line() {
        let mut q = DropTailQueue::new(10);
        q.push(data(1));
        q.push(data(2));
        q.push(rreq(3));
        assert_eq!(q.pop().unwrap().packet.id, PacketId(3));
        assert_eq!(q.pop().unwrap().packet.id, PacketId(1));
    }

    #[test]
    fn droptail_rejects_when_full() {
        let mut q = DropTailQueue::new(2);
        assert!(q.push(data(1)).is_none());
        assert!(q.push(data(2)).is_none());
        let rejected = q.push(data(3)).expect("queue full");
        assert_eq!(rejected.packet.id, PacketId(3));
        assert_eq!(q.dropped(), 1);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn full_queue_evicts_data_for_routing() {
        let mut q = DropTailQueue::new(2);
        q.push(data(1));
        q.push(data(2));
        let victim = q.push(rreq(3)).expect("a data packet is evicted");
        assert_eq!(victim.packet.id, PacketId(2), "newest data evicted");
        assert_eq!(q.pop().unwrap().packet.id, PacketId(3));
        assert_eq!(q.pop().unwrap().packet.id, PacketId(1));
    }

    #[test]
    fn full_queue_of_routing_rejects_more_routing() {
        let mut q = DropTailQueue::new(2);
        q.push(rreq(1));
        q.push(rreq(2));
        let rejected = q.push(rreq(3)).expect("nothing to evict");
        assert_eq!(rejected.packet.id, PacketId(3));
    }

    #[test]
    fn drain_next_hop_filters() {
        let mut q = DropTailQueue::new(10);
        q.push(data(1));
        q.push(QueuedPacket {
            next_hop: NodeId(7),
            ..data(2)
        });
        q.push(data(3));
        let drained = q.drain_next_hop(NodeId(7));
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].packet.id, PacketId(2));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn counters_track_activity() {
        let mut q = DropTailQueue::new(1);
        q.push(data(1));
        q.push(data(2));
        assert_eq!(q.enqueued(), 1);
        assert_eq!(q.dropped(), 1);
    }
}
