//! Extension experiments beyond the paper's evaluation.
//!
//! Three sweeps probing where PCMAC's advantage comes from and where it
//! breaks:
//!
//! 1. **Node density** — the introduction motivates power control with
//!    Gupta–Kumar capacity limits ("capacity of wireless network is
//!    limited by the population density"); this sweep varies the node
//!    count at fixed field size and load.
//! 2. **Mobility speed** — the paper evaluates only "relatively low
//!    mobility" (3 m/s); this sweep raises it until route churn dominates.
//! 3. **Channel reciprocity** — PCMAC's assumption 2 (`G_sd = G_ds`) under
//!    symmetric vs asymmetric log-normal shadowing: asymmetric shadowing
//!    makes PCMAC's gain estimates (and tolerance checks) systematically
//!    wrong, measuring the protocol's sensitivity to its own assumption.
//!
//! ```text
//! cargo run -p pcmac-bench --release --bin extensions [-- --secs N] [--load L] [--seed S]
//! ```

use pcmac::{run_parallel, ScenarioConfig, ShadowingConfig, Variant};
use pcmac_bench::flag_or;
use pcmac_engine::Duration;
use pcmac_stats::Table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let secs: u64 = flag_or(&args, "--secs", 60);
    let load: f64 = flag_or(&args, "--load", 600.0);
    let seed: u64 = flag_or(&args, "--seed", 1);

    // ------------------------------------------------------------------
    println!("== Extension 1: node density (field fixed at 1000 m², load {load:.0} kbps) ==\n");
    let counts = [25usize, 50, 75, 100];
    let mut scenarios = Vec::new();
    for &n in &counts {
        for v in [Variant::Basic, Variant::Pcmac] {
            let mut c = ScenarioConfig::paper_with(v, load, seed, n, 3.0)
                .with_duration(Duration::from_secs(secs));
            c.name = format!("density-{n}-{}", v.name());
            scenarios.push(c);
        }
    }
    let reports = run_parallel(scenarios, 0);
    let mut t = Table::new(&[
        "nodes",
        "protocol",
        "thpt kbps",
        "delay ms",
        "pdr %",
        "rxErr",
    ]);
    for (i, r) in reports.iter().enumerate() {
        t.row(&[
            format!("{}", counts[i / 2]),
            r.protocol.clone(),
            format!("{:.1}", r.throughput_kbps),
            format!("{:.1}", r.mean_delay_ms),
            format!("{:.1}", r.pdr() * 100.0),
            format!("{}", r.mac.rx_errors),
        ]);
    }
    println!("{}", t.render());

    // ------------------------------------------------------------------
    println!("== Extension 2: mobility speed (paper: 3 m/s) ==\n");
    let speeds = [0.0f64, 3.0, 10.0, 20.0];
    let mut scenarios = Vec::new();
    for &sp in &speeds {
        for v in [Variant::Basic, Variant::Pcmac] {
            // speed 0 → static uniform placement via a tiny epsilon speed
            // (waypoint model requires motion; 0.01 m/s is negligible).
            let speed = if sp == 0.0 { 0.01 } else { sp };
            let mut c = ScenarioConfig::paper_with(v, load, seed, 50, speed)
                .with_duration(Duration::from_secs(secs));
            c.name = format!("speed-{sp}-{}", v.name());
            scenarios.push(c);
        }
    }
    let reports = run_parallel(scenarios, 0);
    let mut t = Table::new(&[
        "m/s",
        "protocol",
        "thpt kbps",
        "delay ms",
        "pdr %",
        "rerr",
        "rreq",
    ]);
    for (i, r) in reports.iter().enumerate() {
        t.row(&[
            format!("{}", speeds[i / 2]),
            r.protocol.clone(),
            format!("{:.1}", r.throughput_kbps),
            format!("{:.1}", r.mean_delay_ms),
            format!("{:.1}", r.pdr() * 100.0),
            format!("{}", r.routing.rerr_sent),
            format!("{}", r.routing.rreq_originated + r.routing.rreq_forwarded),
        ]);
    }
    println!("{}", t.render());

    // ------------------------------------------------------------------
    println!("== Extension 3: channel reciprocity (PCMAC assumption 2) ==\n");
    let cases: [(&str, Option<ShadowingConfig>); 5] = [
        ("no shadowing", None),
        (
            "sym σ=4 dB",
            Some(ShadowingConfig {
                sigma_db: 4.0,
                symmetric: true,
            }),
        ),
        (
            "asym σ=4 dB",
            Some(ShadowingConfig {
                sigma_db: 4.0,
                symmetric: false,
            }),
        ),
        (
            "sym σ=8 dB",
            Some(ShadowingConfig {
                sigma_db: 8.0,
                symmetric: true,
            }),
        ),
        (
            "asym σ=8 dB",
            Some(ShadowingConfig {
                sigma_db: 8.0,
                symmetric: false,
            }),
        ),
    ];
    let mut scenarios = Vec::new();
    for (label, sh) in &cases {
        for v in [Variant::Basic, Variant::Pcmac] {
            let mut c =
                ScenarioConfig::paper(v, load, seed).with_duration(Duration::from_secs(secs));
            c.name = format!("{label}-{}", v.name());
            c.shadowing = *sh;
            scenarios.push(c);
        }
    }
    let reports = run_parallel(scenarios, 0);
    let mut t = Table::new(&[
        "channel",
        "protocol",
        "thpt kbps",
        "pdr %",
        "ctsT/O",
        "PCMAC vs Basic",
    ]);
    for (i, pair) in reports.chunks(2).enumerate() {
        let (basic, pcmac) = (&pair[0], &pair[1]);
        let rel = (pcmac.throughput_kbps / basic.throughput_kbps - 1.0) * 100.0;
        for r in pair {
            t.row(&[
                cases[i].0.to_string(),
                r.protocol.clone(),
                format!("{:.1}", r.throughput_kbps),
                format!("{:.1}", r.pdr() * 100.0),
                format!("{}", r.mac.cts_timeouts),
                if r.protocol == "PCMAC" {
                    format!("{rel:+.1}%")
                } else {
                    String::new()
                },
            ]);
        }
    }
    println!("{}", t.render());
    println!(
        "Asymmetric shadowing violates the reciprocity PCMAC's gain estimates rely on;\n\
         the PCMAC-vs-Basic margin under 'asym' rows quantifies that sensitivity."
    );
}
