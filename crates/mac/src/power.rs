//! Transmit power selection.
//!
//! [`PowerHistory`] is the paper's per-neighbour table of needed power
//! levels: every decoded frame carries its transmit power in the header,
//! so the hearer computes the propagation gain `g = S / P_tx` and from it
//! the minimum power that would still decode at this distance,
//! `P_need = rx_thresh / g`, quantised up to the next discrete class.
//! Entries expire after 3 s; unknown neighbours get the maximum ("normal")
//! power.
//!
//! [`PowerPolicy`] maps the four protocols of the evaluation to per-frame
//! power choices (paper §IV): which frames ride at the needed level and
//! which stay at maximum.

use std::collections::HashMap;

use pcmac_engine::{Duration, Milliwatts, NodeId, SimTime};
use pcmac_phy::PowerLevels;

/// Which frames use the learned "needed" power level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerPolicy {
    /// Basic 802.11: every frame at maximum power.
    AllMax,
    /// Scheme 1: RTS/CTS at maximum, DATA/ACK at needed power.
    RtsCtsMax,
    /// Scheme 2 and PCMAC: every unicast frame at needed power.
    AllNeeded,
}

impl PowerPolicy {
    /// Power for an RTS toward `needed`-power neighbour.
    pub fn rts_power(self, needed: Milliwatts, max: Milliwatts) -> Milliwatts {
        match self {
            PowerPolicy::AllMax | PowerPolicy::RtsCtsMax => max,
            PowerPolicy::AllNeeded => needed,
        }
    }

    /// Power for a CTS reply.
    pub fn cts_power(self, needed: Milliwatts, max: Milliwatts) -> Milliwatts {
        match self {
            PowerPolicy::AllMax | PowerPolicy::RtsCtsMax => max,
            PowerPolicy::AllNeeded => needed,
        }
    }

    /// Power for a unicast DATA frame.
    pub fn data_power(self, needed: Milliwatts, max: Milliwatts) -> Milliwatts {
        match self {
            PowerPolicy::AllMax => max,
            PowerPolicy::RtsCtsMax | PowerPolicy::AllNeeded => needed,
        }
    }

    /// Power for an ACK.
    pub fn ack_power(self, needed: Milliwatts, max: Milliwatts) -> Milliwatts {
        match self {
            PowerPolicy::AllMax => max,
            PowerPolicy::RtsCtsMax | PowerPolicy::AllNeeded => needed,
        }
    }
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct HistoryEntry {
    level: Milliwatts,
    updated_at: SimTime,
}

/// The per-neighbour needed-power table (paper §III: "each mobile terminal
/// also keeps a power history table, recording the needed power level to
/// reach every other terminal", 3 s expiry).
#[derive(Debug, Clone)]
pub struct PowerHistory {
    entries: HashMap<NodeId, HistoryEntry>,
    expiry: Duration,
    levels: PowerLevels,
    /// Decode threshold the needed power must clear.
    rx_thresh: Milliwatts,
    /// Multiplicative headroom on the decode threshold (1.0 = none; the
    /// discrete quantisation already adds margin).
    margin: f64,
}

impl PowerHistory {
    /// The paper's configuration: 3-second expiry over the ten classes.
    pub fn new(levels: PowerLevels, rx_thresh: Milliwatts) -> Self {
        PowerHistory {
            entries: HashMap::new(),
            expiry: Duration::from_secs(3),
            levels,
            rx_thresh,
            margin: 1.0,
        }
    }

    /// Override the expiry (ablations).
    pub fn with_expiry(mut self, expiry: Duration) -> Self {
        self.expiry = expiry;
        self
    }

    /// Override the threshold margin (ablations).
    pub fn with_margin(mut self, margin: f64) -> Self {
        assert!(margin >= 1.0);
        self.margin = margin;
        self
    }

    /// The level set in use.
    pub fn levels(&self) -> &PowerLevels {
        &self.levels
    }

    /// Learn from a decoded frame: `heard_at` is the measured receive
    /// power, `sent_at` the transmit power from the frame header.
    pub fn observe(
        &mut self,
        from: NodeId,
        heard_at: Milliwatts,
        sent_at: Milliwatts,
        now: SimTime,
    ) {
        if heard_at.value() <= 0.0 || sent_at.value() <= 0.0 {
            return;
        }
        let gain = heard_at.value() / sent_at.value();
        let needed = Milliwatts(self.rx_thresh.value() * self.margin / gain);
        let level = self.levels.quantize_up_or_max(needed);
        self.entries.insert(
            from,
            HistoryEntry {
                level,
                updated_at: now,
            },
        );
    }

    /// The power to use toward `to`: the learned level if fresh, otherwise
    /// the maximum ("if A has no power level record as to B, A uses the
    /// normal power level").
    pub fn level_for(&self, to: NodeId, now: SimTime) -> Milliwatts {
        match self.entries.get(&to) {
            Some(e) if now.saturating_since(e.updated_at) < self.expiry => e.level,
            _ => self.levels.max(),
        }
    }

    /// `true` if a fresh entry exists for `to`.
    pub fn knows(&self, to: NodeId, now: SimTime) -> bool {
        matches!(self.entries.get(&to),
                 Some(e) if now.saturating_since(e.updated_at) < self.expiry)
    }

    /// Record that `level` was explicitly tried toward `to` (the paper's
    /// step-up on CTS timeout): keeps the table consistent with what the
    /// retry ladder actually used.
    pub fn record_level(&mut self, to: NodeId, level: Milliwatts, now: SimTime) {
        self.entries.insert(
            to,
            HistoryEntry {
                level,
                updated_at: now,
            },
        );
    }

    /// Drop expired entries (paper: "if the record has not been updated
    /// within the expiration time, it is deleted"). Called opportunistically.
    pub fn purge(&mut self, now: SimTime) {
        let expiry = self.expiry;
        self.entries
            .retain(|_, e| now.saturating_since(e.updated_at) < expiry);
    }
}

mod snap {
    use super::{HistoryEntry, PowerHistory};

    pcmac_snap::snap_struct!(HistoryEntry { level, updated_at });

    pcmac_snap::snap_struct!(PowerHistory {
        entries,
        expiry,
        levels,
        rx_thresh,
        margin,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> PowerHistory {
        PowerHistory::new(PowerLevels::paper_defaults(), Milliwatts(3.652e-7))
    }

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + Duration::from_secs(s)
    }

    #[test]
    fn unknown_neighbour_gets_max() {
        let h = table();
        assert_eq!(h.level_for(NodeId(9), t(0)), h.levels().max());
        assert!(!h.knows(NodeId(9), t(0)));
    }

    #[test]
    fn observe_learns_quantized_needed_power() {
        let mut h = table();
        // Heard a max-power frame at gain 1e-8: P_rx = 281.83815e-8 mW.
        let p_max = h.levels().max();
        h.observe(NodeId(2), p_max * 1e-8, p_max, t(0));
        // needed = 3.652e-7 / 1e-8 = 36.52 mW → class 36.6 mW.
        assert_eq!(h.level_for(NodeId(2), t(0)), Milliwatts(36.6));
    }

    #[test]
    fn close_neighbour_needs_minimum_class() {
        let mut h = table();
        let p_max = h.levels().max();
        // gain 1e-3: needed = 3.652e-4 mW → class 1 mW.
        h.observe(NodeId(2), p_max * 1e-3, p_max, t(0));
        assert_eq!(h.level_for(NodeId(2), t(0)), Milliwatts(1.0));
    }

    #[test]
    fn entries_expire_after_three_seconds() {
        let mut h = table();
        let p_max = h.levels().max();
        h.observe(NodeId(2), p_max * 1e-3, p_max, t(0));
        assert!(h.knows(NodeId(2), t(2)));
        assert!(!h.knows(NodeId(2), t(3)), "3 s is already expired");
        assert_eq!(h.level_for(NodeId(2), t(3)), h.levels().max());
    }

    #[test]
    fn fresh_observation_renews_expiry() {
        let mut h = table();
        let p_max = h.levels().max();
        h.observe(NodeId(2), p_max * 1e-3, p_max, t(0));
        h.observe(NodeId(2), p_max * 1e-3, p_max, t(2));
        assert!(h.knows(NodeId(2), t(4)));
    }

    #[test]
    fn purge_removes_stale_entries() {
        let mut h = table();
        let p_max = h.levels().max();
        h.observe(NodeId(2), p_max * 1e-3, p_max, t(0));
        h.observe(NodeId(3), p_max * 1e-3, p_max, t(4));
        h.purge(t(5));
        assert!(!h.knows(NodeId(2), t(5)));
        assert!(h.knows(NodeId(3), t(5)));
    }

    #[test]
    fn weak_signal_requires_more_power_than_strong() {
        let mut h = table();
        let p_max = h.levels().max();
        h.observe(NodeId(2), p_max * 1e-3, p_max, t(0)); // strong
        h.observe(NodeId(3), p_max * 1e-8, p_max, t(0)); // weak
        assert!(h.level_for(NodeId(3), t(0)).value() > h.level_for(NodeId(2), t(0)).value());
    }

    #[test]
    fn margin_raises_needed_class() {
        let p_max = PowerLevels::paper_defaults().max();
        let mut plain = table();
        let mut margined =
            PowerHistory::new(PowerLevels::paper_defaults(), Milliwatts(3.652e-7)).with_margin(3.0);
        // gain such that plain needs just under 36.6 → margined jumps class.
        plain.observe(NodeId(2), p_max * 1e-8, p_max, t(0));
        margined.observe(NodeId(2), p_max * 1e-8, p_max, t(0));
        assert!(
            margined.level_for(NodeId(2), t(0)).value() >= plain.level_for(NodeId(2), t(0)).value()
        );
    }

    #[test]
    fn policy_matrix_matches_paper_table() {
        let max = Milliwatts(281.83815);
        let need = Milliwatts(2.0);
        // Basic 802.11
        assert_eq!(PowerPolicy::AllMax.rts_power(need, max), max);
        assert_eq!(PowerPolicy::AllMax.data_power(need, max), max);
        // Scheme 1
        assert_eq!(PowerPolicy::RtsCtsMax.rts_power(need, max), max);
        assert_eq!(PowerPolicy::RtsCtsMax.cts_power(need, max), max);
        assert_eq!(PowerPolicy::RtsCtsMax.data_power(need, max), need);
        assert_eq!(PowerPolicy::RtsCtsMax.ack_power(need, max), need);
        // Scheme 2 / PCMAC
        assert_eq!(PowerPolicy::AllNeeded.rts_power(need, max), need);
        assert_eq!(PowerPolicy::AllNeeded.cts_power(need, max), need);
        assert_eq!(PowerPolicy::AllNeeded.data_power(need, max), need);
    }
}
