//! Network Allocation Vector — virtual carrier sense.
//!
//! Every decoded frame not addressed to us reserves the medium for its
//! `duration` field beyond its end; a frame we *sensed but could not
//! decode* reserves EIFS (ns-2 models EIFS as a NAV assignment, and we
//! follow it). The medium is virtually busy while `nav > now`.

use pcmac_engine::{Duration, SimTime};

/// NAV tracker.
#[derive(Debug, Clone, Default)]
pub struct Nav {
    until: SimTime,
}

impl Nav {
    /// A cleared NAV.
    pub fn new() -> Self {
        Nav {
            until: SimTime::ZERO,
        }
    }

    /// Extend the reservation to at least `now + d`. Returns `true` if the
    /// expiry moved (the caller re-arms its NAV timer only then).
    pub fn reserve(&mut self, now: SimTime, d: Duration) -> bool {
        let candidate = now + d;
        if candidate > self.until {
            self.until = candidate;
            true
        } else {
            false
        }
    }

    /// `true` while the medium is virtually reserved.
    #[inline]
    pub fn is_busy(&self, now: SimTime) -> bool {
        self.until > now
    }

    /// Current expiry instant.
    #[inline]
    pub fn expiry(&self) -> SimTime {
        self.until
    }
}

mod snap {
    use super::Nav;

    pcmac_snap::snap_struct!(Nav { until });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1_000)
    }

    #[test]
    fn starts_idle() {
        let nav = Nav::new();
        assert!(!nav.is_busy(SimTime::ZERO));
    }

    #[test]
    fn reserve_sets_busy_until_expiry() {
        let mut nav = Nav::new();
        assert!(nav.reserve(t(0), Duration::from_micros(100)));
        assert!(nav.is_busy(t(50)));
        assert!(nav.is_busy(t(99)));
        assert!(!nav.is_busy(t(100)), "expiry instant is idle");
    }

    #[test]
    fn shorter_reservation_does_not_shrink() {
        let mut nav = Nav::new();
        nav.reserve(t(0), Duration::from_micros(100));
        assert!(
            !nav.reserve(t(10), Duration::from_micros(10)),
            "no change reported"
        );
        assert_eq!(nav.expiry(), t(100));
    }

    #[test]
    fn longer_reservation_extends() {
        let mut nav = Nav::new();
        nav.reserve(t(0), Duration::from_micros(50));
        assert!(nav.reserve(t(10), Duration::from_micros(100)));
        assert_eq!(nav.expiry(), t(110));
    }

    #[test]
    fn monotone_expiry_under_any_sequence() {
        let mut nav = Nav::new();
        let mut last = nav.expiry();
        for (at, d) in [(0, 30), (5, 10), (10, 200), (20, 50), (30, 500)] {
            nav.reserve(t(at), Duration::from_micros(d));
            assert!(nav.expiry() >= last);
            last = nav.expiry();
        }
    }
}
