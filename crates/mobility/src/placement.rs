//! Initial node layouts.
//!
//! The paper scatters 50 nodes uniformly over the 1000 m × 1000 m field;
//! tests and the Figure 4/6 reproductions use deterministic geometries.

use pcmac_engine::{Point, RngStream};

/// `n` points uniform over a `width × height` field.
pub fn uniform(n: usize, width: f64, height: f64, rng: &mut RngStream) -> Vec<Point> {
    (0..n)
        .map(|_| Point::new(rng.uniform(0.0, width), rng.uniform(0.0, height)))
        .collect()
}

/// A horizontal chain starting at `origin` with `spacing` meters between
/// consecutive nodes — the classic multi-hop test topology.
pub fn chain(n: usize, origin: Point, spacing: f64) -> Vec<Point> {
    (0..n)
        .map(|i| Point::new(origin.x + i as f64 * spacing, origin.y))
        .collect()
}

/// A `cols × rows` grid with `spacing` meters pitch, origin at `origin`.
pub fn grid(cols: usize, rows: usize, origin: Point, spacing: f64) -> Vec<Point> {
    let mut out = Vec::with_capacity(cols * rows);
    for r in 0..rows {
        for c in 0..cols {
            out.push(Point::new(
                origin.x + c as f64 * spacing,
                origin.y + r as f64 * spacing,
            ));
        }
    }
    out
}

/// `n` points evenly spaced on a circle of `radius` around `center` —
/// every node equidistant from its neighbours, the classic symmetric
/// contention topology.
pub fn ring(n: usize, center: Point, radius: f64) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let theta = 2.0 * std::f64::consts::PI * i as f64 / n.max(1) as f64;
            Point::new(
                center.x + radius * theta.cos(),
                center.y + radius * theta.sin(),
            )
        })
        .collect()
}

/// `n` points in `clusters` hotspots over a `width × height` field:
/// cluster centres are uniform (kept `spread` away from the border so a
/// whole cluster fits), members are uniform over a disc of radius
/// `spread` around their centre, assigned round-robin so cluster sizes
/// differ by at most one. Models the hotspot/conference-room density
/// pattern that stresses spatial reuse.
pub fn clustered(
    n: usize,
    clusters: usize,
    width: f64,
    height: f64,
    spread: f64,
    rng: &mut RngStream,
) -> Vec<Point> {
    assert!(clusters > 0, "need at least one cluster");
    let margin = |dim: f64| spread.min(dim / 2.0);
    let (mx, my) = (margin(width), margin(height));
    let centers: Vec<Point> = (0..clusters)
        .map(|_| Point::new(rng.uniform(mx, width - mx), rng.uniform(my, height - my)))
        .collect();
    (0..n)
        .map(|i| {
            let c = centers[i % clusters];
            // Uniform over the disc: radius ∝ √u, angle uniform.
            let r = spread * rng.unit().sqrt();
            let theta = rng.uniform(0.0, 2.0 * std::f64::consts::PI);
            Point::new(
                (c.x + r * theta.cos()).clamp(0.0, width),
                (c.y + r * theta.sin()).clamp(0.0, height),
            )
        })
        .collect()
}

/// `n` points uniform over a thin horizontal strip of `length × width`
/// starting at `origin` — a road/corridor topology where traffic is
/// forced through a line of mutual contention.
pub fn corridor(
    n: usize,
    origin: Point,
    length: f64,
    width: f64,
    rng: &mut RngStream,
) -> Vec<Point> {
    (0..n)
        .map(|_| {
            Point::new(
                origin.x + rng.uniform(0.0, length),
                origin.y + rng.uniform(0.0, width),
            )
        })
        .collect()
}

/// Node count realising `per_km2` nodes per square kilometre over a
/// `width × height` metre field (rounded, at least 1) — the
/// density-controlled companion to [`uniform`].
pub fn density_count(per_km2: f64, width: f64, height: f64) -> usize {
    let area_km2 = width * height / 1e6;
    (per_km2 * area_km2).round().max(1.0) as usize
}

/// The paper's Figure 4 geometry: two communicating pairs A→B and C→D.
/// A and B sit `close` meters apart; C and D sit `far` meters apart, with
/// C placed `gap` meters beyond B on the same line, so C/D are outside
/// A/B's (shrunken) zones but close enough to jam B when transmitting at
/// the high power their own distance requires.
pub fn asymmetric_pairs(close: f64, far: f64, gap: f64) -> Vec<Point> {
    vec![
        Point::new(0.0, 0.0),               // A
        Point::new(close, 0.0),             // B
        Point::new(close + gap, 0.0),       // C
        Point::new(close + gap + far, 0.0), // D
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_field() {
        let mut rng = RngStream::derive(1, "placement");
        let pts = uniform(500, 1000.0, 800.0, &mut rng);
        assert_eq!(pts.len(), 500);
        assert!(pts.iter().all(|p| (0.0..1000.0).contains(&p.x)));
        assert!(pts.iter().all(|p| (0.0..800.0).contains(&p.y)));
        // Spread sanity: corners of the field are all represented.
        assert!(pts.iter().any(|p| p.x < 250.0 && p.y < 200.0));
        assert!(pts.iter().any(|p| p.x > 750.0 && p.y > 600.0));
    }

    #[test]
    fn chain_spacing_is_exact() {
        let pts = chain(5, Point::new(10.0, 20.0), 200.0);
        assert_eq!(pts.len(), 5);
        for w in pts.windows(2) {
            assert_eq!(w[0].distance(w[1]), 200.0);
        }
        assert_eq!(pts[0], Point::new(10.0, 20.0));
        assert_eq!(pts[4], Point::new(810.0, 20.0));
    }

    #[test]
    fn grid_shape() {
        let pts = grid(3, 2, Point::new(0.0, 0.0), 100.0);
        assert_eq!(pts.len(), 6);
        assert_eq!(pts[0], Point::new(0.0, 0.0));
        assert_eq!(pts[2], Point::new(200.0, 0.0));
        assert_eq!(pts[5], Point::new(200.0, 100.0));
    }

    #[test]
    fn ring_is_equidistant_from_center() {
        let pts = ring(8, Point::new(500.0, 500.0), 200.0);
        assert_eq!(pts.len(), 8);
        for p in &pts {
            assert!((p.distance(Point::new(500.0, 500.0)) - 200.0).abs() < 1e-9);
        }
        // Consecutive spacing is uniform.
        let gap = pts[0].distance(pts[1]);
        for i in 0..8 {
            assert!((pts[i].distance(pts[(i + 1) % 8]) - gap).abs() < 1e-9);
        }
    }

    #[test]
    fn clustered_points_stay_near_their_hotspots() {
        let mut rng = RngStream::derive(3, "placement.clustered");
        let n = 60;
        let spread = 50.0;
        let pts = clustered(n, 3, 1000.0, 1000.0, spread, &mut rng);
        assert_eq!(pts.len(), n);
        assert!(pts
            .iter()
            .all(|p| (0.0..=1000.0).contains(&p.x) && (0.0..=1000.0).contains(&p.y)));
        // Every point is within `spread` of at least one other cluster
        // member placed 3 apart in round-robin order (same cluster).
        for i in 0..n - 3 {
            assert!(
                pts[i].distance(pts[i + 3]) <= 2.0 * spread + 1e-9,
                "round-robin cluster mates must share a disc"
            );
        }
    }

    #[test]
    fn corridor_is_confined_to_the_strip() {
        let mut rng = RngStream::derive(4, "placement.corridor");
        let pts = corridor(200, Point::new(0.0, 450.0), 1000.0, 100.0, &mut rng);
        assert_eq!(pts.len(), 200);
        assert!(pts.iter().all(|p| (0.0..1000.0).contains(&p.x)));
        assert!(pts.iter().all(|p| (450.0..550.0).contains(&p.y)));
        // Long axis is actually used.
        assert!(pts.iter().any(|p| p.x < 200.0));
        assert!(pts.iter().any(|p| p.x > 800.0));
    }

    #[test]
    fn density_count_scales_with_area() {
        assert_eq!(density_count(50.0, 1000.0, 1000.0), 50);
        assert_eq!(density_count(50.0, 2000.0, 1000.0), 100);
        assert_eq!(density_count(0.0001, 100.0, 100.0), 1, "never zero nodes");
    }

    #[test]
    fn asymmetric_geometry_matches_figure_4() {
        let pts = asymmetric_pairs(60.0, 200.0, 300.0);
        let (a, b, c, d) = (pts[0], pts[1], pts[2], pts[3]);
        assert_eq!(a.distance(b), 60.0, "A-B close pair");
        assert_eq!(c.distance(d), 200.0, "C-D far pair");
        assert_eq!(b.distance(c), 300.0, "C beyond B's zone");
        // The essential property: C is much farther from B than A is.
        assert!(b.distance(c) > 4.0 * a.distance(b));
    }
}
