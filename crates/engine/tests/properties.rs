//! Property-based tests for the DES kernel invariants.

use pcmac_engine::{Duration, EventQueue, Point, RngStream, SimTime, TimerSlot};
use proptest::prelude::*;

proptest! {
    /// Events always pop in nondecreasing time order, and equal-time events
    /// pop in insertion order, regardless of the insertion pattern.
    #[test]
    fn queue_pops_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_nanos(*t), i);
        }
        let mut last_time = SimTime::ZERO;
        let mut seen_at_time: Vec<usize> = Vec::new();
        let mut last_t = None;
        while let Some(ev) = q.pop() {
            prop_assert!(ev.at >= last_time);
            if Some(ev.at) == last_t {
                // insertion order within a tie: indices must increase
                prop_assert!(seen_at_time.last().is_none_or(|&prev| prev < ev.event));
            } else {
                seen_at_time.clear();
                last_t = Some(ev.at);
            }
            seen_at_time.push(ev.event);
            last_time = ev.at;
        }
    }

    /// The clock after draining equals the maximum scheduled time.
    #[test]
    fn queue_clock_ends_at_max(times in proptest::collection::vec(0u64..1_000_000, 1..100)) {
        let mut q = EventQueue::new();
        for t in &times {
            q.schedule_at(SimTime::from_nanos(*t), ());
        }
        while q.pop().is_some() {}
        prop_assert_eq!(q.now(), SimTime::from_nanos(*times.iter().max().unwrap()));
    }

    /// Duration arithmetic: (a + b) - b == a for values without overflow.
    #[test]
    fn duration_add_sub_roundtrip(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let da = Duration::from_nanos(a);
        let db = Duration::from_nanos(b);
        prop_assert_eq!((da + db) - db, da);
    }

    /// SimTime +/- Duration round-trips.
    #[test]
    fn simtime_shift_roundtrip(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t0 = SimTime::from_nanos(t);
        let dd = Duration::from_nanos(d);
        prop_assert_eq!((t0 + dd) - dd, t0);
        prop_assert_eq!((t0 + dd).since(t0), dd);
    }

    /// Identically-derived RNG streams produce identical sequences; the
    /// sequence is a pure function of (seed, label).
    #[test]
    fn rng_streams_reproducible(seed in any::<u64>(), n in 1usize..100) {
        let mut a = RngStream::derive(seed, "prop");
        let mut b = RngStream::derive(seed, "prop");
        for _ in 0..n {
            prop_assert_eq!(a.below(1 << 30), b.below(1 << 30));
        }
    }

    /// Timer slots: after an arbitrary sequence of arms/cancels, at most the
    /// final token fires, and it fires at most once.
    #[test]
    fn timer_only_latest_token_fires(ops in proptest::collection::vec(any::<bool>(), 1..50)) {
        let mut slot = TimerSlot::new();
        let mut tokens = Vec::new();
        let mut live = None;
        for arm in ops {
            if arm {
                let t = slot.arm();
                tokens.push(t);
                live = Some(t);
            } else {
                slot.cancel();
                live = None;
            }
        }
        let mut fired = 0;
        for t in tokens {
            if slot.fire(t) {
                fired += 1;
                prop_assert_eq!(Some(t), live, "only the live token may fire");
            }
        }
        prop_assert!(fired <= 1);
        prop_assert_eq!(fired, live.is_some() as usize);
    }

    /// lerp stays inside the bounding box of its endpoints.
    #[test]
    fn lerp_in_bounds(ax in -1e3..1e3, ay in -1e3..1e3,
                      bx in -1e3..1e3, by in -1e3..1e3, t in 0.0..1.0) {
        let a = Point::new(ax, ay);
        let b = Point::new(bx, by);
        let p = a.lerp(b, t);
        prop_assert!(p.x >= ax.min(bx) - 1e-9 && p.x <= ax.max(bx) + 1e-9);
        prop_assert!(p.y >= ay.min(by) - 1e-9 && p.y <= ay.max(by) + 1e-9);
    }

    /// Triangle inequality for the distance metric.
    #[test]
    fn triangle_inequality(ax in -1e3..1e3, ay in -1e3..1e3,
                           bx in -1e3..1e3, by in -1e3..1e3,
                           cx in -1e3..1e3, cy in -1e3..1e3) {
        let a = Point::new(ax, ay);
        let b = Point::new(bx, by);
        let c = Point::new(cx, cy);
        prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
    }
}

mod grid_properties {
    use pcmac_engine::{Point, UniformGrid};
    use proptest::prelude::*;

    /// Reference answer: exact disc membership by full scan.
    fn brute(positions: &[Point], center: Point, radius: f64) -> Vec<u32> {
        (0..positions.len() as u32)
            .filter(|&i| positions[i as usize].distance_sq(center) <= radius * radius)
            .collect()
    }

    fn points(coords: &[(f64, f64)]) -> Vec<Point> {
        coords.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    proptest! {
        /// A grid query returns exactly the nodes inside the disc, in
        /// ascending id order, for arbitrary fields, cell sizes, radii
        /// and centers.
        #[test]
        fn query_equals_brute_force(
            coords in proptest::collection::vec((0.0f64..2000.0, 0.0f64..2000.0), 1..120),
            cell in 10.0f64..800.0,
            cx in -100.0f64..2100.0,
            cy in -100.0f64..2100.0,
            radius in 0.0f64..2500.0,
        ) {
            let pts = points(&coords);
            let grid = UniformGrid::new(2000.0, 2000.0, cell, &pts);
            let mut got = Vec::new();
            grid.query_circle(Point::new(cx, cy), radius, None, &mut got);
            prop_assert_eq!(got, brute(&pts, Point::new(cx, cy), radius));
        }

        /// `exclude` removes exactly that node from the result and
        /// nothing else, whether or not it lies inside the disc.
        #[test]
        fn exclusion_is_surgical(
            coords in proptest::collection::vec((0.0f64..2000.0, 0.0f64..2000.0), 1..80),
            cell in 10.0f64..800.0,
            which in 0usize..80,
            radius in 0.0f64..2500.0,
        ) {
            let pts = points(&coords);
            let grid = UniformGrid::new(2000.0, 2000.0, cell, &pts);
            let ex = (which % pts.len()) as u32;
            let center = pts[ex as usize];
            let mut got = Vec::new();
            grid.query_circle(center, radius, Some(ex), &mut got);
            let expect: Vec<u32> = brute(&pts, center, radius)
                .into_iter()
                .filter(|&n| n != ex)
                .collect();
            prop_assert_eq!(got, expect);
        }

        /// Incremental updates preserve query exactness: after an
        /// arbitrary sequence of node moves, queries still match the
        /// brute-force scan over the *current* positions.
        #[test]
        fn updates_preserve_equivalence(
            coords in proptest::collection::vec((0.0f64..1000.0, 0.0f64..1000.0), 2..60),
            moves in proptest::collection::vec((0usize..60, 0.0f64..1000.0, 0.0f64..1000.0), 1..80),
            cell in 20.0f64..500.0,
            radius in 0.0f64..1200.0,
        ) {
            let mut pts = points(&coords);
            let mut grid = UniformGrid::new(1000.0, 1000.0, cell, &pts);
            for &(node, x, y) in &moves {
                let node = node % pts.len();
                pts[node] = Point::new(x, y);
                grid.update(node as u32, pts[node]);
                let center = pts[node];
                let mut got = Vec::new();
                grid.query_circle(center, radius, None, &mut got);
                prop_assert_eq!(got, brute(&pts, center, radius));
            }
        }
    }
}
