//! Fixed-width bucket histograms with percentile queries.

use serde::{Deserialize, Serialize};

/// A histogram over `[0, width × buckets)` with an overflow bucket.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    width: f64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// `buckets` buckets of `width` each.
    pub fn new(width: f64, buckets: usize) -> Self {
        assert!(width > 0.0 && buckets > 0);
        Histogram {
            width,
            counts: vec![0; buckets],
            overflow: 0,
            total: 0,
        }
    }

    /// Record one sample (negatives clamp into the first bucket).
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        let idx = (x.max(0.0) / self.width) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Number of samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Upper edge of the bucket containing the `q`-quantile (0 ≤ q ≤ 1),
    /// or `None` when empty. Overflowed quantiles report `infinity`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some((i + 1) as f64 * self.width);
            }
        }
        Some(f64::INFINITY)
    }

    /// Count in the overflow bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Merge another histogram with identical geometry (bucket width and
    /// count) into this one.
    ///
    /// # Panics
    /// If the geometries differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.width, other.width, "bucket width mismatch");
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "bucket count mismatch"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_uniform_ramp() {
        let mut h = Histogram::new(1.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        assert_eq!(h.total(), 100);
        assert_eq!(h.quantile(0.5), Some(50.0));
        assert_eq!(h.quantile(0.95), Some(95.0));
        assert_eq!(h.quantile(1.0), Some(100.0));
    }

    #[test]
    fn overflow_reports_infinity() {
        let mut h = Histogram::new(1.0, 10);
        h.record(5.0);
        h.record(1e9);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.quantile(1.0), Some(f64::INFINITY));
        assert_eq!(h.quantile(0.25), Some(6.0));
    }

    #[test]
    fn empty_has_no_quantiles() {
        let h = Histogram::new(1.0, 10);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn negatives_clamp_to_first_bucket() {
        let mut h = Histogram::new(2.0, 4);
        h.record(-5.0);
        assert_eq!(h.quantile(1.0), Some(2.0));
    }

    #[test]
    fn merge_equals_concatenation() {
        let mut a = Histogram::new(1.0, 50);
        let mut b = Histogram::new(1.0, 50);
        let mut whole = Histogram::new(1.0, 50);
        for i in 0..40 {
            let x = (i * 7 % 45) as f64;
            if i % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            whole.record(x);
        }
        a.merge(&b);
        assert_eq!(a.total(), whole.total());
        for q in [0.1, 0.5, 0.9, 1.0] {
            assert_eq!(a.quantile(q), whole.quantile(q));
        }
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn merge_rejects_different_geometry() {
        let mut a = Histogram::new(1.0, 10);
        let b = Histogram::new(2.0, 10);
        a.merge(&b);
    }
}
