//! The ablation sweeps as data: the checked-in `examples/ablation_*.json`
//! campaign specs must reproduce the sweeps the old hard-coded
//! `ablations` binary built with Rust constructors — bit for bit, at the
//! same seed. This is the same discipline the paper scenario itself
//! follows (`ScenarioSpec::paper` vs `ScenarioConfig::paper`).

use pcmac::{ScenarioConfig, Variant};
use pcmac_campaign::{run_campaign, CampaignPoint, CampaignSpec};
use pcmac_engine::Duration;
use pcmac_phy::CapturePolicy;

fn load(name: &str) -> CampaignSpec {
    let path = format!("{}/../../examples/{name}.json", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).expect("ablation spec is checked in");
    let spec = CampaignSpec::from_json(&text).expect("ablation spec parses");
    spec.validate().expect("ablation spec is valid");
    spec
}

/// Everything except the label must match: spec-built names carry the
/// seed, constructor names do not.
fn canon(mut cfg: ScenarioConfig) -> String {
    cfg.name = String::new();
    cfg.to_json()
}

/// The base every old ablation sweep patched: the paper's scenario at
/// 800 kbps offered load, shrunk to 60 s.
fn old_base(variant: Variant, seed: u64) -> ScenarioConfig {
    ScenarioConfig::paper(variant, 800.0, seed).with_duration(Duration::from_secs(60))
}

fn expand(name: &str) -> Vec<CampaignPoint> {
    load(name).expand_vec().expect("campaign expands")
}

#[test]
fn safety_factor_campaign_matches_the_constructor_sweep() {
    let points = expand("ablation_safety_factor");
    let factors = [0.5, 0.7, 0.9, 1.0];
    assert_eq!(points.len(), factors.len());
    for (f, p) in factors.iter().zip(&points) {
        assert_eq!(p.seeds, vec![1]);
        for (&seed, cfg) in p.seeds.iter().zip(&p.scenarios) {
            let mut want = old_base(Variant::Pcmac, seed);
            want.mac.pcmac.safety_factor = *f;
            assert_eq!(canon(cfg.clone()), canon(want), "factor {f}");
        }
    }
}

#[test]
fn ctrl_bandwidth_campaign_matches_the_constructor_sweep() {
    let points = expand("ablation_ctrl_bandwidth");
    let rates = [100_000u64, 250_000, 500_000, 1_000_000];
    assert_eq!(points.len(), rates.len());
    for (bw, p) in rates.iter().zip(&points) {
        for (&seed, cfg) in p.seeds.iter().zip(&p.scenarios) {
            let mut want = old_base(Variant::Pcmac, seed);
            want.mac.pcmac.ctrl_rate_bps = *bw;
            assert_eq!(canon(cfg.clone()), canon(want), "rate {bw}");
        }
    }
}

#[test]
fn capture_policy_campaign_matches_the_constructor_sweep() {
    let points = expand("ablation_capture_policy");
    // Old nesting: policy outermost, then the four variants.
    assert_eq!(points.len(), 8);
    let mut i = 0;
    for policy in [CapturePolicy::StartOnly, CapturePolicy::Continuous] {
        for v in Variant::ALL {
            let p = &points[i];
            assert_eq!(p.key.variant, v.name());
            for (&seed, cfg) in p.seeds.iter().zip(&p.scenarios) {
                let mut want = old_base(v, seed);
                want.radio.capture_policy = policy;
                assert_eq!(canon(cfg.clone()), canon(want), "{policy:?}/{}", v.name());
            }
            i += 1;
        }
    }
}

#[test]
fn handshake_campaign_matches_the_constructor_sweep() {
    let points = expand("ablation_handshake");
    assert_eq!(points.len(), 2);
    for (four_way, p) in [false, true].iter().zip(&points) {
        for (&seed, cfg) in p.seeds.iter().zip(&p.scenarios) {
            let mut want = old_base(Variant::Pcmac, seed);
            want.mac.pcmac.four_way_handshake = *four_way;
            assert_eq!(canon(cfg.clone()), canon(want), "four_way {four_way}");
        }
    }
}

/// Reduced-scale end-to-end run of a checked-in ablation campaign: the
/// JSON path must execute, key every point by its swept knob, and
/// aggregate finite metrics.
#[test]
fn reduced_safety_factor_campaign_runs_end_to_end() {
    let mut spec = load("ablation_safety_factor");
    spec.duration_s = Some(5.0);
    let outcome = run_campaign(&spec, 0).expect("campaign runs");
    assert_eq!(outcome.runs.len(), 4);
    assert_eq!(outcome.report.points.len(), 4);
    let labels: Vec<String> = outcome
        .report
        .points
        .iter()
        .map(|p| p.key.patches_label())
        .collect();
    assert_eq!(
        labels,
        vec![
            "safety_factor=0.5",
            "safety_factor=0.7",
            "safety_factor=0.9",
            "safety_factor=1.0"
        ]
    );
    for p in &outcome.report.points {
        assert!(p.throughput_kbps.mean > 0.0, "5 s at 800 kbps delivers");
        assert!(p.mean_delay_ms.mean.is_finite());
    }
}
