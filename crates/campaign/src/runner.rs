//! The campaign runner: expand lazily → run in parallel → aggregate.
//!
//! The runner is crash-proof: each `(point × seed)` run executes on its
//! own worker under `catch_unwind` with an optional wall-clock watchdog,
//! so a panicking or hanging point becomes a structured
//! [`PointFailure`] in the report instead of taking the whole sweep
//! down. When an output path is given, the aggregated artifact is
//! rewritten (atomically, tmp + rename) after every finished point with
//! `complete: Some(false)`; an interrupted campaign resumes from that
//! partial artifact, skipping every point that already ran cleanly.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pcmac::{RunReport, Simulator};

use crate::aggregate::{CampaignReport, FailureKind, PointFailure, PointSummary};
use crate::campaign::{CampaignGrid, CampaignSpec};
use crate::spec::SpecError;

/// Everything a campaign produced: the aggregated report (the
/// `CAMPAIGN_*.json` artifact) plus the raw per-run reports for callers
/// that need more than the per-point summaries (the figure harness, flow
/// fairness analyses).
#[derive(Debug)]
pub struct CampaignOutcome {
    /// Per-point aggregation.
    pub report: CampaignReport,
    /// Raw reports of the runs *this invocation executed*, point-major
    /// and seed-minor in expansion order. Failed runs leave no entry,
    /// and on resume the previously-finished points are represented
    /// only by their summaries in `report`.
    pub runs: Vec<RunReport>,
}

/// How [`run_campaign_with`] executes a campaign.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Worker parallelism; `0` means one per available core.
    pub threads: usize,
    /// Per-run wall-clock budget. A run that exceeds it is abandoned
    /// and recorded as [`FailureKind::TimedOut`]. `None` disables the
    /// watchdog.
    pub timeout: Option<Duration>,
    /// Where to persist the aggregated report incrementally. `None`
    /// skips persistence (the caller writes the final report itself).
    pub out: Option<PathBuf>,
    /// Resume from a partial artifact at `out`: points whose key
    /// matches a summary in the existing report are skipped; points
    /// with recorded failures (or no summary) re-run.
    pub resume: bool,
}

fn worker_count(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        threads
    }
}

/// Expand `spec` and run every `(point × seed)` with the stock
/// simulator — no watchdog, no persistence. Thin wrapper over
/// [`run_campaign_with`] kept for the figure/ablation drivers.
pub fn run_campaign(spec: &CampaignSpec, threads: usize) -> Result<CampaignOutcome, SpecError> {
    run_campaign_with(
        spec,
        RunOptions {
            threads,
            ..RunOptions::default()
        },
        |cfg| Simulator::new(cfg).run(),
    )
}

/// One `(cell × seed)` job.
#[derive(Clone, Copy)]
struct Job {
    cell: usize,
    seed: u64,
}

/// Per-cell accumulation while the sweep drains.
#[derive(Default)]
struct CellProgress {
    /// Successful reports, tagged with their job index for final
    /// ordering.
    ok: Vec<(usize, RunReport)>,
    /// Failures of this cell's seeds.
    failed: Vec<PointFailure>,
    resolved: usize,
}

/// Bookkeeping shared by the dispatch loop and the incremental
/// persistence path.
struct SweepState<'a> {
    grid: &'a CampaignGrid,
    campaign: String,
    /// Finished summaries by cell index (resumed points pre-filled).
    done: Vec<Option<PointSummary>>,
    progress: HashMap<usize, CellProgress>,
    wall_s: f64,
}

impl SweepState<'_> {
    fn record_failure(&mut self, job: Job, kind: FailureKind, error: String) {
        let p = self.progress.entry(job.cell).or_default();
        p.failed.push(PointFailure {
            key: self.grid.cells[job.cell].key.clone(),
            seed: Some(job.seed),
            kind,
            error,
        });
        p.resolved += 1;
    }

    fn record_success(&mut self, job: Job, id: usize, report: RunReport) {
        self.wall_s += report.wall_s;
        let p = self.progress.entry(job.cell).or_default();
        p.ok.push((id, report));
        p.resolved += 1;
    }

    /// All failures recorded so far, cell-major / seed-minor.
    fn failures(&self) -> Vec<PointFailure> {
        let mut by_cell: Vec<(usize, &CellProgress)> =
            self.progress.iter().map(|(&i, p)| (i, p)).collect();
        by_cell.sort_unstable_by_key(|&(i, _)| i);
        by_cell
            .into_iter()
            .flat_map(|(_, p)| p.failed.iter().cloned())
            .collect()
    }

    fn report(&self, complete: bool) -> CampaignReport {
        let points: Vec<PointSummary> = self.done.iter().flatten().cloned().collect();
        let failures = self.failures();
        CampaignReport {
            campaign: self.campaign.clone(),
            runs: points.iter().map(|s| s.seeds.len()).sum(),
            duration_s: self
                .grid
                .cells
                .first()
                .map(|c| c.spec.duration_s)
                .unwrap_or(0.0),
            wall_s: self.wall_s,
            points,
            complete: Some(complete),
            failures: (!failures.is_empty()).then_some(failures),
        }
    }

    /// When every seed of `cell` has resolved, collapse the clean cell
    /// into its summary and (with an output path set) persist the
    /// partial report so an interrupted campaign can resume from it.
    fn finish_cell_if_done(&mut self, cell: usize, out: Option<&Path>) {
        let Some(p) = self.progress.get(&cell) else {
            return;
        };
        if p.resolved < self.grid.seeds.len() {
            return;
        }
        if p.failed.is_empty() {
            let reports: Vec<RunReport> = p.ok.iter().map(|(_, r)| r.clone()).collect();
            self.done[cell] = Some(PointSummary::from_reports(
                self.grid.cells[cell].key.clone(),
                self.grid.seeds.clone(),
                &reports,
            ));
        }
        if let Some(path) = out {
            // Persistence is best-effort mid-run: a full disk surfaces
            // at the final write, which does propagate the error.
            let _ = write_atomic(path, &self.report(false).to_json());
        }
    }
}

/// Expand `spec` into its grid skeleton and run every `(point × seed)`
/// through `run` (`threads == 0` means one per core), isolating each
/// run so one bad point cannot abort the sweep:
///
/// * a panic inside `run` is caught and recorded as
///   [`FailureKind::Panicked`];
/// * a run outliving [`RunOptions::timeout`] is abandoned (its thread
///   keeps spinning but its late result is discarded) and recorded as
///   [`FailureKind::TimedOut`];
/// * a spec that fails to materialize is recorded as
///   [`FailureKind::Invalid`].
///
/// Each point's seeds are aggregated with mean / stddev / 95% CI per
/// metric; with [`RunOptions::out`] set, the partial report is
/// persisted after every finished point so an interrupted campaign
/// resumes ([`RunOptions::resume`]) without recomputing clean points.
pub fn run_campaign_with<F>(
    spec: &CampaignSpec,
    opts: RunOptions,
    run: F,
) -> Result<CampaignOutcome, SpecError>
where
    F: Fn(pcmac::ScenarioConfig) -> RunReport + Send + Sync + 'static,
{
    let grid = spec.grid()?;
    let mut state = SweepState {
        grid: &grid,
        campaign: spec.name.clone(),
        done: vec![None; grid.cells.len()],
        progress: HashMap::new(),
        wall_s: 0.0,
    };

    // Resume: lift finished points (and the wall-clock already spent)
    // out of a partial artifact; anything failed or missing re-runs.
    if let (Some(path), true) = (&opts.out, opts.resume) {
        if let Some(report) = load_partial(path, &spec.name) {
            state.wall_s = report.wall_s;
            for summary in report.points {
                if let Some(i) = grid.cells.iter().position(|c| c.key == summary.key) {
                    state.done[i] = Some(summary);
                }
            }
        }
    }

    let jobs: Vec<Job> = grid
        .cells
        .iter()
        .enumerate()
        .filter(|&(i, _)| state.done[i].is_none())
        .flat_map(|(i, _)| grid.seeds.iter().map(move |&seed| Job { cell: i, seed }))
        .collect();

    let run = Arc::new(run);
    let threads = worker_count(opts.threads).max(1);
    let out = opts.out.as_deref();

    let (result_tx, result_rx) = mpsc::channel::<(usize, std::thread::Result<RunReport>)>();
    // Jobs whose watchdog fired; late results from their (still
    // running, but abandoned) threads are discarded on arrival.
    let mut abandoned: Vec<usize> = Vec::new();
    // (job index, watchdog deadline) of every dispatched, unresolved run.
    let mut in_flight: Vec<(usize, Option<Instant>)> = Vec::new();
    let mut next_job = 0usize;
    let mut resolved_jobs = 0usize;

    while resolved_jobs < jobs.len() {
        // Keep the worker budget full. Materialization failures resolve
        // immediately (no thread) as Invalid.
        while in_flight.len() < threads && next_job < jobs.len() {
            let id = next_job;
            next_job += 1;
            let job = jobs[id];
            match grid.cells[job.cell].spec.materialize(job.seed) {
                Err(e) => {
                    state.record_failure(job, FailureKind::Invalid, e.problems.join("; "));
                    resolved_jobs += 1;
                    state.finish_cell_if_done(job.cell, out);
                }
                Ok(cfg) => {
                    let tx = result_tx.clone();
                    let run = Arc::clone(&run);
                    std::thread::spawn(move || {
                        let report = catch_unwind(AssertUnwindSafe(|| run(cfg)));
                        // The receiver outlives us unless we were
                        // abandoned; either way a failed send is fine.
                        let _ = tx.send((id, report));
                    });
                    in_flight.push((id, opts.timeout.map(|t| Instant::now() + t)));
                }
            }
        }
        if in_flight.is_empty() {
            continue; // every dispatched job resolved synchronously
        }

        let next_deadline = in_flight.iter().filter_map(|&(_, d)| d).min();
        let received = match next_deadline {
            None => result_rx.recv().ok(),
            Some(deadline) => {
                let wait = deadline.saturating_duration_since(Instant::now());
                match result_rx.recv_timeout(wait) {
                    Ok(r) => Some(r),
                    Err(mpsc::RecvTimeoutError::Timeout) => None,
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        unreachable!("runner holds a live sender")
                    }
                }
            }
        };

        match received {
            Some((id, result)) => {
                if let Some(pos) = abandoned.iter().position(|&a| a == id) {
                    abandoned.swap_remove(pos); // late result of a timed-out run
                    continue;
                }
                let Some(pos) = in_flight.iter().position(|&(j, _)| j == id) else {
                    continue;
                };
                in_flight.swap_remove(pos);
                let job = jobs[id];
                match result {
                    Ok(report) => state.record_success(job, id, report),
                    Err(payload) => state.record_failure(
                        job,
                        FailureKind::Panicked,
                        panic_message(payload.as_ref()),
                    ),
                }
                resolved_jobs += 1;
                state.finish_cell_if_done(job.cell, out);
            }
            None => {
                // Watchdog: abandon every run past its deadline. The
                // hung thread is left behind (there is no portable way
                // to kill it); its eventual result is ignored.
                let now = Instant::now();
                let mut expired = Vec::new();
                in_flight.retain(|&(id, deadline)| {
                    let hung = deadline.is_some_and(|d| d <= now);
                    if hung {
                        expired.push(id);
                    }
                    !hung
                });
                for id in expired {
                    abandoned.push(id);
                    state.record_failure(
                        jobs[id],
                        FailureKind::TimedOut,
                        format!(
                            "exceeded the {:.1} s wall-clock budget",
                            opts.timeout.map(|t| t.as_secs_f64()).unwrap_or(0.0)
                        ),
                    );
                    resolved_jobs += 1;
                    state.finish_cell_if_done(jobs[id].cell, out);
                }
            }
        }
    }

    let report = state.report(state.failures().is_empty());
    if let Some(path) = out {
        write_atomic(path, &report.to_json()).map_err(SpecError::one)?;
    }

    // Raw reports of this invocation, point-major / seed-minor.
    let mut runs_tagged: Vec<(usize, RunReport)> =
        state.progress.into_values().flat_map(|p| p.ok).collect();
    runs_tagged.sort_unstable_by_key(|&(id, _)| id);
    let runs = runs_tagged.into_iter().map(|(_, r)| r).collect();

    Ok(CampaignOutcome { report, runs })
}

/// A run panicked; pull the human-readable message out of the payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "run panicked (non-string payload)".to_string()
    }
}

/// Parse a resumable partial artifact: it must exist, parse, belong to
/// this campaign, and be explicitly incomplete.
fn load_partial(path: &Path, campaign: &str) -> Option<CampaignReport> {
    let text = std::fs::read_to_string(path).ok()?;
    let report = CampaignReport::from_json(&text).ok()?;
    (report.campaign == campaign && report.complete == Some(false)).then_some(report)
}

/// Crash-consistent write: the artifact is either the old version or
/// the new one, never a torn half.
fn write_atomic(path: &Path, contents: &str) -> Result<(), String> {
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, contents).map_err(|e| format!("write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("rename to {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{
        MobilitySpec, NodesSpec, PlacementSpec, ScenarioSpec, TrafficPattern, TrafficSpec,
    };
    use crate::AxesSpec;
    use pcmac::{FlowShape, Variant};

    fn tiny_campaign() -> CampaignSpec {
        CampaignSpec {
            name: "tiny".into(),
            base: ScenarioSpec {
                name: "tiny".into(),
                variant: Variant::Basic,
                duration_s: 2.0,
                field: (500.0, 500.0),
                nodes: NodesSpec {
                    count: Some(4),
                    placement: PlacementSpec::Ring { radius: 80.0 },
                    mobility: None,
                },
                traffic: TrafficSpec {
                    pattern: TrafficPattern::NeighbourPairs { flows: 2 },
                    bytes: 512,
                    offered_load_kbps: 100.0,
                    shape: FlowShape::Cbr,
                },
                power_levels_mw: None,
                shadowing: None,
                protocol: None,
                radio: None,
                aodv: None,
                faults: None,
                metrics: None,
                trace: None,
                execution: None,
            },
            duration_s: None,
            seeds: vec![1, 2],
            axes: Some(AxesSpec {
                loads_kbps: Some(vec![50.0, 100.0]),
                ..AxesSpec::default()
            }),
            sweep: None,
        }
    }

    #[test]
    fn runner_aggregates_every_point() {
        let spec = tiny_campaign();
        assert_eq!(spec.run_count(), 4);
        let outcome = run_campaign(&spec, 0).expect("runs");
        assert_eq!(outcome.runs.len(), 4);
        assert_eq!(outcome.report.points.len(), 2);
        assert_eq!(outcome.report.complete, Some(true));
        assert!(outcome.report.failures.is_none());
        for p in &outcome.report.points {
            assert_eq!(p.seeds, vec![1, 2]);
            assert!(p.throughput_kbps.mean > 0.0, "static ring delivers");
            assert!(p.pdr.mean > 0.0);
            assert!(p.throughput_kbps.ci95.is_finite());
        }
        // Points follow expansion order: load 50 then load 100.
        assert_eq!(outcome.report.points[0].key.load_kbps, 50.0);
        assert_eq!(outcome.report.points[1].key.load_kbps, 100.0);
    }

    #[test]
    fn mobility_spec_on_generated_placement_runs() {
        let mut spec = tiny_campaign();
        spec.base.nodes.mobility = Some(MobilitySpec {
            speed_mps: 2.0,
            pause_s: 1.0,
        });
        spec.axes = None;
        spec.seeds = vec![3];
        let outcome = run_campaign(&spec, 0).expect("mobile ring runs");
        assert_eq!(outcome.runs.len(), 1);
        assert!(outcome.runs[0].sent_packets > 0);
    }

    #[test]
    fn patch_axis_campaign_runs_and_keys_each_point() {
        use serde::Value;
        let mut spec = tiny_campaign();
        spec.base.variant = Variant::Pcmac;
        spec.axes = None;
        spec.seeds = vec![1];
        spec.sweep = Some(vec![crate::Axis::Patch {
            path: "mac.pcmac.safety_factor".into(),
            values: vec![Value::F64(0.5), Value::F64(0.9)],
        }]);
        let outcome = run_campaign(&spec, 0).expect("patch sweep runs");
        assert_eq!(outcome.runs.len(), 2);
        assert_eq!(outcome.report.points.len(), 2);
        let labels: Vec<String> = outcome
            .report
            .points
            .iter()
            .map(|p| p.key.patches_label())
            .collect();
        assert_eq!(labels, vec!["safety_factor=0.5", "safety_factor=0.9"]);
    }
}
