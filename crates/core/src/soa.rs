//! Struct-of-arrays hot node state.
//!
//! The dispatch loop's per-node reads — position, liveness, carrier
//! state, queue depth — used to be scattered across the big [`Node`]
//! assemblies (radios, MAC queues, AODV tables), so the grid-query →
//! candidate-filter → gain-lookup path and the metrics probe walked
//! pointer-rich structs for a handful of scalars each. [`HotState`]
//! splits exactly those fields into parallel arrays indexed by node id:
//! the hot path reads contiguous memory, and a region shard can keep
//! the arrays while dropping the cold `Node` boxes of every node it
//! does not own.
//!
//! The `busy`/`queue_len`/`alive` entries are *mirrors* of the
//! authoritative cold state, synced by the dispatcher after every
//! event (all mutations of a node's radio/MAC state happen while an
//! event addressed to that node is dispatched — `Simulator::sync_hot`
//! documents the one global exception). `positions`/`mobility` are
//! authoritative: the cold [`Node`] no longer carries movement state.
//!
//! [`Node`]: crate::node::Node

use pcmac_engine::{Point, SimTime};
use pcmac_mobility::Mobility;

/// The per-node parallel arrays the dispatch loop touches. All vectors
/// have length N (the full scenario); in a region shard, entries are
/// only *maintained* for tracked nodes (owned + halo) — see
/// `Simulator::prepare_shard`.
#[derive(Debug)]
pub(crate) struct HotState {
    /// Current (possibly index-stale, see lazy refresh) position.
    pub(crate) positions: Vec<Point>,
    /// Movement model per node (authoritative; moved out of `Node`).
    pub(crate) mobility: Vec<Mobility>,
    /// `true` when this shard keeps the node's hot state fresh: owned
    /// nodes plus the boundary halo. Always all-true in single mode.
    pub(crate) tracked: Vec<bool>,
    /// Mirror of `!faults.down[i]` (all-true without a fault plan).
    pub(crate) alive: Vec<bool>,
    /// Mirror of `radio.carrier_busy()`.
    pub(crate) busy: Vec<bool>,
    /// Mirror of `mac.queue_len()`.
    pub(crate) queue_len: Vec<u32>,
    /// Last data-channel transmit power (mW); 0 before the first tx.
    pub(crate) tx_power_mw: Vec<f64>,
    /// Last instant the node was sampled *exactly* (lazy refresh).
    pub(crate) sampled_at: Vec<SimTime>,
    /// Active refresh deadline per node (lazy + grid mode).
    pub(crate) deadline: Vec<SimTime>,
    /// Per-node transmission-key counters: key = `(node << 32) | ctr`.
    pub(crate) tx_key_ctr: Vec<u32>,
}
