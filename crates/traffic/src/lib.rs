//! # pcmac-traffic — workload generation and measurement
//!
//! The paper's workload: 10 constant-bit-rate (CBR) flows over UDP with
//! 512-byte packets, scaled from 300 to 1000 kbps of aggregate offered
//! load. [`CbrSource`] reproduces it exactly; [`PoissonSource`] and
//! [`OnOffSource`] are extensions used by robustness tests (bursty
//! arrivals stress the MAC differently than a metronome).
//!
//! [`Sink`] is the measuring end: per-flow delivered packets/bytes and
//! end-to-end delay statistics — the two metrics of Figures 8 and 9.

pub mod sink;
pub mod source;

pub use sink::{FlowStats, Sink};
pub use source::{CbrSource, OnOffSource, PoissonSource, Source};
