//! # pcmac-stats — metric collection primitives
//!
//! Small, dependency-light building blocks the simulation core and the
//! figure harness assemble their reports from:
//!
//! * [`OnlineStats`] — Welford single-pass mean/variance/min/max.
//! * [`Histogram`] — fixed-width buckets with percentile queries (delay
//!   distributions).
//! * [`StreamingQuantile`] — constant-memory latency population summary
//!   (exact up to a cap, power-of-two buckets beyond, merge-order
//!   independent).
//! * [`Series`] — named (x, y) curves with CSV emission, the shape of the
//!   paper's figures.
//! * [`Table`] — aligned text tables for harness stdout.

pub mod histogram;
pub mod online;
pub mod plot;
pub mod quantile;
pub mod series;
pub mod table;

pub use histogram::Histogram;
pub use online::OnlineStats;
pub use plot::ascii_plot;
pub use quantile::StreamingQuantile;
pub use series::Series;
pub use table::Table;
