//! Reproducible random number streams.
//!
//! Every stochastic component (mobility, traffic, MAC backoff, …) draws from
//! its own [`RngStream`], derived from the scenario's master seed and a
//! stable stream label. Components therefore consume independent sequences:
//! adding a draw in one component cannot perturb another, which keeps
//! A/B protocol comparisons paired and regression diffs meaningful.
//!
//! The derivation is SplitMix64 over `master_seed XOR hash(label)`, a
//! standard seed-spreading construction; the stream itself is rand's
//! `SmallRng` (xoshiro-family), which is fast and adequate for simulation.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// SplitMix64 step — spreads low-entropy seeds across the whole state space.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over the label bytes — stable across platforms and compiler
/// versions (unlike `DefaultHasher`).
fn label_hash(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A named, reproducible random stream.
#[derive(Debug, Clone)]
pub struct RngStream {
    rng: SmallRng,
}

impl RngStream {
    /// Derive the stream `label` from `master_seed`.
    pub fn derive(master_seed: u64, label: &str) -> Self {
        let mut state = master_seed ^ label_hash(label);
        // Two warm-up rounds decorrelate adjacent master seeds.
        let _ = splitmix64(&mut state);
        let seed = splitmix64(&mut state);
        RngStream {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derive a per-entity substream, e.g. one per node.
    pub fn derive_sub(master_seed: u64, label: &str, index: u64) -> Self {
        let mut state = master_seed ^ label_hash(label) ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let _ = splitmix64(&mut state);
        let seed = splitmix64(&mut state);
        RngStream {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The raw 256-bit generator state, for checkpointing.
    pub fn state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Rebuild a stream from a state captured by [`RngStream::state`];
    /// the restored stream continues the sequence exactly.
    pub fn from_state(s: [u64; 4]) -> Self {
        RngStream {
            rng: SmallRng::from_state(s),
        }
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        self.rng.random_range(0..n)
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        self.rng.random_range(lo..=hi)
    }

    /// Uniform float in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.random_range(lo..hi)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        self.rng.random_range(0.0..1.0)
    }

    /// Bernoulli draw.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.random_bool(p.clamp(0.0, 1.0))
    }

    /// Exponentially distributed value with the given mean (inverse
    /// transform sampling; used by Poisson traffic).
    #[inline]
    pub fn exponential(&mut self, mean: f64) -> f64 {
        // unit() is in [0,1); 1-u is in (0,1] so ln() is finite.
        -mean * (1.0 - self.unit()).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = RngStream::derive(42, "mac");
        let mut b = RngStream::derive(42, "mac");
        for _ in 0..100 {
            assert_eq!(a.below(1000), b.below(1000));
        }
    }

    #[test]
    fn different_labels_diverge() {
        let mut a = RngStream::derive(42, "mac");
        let mut b = RngStream::derive(42, "traffic");
        let same = (0..100).filter(|_| a.below(1000) == b.below(1000)).count();
        assert!(same < 10, "streams should be effectively independent");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = RngStream::derive(1, "mac");
        let mut b = RngStream::derive(2, "mac");
        let same = (0..100).filter(|_| a.below(1000) == b.below(1000)).count();
        assert!(same < 10);
    }

    #[test]
    fn substreams_are_distinct_per_index() {
        let mut a = RngStream::derive_sub(7, "node", 0);
        let mut b = RngStream::derive_sub(7, "node", 1);
        let same = (0..100).filter(|_| a.below(1000) == b.below(1000)).count();
        assert!(same < 10);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = RngStream::derive(3, "bounds");
        for _ in 0..1000 {
            let v = r.uniform(2.0, 5.0);
            assert!((2.0..5.0).contains(&v));
            let i = r.range_inclusive(10, 12);
            assert!((10..=12).contains(&i));
        }
    }

    #[test]
    fn exponential_mean_is_roughly_right() {
        let mut r = RngStream::derive(9, "exp");
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exponential(4.0)).sum();
        let mean = sum / n as f64;
        assert!(
            (mean - 4.0).abs() < 0.15,
            "sample mean {mean} too far from 4.0"
        );
    }

    #[test]
    fn label_hash_is_stable() {
        // Pinned value: determinism across platforms is part of the contract.
        assert_eq!(label_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(label_hash("mac"), label_hash("mac"));
        assert_ne!(label_hash("mac"), label_hash("mak"));
    }
}
