//! The simulation event vocabulary.

use std::sync::Arc;

use pcmac_engine::{Milliwatts, NodeId, SimTime, TimerToken};
use pcmac_mac::{CtrlFrame, Frame, MacTimerKind};

/// Everything that can be scheduled in the event queue. Events address a
/// single node; cross-node effects only ever happen by scheduling more
/// events (that is what the wireless channel *is*).
#[derive(Debug, Clone)]
pub enum SimEvent {
    /// A frame starts arriving at `node` on the data channel.
    ArrivalStart {
        /// Receiver.
        node: NodeId,
        /// Unique transmission key (pairs with `ArrivalEnd`).
        key: u64,
        /// Received power after path loss.
        power: Milliwatts,
        /// When the arrival completes.
        end: SimTime,
        /// The frame (shared across all receivers of the transmission).
        frame: Arc<Frame>,
    },
    /// The arrival keyed `key` finished at `node`.
    ArrivalEnd {
        /// Receiver.
        node: NodeId,
        /// Transmission key.
        key: u64,
    },
    /// `node`'s own data-channel transmission finished.
    TxEnd {
        /// Transmitter.
        node: NodeId,
    },
    /// A power-control broadcast starts arriving at `node` (PCMAC).
    CtrlArrivalStart {
        /// Receiver.
        node: NodeId,
        /// Transmission key.
        key: u64,
        /// Received power.
        power: Milliwatts,
        /// When the arrival completes.
        end: SimTime,
        /// The control frame.
        frame: CtrlFrame,
    },
    /// Control-channel arrival end.
    CtrlArrivalEnd {
        /// Receiver.
        node: NodeId,
        /// Transmission key.
        key: u64,
    },
    /// `node`'s control-channel broadcast finished.
    CtrlTxEnd {
        /// Transmitter.
        node: NodeId,
    },
    /// A MAC timer fired.
    MacTimer {
        /// Owner.
        node: NodeId,
        /// Which logical timer.
        kind: MacTimerKind,
        /// Liveness token.
        token: TimerToken,
    },
    /// An AODV discovery timer fired.
    AodvTimer {
        /// Owner.
        node: NodeId,
        /// Destination under discovery.
        dst: NodeId,
        /// Liveness token.
        token: TimerToken,
    },
    /// A traffic source is due to emit.
    TrafficEmit {
        /// Source owner.
        node: NodeId,
        /// Index into the node's source list.
        source: usize,
    },
    /// A fault takes `node` down: the node stops transmitting,
    /// receiving, and forwarding until a matching [`SimEvent::NodeUp`]
    /// (if any) brings it back.
    NodeDown {
        /// The crashing node.
        node: NodeId,
    },
    /// A previously crashed node recovers.
    NodeUp {
        /// The recovering node.
        node: NodeId,
    },
    /// Channel impairment burst `index` (into the fault plan's burst
    /// list) becomes active.
    ImpairmentStart {
        /// Burst index.
        index: usize,
    },
    /// Channel impairment burst `index` ends.
    ImpairmentEnd {
        /// Burst index.
        index: usize,
    },
    /// Periodic observability probe: sample channel busy fraction,
    /// queue depths, live-node count, and cumulative offered/delivered
    /// load into the current time-series bucket. Pure read — handling
    /// this event never mutates protocol state, so a metrics-on run is
    /// bit-identical in behavior to a metrics-off run.
    MetricsProbe,
}

impl SimEvent {
    /// The node an event addresses, if any. `None` for the replicated
    /// global events (impairment edges, the metrics probe), which every
    /// shard dispatches. Used by the dispatcher to sync the addressed
    /// node's struct-of-arrays mirrors after handling the event.
    pub fn node_index(&self) -> Option<usize> {
        match self {
            SimEvent::ArrivalStart { node, .. }
            | SimEvent::ArrivalEnd { node, .. }
            | SimEvent::TxEnd { node }
            | SimEvent::CtrlArrivalStart { node, .. }
            | SimEvent::CtrlArrivalEnd { node, .. }
            | SimEvent::CtrlTxEnd { node }
            | SimEvent::MacTimer { node, .. }
            | SimEvent::AodvTimer { node, .. }
            | SimEvent::TrafficEmit { node, .. }
            | SimEvent::NodeDown { node }
            | SimEvent::NodeUp { node } => Some(node.index()),
            SimEvent::ImpairmentStart { .. }
            | SimEvent::ImpairmentEnd { .. }
            | SimEvent::MetricsProbe => None,
        }
    }

    /// Content-derived same-instant ordering key: `(class << 96) |
    /// (node << 64) | discriminator`.
    ///
    /// Every schedule site passes this rank to the event queue, so ties at
    /// one instant resolve by event *content* instead of scheduling history.
    /// That is what lets region shards — which each schedule only a subset
    /// of the global event population — agree exactly with the
    /// single-threaded reference on pop order: two distinct events due at
    /// the same instant compare identically no matter which queue holds
    /// them. Events that share a full `(at, rank)` key always address the
    /// same node (the discriminator separates everything else a node can
    /// have in flight at one instant), so they live on one shard and the
    /// insertion sequence finishes the job there.
    ///
    /// `End` classes sort before `Start` classes: an arrival that ends the
    /// instant another begins must release the radio first, matching the
    /// order the single-threaded scheduler produced them in.
    pub fn rank(&self) -> u128 {
        let (class, node, disc): (u128, u64, u64) = match self {
            SimEvent::ArrivalEnd { node, key } => (0, node.0 as u64, *key),
            SimEvent::CtrlArrivalEnd { node, key } => (1, node.0 as u64, *key),
            SimEvent::TxEnd { node } => (2, node.0 as u64, 0),
            SimEvent::CtrlTxEnd { node } => (3, node.0 as u64, 0),
            SimEvent::ArrivalStart { node, key, .. } => (4, node.0 as u64, *key),
            SimEvent::CtrlArrivalStart { node, key, .. } => (5, node.0 as u64, *key),
            SimEvent::MacTimer { node, token, .. } => (6, node.0 as u64, token.value()),
            SimEvent::AodvTimer { node, token, .. } => (7, node.0 as u64, token.value()),
            SimEvent::TrafficEmit { node, source } => (8, node.0 as u64, *source as u64),
            SimEvent::NodeDown { node } => (9, node.0 as u64, 0),
            SimEvent::NodeUp { node } => (10, node.0 as u64, 0),
            SimEvent::ImpairmentStart { index } => (11, 0, *index as u64),
            SimEvent::ImpairmentEnd { index } => (12, 0, *index as u64),
            SimEvent::MetricsProbe => (13, 0, 0),
        };
        (class << 96) | ((node as u128) << 64) | disc as u128
    }
}

mod snap {
    //! Checkpoint capture of pending events. Tags reuse the rank classes
    //! so the wire format and the ordering key can never drift apart.

    use super::SimEvent;
    use pcmac_snap::{Snap, SnapError, SnapReader, SnapWriter};

    impl Snap for SimEvent {
        fn save(&self, w: &mut SnapWriter) {
            match self {
                SimEvent::ArrivalEnd { node, key } => {
                    w.u8(0);
                    node.save(w);
                    w.u64(*key);
                }
                SimEvent::CtrlArrivalEnd { node, key } => {
                    w.u8(1);
                    node.save(w);
                    w.u64(*key);
                }
                SimEvent::TxEnd { node } => {
                    w.u8(2);
                    node.save(w);
                }
                SimEvent::CtrlTxEnd { node } => {
                    w.u8(3);
                    node.save(w);
                }
                SimEvent::ArrivalStart {
                    node,
                    key,
                    power,
                    end,
                    frame,
                } => {
                    w.u8(4);
                    node.save(w);
                    w.u64(*key);
                    power.save(w);
                    end.save(w);
                    frame.save(w);
                }
                SimEvent::CtrlArrivalStart {
                    node,
                    key,
                    power,
                    end,
                    frame,
                } => {
                    w.u8(5);
                    node.save(w);
                    w.u64(*key);
                    power.save(w);
                    end.save(w);
                    frame.save(w);
                }
                SimEvent::MacTimer { node, kind, token } => {
                    w.u8(6);
                    node.save(w);
                    kind.save(w);
                    token.save(w);
                }
                SimEvent::AodvTimer { node, dst, token } => {
                    w.u8(7);
                    node.save(w);
                    dst.save(w);
                    token.save(w);
                }
                SimEvent::TrafficEmit { node, source } => {
                    w.u8(8);
                    node.save(w);
                    source.save(w);
                }
                SimEvent::NodeDown { node } => {
                    w.u8(9);
                    node.save(w);
                }
                SimEvent::NodeUp { node } => {
                    w.u8(10);
                    node.save(w);
                }
                SimEvent::ImpairmentStart { index } => {
                    w.u8(11);
                    index.save(w);
                }
                SimEvent::ImpairmentEnd { index } => {
                    w.u8(12);
                    index.save(w);
                }
                SimEvent::MetricsProbe => w.u8(13),
            }
        }

        fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(match r.u8()? {
                0 => SimEvent::ArrivalEnd {
                    node: Snap::load(r)?,
                    key: r.u64()?,
                },
                1 => SimEvent::CtrlArrivalEnd {
                    node: Snap::load(r)?,
                    key: r.u64()?,
                },
                2 => SimEvent::TxEnd {
                    node: Snap::load(r)?,
                },
                3 => SimEvent::CtrlTxEnd {
                    node: Snap::load(r)?,
                },
                4 => SimEvent::ArrivalStart {
                    node: Snap::load(r)?,
                    key: r.u64()?,
                    power: Snap::load(r)?,
                    end: Snap::load(r)?,
                    frame: Snap::load(r)?,
                },
                5 => SimEvent::CtrlArrivalStart {
                    node: Snap::load(r)?,
                    key: r.u64()?,
                    power: Snap::load(r)?,
                    end: Snap::load(r)?,
                    frame: Snap::load(r)?,
                },
                6 => SimEvent::MacTimer {
                    node: Snap::load(r)?,
                    kind: Snap::load(r)?,
                    token: Snap::load(r)?,
                },
                7 => SimEvent::AodvTimer {
                    node: Snap::load(r)?,
                    dst: Snap::load(r)?,
                    token: Snap::load(r)?,
                },
                8 => SimEvent::TrafficEmit {
                    node: Snap::load(r)?,
                    source: Snap::load(r)?,
                },
                9 => SimEvent::NodeDown {
                    node: Snap::load(r)?,
                },
                10 => SimEvent::NodeUp {
                    node: Snap::load(r)?,
                },
                11 => SimEvent::ImpairmentStart {
                    index: Snap::load(r)?,
                },
                12 => SimEvent::ImpairmentEnd {
                    index: Snap::load(r)?,
                },
                13 => SimEvent::MetricsProbe,
                _ => return Err(SnapError::Corrupt("event tag")),
            })
        }
    }
}
