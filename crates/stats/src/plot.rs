//! Terminal line plots.
//!
//! The figure binaries render their series as ASCII charts so the curve
//! *shapes* — who saturates where, who crosses whom — are visible right
//! in the harness output, next to the exact numbers.

use crate::series::Series;
use std::fmt::Write as _;

/// Marker characters assigned to series in order.
const MARKS: &[char] = &['B', 'P', '1', '2', '*', '+', 'x', 'o'];

/// Render a family of series as an ASCII chart of the given size.
/// X positions interpolate linearly between the minimum and maximum x
/// across all series; y starts at zero unless data goes negative.
pub fn ascii_plot(
    title: &str,
    y_label: &str,
    series: &[Series],
    width: usize,
    height: usize,
) -> String {
    assert!(width >= 16 && height >= 4);
    let pts: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    if pts.is_empty() {
        return format!("{title}\n(no data)\n");
    }
    let x_min = pts.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
    let x_max = pts.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
    let y_min = pts
        .iter()
        .map(|p| p.1)
        .fold(f64::INFINITY, f64::min)
        .min(0.0);
    let y_max = pts.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
    let x_span = (x_max - x_min).max(1e-12);
    let y_span = (y_max - y_min).max(1e-12);

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let mark = MARKS[si % MARKS.len()];
        // Draw interpolated segments so curves read as lines.
        for w in s.points.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            let steps = width * 2;
            for k in 0..=steps {
                let f = k as f64 / steps as f64;
                let x = x0 + (x1 - x0) * f;
                let y = y0 + (y1 - y0) * f;
                let col = ((x - x_min) / x_span * (width - 1) as f64).round() as usize;
                let row = ((y - y_min) / y_span * (height - 1) as f64).round() as usize;
                let row = height - 1 - row.min(height - 1);
                let cell = &mut grid[row][col.min(width - 1)];
                // Data points win over line dots; earlier series keep
                // their cell on exact ties (stable, documented).
                if *cell == ' ' || *cell == '.' {
                    *cell = if k == 0 || k == steps { mark } else { '.' };
                }
            }
        }
        // Single-point series still get their marker.
        if s.points.len() == 1 {
            let (x, y) = s.points[0];
            let col = ((x - x_min) / x_span * (width - 1) as f64).round() as usize;
            let row = ((y - y_min) / y_span * (height - 1) as f64).round() as usize;
            let row = height - 1 - row.min(height - 1);
            grid[row][col.min(width - 1)] = mark;
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, s)| format!("{}={}", MARKS[i % MARKS.len()], s.name))
        .collect();
    let _ = writeln!(out, "[{}]", legend.join("  "));
    let _ = writeln!(out, "{y_max:>9.1} ┤{}", grid[0].iter().collect::<String>());
    for row in &grid[1..height - 1] {
        let _ = writeln!(out, "{:>9} │{}", "", row.iter().collect::<String>());
    }
    let _ = writeln!(
        out,
        "{y_min:>9.1} ┤{}",
        grid[height - 1].iter().collect::<String>()
    );
    let _ = writeln!(out, "{:>10}└{}", "", "─".repeat(width));
    let _ = writeln!(
        out,
        "{:>11}{:<12.0}{:>width$.0}   ({y_label})",
        "",
        x_min,
        x_max,
        width = width.saturating_sub(12)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(name: &str, pts: &[(f64, f64)]) -> Series {
        let mut s = Series::new(name);
        for &(x, y) in pts {
            s.push(x, y);
        }
        s
    }

    #[test]
    fn plot_contains_markers_and_legend() {
        let a = series("Basic 802.11", &[(300.0, 350.0), (1000.0, 550.0)]);
        let b = series("PCMAC", &[(300.0, 360.0), (1000.0, 600.0)]);
        let out = ascii_plot("Fig 8", "kbps", &[a, b], 40, 10);
        assert!(out.contains("B=Basic 802.11"));
        assert!(out.contains("P=PCMAC"));
        assert!(out.contains('B'));
        assert!(out.contains('P'));
        assert!(out.contains("600.0"), "y max labelled: {out}");
    }

    #[test]
    fn empty_series_is_graceful() {
        let out = ascii_plot("empty", "y", &[], 40, 10);
        assert!(out.contains("no data"));
    }

    #[test]
    fn higher_curve_renders_above_lower() {
        let low = series("low", &[(0.0, 10.0), (10.0, 10.0)]);
        let high = series("high", &[(0.0, 90.0), (10.0, 90.0)]);
        let out = ascii_plot("t", "y", &[low.clone(), high.clone()], 30, 12);
        let lines: Vec<&str> = out.lines().collect();
        let row_of = |m: char| {
            lines
                .iter()
                .position(|l| l.contains(m) && (l.contains('┤') || l.contains('│')))
                .unwrap()
        };
        // 'h' mark is MARKS[1]='P'... markers are positional: low gets 'B',
        // high gets 'P'. High values sit on earlier (upper) lines.
        assert!(row_of('P') < row_of('B'), "{out}");
    }

    #[test]
    fn single_point_series_marked() {
        let s = series("solo", &[(5.0, 5.0)]);
        let out = ascii_plot("t", "y", &[s], 20, 6);
        assert!(out.contains('B'));
    }
}
