//! Serde round-trip stability for the spec types: JSON → struct → JSON
//! must be a fixed point, so spec files survive load/save cycles and the
//! `CAMPAIGN_*.json` artifacts are reparseable.

use pcmac::{
    ChurnConfig, CrashWindow, FaultConfig, FlowShape, ImpairmentBurst, ScenarioConfig,
    ShadowingConfig, Variant,
};
use pcmac_campaign::{
    AodvSpec, AxesSpec, Axis, CampaignSpec, MobilitySpec, NodesSpec, PlacementSpec, ProtocolSpec,
    RadioSpec, ScenarioSpec, TrafficPattern, TrafficSpec,
};
use pcmac_phy::CapturePolicy;
use proptest::prelude::*;
use serde::Value;

/// Build a scenario spec from fuzzed knobs, exercising every placement,
/// pattern, and shape variant.
fn spec_from(
    placement_idx: usize,
    pattern_idx: usize,
    shape_idx: usize,
    count: usize,
    load: f64,
    mobile: bool,
    shadowed: bool,
) -> ScenarioSpec {
    let placement = match placement_idx % 8 {
        0 => PlacementSpec::Uniform,
        1 => PlacementSpec::Density { per_km2: 40.0 },
        2 => PlacementSpec::Grid { spacing: 120.0 },
        3 => PlacementSpec::Chain { spacing: 80.0 },
        4 => PlacementSpec::Ring { radius: 200.0 },
        5 => PlacementSpec::Clustered {
            clusters: 2,
            spread_m: 60.0,
        },
        6 => PlacementSpec::Corridor { width_m: 100.0 },
        _ => PlacementSpec::Explicit {
            points: (0..count)
                .map(|i| pcmac_engine::Point::new(50.0 + 100.0 * i as f64, 500.0))
                .collect(),
        },
    };
    let pattern = match pattern_idx % 3 {
        0 => TrafficPattern::RandomPairs { flows: 2 },
        1 => TrafficPattern::NeighbourPairs { flows: 2 },
        _ => TrafficPattern::Explicit {
            pairs: vec![(0, 1), (1, 2)],
        },
    };
    let shape = match shape_idx % 3 {
        0 => FlowShape::Cbr,
        1 => FlowShape::Poisson,
        _ => FlowShape::OnOff {
            mean_on_s: 1.5,
            mean_off_s: 0.5,
        },
    };
    // Density and Explicit placements imply their own count.
    let uses_count = !matches!(
        placement,
        PlacementSpec::Explicit { .. } | PlacementSpec::Density { .. }
    );
    ScenarioSpec {
        name: format!("fuzz-{placement_idx}-{pattern_idx}-{shape_idx}"),
        variant: Variant::ALL[placement_idx % 4],
        duration_s: 5.0,
        field: (1000.0, 1000.0),
        nodes: NodesSpec {
            count: uses_count.then_some(count),
            placement,
            mobility: mobile.then_some(MobilitySpec {
                speed_mps: 2.5,
                pause_s: 1.0,
            }),
        },
        traffic: TrafficSpec {
            pattern,
            bytes: 512,
            offered_load_kbps: load,
            shape,
        },
        power_levels_mw: None,
        shadowing: shadowed.then_some(ShadowingConfig {
            sigma_db: 4.0,
            symmetric: true,
        }),
        protocol: None,
        radio: None,
        aodv: None,
        faults: None,
        metrics: None,
        trace: None,
        execution: None,
    }
}

/// Overlay sections built from fuzzed presence flags: each bit decides
/// whether one optional knob is set.
fn overlays_from(bits: u32) -> (ProtocolSpec, RadioSpec, AodvSpec) {
    let on = |i: u32| bits & (1 << i) != 0;
    let protocol = ProtocolSpec {
        safety_factor: on(0).then_some(0.9),
        capture_ratio: on(1).then_some(8.0),
        ctrl_rate_bps: on(2).then_some(250_000),
        history_expiry_s: on(3).then_some(2.5),
        max_retx: on(4).then_some(6),
        four_way_handshake: on(5).then_some(true),
        queue_capacity: on(6).then_some(25),
        rts_threshold: on(7).then_some(256),
    };
    let radio = RadioSpec {
        rx_thresh_mw: on(8).then_some(4.0e-7),
        cs_thresh_mw: on(9).then_some(2.0e-8),
        capture_ratio: on(10).then_some(6.0),
        noise_floor_mw: on(11).then_some(2.0e-9),
        capture_policy: on(12).then_some(if on(13) {
            CapturePolicy::Continuous
        } else {
            CapturePolicy::StartOnly
        }),
    };
    let aodv = AodvSpec {
        active_route_timeout_s: on(14).then_some(8.0),
        rreq_cache_timeout_s: on(15).then_some(5.0),
        rreq_wait_s: on(16).then_some(1.5),
        rreq_retries: on(17).then_some(2),
        buffer_capacity: on(18).then_some(32),
        buffer_timeout_s: on(19).then_some(20.0),
        rreq_ttl: on(20).then_some(16),
    };
    (protocol, radio, aodv)
}

/// A fault plan built from fuzzed presence flags, mirroring
/// [`overlays_from`]: each bit decides whether one optional fault
/// mechanism is present.
fn faults_from(bits: u32) -> FaultConfig {
    let on = |i: u32| bits & (1 << i) != 0;
    FaultConfig {
        crashes: on(0).then(|| {
            vec![
                CrashWindow {
                    node: 0,
                    at_s: 1.0,
                    recover_s: on(1).then_some(2.0),
                },
                CrashWindow {
                    node: 2,
                    at_s: 1.5,
                    recover_s: None,
                },
            ]
        }),
        churn: on(2).then(|| ChurnConfig {
            mean_uptime_s: 3.0,
            mean_downtime_s: 0.5,
            start_s: on(3).then_some(0.5),
            stop_s: on(4).then_some(4.0),
        }),
        expire_routes: on(5).then_some(on(6)),
        impairments: on(7).then(|| {
            vec![ImpairmentBurst {
                start_s: 1.0,
                stop_s: 2.0,
                extra_loss_db: 10.0,
                noise_mult: on(8).then_some(3.0),
            }]
        }),
        energy_budget_mj: on(9).then_some(500.0),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// FaultConfig round-trips stably on the spec for every combination
    /// of present/absent fault mechanisms, and reaches the materialized
    /// `ScenarioConfig` verbatim.
    #[test]
    fn fault_config_round_trips_and_materializes(bits in any::<u32>()) {
        let mut spec = spec_from(0, 0, 0, 8, 200.0, false, false);
        let faults = faults_from(bits);
        spec.faults = Some(faults.clone());
        let json = spec.to_json();
        let back = ScenarioSpec::from_json(&json).expect("reparses");
        prop_assert_eq!(&back, &spec);
        prop_assert_eq!(back.to_json(), json, "second serialization must match the first");
        let cfg = spec.materialize(3).expect("faulted spec materializes");
        prop_assert_eq!(cfg.faults.as_ref(), Some(&faults));
    }

    /// The dotted fault patch paths build the same plan as setting the
    /// struct directly: a JSON campaign axis can express any fault knob.
    #[test]
    fn fault_patch_paths_reach_the_spec(
        uptime in 1.0f64..60.0,
        downtime in 0.1f64..10.0,
        budget in 1.0f64..10_000.0,
        expire in any::<bool>(),
    ) {
        let mut patched = spec_from(0, 0, 0, 8, 200.0, false, false);
        patched
            .apply_patch("faults.churn.mean_uptime_s", &Value::F64(uptime))
            .expect("path applies");
        patched
            .apply_patch("faults.churn.mean_downtime_s", &Value::F64(downtime))
            .expect("path applies");
        patched
            .apply_patch("faults.energy_budget_mj", &Value::F64(budget))
            .expect("path applies");
        patched
            .apply_patch("faults.expire_routes", &Value::Bool(expire))
            .expect("path applies");

        let mut direct = spec_from(0, 0, 0, 8, 200.0, false, false);
        direct.faults = Some(FaultConfig {
            churn: Some(ChurnConfig {
                mean_uptime_s: uptime,
                mean_downtime_s: downtime,
                start_s: None,
                stop_s: None,
            }),
            expire_routes: Some(expire),
            energy_budget_mj: Some(budget),
            ..FaultConfig::default()
        });
        prop_assert_eq!(&patched, &direct);
        prop_assert_eq!(patched.to_json(), direct.to_json());
    }

    /// ScenarioSpec: JSON → struct → JSON is a fixed point, and the
    /// reparsed struct is equal to the original.
    #[test]
    fn scenario_spec_json_is_stable(
        placement_idx in 0usize..8,
        pattern_idx in 0usize..3,
        shape_idx in 0usize..3,
        count in 4usize..12,
        load in 50.0f64..500.0,
        mobile in any::<bool>(),
        shadowed in any::<bool>(),
    ) {
        let spec = spec_from(placement_idx, pattern_idx, shape_idx, count, load, mobile, shadowed);
        let json = spec.to_json();
        let back = ScenarioSpec::from_json(&json).expect("reparses");
        prop_assert_eq!(&back, &spec);
        prop_assert_eq!(back.to_json(), json, "second serialization must match the first");
    }

    /// CampaignSpec round trip, including every axis populated.
    #[test]
    fn campaign_spec_json_is_stable(
        placement_idx in 0usize..8,
        seeds in proptest::collection::vec(0u64..1000, 1..4),
        with_counts in any::<bool>(),
        with_levels in any::<bool>(),
    ) {
        let base = spec_from(placement_idx, 0, 0, 8, 200.0, false, false);
        let counts_ok = with_counts && !matches!(
            base.nodes.placement,
            PlacementSpec::Density { .. } | PlacementSpec::Explicit { .. }
        );
        let spec = CampaignSpec {
            name: "fuzz-campaign".into(),
            base,
            duration_s: Some(3.0),
            seeds,
            axes: Some(AxesSpec {
                loads_kbps: Some(vec![100.0, 200.0]),
                node_counts: counts_ok.then(|| vec![6, 10]),
                variants: Some(vec![Variant::Basic, Variant::Pcmac]),
                power_level_sets_mw: with_levels.then(|| vec![
                    vec![281.83815],
                    vec![1.0, 15.0, 281.83815],
                ]),
            }),
            sweep: None,
        };
        let json = spec.to_json();
        let back = CampaignSpec::from_json(&json).expect("reparses");
        prop_assert_eq!(&back, &spec);
        prop_assert_eq!(back.to_json(), json);
    }

    /// The protocol/radio/AODV overlay sections round-trip stably for
    /// every combination of present/absent knobs.
    #[test]
    fn overlay_specs_round_trip(bits in any::<u32>()) {
        let (protocol, radio, aodv) = overlays_from(bits);
        let mut spec = spec_from(0, 0, 0, 8, 200.0, false, false);
        spec.protocol = Some(protocol);
        spec.radio = Some(radio);
        spec.aodv = Some(aodv);
        let json = spec.to_json();
        let back = ScenarioSpec::from_json(&json).expect("reparses");
        prop_assert_eq!(&back, &spec);
        prop_assert_eq!(back.to_json(), json);
    }

    /// Every `Axis` variant (including generic patches over raw JSON
    /// values) round-trips stably inside a campaign's `sweep` list.
    #[test]
    fn sweep_axes_round_trip(kind in 0usize..6, seeds in proptest::collection::vec(0u64..100, 1..3)) {
        let axis = match kind {
            0 => Axis::Load { values: vec![100.0, 200.0] },
            1 => Axis::Nodes { values: vec![6, 10] },
            2 => Axis::Variants { values: vec![Variant::Basic, Variant::Pcmac] },
            3 => Axis::PowerLevels { sets_mw: vec![vec![281.83815], vec![1.0, 281.83815]] },
            4 => Axis::Patch {
                path: "mac.pcmac.safety_factor".into(),
                values: vec![Value::F64(0.5), Value::F64(0.7)],
            },
            _ => Axis::Patch {
                path: "radio.capture_policy".into(),
                values: vec![Value::Str("StartOnly".into()), Value::Str("Continuous".into())],
            },
        };
        let spec = CampaignSpec {
            name: "fuzz-sweep".into(),
            base: spec_from(0, 0, 0, 8, 200.0, false, false),
            duration_s: Some(3.0),
            seeds,
            axes: None,
            sweep: Some(vec![axis]),
        };
        let json = spec.to_json();
        let back = CampaignSpec::from_json(&json).expect("reparses");
        prop_assert_eq!(&back, &spec);
        prop_assert_eq!(back.to_json(), json);
    }

    /// Materialization honours every overlay knob: the resulting
    /// `ScenarioConfig` carries exactly the overridden values.
    #[test]
    fn overlays_reach_the_materialized_config(bits in any::<u32>()) {
        let (protocol, radio, aodv) = overlays_from(bits);
        let mut spec = spec_from(0, 0, 0, 8, 200.0, false, false);
        spec.protocol = Some(protocol.clone());
        spec.radio = Some(radio.clone());
        spec.aodv = Some(aodv.clone());
        let cfg = spec.materialize(3).expect("overlayed spec materializes");
        prop_assert_eq!(
            cfg.mac.pcmac.safety_factor,
            protocol.safety_factor.unwrap_or(0.7)
        );
        prop_assert_eq!(
            cfg.mac.pcmac.ctrl_rate_bps,
            protocol.ctrl_rate_bps.unwrap_or(500_000)
        );
        prop_assert_eq!(
            cfg.mac.pcmac.four_way_handshake,
            protocol.four_way_handshake.unwrap_or(false)
        );
        prop_assert_eq!(cfg.mac.queue_capacity, protocol.queue_capacity.unwrap_or(50));
        prop_assert_eq!(
            cfg.radio.rx_thresh.value(),
            radio.rx_thresh_mw.unwrap_or(3.652e-7)
        );
        // The MAC's needed-power computation must track the radio's
        // decode threshold.
        prop_assert_eq!(cfg.mac.rx_thresh.value(), cfg.radio.rx_thresh.value());
        prop_assert_eq!(
            cfg.radio.capture_policy,
            radio.capture_policy.unwrap_or(CapturePolicy::StartOnly)
        );
        prop_assert_eq!(cfg.aodv.rreq_retries, aodv.rreq_retries.unwrap_or(3));
        prop_assert_eq!(cfg.aodv.buffer_capacity, aodv.buffer_capacity.unwrap_or(64));
    }

    /// ScenarioConfig (the materialized form) also round-trips stably —
    /// covering the WaypointFrom setup and non-CBR shapes the spec layer
    /// can now produce.
    #[test]
    fn materialized_config_json_is_stable(
        placement_idx in 0usize..8,
        shape_idx in 0usize..3,
        seed in 0u64..500,
        mobile in any::<bool>(),
    ) {
        let spec = spec_from(placement_idx, 0, shape_idx, 8, 150.0, mobile, false);
        let cfg = spec.materialize(seed).expect("valid spec materializes");
        let json = cfg.to_json();
        let back = ScenarioConfig::from_json(&json).expect("reparses");
        prop_assert_eq!(back.to_json(), json, "second serialization must match the first");
    }
}

#[test]
fn pre_redesign_spec_json_still_parses() {
    // A spec written before the protocol/radio/aodv sections and the
    // `sweep` axis list existed must load with every overlay absent.
    let json = r#"{
      "name": "old",
      "base": {
        "name": "old-base",
        "variant": "Basic",
        "duration_s": 5.0,
        "field": [1000.0, 1000.0],
        "nodes": { "count": 6, "placement": "Uniform", "mobility": null },
        "traffic": {
          "pattern": { "RandomPairs": { "flows": 3 } },
          "bytes": 512,
          "offered_load_kbps": 200.0,
          "shape": "Cbr"
        },
        "power_levels_mw": null,
        "shadowing": null
      },
      "duration_s": null,
      "seeds": [1],
      "axes": {
        "loads_kbps": [100.0, 200.0],
        "node_counts": null,
        "variants": null,
        "power_level_sets_mw": null
      }
    }"#;
    let spec = CampaignSpec::from_json(json).expect("old shape parses");
    assert_eq!(spec.base.protocol, None);
    assert_eq!(spec.base.radio, None);
    assert_eq!(spec.base.aodv, None);
    assert_eq!(spec.sweep, None);
    spec.validate().expect("old shape is valid");
    assert_eq!(spec.point_count(), 2);
}

#[test]
fn paper_spec_materializes_identically_to_the_constructor() {
    // The whole point of the refactor: the declarative path must
    // reproduce the constructor-built paper scenario bit for bit, so the
    // figure binaries lose nothing by driving the campaign subsystem.
    for (seed, load) in [(1u64, 300.0), (7, 650.0), (42, 1000.0)] {
        for variant in Variant::ALL {
            let mut spec = ScenarioSpec::paper();
            spec.variant = variant;
            spec.traffic.offered_load_kbps = load;
            let from_spec = spec.materialize(seed).expect("paper spec is valid");
            let from_ctor = ScenarioConfig::paper(variant, load, seed);
            // Compare through JSON: every field except the label must
            // match (names differ: spec names carry the seed).
            let mut a = from_spec.clone();
            let mut b = from_ctor.clone();
            a.name = String::new();
            b.name = String::new();
            assert_eq!(
                a.to_json(),
                b.to_json(),
                "variant {variant:?} load {load} seed {seed}"
            );
        }
    }
}
