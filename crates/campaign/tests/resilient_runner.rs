//! The campaign runner must survive hostile points: a panicking run and
//! a hanging run are recorded as structured failures, the partial
//! artifact is persisted incrementally, and a rerun resumes from it
//! without recomputing the points that already finished.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pcmac::{FlowShape, ScenarioConfig, Variant};
use pcmac_campaign::{
    run_campaign_with, AxesSpec, CampaignReport, CampaignSpec, FailureKind, NodesSpec,
    PlacementSpec, RunOptions, ScenarioSpec, TrafficPattern, TrafficSpec,
};

/// Three grid cells (loads 50/75/100) x two seeds: load 50 is clean,
/// load 75 panics on seed 1, load 100 hangs on seed 2.
fn hostile_campaign() -> CampaignSpec {
    CampaignSpec {
        name: "hostile".into(),
        base: ScenarioSpec {
            name: "hostile".into(),
            variant: Variant::Basic,
            duration_s: 2.0,
            field: (500.0, 500.0),
            nodes: NodesSpec {
                count: Some(4),
                placement: PlacementSpec::Ring { radius: 80.0 },
                mobility: None,
            },
            traffic: TrafficSpec {
                pattern: TrafficPattern::NeighbourPairs { flows: 2 },
                bytes: 512,
                offered_load_kbps: 100.0,
                shape: FlowShape::Cbr,
            },
            power_levels_mw: None,
            shadowing: None,
            protocol: None,
            radio: None,
            aodv: None,
            faults: None,
            metrics: None,
            trace: None,
            execution: None,
        },
        duration_s: None,
        seeds: vec![1, 2],
        axes: Some(AxesSpec {
            loads_kbps: Some(vec![50.0, 75.0, 100.0]),
            ..AxesSpec::default()
        }),
        sweep: None,
    }
}

/// Aggregate offered load of a materialized config, to identify which
/// grid cell a `run_fn` invocation belongs to.
fn load_of(cfg: &ScenarioConfig) -> f64 {
    (cfg.flows.iter().map(|f| f.rate_bps).sum::<f64>() / 1000.0).round()
}

fn scratch_artifact(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "pcmac-resilient-{}-{}.json",
        tag,
        std::process::id()
    ))
}

#[test]
fn runner_survives_panics_and_hangs_then_resumes() {
    let out = scratch_artifact("survive");
    let _ = std::fs::remove_file(&out);

    // First pass: one panicking point, one hanging point.
    let opts = RunOptions {
        threads: 2,
        timeout: Some(Duration::from_millis(400)),
        // A non-cooperative sleeper only gets a short grace before it
        // is abandoned, keeping the test fast.
        grace: Some(Duration::from_millis(200)),
        out: Some(out.clone()),
        resume: false,
        ..RunOptions::default()
    };
    let spec = hostile_campaign();
    let outcome = run_campaign_with(&spec, opts, |cfg, ctl| {
        let load = load_of(&cfg);
        if load == 75.0 && cfg.seed == 1 {
            panic!("injected panic at load 75 seed 1");
        }
        if load == 100.0 && cfg.seed == 2 {
            // Far beyond the watchdog budget, and deaf to the cancel
            // token: the runner must abandon it after the grace period.
            std::thread::sleep(Duration::from_secs(20));
        }
        ctl.run(cfg)
    })
    .expect("the sweep itself survives hostile points");

    // Both failures are recorded, with the right kinds and coordinates.
    let failures = outcome
        .report
        .failures
        .as_ref()
        .expect("failures are reported");
    assert_eq!(failures.len(), 2);
    let panicked = failures
        .iter()
        .find(|f| f.kind == FailureKind::Panicked)
        .expect("panicking point recorded");
    assert_eq!(panicked.key.load_kbps, 75.0);
    assert_eq!(panicked.seed, Some(1));
    assert!(
        panicked.error.contains("injected panic"),
        "panic message captured: {}",
        panicked.error
    );
    let hung = failures
        .iter()
        .find(|f| f.kind == FailureKind::TimedOut)
        .expect("hanging point recorded");
    assert_eq!(hung.key.load_kbps, 100.0);
    assert_eq!(hung.seed, Some(2));

    // Only the clean cell has a summary; the report says "incomplete".
    assert_eq!(outcome.report.complete, Some(false));
    assert_eq!(outcome.report.points.len(), 1);
    assert_eq!(outcome.report.points[0].key.load_kbps, 50.0);

    // The artifact on disk is the same partial report.
    let text = std::fs::read_to_string(&out).expect("partial artifact written");
    let on_disk: CampaignReport = serde_json::from_str(&text).expect("artifact parses");
    assert_eq!(on_disk.complete, Some(false));
    assert_eq!(on_disk.points.len(), 1);
    assert_eq!(on_disk.failures.as_ref().map(Vec::len), Some(2));

    // Second pass: same artifact, healthy run_fn. Only the two failed
    // cells (2 cells x 2 seeds) are recomputed.
    let recomputed = Arc::new(AtomicUsize::new(0));
    let counter = recomputed.clone();
    let opts = RunOptions {
        threads: 2,
        timeout: Some(Duration::from_secs(30)),
        out: Some(out.clone()),
        resume: true,
        ..RunOptions::default()
    };
    let outcome = run_campaign_with(&spec, opts, move |cfg, ctl| {
        counter.fetch_add(1, Ordering::SeqCst);
        assert_ne!(
            load_of(&cfg),
            50.0,
            "the finished cell must not be recomputed on resume"
        );
        ctl.run(cfg)
    })
    .expect("resume pass runs");

    assert_eq!(recomputed.load(Ordering::SeqCst), 4);
    assert_eq!(outcome.runs.len(), 4, "only this pass's runs are returned");
    assert_eq!(outcome.report.complete, Some(true));
    assert!(outcome.report.failures.is_none());
    assert_eq!(outcome.report.points.len(), 3);
    for p in &outcome.report.points {
        assert_eq!(p.seeds, vec![1, 2]);
    }
    // Point order follows the expansion order despite the resume.
    let loads: Vec<f64> = outcome
        .report
        .points
        .iter()
        .map(|p| p.key.load_kbps)
        .collect();
    assert_eq!(loads, vec![50.0, 75.0, 100.0]);

    let text = std::fs::read_to_string(&out).expect("final artifact written");
    let on_disk: CampaignReport = serde_json::from_str(&text).expect("artifact parses");
    assert_eq!(on_disk.complete, Some(true));
    assert_eq!(on_disk.points.len(), 3);
    let _ = std::fs::remove_file(&out);
}

#[test]
fn fresh_run_ignores_a_finished_artifact() {
    let out = scratch_artifact("fresh");
    let _ = std::fs::remove_file(&out);
    let mut spec = hostile_campaign();
    spec.axes = Some(AxesSpec {
        loads_kbps: Some(vec![50.0]),
        ..AxesSpec::default()
    });

    let opts = RunOptions {
        threads: 0,
        timeout: None,
        out: Some(out.clone()),
        resume: false,
        ..RunOptions::default()
    };
    let first = run_campaign_with(&spec, opts, |cfg, ctl| ctl.run(cfg)).expect("runs");
    assert_eq!(first.report.complete, Some(true));

    // `resume: true` against a COMPLETE artifact recomputes everything:
    // only partial artifacts are resumable.
    let counted = Arc::new(AtomicUsize::new(0));
    let counter = counted.clone();
    let opts = RunOptions {
        threads: 0,
        timeout: None,
        out: Some(out.clone()),
        resume: true,
        ..RunOptions::default()
    };
    let second = run_campaign_with(&spec, opts, move |cfg, ctl| {
        counter.fetch_add(1, Ordering::SeqCst);
        ctl.run(cfg)
    })
    .expect("runs");
    assert_eq!(counted.load(Ordering::SeqCst), 2);
    assert_eq!(second.report.complete, Some(true));
    let _ = std::fs::remove_file(&out);
}

#[test]
fn invalid_grid_cells_are_structured_failures_not_aborts() {
    // A sweep axis that patches a value the spec layer rejects at
    // materialization time must surface as `FailureKind::Invalid`.
    use serde::Value;
    let mut spec = hostile_campaign();
    spec.axes = None;
    spec.seeds = vec![1];
    spec.sweep = Some(vec![pcmac_campaign::Axis::Patch {
        path: "faults.churn.mean_uptime_s".into(),
        values: vec![Value::F64(5.0), Value::F64(-3.0)],
    }]);

    // Validation catches the defect up front, listing the poisoned cell.
    let err = spec.grid().expect_err("negative uptime is invalid");
    assert!(
        err.problems.iter().any(|p| p.contains("mean uptime")),
        "aggregated defect list names the knob: {:?}",
        err.problems
    );
}
