//! The simulator: event dispatch and the wireless channel.
//!
//! The channel is not an object — it is a *pattern*: when a node
//! transmits, the simulator computes the received power at every
//! candidate receiver from the propagation model and current positions,
//! and schedules `ArrivalStart`/`ArrivalEnd` events after the
//! speed-of-light delay. Each receiver's radio then decides locally what
//! it heard. Arrivals weaker than the configured interference floor are
//! culled (they cannot affect carrier sense or any plausible SINR).
//!
//! # The hot path
//!
//! Candidate receivers come from a [`UniformGrid`] spatial index sized
//! to the maximum reception range (max transmit power against the
//! interference floor), so a transmission visits only the cells its
//! signal can reach instead of scanning all N nodes
//! ([`ChannelIndexMode::BruteForce`] keeps the O(N) reference scan for
//! equivalence tests and benchmarks — both paths schedule the identical
//! arrival sequence). Candidate lists are sorted by node id, so the
//! event schedule is independent of the index's internal bucket order.
//!
//! # Mobility refresh: lazy by default
//!
//! Under [`MobilityRefreshMode::Lazy`] the index tolerates a per-node
//! drift *pad* (a fraction of a grid cell): each node carries a refresh
//! deadline — the instant its position could first drift past the pad,
//! from [`Mobility::stale_after`] — kept in a min-heap, and advancing
//! the clock re-samples only nodes whose deadlines have passed, O(moved)
//! instead of O(N). Queries inflate their radius by the pad, so the
//! ≤ pad-stale index still yields a superset of every true receiver;
//! the transmitter and each candidate are then re-sampled *exactly* at
//! the current instant before any gain or delay is computed. Physics
//! therefore always runs on exact positions and a lazy run is
//! bit-identical to an eager one — only the number of waypoint
//! evaluations changes.
//!
//! Propagation is dispatched statically through [`PropagationModel`].
//! Pairwise gains replay from a cache per [`GainCacheMode`]: a dense
//! precomputed [`GainCache`] for small fully-static scenarios, or the
//! block-sparse movement-invalidated [`SparseGainCache`] everywhere
//! else (mobile scenarios and networks past the dense guard). Event
//! dispatch draws its scratch buffers from per-type pools on the
//! simulator, so the steady state allocates nothing.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use pcmac_engine::{
    Duration, EventQueue, Milliwatts, NodeId, Point, RngStream, SimTime, UniformGrid,
};
use pcmac_mac::{CtrlFrame, Frame, MacAction};
use pcmac_mobility::{placement, Mobility, RandomWaypoint};
use pcmac_phy::energy::RadioMode;
use pcmac_phy::radio::RadioEvent;
use pcmac_phy::{GainCache, PropagationModel, Shadowed, SparseGainCache, TwoRayGround};

use crate::config::{
    ChannelIndexMode, ExecutionMode, GainCacheMode, MobilityRefreshMode, NodeSetup, ScenarioConfig,
};
use crate::event::SimEvent;
use crate::fault::FaultConfig;
use crate::metrics::{Drop as PacketDrop, MetricsState};
use crate::node::{Node, TrafficSource};
use crate::report::{LatencySummary, ResilienceReport, RunReport};
use crate::snapshot::SimSnapshot;
use crate::soa::HotState;
use pcmac_snap::{SnapError, SnapReader, SnapWriter};

/// Speed of light (m/s) for propagation delays.
const C: f64 = 299_792_458.0;

/// Relative slack on the culling radius, absorbing the floating-point
/// error of inverting the path-loss formula so the spatial index can
/// never drop a receiver the exact power test would keep.
const RADIUS_SLACK: f64 = 1.0 + 1e-9;

/// *Dense* gain caches are quadratic in node count; beyond this many
/// nodes the table would dominate memory for little win and dense
/// requests fall back to live evaluation (the block-sparse cache has no
/// such guard — its memory follows the touched local pairs).
const GAIN_CACHE_MAX_NODES: usize = 2048;

/// Lazy-refresh drift pad, as a fraction of a grid cell: a node's
/// indexed position may go stale by up to this much before its refresh
/// deadline fires. Larger pads mean rarer deadline refreshes but
/// slightly fatter candidate rings (queries inflate by the pad).
const REFRESH_PAD_CELL_FRACTION: f64 = 0.125;

/// Query-side inflation over the drift pad, absorbing floating-point
/// error at the drift boundary so a node sampled exactly at its
/// deadline can never be missed.
const REFRESH_PAD_SLACK: f64 = 1.01;

/// How the channel replays pairwise gains (resolved from
/// [`GainCacheMode`] against the scenario's actual shape).
#[derive(Debug)]
enum GainCacheState {
    /// Evaluate the propagation model per lookup.
    Live,
    /// Precomputed N×N table (fully static scenarios).
    Dense(GainCache),
    /// Block-sparse movement-invalidated cache.
    Sparse(SparseGainCache),
}

/// A free list of scratch buffers: `take` hands out an empty vector
/// (reusing a previously returned allocation when one exists), `put`
/// clears and shelves it. Action application is reentrant — MAC actions
/// can trigger routing actions that trigger MAC actions — and each
/// nesting level simply takes its own buffer, so pooling is safe at any
/// recursion depth while the steady state allocates nothing.
#[derive(Debug)]
struct BufPool<T> {
    free: Vec<Vec<T>>,
}

impl<T> Default for BufPool<T> {
    fn default() -> Self {
        BufPool { free: Vec::new() }
    }
}

impl<T> BufPool<T> {
    fn take(&mut self) -> Vec<T> {
        self.free.pop().unwrap_or_default()
    }

    fn put(&mut self, mut buf: Vec<T>) {
        buf.clear();
        self.free.push(buf);
    }
}

/// Runtime fault-injection state, present only when the scenario
/// carries a fault plan. Every transition is either precomputed from
/// the master seed at build time (crashes, churn, impairment bursts)
/// or triggered by deterministic event-stream facts (energy budgets),
/// and none of them touch positions, the spatial index, or the gain
/// caches — which is what keeps faulted runs bit-identical across
/// channel-index, mobility-refresh, and gain-cache modes.
///
/// Crash semantics: a down node schedules no arrivals (nothing it
/// "sends" radiates), is skipped as a receiver (it hears nothing new),
/// and accrues no transmit energy. Its MAC/AODV state machines keep
/// running against the dead radio, so their timer chains stay
/// consistent and a later recovery resumes cleanly; arrivals already
/// in flight at the crash instant still land, keeping the radio's
/// interference bookkeeping exact.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    plan: FaultConfig,
    /// `true` while the node is down.
    down: Vec<bool>,
    /// Which impairment bursts are currently active.
    burst_active: Vec<bool>,
    /// Product of the active bursts' linear gain attenuations.
    impair_gain: f64,
    /// Product of the active bursts' noise multipliers.
    noise_mult: f64,
    /// Committed radiated data-channel energy per node (mJ).
    committed_mj: Vec<f64>,
    /// Nodes whose budget ran out (their `NodeDown` is permanent).
    energy_dead: Vec<bool>,
    /// Fault window from the precomputed schedule alone: start of the
    /// first activation, end of the last deactivation. Energy deaths
    /// extend it during the [`FaultState::into_report`] replay.
    window_start: Option<SimTime>,
    window_end: Option<SimTime>,
    /// End of the run (an exhausted budget extends the window to here).
    run_end: SimTime,
    crashes: u64,
    recoveries: u64,
    energy_deaths: u64,
    /// Open route-repair observations: (node, destination, first failure).
    pending_repairs: Vec<(u32, u32, SimTime)>,
    repairs_started: u64,
    repair_latency: pcmac_stats::StreamingQuantile,
    /// Phase-classification facts in processing order, each keyed by the
    /// global `(time, rank)` of the event that produced it. Classifying
    /// lazily at report time (instead of against a live, mutating fault
    /// window) is what lets region shards — which each observe only their
    /// own slice of the event stream — merge their facts into the exact
    /// single-threaded counters: sort by key and replay.
    records: Vec<(SimTime, u128, FaultRecord)>,
}

/// One phase-classification fact (see [`FaultState::records`]).
#[derive(Debug, Clone, Copy)]
enum FaultRecord {
    /// A source emitted an application packet (classified by record time).
    Sent,
    /// A packet reached its sink (classified by its emission time; the
    /// record time drives reconvergence detection).
    Delivered {
        /// When the delivered packet was emitted.
        created_at: SimTime,
    },
    /// A node's energy budget ran out; it dies (and the fault window
    /// extends to the end of the run) at `death_at`.
    EnergyDeath {
        /// End of the transmission that exhausted the budget.
        death_at: SimTime,
    },
}

impl FaultState {
    /// Merge per-shard fault states into the global one: per-node state is
    /// taken from each node's owner, counters are summed in shard order,
    /// and the classification records are merged by their global
    /// `(time, rank)` keys (a stable sort, so same-shard facts from one
    /// event keep their intra-event order; cross-shard key collisions are
    /// impossible because a rank pins the event to one node).
    pub(crate) fn merge(mut parts: Vec<FaultState>, owner: &[u32]) -> FaultState {
        let mut base = parts.remove(0);
        for (k, part) in parts.into_iter().enumerate() {
            let sid = k as u32 + 1;
            for (i, &o) in owner.iter().enumerate() {
                if o == sid {
                    base.down[i] = part.down[i];
                    base.committed_mj[i] = part.committed_mj[i];
                    base.energy_dead[i] = part.energy_dead[i];
                }
            }
            base.crashes += part.crashes;
            base.recoveries += part.recoveries;
            base.energy_deaths += part.energy_deaths;
            base.repairs_started += part.repairs_started;
            base.repair_latency.merge(&part.repair_latency);
            base.pending_repairs.extend(part.pending_repairs);
            base.records.extend(part.records);
        }
        base.records.sort_by_key(|&(t, r, _)| (t, r));
        base
    }

    pub(crate) fn into_report(self) -> ResilienceReport {
        // Replay the classification records in global processing order
        // against the static window, applying energy-death window
        // extensions exactly where the live path used to apply them.
        let mut ws = self.window_start;
        let mut we = self.window_end;
        let mut sent_phase = [0u64; 3];
        let mut delivered_phase = [0u64; 3];
        let mut reconverged_at = None;
        // Phase of instant `t`: 0 before, 1 during, 2 after the window.
        let phase = |ws: Option<SimTime>, we: Option<SimTime>, t: SimTime| match ws {
            Some(w) if t >= w => match we {
                Some(e) if t >= e => 2,
                _ => 1,
            },
            _ => 0,
        };
        for &(t, _, rec) in &self.records {
            match rec {
                FaultRecord::Sent => sent_phase[phase(ws, we, t)] += 1,
                FaultRecord::Delivered { created_at } => {
                    delivered_phase[phase(ws, we, created_at)] += 1;
                    if reconverged_at.is_none() && we.is_some_and(|e| t >= e) {
                        reconverged_at = Some(t);
                    }
                }
                FaultRecord::EnergyDeath { death_at } => {
                    if ws.is_none_or(|w| death_at < w) {
                        ws = Some(death_at);
                    }
                    we = Some(self.run_end);
                }
            }
        }
        let pdr = |d: u64, s: u64| if s == 0 { 0.0 } else { d as f64 / s as f64 };
        let residual = self
            .plan
            .energy_budget_mj
            .map(|b| self.committed_mj.iter().map(|c| (b - c).max(0.0)).collect());
        ResilienceReport {
            window_start_s: ws.map(SimTime::as_secs_f64),
            window_end_s: we.map(SimTime::as_secs_f64),
            sent_before: sent_phase[0],
            sent_during: sent_phase[1],
            sent_after: sent_phase[2],
            delivered_before: delivered_phase[0],
            delivered_during: delivered_phase[1],
            delivered_after: delivered_phase[2],
            pdr_before: pdr(delivered_phase[0], sent_phase[0]),
            pdr_during: pdr(delivered_phase[1], sent_phase[1]),
            pdr_after: pdr(delivered_phase[2], sent_phase[2]),
            crashes: self.crashes,
            recoveries: self.recoveries,
            energy_deaths: self.energy_deaths,
            dead_nodes_end: self.down.iter().filter(|d| **d).count() as u64,
            repairs_started: self.repairs_started,
            repairs_completed: self.repair_latency.count(),
            repair_latency: LatencySummary::from_streaming(&self.repair_latency),
            reconverged_after_s: match (reconverged_at, we) {
                (Some(t), Some(e)) => Some((t - e).as_secs_f64()),
                _ => None,
            },
            residual_energy_mj: residual,
        }
    }

    /// Capture everything the build cannot reconstruct from the fault
    /// plan into a portable checkpoint image. Repair observations and
    /// classification records are sorted into their canonical key order
    /// so a sharded capture and a single-threaded one produce identical
    /// bytes.
    pub(crate) fn capture(&self) -> FaultSnap {
        let mut pending_repairs = self.pending_repairs.clone();
        pending_repairs.sort_by_key(|&(node, dst, t)| (node, dst, t));
        let mut records = self.records.clone();
        records.sort_by_key(|&(t, r, _)| (t, r));
        FaultSnap {
            down: self.down.clone(),
            burst_active: self.burst_active.clone(),
            impair_gain: self.impair_gain,
            noise_mult: self.noise_mult,
            committed_mj: self.committed_mj.clone(),
            energy_dead: self.energy_dead.clone(),
            window_start: self.window_start,
            window_end: self.window_end,
            run_end: self.run_end,
            crashes: self.crashes,
            recoveries: self.recoveries,
            energy_deaths: self.energy_deaths,
            pending_repairs,
            repairs_started: self.repairs_started,
            repair_latency: self.repair_latency.clone(),
            records,
        }
    }

    /// Overlay a checkpoint image on a freshly-built state. Per-node
    /// flags and the global impairment products replicate everywhere
    /// (every lane needs them to dispatch correctly); cumulative
    /// counters, the latency sketch, and the classification records load
    /// only into the `primary` lane (single-threaded, or region shard 0)
    /// so the post-run merge sums back to the uninterrupted totals. Open
    /// repair observations route to the lane owning their node per
    /// `shard` (`None` keeps them all).
    pub(crate) fn restore_from(
        &mut self,
        snap: &FaultSnap,
        primary: bool,
        shard: Option<(&[u32], u32)>,
    ) -> Result<(), &'static str> {
        if snap.down.len() != self.down.len()
            || snap.committed_mj.len() != self.committed_mj.len()
            || snap.energy_dead.len() != self.energy_dead.len()
        {
            return Err("fault node count");
        }
        if snap.burst_active.len() != self.burst_active.len() {
            return Err("fault burst count");
        }
        self.down = snap.down.clone();
        self.burst_active = snap.burst_active.clone();
        self.impair_gain = snap.impair_gain;
        self.noise_mult = snap.noise_mult;
        self.committed_mj = snap.committed_mj.clone();
        self.energy_dead = snap.energy_dead.clone();
        self.window_start = snap.window_start;
        self.window_end = snap.window_end;
        self.run_end = snap.run_end;
        self.pending_repairs = snap
            .pending_repairs
            .iter()
            .copied()
            .filter(|&(node, _, _)| shard.is_none_or(|(owner, id)| owner[node as usize] == id))
            .collect();
        if primary {
            self.crashes = snap.crashes;
            self.recoveries = snap.recoveries;
            self.energy_deaths = snap.energy_deaths;
            self.repairs_started = snap.repairs_started;
            self.repair_latency = snap.repair_latency.clone();
            self.records = snap.records.clone();
        }
        Ok(())
    }
}

/// Portable checkpoint image of [`FaultState`] — everything except the
/// static plan, which restore rebuilds from the scenario config.
#[derive(Debug, Clone)]
pub(crate) struct FaultSnap {
    down: Vec<bool>,
    burst_active: Vec<bool>,
    impair_gain: f64,
    noise_mult: f64,
    committed_mj: Vec<f64>,
    energy_dead: Vec<bool>,
    window_start: Option<SimTime>,
    window_end: Option<SimTime>,
    run_end: SimTime,
    crashes: u64,
    recoveries: u64,
    energy_deaths: u64,
    /// Sorted by `(node, dst, first_failure)` at capture.
    pending_repairs: Vec<(u32, u32, SimTime)>,
    repairs_started: u64,
    repair_latency: pcmac_stats::StreamingQuantile,
    /// Sorted by the global `(time, rank)` key at capture.
    records: Vec<(SimTime, u128, FaultRecord)>,
}

impl FaultSnap {
    /// Nodes down at the cut (used to seed alive flags and shard
    /// transition logs on restore).
    pub(crate) fn down(&self) -> &[bool] {
        &self.down
    }
}

mod fault_snap {
    use super::{FaultRecord, FaultSnap};
    use pcmac_snap::{Snap, SnapError, SnapReader, SnapWriter};

    impl Snap for FaultRecord {
        fn save(&self, w: &mut SnapWriter) {
            match self {
                FaultRecord::Sent => w.u8(0),
                FaultRecord::Delivered { created_at } => {
                    w.u8(1);
                    created_at.save(w);
                }
                FaultRecord::EnergyDeath { death_at } => {
                    w.u8(2);
                    death_at.save(w);
                }
            }
        }
        fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            Ok(match r.u8()? {
                0 => FaultRecord::Sent,
                1 => FaultRecord::Delivered {
                    created_at: Snap::load(r)?,
                },
                2 => FaultRecord::EnergyDeath {
                    death_at: Snap::load(r)?,
                },
                _ => return Err(SnapError::Corrupt("fault record tag")),
            })
        }
    }

    pcmac_snap::snap_struct!(FaultSnap {
        down,
        burst_active,
        impair_gain,
        noise_mult,
        committed_mj,
        energy_dead,
        window_start,
        window_end,
        run_end,
        crashes,
        recoveries,
        energy_deaths,
        pending_repairs,
        repairs_started,
        repair_latency,
        records,
    });
}

/// Per-shard execution context: which nodes this simulator dispatches,
/// the outgoing cross-region arrival shipments of the current window,
/// and the down-state transition log other regions cull against.
#[derive(Debug)]
pub(crate) struct ShardCtx {
    /// This shard's id.
    pub(crate) id: u32,
    /// Owning shard per node (shared, read-only).
    pub(crate) owner: Arc<Vec<u32>>,
    /// Outgoing shipments, bucketed by destination shard (slot `id` is
    /// always empty — owned receivers schedule locally).
    pub(crate) outbox: Vec<Vec<Shipment>>,
    /// Per-owned-node down-state transitions `(time, rank, down)`,
    /// appended only on actual state flips, in event order. Shipped
    /// arrivals are culled against the state strictly before their
    /// transmission's `(time, rank)` — exactly the cull the
    /// single-threaded sender loop applies inline.
    pub(crate) transitions: Vec<Vec<(SimTime, u128, bool)>>,
}

/// One ready-made cross-region arrival pair: everything the receiving
/// shard needs to schedule the `ArrivalStart`/`ArrivalEnd` (or ctrl)
/// events its own sender loop would have produced.
#[derive(Debug, Clone)]
pub(crate) enum Shipment {
    /// Data-channel arrival.
    Data {
        at: SimTime,
        node: NodeId,
        key: u64,
        power: Milliwatts,
        end: SimTime,
        frame: Arc<Frame>,
        /// Global `(time, rank)` of the transmitting event, for the
        /// receiver-side down-state cull.
        tx: (SimTime, u128),
    },
    /// Control-channel arrival.
    Ctrl {
        at: SimTime,
        node: NodeId,
        key: u64,
        power: Milliwatts,
        end: SimTime,
        frame: CtrlFrame,
        tx: (SimTime, u128),
    },
}

/// What one shard contributes to the merged report, extracted after its
/// queue drains (see `parallel::run_sharded`).
pub(crate) struct ShardParts {
    /// The shard's full node replica (only owned entries are merged).
    pub(crate) nodes: Vec<Option<Box<Node>>>,
    /// Application packets emitted by owned sources.
    pub(crate) sent_packets: u64,
    /// Non-probe events scheduled on this shard's queue.
    pub(crate) events: u64,
    pub(crate) faults: Option<FaultState>,
    pub(crate) metrics: Option<MetricsState>,
    pub(crate) cache_stats: Option<pcmac_phy::SparseCacheStats>,
}

/// A configured, runnable simulation.
pub struct Simulator {
    cfg: ScenarioConfig,
    queue: EventQueue<SimEvent>,
    /// Cold per-node state, present only for owned nodes (`None` for
    /// nodes another region shard owns; always all-present in single
    /// mode). Boxed so a shard's vector of absentees stays thin.
    nodes: Vec<Option<Box<Node>>>,
    /// Struct-of-arrays hot per-node state: positions, movement,
    /// tracked/alive flags, carrier/queue mirrors, tx-key counters.
    hot: HotState,
    positions_at: Option<SimTime>,
    any_mobile: bool,
    propagation: PropagationModel,
    /// Spatial index over `positions` (kept in sync by
    /// [`Simulator::refresh_positions`]; under lazy refresh its entries
    /// may trail true positions by up to `pad_m`).
    grid: UniformGrid,
    /// Pairwise gain replay strategy.
    gain_cache: GainCacheState,
    use_grid: bool,
    /// `true` when positions refresh lazily (mobile scenarios only).
    lazy_refresh: bool,
    /// Metres of drift the index tolerates before a deadline refresh.
    pad_m: f64,
    /// Min-heap of `(deadline, node)` refresh entries; an entry earlier
    /// than its node's recorded deadline is superseded and re-arms.
    refresh_heap: BinaryHeap<Reverse<(SimTime, u32)>>,
    /// Propagation-delay floor in nanoseconds (0 = exact delays).
    delay_floor_ns: u64,
    /// `(time, rank)` of the event currently being dispatched — the
    /// global position in the event order, used to key fault records and
    /// packet-drop facts so they merge deterministically across shards.
    cur: (SimTime, u128),
    /// Region-shard context (`Some` iff this simulator is one shard of a
    /// sharded run).
    shard: Option<ShardCtx>,
    /// A snapshot waiting to be applied. Single-threaded restores apply
    /// immediately and never stash one; sharded restores park it here so
    /// `parallel::run_sharded` can overlay each owner-only shard *after*
    /// the shard build (which re-initialises the donated cold state).
    resume: Option<Arc<crate::snapshot::SimSnapshot>>,
    sent_packets: u64,
    /// Fault-injection runtime state (`Some` iff the scenario has a
    /// fault plan).
    faults: Option<FaultState>,
    /// Observability collection state (`Some` iff the scenario enabled
    /// metrics). Only ever *reads* protocol state, so its presence
    /// cannot change a run's behavior.
    metrics: Option<MetricsState>,
    // Scratch-buffer pools for allocation-free dispatch.
    rad_pool: BufPool<RadioEvent<Arc<Frame>>>,
    ctrl_pool: BufPool<RadioEvent<CtrlFrame>>,
    mac_pool: BufPool<MacAction>,
    aodv_pool: BufPool<pcmac_aodv::AodvAction>,
    /// Candidate-receiver scratch (used only between a position refresh
    /// and the arrival-scheduling loop, which never re-enters).
    candidates: Vec<u32>,
    /// Batched gain scratch, parallel to `candidates` after
    /// [`Simulator::fill_gains`].
    gains: Vec<f64>,
}

impl Simulator {
    /// Build the network described by `cfg`.
    ///
    /// # Panics
    /// If the scenario fails [`ScenarioConfig::validate`]; the panic
    /// message lists every defect. Loading paths (spec files, campaign
    /// expansion) validate first and surface the same list as a
    /// `Result` instead.
    pub fn new(cfg: ScenarioConfig) -> Self {
        Self::build(cfg, None, &mut [])
    }

    /// Build shard `id` of a `shards`-way region run directly in
    /// owner-only form: cold [`Node`] state, traffic sources, and
    /// build-time events (first emissions, crashes, churn) materialise
    /// only for owned nodes, and the spatial index is pruned to the
    /// tracked set (owned + halo). Replicated machinery (impairment
    /// bursts, the probe chain) is scheduled everywhere.
    ///
    /// `donor` recycles cold state from an already-built full replica
    /// (see [`Simulator::take_cold_nodes`]): owned entries found there
    /// are *moved* in instead of constructed, so splitting one full
    /// simulator into S shards allocates no second copy of any node —
    /// the process peak stays at one full build. A freshly built box
    /// and a donated one are identical by construction (per-node RNG
    /// streams derive from the node id; the donor's attached traffic
    /// sources are cleared and re-attached below).
    pub(crate) fn new_shard(
        cfg: ScenarioConfig,
        id: u32,
        shards: usize,
        owner: Arc<Vec<u32>>,
        donor: &mut [Option<Box<Node>>],
    ) -> Self {
        Self::build(cfg, Some((id, shards, owner)), donor)
    }

    /// Move the cold per-node state out, leaving `None`s — the donor
    /// side of the no-realloc shard split in [`Simulator::new_shard`].
    pub(crate) fn take_cold_nodes(&mut self) -> Vec<Option<Box<Node>>> {
        std::mem::take(&mut self.nodes)
    }

    fn build(
        cfg: ScenarioConfig,
        shard_plan: Option<(u32, usize, Arc<Vec<u32>>)>,
        donor: &mut [Option<Box<Node>>],
    ) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("{e}");
        }
        let n = cfg.nodes.count();
        let owned = |i: usize| {
            shard_plan
                .as_ref()
                .is_none_or(|(id, _, owner)| owner[i] == *id)
        };
        let mut nodes: Vec<Option<Box<Node>>> = Vec::with_capacity(n);
        let mut mobility = Vec::with_capacity(n);
        let mut positions = Vec::with_capacity(n);
        let mut any_mobile = false;

        let starts: Vec<Point> = match &cfg.nodes {
            NodeSetup::UniformWaypoint { count, .. } => {
                let mut rng = RngStream::derive(cfg.seed, "scenario.placement");
                placement::uniform(*count, cfg.field.0, cfg.field.1, &mut rng)
            }
            NodeSetup::Static(pts) => pts.clone(),
            NodeSetup::WaypointFrom { starts, .. } => starts.clone(),
        };

        for (i, start) in starts.iter().enumerate() {
            let m = match &cfg.nodes {
                NodeSetup::UniformWaypoint { speed, pause, .. }
                | NodeSetup::WaypointFrom { speed, pause, .. } => {
                    any_mobile = true;
                    Mobility::Waypoint(RandomWaypoint::new(
                        *start,
                        cfg.field.0,
                        cfg.field.1,
                        *speed,
                        *pause,
                        RngStream::derive_sub(cfg.seed, "mobility", i as u64),
                    ))
                }
                NodeSetup::Static(_) => Mobility::Static(*start),
            };
            mobility.push(m);
            // Cold state only for owned nodes: this is the owner-only
            // memory model — a shard never assembles the radios, MAC
            // queues, and routing tables of nodes another region
            // dispatches.
            let cold = if owned(i) {
                Some(match donor.get_mut(i).and_then(Option::take) {
                    Some(mut b) => {
                        // Re-attached (identically) by the flow loop
                        // below, like a fresh box's.
                        b.sources.clear();
                        b
                    }
                    None => Box::new(Node::new(
                        NodeId(i as u32),
                        cfg.radio.clone(),
                        cfg.mac.clone(),
                        cfg.aodv.clone(),
                        cfg.seed,
                    )),
                })
            } else {
                None
            };
            nodes.push(cold);
            positions.push(*start);
        }

        // Attach traffic sources to their homes and schedule first
        // emissions.
        let mut queue = EventQueue::with_capacity(1 << 16);
        for spec in &cfg.flows {
            let home = spec.src.index();
            assert!(home < nodes.len(), "flow source out of range");
            // Source RNG streams derive per flow id, so skipping the
            // foreign homes perturbs nothing an owned source draws.
            let Some(home_node) = nodes[home].as_deref_mut() else {
                continue;
            };
            let mut src = TrafficSource::from_spec(spec, cfg.seed);
            if let Some(t0) = src.next_time() {
                let source_idx = home_node.sources.len();
                sched_into(
                    &mut queue,
                    t0,
                    SimEvent::TrafficEmit {
                        node: spec.src,
                        source: source_idx,
                    },
                );
            }
            home_node.sources.push(src);
        }

        // Fault plan: precompute the entire crash/recover/impairment
        // schedule up front, from the master seed and the static plan
        // alone, so the injected events are identical whatever
        // channel-index, refresh, or cache mode executes the run.
        let faults = cfg.faults.as_ref().map(|plan| {
            let dur_s = cfg.duration.as_secs_f64();
            let at = |s: f64| SimTime::ZERO + Duration::from_secs_f64(s);
            let mut starts: Vec<f64> = Vec::new();
            let mut ends: Vec<f64> = Vec::new();
            if let Some(crashes) = &plan.crashes {
                for cw in crashes {
                    // The fault *window* is global — every shard derives
                    // identical phase boundaries — but the events
                    // themselves are owner-only.
                    if owned(cw.node as usize) {
                        sched_into(
                            &mut queue,
                            at(cw.at_s),
                            SimEvent::NodeDown {
                                node: NodeId(cw.node),
                            },
                        );
                    }
                    starts.push(cw.at_s);
                    match cw.recover_s {
                        Some(r) => {
                            if owned(cw.node as usize) {
                                sched_into(
                                    &mut queue,
                                    at(r),
                                    SimEvent::NodeUp {
                                        node: NodeId(cw.node),
                                    },
                                );
                            }
                            ends.push(r.min(dur_s));
                        }
                        None => ends.push(dur_s),
                    }
                }
            }
            if let Some(ch) = &plan.churn {
                let w0 = ch.start_s.unwrap_or(0.0);
                let w1 = ch.stop_s.unwrap_or(dur_s).min(dur_s);
                if w1 > w0 {
                    starts.push(w0);
                    ends.push(w1);
                    for i in (0..n).filter(|&i| owned(i)) {
                        let mut rng = RngStream::derive_sub(cfg.seed, "faults.churn", i as u64);
                        let node = NodeId(i as u32);
                        let mut t = w0;
                        loop {
                            t += rng.exponential(ch.mean_uptime_s);
                            if t >= w1 {
                                break;
                            }
                            sched_into(&mut queue, at(t), SimEvent::NodeDown { node });
                            let downtime = rng.exponential(ch.mean_downtime_s);
                            // A node still down when the window closes
                            // recovers at the window edge, so the
                            // "after" phase observes a healed network.
                            sched_into(
                                &mut queue,
                                at((t + downtime).min(w1)),
                                SimEvent::NodeUp { node },
                            );
                            t += downtime;
                            if t >= w1 {
                                break;
                            }
                        }
                    }
                }
            }
            if let Some(bursts) = &plan.impairments {
                for (k, b) in bursts.iter().enumerate() {
                    sched_into(
                        &mut queue,
                        at(b.start_s),
                        SimEvent::ImpairmentStart { index: k },
                    );
                    sched_into(
                        &mut queue,
                        at(b.stop_s),
                        SimEvent::ImpairmentEnd { index: k },
                    );
                    starts.push(b.start_s);
                    ends.push(b.stop_s.min(dur_s));
                }
            }
            let n_bursts = plan.impairments.as_ref().map_or(0, Vec::len);
            FaultState {
                plan: plan.clone(),
                down: vec![false; n],
                burst_active: vec![false; n_bursts],
                impair_gain: 1.0,
                noise_mult: 1.0,
                committed_mj: vec![0.0; n],
                energy_dead: vec![false; n],
                window_start: starts.iter().copied().reduce(f64::min).map(at),
                window_end: ends.iter().copied().reduce(f64::max).map(at),
                run_end: SimTime::ZERO + cfg.duration,
                crashes: 0,
                recoveries: 0,
                energy_deaths: 0,
                pending_repairs: Vec::new(),
                repairs_started: 0,
                repair_latency: pcmac_stats::StreamingQuantile::new(),
                records: Vec::new(),
            }
        });

        // Observability: the probe chain rides the ordinary event queue.
        // Probe events are pure reads, and their queue insertions only
        // shift sequence numbers monotonically, so every other pair of
        // events keeps its relative order — a metrics-on run behaves
        // bit-identically to a metrics-off run.
        let mut metrics = cfg.metrics.map(|mc| {
            MetricsState::new(
                mc,
                n,
                cfg.mac.levels.all().iter().map(|p| p.value()).collect(),
            )
        });
        if let Some(m) = &mut metrics {
            let first = SimTime::ZERO + m.interval();
            if first <= SimTime::ZERO + cfg.duration {
                sched_into(&mut queue, first, SimEvent::MetricsProbe);
                m.probes_scheduled += 1;
            }
        }

        let propagation = match cfg.shadowing {
            Some(s) => PropagationModel::Shadowed(Shadowed::new(
                TwoRayGround::ns2_default(),
                s.sigma_db,
                s.symmetric,
                cfg.seed,
            )),
            None => PropagationModel::TwoRay(TwoRayGround::ns2_default()),
        };

        // Cell size: the farthest any transmission can matter — maximum
        // transmit power against the interference floor (inflated for the
        // worst-case shadowing boost). The grid may shrink cells slightly
        // to tile the field evenly (and caps the cell count on huge
        // fields), so a max-reach query touches a small O(1) block of
        // cells around the transmitter — typically 3×3, sometimes 4×4.
        let max_reach = cull_radius(&propagation, cfg.mac.max_power(), cfg.interference_floor);
        let cell = if max_reach.is_finite() {
            max_reach.max(1.0)
        } else {
            cfg.field.0.max(cfg.field.1)
        };
        let grid = UniformGrid::new(cfg.field.0, cfg.field.1, cell, &positions);

        // Gain caches belong to the indexed channel: the brute-force
        // mode is the O(N)-scan-with-live-propagation reference the
        // indexed channel is benchmarked against (cache-vs-live equality
        // is covered by the phy gain-cache tests, so equivalence between
        // the modes is unaffected).
        let use_grid = cfg.channel_index == ChannelIndexMode::Grid;
        let dense_ok = use_grid && !any_mobile && n <= GAIN_CACHE_MAX_NODES;
        let build_sparse = || {
            let mut c = SparseGainCache::new(n);
            for i in 0..n as u32 {
                c.set_cell(i, grid.node_cell(i));
            }
            GainCacheState::Sparse(c)
        };
        let gain_cache = match cfg.gain_cache_mode() {
            GainCacheMode::Auto if dense_ok => {
                GainCacheState::Dense(GainCache::build(&propagation, &positions))
            }
            GainCacheMode::Auto | GainCacheMode::Sparse if use_grid => build_sparse(),
            GainCacheMode::Dense if dense_ok => {
                GainCacheState::Dense(GainCache::build(&propagation, &positions))
            }
            _ => GainCacheState::Live,
        };

        // Lazy refresh: seed every mobile node's first deadline from its
        // start position (positions are exact at t = 0). Without the
        // grid there is nothing to keep fresh lazily — the brute-force
        // scan visits all N nodes per transmission regardless — so that
        // combination falls back to the eager rescan.
        let lazy_refresh =
            any_mobile && use_grid && cfg.mobility_refresh_mode() == MobilityRefreshMode::Lazy;
        let pad_m = grid.cell_size() * REFRESH_PAD_CELL_FRACTION;
        let mut sampled_at = Vec::new();
        let mut deadline = Vec::new();
        let mut refresh_heap = BinaryHeap::new();
        if lazy_refresh {
            sampled_at = vec![SimTime::ZERO; n];
            deadline = vec![SimTime::MAX; n];
            for (i, m) in mobility.iter().enumerate() {
                let d = m.stale_after(SimTime::ZERO, pad_m);
                deadline[i] = d;
                if d != SimTime::MAX {
                    refresh_heap.push(Reverse((d, i as u32)));
                }
            }
        }

        let delay_floor_ns = cfg.delay_floor().as_nanos();

        // Region shards keep hot state only for owned nodes plus the
        // boundary halo; the spatial index is pruned to match, so grid
        // queries (always issued from owned transmitters) stay exact
        // while bucket memory shrinks to O(N/S + halo).
        let (tracked, shard) = match shard_plan {
            None => (vec![true; n], None),
            Some((id, shards, owner)) => {
                let tracked = compute_tracked(&owner, id, &positions, any_mobile, max_reach);
                (
                    tracked,
                    Some(ShardCtx {
                        id,
                        owner,
                        outbox: vec![Vec::new(); shards],
                        transitions: vec![Vec::new(); n],
                    }),
                )
            }
        };
        let mut grid = grid;
        if shard.is_some() {
            grid.retain_nodes(|i| tracked[i as usize]);
        }

        Simulator {
            use_grid,
            lazy_refresh,
            pad_m,
            cfg,
            queue,
            nodes,
            hot: HotState {
                positions,
                mobility,
                tracked,
                alive: vec![true; n],
                busy: vec![false; n],
                queue_len: vec![0; n],
                tx_power_mw: vec![0.0; n],
                sampled_at,
                deadline,
                tx_key_ctr: vec![0; n],
            },
            positions_at: None,
            any_mobile,
            propagation,
            grid,
            gain_cache,
            refresh_heap,
            delay_floor_ns,
            cur: (SimTime::ZERO, 0),
            shard,
            resume: None,
            sent_packets: 0,
            faults,
            metrics,
            rad_pool: BufPool::default(),
            ctrl_pool: BufPool::default(),
            mac_pool: BufPool::default(),
            aodv_pool: BufPool::default(),
            candidates: Vec::new(),
            gains: Vec::new(),
        }
    }

    /// Run to the configured duration and produce the report.
    ///
    /// Under [`ExecutionMode::Sharded`] the run executes on that many
    /// region threads and produces a report bit-identical to the
    /// single-threaded one (hot-path instrumentation counters aside,
    /// which — as across refresh/cache modes — reflect the execution
    /// strategy itself).
    pub fn run(self) -> RunReport {
        match self.cfg.execution_mode() {
            ExecutionMode::Single => self.run_single(&mut |_, _| {}),
            ExecutionMode::Sharded { shards } => crate::parallel::run_sharded(self, shards, None),
        }
    }

    /// Like [`Simulator::run`], but calls `observer` with every event
    /// just before it is dispatched — the hook for packet traces,
    /// animations, or custom measurements. The observer sees events in
    /// exact execution order (sharded runs buffer per-region streams and
    /// replay the deterministic merge to the observer after the run).
    pub fn run_with_observer(self, mut observer: impl FnMut(&SimEvent, SimTime)) -> RunReport {
        match self.cfg.execution_mode() {
            ExecutionMode::Single => self.run_single(&mut observer),
            ExecutionMode::Sharded { shards } => {
                crate::parallel::run_sharded(self, shards, Some(&mut observer))
            }
        }
    }

    /// Like [`Simulator::run`], with in-run durability controls: a
    /// cooperative [`CancelToken`](crate::CancelToken) observed at cut
    /// boundaries, and periodic checkpoints on an absolute simulated-time
    /// grid delivered to a sink. Both work identically under single and
    /// sharded execution — checkpoints land at the same simulated
    /// instants with bit-identical state, and a cancelled run returns a
    /// final snapshot instead of a report.
    pub fn run_with_hooks(
        self,
        hooks: crate::snapshot::RunHooks<'_>,
    ) -> crate::snapshot::RunOutcome {
        match self.cfg.execution_mode() {
            ExecutionMode::Single => self.run_single_hooked(&hooks),
            ExecutionMode::Sharded { shards } => {
                crate::parallel::run_sharded_hooked(self, shards, &hooks)
            }
        }
    }

    /// Schedule `ev` at `at` with its content-derived rank.
    #[inline]
    fn sched(&mut self, at: SimTime, ev: SimEvent) {
        self.queue.schedule_ranked(at, ev.rank(), ev);
    }

    /// The cold state of node `i`.
    ///
    /// # Panics
    /// If this shard does not hold node `i`'s cold state — events only
    /// ever address owned nodes, so a miss here is a sharding bug.
    #[inline]
    fn node(&self, i: usize) -> &Node {
        self.nodes[i]
            .as_deref()
            .expect("event dispatched for a node this shard does not own")
    }

    /// Mutable [`Simulator::node`].
    #[inline]
    fn node_mut(&mut self, i: usize) -> &mut Node {
        self.nodes[i]
            .as_deref_mut()
            .expect("event dispatched for a node this shard does not own")
    }

    /// Refresh node `i`'s hot mirrors from the authoritative cold
    /// state; a no-op for nodes whose cold state lives elsewhere.
    #[inline]
    fn sync_hot(&mut self, i: usize) {
        if let Some(node) = self.nodes[i].as_deref() {
            self.hot.busy[i] = node.radio.carrier_busy();
            self.hot.queue_len[i] = node.mac.queue_len() as u32;
        }
    }

    /// How many nodes this simulator keeps hot state fresh for (owned +
    /// halo in a region shard; all N otherwise) — the shard-memory
    /// observable the bench memory budget is written against.
    pub fn tracked_nodes(&self) -> usize {
        self.hot.tracked.iter().filter(|t| **t).count()
    }

    fn run_single(mut self, observer: &mut dyn FnMut(&SimEvent, SimTime)) -> RunReport {
        let wall_start = std::time::Instant::now();
        let end = SimTime::ZERO + self.cfg.duration;
        while let Some(t) = self.queue.peek_time() {
            if t > end {
                break;
            }
            let ev = self.queue.pop().expect("peeked");
            self.cur = (ev.at, ev.rank);
            observer(&ev.event, ev.at);
            self.dispatch(ev.event, ev.at);
        }
        self.finalize_single(wall_start, end)
    }

    /// Single-threaded run with cancellation and periodic checkpoints.
    /// The cut logic mirrors the sharded epoch loop exactly: whenever the
    /// next event's time reaches a checkpoint grid instant, every grid
    /// instant up to it is snapshotted *before* the event dispatches, so
    /// both execution modes checkpoint at identical simulated times.
    fn run_single_hooked(
        mut self,
        hooks: &crate::snapshot::RunHooks<'_>,
    ) -> crate::snapshot::RunOutcome {
        use crate::snapshot::RunOutcome;
        let wall_start = std::time::Instant::now();
        let end = SimTime::ZERO + self.cfg.duration;
        let every_ns = hooks.checkpoint_every.map(|e| e.as_nanos().max(1));
        let mut next_cp_ns =
            every_ns.map(|e| crate::snapshot::next_grid_point(self.queue.now(), e).as_nanos());
        let mut ticks: u64 = 0;
        while let Some(t) = self.queue.peek_time() {
            if t > end {
                break;
            }
            let mut crossed_grid = false;
            while let Some(cp) = next_cp_ns {
                if t.as_nanos() < cp {
                    break;
                }
                if let Some(sink) = hooks.checkpoint_sink {
                    sink(self.snapshot_at(SimTime::from_nanos(cp)));
                }
                next_cp_ns = Some(cp.saturating_add(every_ns.expect("grid implies interval")));
                crossed_grid = true;
            }
            // The token costs an atomic load; amortise it across a batch
            // of dispatches, but always look right after a checkpoint —
            // a watchdog that cancels from the sink must be heard even
            // when few events remain. A cut here is safe at any event
            // boundary: `t` is the next undispatched instant, so
            // everything before it is fully processed.
            if (crossed_grid || ticks & 0xFF == 0)
                && hooks
                    .cancel
                    .is_some_and(crate::snapshot::CancelToken::is_cancelled)
            {
                return RunOutcome::Cancelled(Some(self.snapshot_at(t)));
            }
            ticks += 1;
            let ev = self.queue.pop().expect("peeked");
            self.cur = (ev.at, ev.rank);
            self.dispatch(ev.event, ev.at);
        }
        RunOutcome::Completed(self.finalize_single(wall_start, end))
    }

    /// Close the ledgers and build the report after the single-threaded
    /// event loop drains (shared by the plain and hooked run paths).
    fn finalize_single(mut self, wall_start: std::time::Instant, end: SimTime) -> RunReport {
        let mut nodes: Vec<Node> = std::mem::take(&mut self.nodes)
            .into_iter()
            .map(|b| *b.expect("single mode owns every node"))
            .collect();
        for node in &mut nodes {
            node.energy.finish(end);
        }
        let resilience = self.faults.take().map(FaultState::into_report);
        let cache_stats = match &self.gain_cache {
            GainCacheState::Sparse(c) => Some(c.stats()),
            _ => None,
        };
        // Probe events are subtracted from the scheduled total so the
        // reported event count matches a metrics-off run exactly.
        let mut probes_scheduled = 0;
        let metrics = self.metrics.take().map(|m| {
            probes_scheduled = m.probes_scheduled;
            m.finish(&nodes, cache_stats)
        });
        RunReport::build(
            &self.cfg,
            &nodes,
            self.sent_packets,
            self.queue.scheduled_total() - probes_scheduled,
            wall_start.elapsed().as_secs_f64(),
            resilience,
            metrics,
        )
    }

    // ------------------------------------------------------------------
    // Event dispatch
    // ------------------------------------------------------------------

    fn dispatch(&mut self, ev: SimEvent, now: SimTime) {
        let target = ev.node_index();
        self.dispatch_inner(ev, now);
        // Every mutation of a node's radio/MAC state happens while an
        // event addressed to that node dispatches (cross-node effects
        // only travel as scheduled events), so syncing here keeps the
        // hot mirrors exact whenever the queue is observed. The one
        // global mutation — an impairment edge shifting every noise
        // floor — resyncs inline in `set_impairment`.
        if let Some(i) = target {
            self.sync_hot(i);
        }
    }

    fn dispatch_inner(&mut self, ev: SimEvent, now: SimTime) {
        match ev {
            SimEvent::ArrivalStart {
                node,
                key,
                power,
                end,
                frame,
            } => {
                let i = node.index();
                // Radio state *before* the arrival, for the PHY drop
                // taxonomy (reads only; skipped entirely when off).
                let pre = self.metrics.as_ref().map(|_| {
                    let r = &self.node(i).radio;
                    (r.is_transmitting(), r.is_receiving())
                });
                let mut rad = self.rad_pool.take();
                self.node_mut(i)
                    .radio
                    .on_arrival_start(key, power, end, &frame, &mut rad);
                if let (Some((was_tx, was_rx)), Some(m)) = (pre, &mut self.metrics) {
                    m.phy.arrivals += 1;
                    let addressed = frame.rx == NodeId(i as u32) || frame.rx.is_broadcast();
                    let locked = rad
                        .iter()
                        .any(|ev| matches!(ev, RadioEvent::RxStart { .. }));
                    if locked {
                        // Fresh lock: no overlap observed yet.
                        m.rx_overlap[i] = false;
                    } else if was_rx {
                        // Overlaps the arrival the radio is locked to.
                        m.rx_overlap[i] = true;
                        if addressed {
                            m.phy.captured_away += 1;
                        }
                    } else if was_tx {
                        if addressed {
                            m.phy.missed_while_tx += 1;
                        }
                    } else if addressed {
                        // Idle and still not locked: below the decode
                        // threshold (heard as noise at most).
                        m.phy.below_rx_thresh += 1;
                    }
                    if addressed
                        && self
                            .faults
                            .as_ref()
                            .is_some_and(|f| f.burst_active.iter().any(|b| *b))
                    {
                        m.phy.impaired_arrivals += 1;
                    }
                }
                self.forward_radio_events(i, rad, now);
            }
            SimEvent::ArrivalEnd { node, key } => {
                let i = node.index();
                let mut rad = self.rad_pool.take();
                self.node_mut(i).radio.on_arrival_end(key, &mut rad);
                if let Some(m) = &mut self.metrics {
                    for ev in &rad {
                        if let RadioEvent::RxEnd { ok, .. } = ev {
                            if *ok {
                                m.phy.decoded_ok += 1;
                                if m.rx_overlap[i] {
                                    m.phy.capture_wins += 1;
                                }
                            } else {
                                m.phy.collided += 1;
                            }
                            m.rx_overlap[i] = false;
                        }
                    }
                }
                self.forward_radio_events(i, rad, now);
            }
            SimEvent::TxEnd { node } => {
                let i = node.index();
                let mut rad = self.rad_pool.take();
                let node = self.node_mut(i);
                node.radio.end_tx(&mut rad);
                node.energy.set_mode(now, RadioMode::Idle, Milliwatts::ZERO);
                self.forward_radio_events(i, rad, now);
                let mut acts = self.mac_pool.take();
                self.node_mut(i).mac.on_tx_end(now, &mut acts);
                self.apply_mac_actions(i, acts, now);
            }
            SimEvent::CtrlArrivalStart {
                node,
                key,
                power,
                end,
                frame,
            } => {
                let mut rad = self.ctrl_pool.take();
                self.node_mut(node.index())
                    .ctrl_radio
                    .on_arrival_start(key, power, end, &frame, &mut rad);
                self.forward_ctrl_events(node.index(), rad, now);
            }
            SimEvent::CtrlArrivalEnd { node, key } => {
                let mut rad = self.ctrl_pool.take();
                self.node_mut(node.index())
                    .ctrl_radio
                    .on_arrival_end(key, &mut rad);
                self.forward_ctrl_events(node.index(), rad, now);
            }
            SimEvent::CtrlTxEnd { node } => {
                let i = node.index();
                let mut rad = self.ctrl_pool.take();
                self.node_mut(i).ctrl_radio.end_tx(&mut rad);
                // The tolerance broadcast happens while the data radio is
                // mid-reception; energy for it was accounted at start.
                self.ctrl_pool.put(rad);
                self.node_mut(i).mac.on_ctrl_tx_end(now);
            }
            SimEvent::MacTimer { node, kind, token } => {
                let i = node.index();
                let mut acts = self.mac_pool.take();
                self.node_mut(i).mac.on_timer(kind, token, now, &mut acts);
                self.apply_mac_actions(i, acts, now);
            }
            SimEvent::AodvTimer { node, dst, token } => {
                let i = node.index();
                let mut acts = self.aodv_pool.take();
                self.node_mut(i)
                    .aodv
                    .on_discovery_timeout(dst, token, now, &mut acts);
                self.apply_aodv_actions(i, acts, now);
            }
            SimEvent::TrafficEmit { node, source } => {
                let i = node.index();
                let (packet, next) = {
                    let src = &mut self.node_mut(i).sources[source];
                    let packet = src.emit(now);
                    (packet, src.next_time())
                };
                self.sent_packets += 1;
                if let Some(m) = &mut self.metrics {
                    m.note_sent(packet.id);
                }
                if let Some(t) = next {
                    self.sched(t, SimEvent::TrafficEmit { node, source });
                }
                let cur_rank = self.cur.1;
                if let Some(fs) = &mut self.faults {
                    fs.records.push((now, cur_rank, FaultRecord::Sent));
                    if fs.down[i] {
                        // The application emits into a dead stack:
                        // counted as sent, lost on the spot.
                        if let Some(m) = &mut self.metrics {
                            m.note_dropped(packet.id, PacketDrop::EmitDead, now, cur_rank);
                        }
                        return;
                    }
                }
                let mut acts = self.aodv_pool.take();
                self.node_mut(i).aodv.send(packet, now, &mut acts);
                self.apply_aodv_actions(i, acts, now);
            }
            SimEvent::NodeDown { node } => self.on_node_down(node.index(), now),
            SimEvent::NodeUp { node } => self.on_node_up(node.index(), now),
            SimEvent::ImpairmentStart { index } => self.set_impairment(index, true),
            SimEvent::ImpairmentEnd { index } => self.set_impairment(index, false),
            SimEvent::MetricsProbe => self.on_metrics_probe(now),
        }
    }

    /// Handle the periodic metrics probe: sample the instantaneous
    /// channel/queue/liveness observables into the time series and
    /// schedule the next probe. Reads only — no protocol state changes.
    fn on_metrics_probe(&mut self, now: SimTime) {
        let end = SimTime::ZERO + self.cfg.duration;
        let mut live = 0u64;
        let mut busy = 0u64;
        let mut queue_sum = 0u64;
        for i in 0..self.hot.alive.len() {
            // Each region shard samples its own nodes; the per-shard
            // integer sums add up to exactly the single-threaded sample.
            if let Some(ctx) = &self.shard {
                if ctx.owner[i] != ctx.id {
                    continue;
                }
            }
            // The probe is the natural audit point for the hot mirrors:
            // debug builds cross-check them against the cold state.
            debug_assert_eq!(
                self.hot.alive[i],
                !self.faults.as_ref().is_some_and(|f| f.down[i]),
                "alive mirror diverged for node {i}"
            );
            debug_assert_eq!(
                self.hot.busy[i],
                self.node(i).radio.carrier_busy(),
                "carrier mirror diverged for node {i}"
            );
            debug_assert_eq!(
                self.hot.queue_len[i] as usize,
                self.node(i).mac.queue_len(),
                "queue mirror diverged for node {i}"
            );
            if !self.hot.alive[i] {
                continue;
            }
            live += 1;
            if self.hot.busy[i] {
                busy += 1;
            }
            queue_sum += self.hot.queue_len[i] as u64;
        }
        let Some(m) = &mut self.metrics else { return };
        m.record_probe(now, live, busy, queue_sum);
        let next = now + m.interval();
        if next <= end {
            let ev = SimEvent::MetricsProbe;
            self.queue.schedule_ranked(next, ev.rank(), ev);
            m.probes_scheduled += 1;
        }
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// `true` while node `i` is crashed.
    fn node_is_down(&self, i: usize) -> bool {
        self.faults.as_ref().is_some_and(|f| f.down[i])
    }

    /// Apply a `NodeDown`: from here on the node schedules no arrivals,
    /// is skipped as a receiver, and accrues no transmit energy. See
    /// [`FaultState`] for the full crash semantics. In a sharded run the
    /// transition is also logged under its global `(time, rank)` so
    /// neighbouring regions' in-flight transmissions can be culled
    /// against the exact down-state at their send instant.
    fn on_node_down(&mut self, i: usize, now: SimTime) {
        let rank = self.cur.1;
        let Some(fs) = &mut self.faults else { return };
        if fs.down[i] {
            return; // a scheduled crash overlapping churn: already down
        }
        fs.down[i] = true;
        fs.crashes += 1;
        self.hot.alive[i] = false;
        if let Some(ctx) = &mut self.shard {
            ctx.transitions[i].push((now, rank, true));
        }
    }

    /// Apply a `NodeUp`. Exhausted energy budgets are permanent: a
    /// churn recovery scheduled for later cannot resurrect the node.
    fn on_node_up(&mut self, i: usize, now: SimTime) {
        let expire = {
            let Some(fs) = &mut self.faults else { return };
            if !fs.down[i] || fs.energy_dead[i] {
                return;
            }
            fs.down[i] = false;
            fs.recoveries += 1;
            fs.plan.expire_routes == Some(true)
        };
        self.hot.alive[i] = true;
        if let Some(ctx) = &mut self.shard {
            ctx.transitions[i].push((now, self.cur.1, false));
        }
        if expire {
            // Reboot semantics: routing state is volatile and is lost
            // with the node; the experimenter's counters survive.
            let counters = self.node(i).aodv.counters;
            self.node_mut(i).aodv =
                pcmac_aodv::AodvAgent::new(NodeId(i as u32), self.cfg.aodv.clone());
            self.node_mut(i).aodv.counters = counters;
        }
    }

    /// (De)activate impairment burst `index`: recompute the composite
    /// attenuation and noise multiplier from the plan (products over
    /// the active set, so there is no incremental float drift), and
    /// push the scaled noise floor into every radio.
    fn set_impairment(&mut self, index: usize, active: bool) {
        let Some(fs) = &mut self.faults else { return };
        fs.burst_active[index] = active;
        let bursts = fs.plan.impairments.as_deref().unwrap_or(&[]);
        let mut gain = 1.0;
        let mut noise = 1.0;
        for (k, b) in bursts.iter().enumerate() {
            if fs.burst_active[k] {
                gain *= 10f64.powf(-b.extra_loss_db / 10.0);
                noise *= b.noise_mult.unwrap_or(1.0);
            }
        }
        fs.impair_gain = gain;
        if noise != fs.noise_mult {
            fs.noise_mult = noise;
            let floor = self.cfg.radio.noise_floor * noise;
            for node in self.nodes.iter_mut().flatten() {
                node.radio.set_noise_floor(floor);
                node.ctrl_radio.set_noise_floor(floor);
            }
            // A noise-floor shift can flip carrier sense on any radio
            // without an event addressed to it — the one mutation the
            // per-event sync in `dispatch` cannot see. Resync everyone.
            for i in 0..self.nodes.len() {
                self.sync_hot(i);
            }
        }
    }

    /// Account the radiated energy a data transmission commits (tx
    /// power × airtime) against the node's budget, scheduling its
    /// permanent death at the end of the transmission that exhausts it.
    fn commit_energy(&mut self, i: usize, power: Milliwatts, airtime: Duration, end: SimTime) {
        let (now, cur_rank) = self.cur;
        let died = {
            let Some(fs) = &mut self.faults else { return };
            let Some(budget) = fs.plan.energy_budget_mj else {
                return;
            };
            if fs.energy_dead[i] {
                return; // death already scheduled at an earlier tx's end
            }
            fs.committed_mj[i] += power.value() * airtime.as_secs_f64();
            if fs.committed_mj[i] >= budget {
                fs.energy_dead[i] = true;
                fs.energy_deaths += 1;
                // An exhausted budget is a fault like any other: it opens
                // (or extends) the fault window to the end of the run —
                // applied during the report replay, at this exact point in
                // the global record order.
                fs.records
                    .push((now, cur_rank, FaultRecord::EnergyDeath { death_at: end }));
                true
            } else {
                false
            }
        };
        if died {
            let ev = SimEvent::NodeDown {
                node: NodeId(i as u32),
            };
            self.queue.schedule_ranked(end, ev.rank(), ev);
        }
    }

    /// A data packet at node `i` lost its next hop: open a route-repair
    /// observation for (node, destination) unless one is pending.
    fn note_repair_start(&mut self, i: usize, dst: NodeId, now: SimTime) {
        let Some(fs) = &mut self.faults else { return };
        let key = (i as u32, dst.0);
        if fs.pending_repairs.iter().any(|&(n, d, _)| (n, d) == key) {
            return;
        }
        fs.pending_repairs.push((key.0, key.1, now));
        fs.repairs_started += 1;
    }

    /// Data is flowing from node `i` toward `dst` again (a fresh route
    /// exists): close the pending repair, recording its latency.
    fn note_repair_complete(&mut self, i: usize, dst: NodeId, now: SimTime) {
        let Some(fs) = &mut self.faults else { return };
        let key = (i as u32, dst.0);
        if let Some(idx) = fs
            .pending_repairs
            .iter()
            .position(|&(n, d, _)| (n, d) == key)
        {
            let (_, _, t0) = fs.pending_repairs.swap_remove(idx);
            fs.repair_latency.record((now - t0).as_secs_f64());
        }
    }

    // ------------------------------------------------------------------
    // Radio event forwarding
    // ------------------------------------------------------------------

    fn forward_radio_events(
        &mut self,
        i: usize,
        mut events: Vec<RadioEvent<Arc<Frame>>>,
        now: SimTime,
    ) {
        for ev in events.drain(..) {
            let mut acts = self.mac_pool.take();
            {
                let node = self.node_mut(i);
                let noise = node.radio.noise_power();
                node.mac.set_noise(noise);
                match ev {
                    RadioEvent::CarrierBusy => node.mac.on_carrier(true, now, &mut acts),
                    RadioEvent::CarrierIdle => node.mac.on_carrier(false, now, &mut acts),
                    RadioEvent::RxStart { power, frame, .. } => {
                        let remaining = node.mac.config().timing.frame_airtime(&frame);
                        node.mac
                            .on_rx_start(&frame, power, noise, remaining, now, &mut acts);
                    }
                    RadioEvent::RxEnd {
                        power, frame, ok, ..
                    } => {
                        node.mac
                            .on_rx_end((*frame).clone(), power, ok, now, &mut acts);
                    }
                }
            }
            self.apply_mac_actions(i, acts, now);
        }
        self.rad_pool.put(events);
    }

    fn forward_ctrl_events(
        &mut self,
        i: usize,
        mut events: Vec<RadioEvent<CtrlFrame>>,
        now: SimTime,
    ) {
        for ev in events.drain(..) {
            // The control channel is pure broadcast signalling: no carrier
            // sense, no NAV; only successfully-decoded frames matter.
            if let RadioEvent::RxEnd {
                power,
                frame,
                ok: true,
                ..
            } = ev
            {
                self.node_mut(i).mac.on_ctrl_rx(frame, power, now);
            }
        }
        self.ctrl_pool.put(events);
    }

    // ------------------------------------------------------------------
    // Action application
    // ------------------------------------------------------------------

    fn apply_mac_actions(&mut self, i: usize, mut actions: Vec<MacAction>, now: SimTime) {
        for a in actions.drain(..) {
            match a {
                MacAction::TxFrame { frame, power } => self.transmit_frame(i, frame, power, now),
                MacAction::TxCtrl { frame, power } => self.transmit_ctrl(i, frame, power, now),
                MacAction::Arm { kind, delay, token } => {
                    self.sched(
                        now + delay,
                        SimEvent::MacTimer {
                            node: NodeId(i as u32),
                            kind,
                            token,
                        },
                    );
                }
                MacAction::Deliver { packet, from } => {
                    let mut acts = self.aodv_pool.take();
                    self.node_mut(i)
                        .aodv
                        .on_packet(packet, from, now, &mut acts);
                    self.apply_aodv_actions(i, acts, now);
                }
                MacAction::LinkFailure { packet, next_hop } => {
                    if self.faults.is_some() && !packet.payload.is_routing() {
                        self.note_repair_start(i, packet.dst, now);
                    }
                    // Purge other frames queued for the dead hop first, so
                    // the routing agent can salvage or drop them too.
                    let drained = self.node_mut(i).mac.drain_next_hop(next_hop);
                    let mut acts = self.aodv_pool.take();
                    self.node_mut(i)
                        .aodv
                        .on_link_failure(packet, next_hop, now, &mut acts);
                    for qp in drained {
                        if self.faults.is_some() && !qp.packet.payload.is_routing() {
                            self.note_repair_start(i, qp.packet.dst, now);
                        }
                        self.node_mut(i)
                            .aodv
                            .on_link_failure(qp.packet, next_hop, now, &mut acts);
                    }
                    self.apply_aodv_actions(i, acts, now);
                }
                MacAction::QueueDrop { packet } => {
                    // Counted inside the MAC; only the fate map cares.
                    // Routing frames never enter the fate map (they were
                    // never `note_sent`), so they are filtered here rather
                    // than registered as spurious drops.
                    if !packet.payload.is_routing() {
                        let cur_rank = self.cur.1;
                        if let Some(m) = &mut self.metrics {
                            m.note_dropped(packet.id, PacketDrop::MacQueueFull, now, cur_rank);
                        }
                    }
                }
            }
        }
        self.mac_pool.put(actions);
    }

    fn apply_aodv_actions(
        &mut self,
        i: usize,
        mut actions: Vec<pcmac_aodv::AodvAction>,
        now: SimTime,
    ) {
        use pcmac_aodv::AodvAction;
        for a in actions.drain(..) {
            match a {
                AodvAction::Transmit { packet, next_hop } => {
                    if self.faults.is_some() && !packet.payload.is_routing() {
                        // A data packet has a usable next hop again.
                        self.note_repair_complete(i, packet.dst, now);
                    }
                    let mut acts = self.mac_pool.take();
                    self.node_mut(i)
                        .mac
                        .enqueue(packet, next_hop, now, &mut acts);
                    self.apply_mac_actions(i, acts, now);
                }
                AodvAction::DeliverLocal { packet } => {
                    let cur_rank = self.cur.1;
                    if let Some(fs) = &mut self.faults {
                        fs.records.push((
                            now,
                            cur_rank,
                            FaultRecord::Delivered {
                                created_at: packet.created_at,
                            },
                        ));
                    }
                    if !packet.payload.is_routing() {
                        if let Some(m) = &mut self.metrics {
                            m.note_delivered(packet.id);
                        }
                    }
                    self.node_mut(i).sink.deliver(&packet, now);
                }
                AodvAction::Arm { dst, delay, token } => {
                    self.sched(
                        now + delay,
                        SimEvent::AodvTimer {
                            node: NodeId(i as u32),
                            dst,
                            token,
                        },
                    );
                }
                AodvAction::PeerReset { peer } => {
                    self.node_mut(i).mac.reset_peer_state(peer);
                }
                AodvAction::Drop { packet, reason } => {
                    // Counted inside the agent; only the fate map cares
                    // (and only about application packets — see QueueDrop).
                    if !packet.payload.is_routing() {
                        let cur_rank = self.cur.1;
                        if let Some(m) = &mut self.metrics {
                            m.note_dropped(packet.id, reason.into(), now, cur_rank);
                        }
                    }
                }
            }
        }
        self.aodv_pool.put(actions);
    }

    // ------------------------------------------------------------------
    // The wireless channel
    // ------------------------------------------------------------------

    /// Bring `positions` (and the spatial index) up to `now`.
    ///
    /// Eager mode rescans every node on each new timestamp (recording
    /// the timestamp so repeated transmissions at the same instant —
    /// common when several nodes react to the same timer tick — skip the
    /// rescan). Lazy mode instead pops due refresh deadlines, touching
    /// only nodes whose indexed position could have drifted past the
    /// pad; exact sampling of the nodes that actually matter happens
    /// per-candidate in [`Simulator::collect_receivers`]. Static
    /// scenarios never pay anything.
    fn refresh_positions(&mut self, now: SimTime) {
        if !self.any_mobile {
            return;
        }
        if self.lazy_refresh {
            self.process_refresh_deadlines(now);
            return;
        }
        if self.positions_at == Some(now) {
            return;
        }
        for i in 0..self.hot.positions.len() {
            let p = self.hot.mobility[i].position(now);
            if p != self.hot.positions[i] {
                self.hot.positions[i] = p;
                if self.use_grid {
                    self.grid.update(i as u32, p);
                    if let GainCacheState::Sparse(c) = &mut self.gain_cache {
                        c.note_move(i as u32, self.grid.node_cell(i as u32));
                    }
                }
            }
        }
        self.positions_at = Some(now);
    }

    /// Pop every refresh deadline at or before `now`, re-sampling those
    /// nodes so no indexed position is stale by more than `pad_m`. Each
    /// pop either re-arms a superseded entry (an on-demand exact sample
    /// pushed the node's deadline later) or refreshes the node and
    /// schedules its next deadline, so the heap holds one live chain per
    /// mobile node — O(moved · log N) per timestamp, not O(N).
    fn process_refresh_deadlines(&mut self, now: SimTime) {
        while let Some(&Reverse((t, node))) = self.refresh_heap.peek() {
            if t > now {
                break;
            }
            self.refresh_heap.pop();
            let i = node as usize;
            if t < self.hot.deadline[i] {
                if let Some(m) = &mut self.metrics {
                    m.hot.refresh_rearms += 1;
                }
                self.refresh_heap
                    .push(Reverse((self.hot.deadline[i], node)));
                continue;
            }
            if let Some(m) = &mut self.metrics {
                m.hot.refresh_pops += 1;
            }
            self.sample_exact(i, now);
            // `sample_exact` advanced the deadline past `now` whenever the
            // waypoint model allows; the +1 ns floor keeps degenerate
            // horizons (pad/speed rounding to zero) from re-firing at the
            // same instant forever.
            let d = self.hot.deadline[i].max(now + Duration::from_nanos(1));
            self.hot.deadline[i] = d;
            self.refresh_heap.push(Reverse((d, node)));
        }
    }

    /// Sample node `i`'s exact position at `now` (at most once per
    /// instant), propagating any movement into the spatial index and the
    /// sparse gain cache, and extending the node's refresh deadline —
    /// freshly sampled nodes cannot drift past the pad for another
    /// `pad_m / speed`.
    fn sample_exact(&mut self, i: usize, now: SimTime) {
        if self.hot.sampled_at[i] == now {
            return;
        }
        self.hot.sampled_at[i] = now;
        if let Some(m) = &mut self.metrics {
            m.hot.exact_samples += 1;
        }
        let p = self.hot.mobility[i].position(now);
        if p != self.hot.positions[i] {
            self.hot.positions[i] = p;
            self.grid.update(i as u32, p);
            if let GainCacheState::Sparse(c) = &mut self.gain_cache {
                c.note_move(i as u32, self.grid.node_cell(i as u32));
            }
        }
        let d = self.hot.mobility[i].stale_after(now, self.pad_m);
        if d > self.hot.deadline[i] {
            self.hot.deadline[i] = d;
        }
    }

    /// Fill `self.candidates` with every node (other than `i`, sorted by
    /// id) that could receive a transmission from `i` at `power` above
    /// the interference floor. Under lazy refresh the index query is
    /// padded by the staleness allowance and the transmitter plus every
    /// returned candidate are re-sampled exactly at `now`, so the
    /// subsequent gain/delay computations see true positions and the
    /// scheduled arrivals match the eager path bit for bit.
    fn collect_receivers(&mut self, i: usize, power: Milliwatts, now: SimTime) {
        self.refresh_positions(now);
        if self.lazy_refresh {
            self.sample_exact(i, now);
        }
        self.candidates.clear();
        if self.use_grid {
            let mut radius = cull_radius(&self.propagation, power, self.cfg.interference_floor);
            if self.lazy_refresh {
                radius += self.pad_m * REFRESH_PAD_SLACK;
            }
            self.grid.query_circle(
                self.hot.positions[i],
                radius,
                Some(i as u32),
                &mut self.candidates,
            );
            if self.lazy_refresh {
                for c in 0..self.candidates.len() {
                    let j = self.candidates[c] as usize;
                    self.sample_exact(j, now);
                }
            }
            if let Some(m) = &mut self.metrics {
                m.hot.grid_queries += 1;
                m.hot.grid_candidates += self.candidates.len() as u64;
            }
        } else {
            self.candidates
                .extend((0..self.hot.positions.len() as u32).filter(|&j| j as usize != i));
        }
    }

    /// Drop owned receivers that are currently crashed from the
    /// candidate list. Runs *before* the batched gain fill, exactly where
    /// the scalar reference applied its inline `down` skip — so the
    /// sparse cache sees the same lookup sequence (and mints the same
    /// hit/miss/flush counters) as the per-pair path did.
    fn cull_down_receivers(&mut self) {
        let Some(fs) = &self.faults else { return };
        let shard = self.shard.as_ref();
        let mut candidates = std::mem::take(&mut self.candidates);
        candidates.retain(|&j| {
            let owned = shard.is_none_or(|c| c.owner[j as usize] == c.id);
            !(owned && fs.down[j as usize])
        });
        self.candidates = candidates;
    }

    /// Batch-evaluate the gains from node `i` to every candidate into
    /// `self.gains` (parallel to `self.candidates`): replayed from the
    /// dense table (static), streamed through the block-sparse cache
    /// (generation-checked), or evaluated live in one contiguous pass.
    /// All three paths produce bit-identical values to per-pair calls.
    fn fill_gains(&mut self, i: usize) {
        match &mut self.gain_cache {
            GainCacheState::Dense(cache) => {
                self.gains.clear();
                self.gains.reserve(self.candidates.len());
                self.gains
                    .extend(self.candidates.iter().map(|&j| cache.gain(i, j as usize)));
            }
            GainCacheState::Sparse(cache) => {
                let prop = &self.propagation;
                let pos = &self.hot.positions;
                let mut gains = std::mem::take(&mut self.gains);
                cache.gains_with_into(i as u32, &self.candidates, &mut gains, |j| {
                    prop.gain(pos[i], pos[j as usize])
                });
                self.gains = gains;
            }
            GainCacheState::Live => self.propagation.gains_into_indexed(
                self.hot.positions[i],
                &self.hot.positions,
                &self.candidates,
                &mut self.gains,
            ),
        }
    }

    /// Mint the transmission key for node `i`'s next transmission:
    /// `(node << 32) | per-node counter`. A shard executes exactly the
    /// transmissions of the nodes it owns, in the reference order, so the
    /// counter — and therefore the key carried by every shipped arrival —
    /// matches the single-threaded run.
    #[inline]
    fn tx_key(&mut self, i: usize) -> u64 {
        let k = ((i as u64) << 32) | self.hot.tx_key_ctr[i] as u64;
        self.hot.tx_key_ctr[i] += 1;
        k
    }

    /// Propagation delay over `dist` metres, floored at the configured
    /// minimum (the floor is the conservative lookahead of a sharded run;
    /// zero in plain single mode).
    #[inline]
    fn prop_delay(&self, dist: f64) -> Duration {
        Duration::from_nanos(((dist / C * 1e9).round() as u64).max(self.delay_floor_ns))
    }

    /// `true` if node `j` is dispatched on this simulator: always, except
    /// for other regions' nodes in a sharded run.
    #[inline]
    fn owns(&self, j: usize) -> bool {
        self.shard.as_ref().is_none_or(|c| c.owner[j] == c.id)
    }

    fn transmit_frame(&mut self, i: usize, frame: Frame, power: Milliwatts, now: SimTime) {
        let airtime = self.node(i).mac.config().timing.frame_airtime(&frame);
        let end = now + airtime;
        let down = self.node_is_down(i);

        let mut rad = self.rad_pool.take();
        self.node_mut(i).radio.start_tx(end, &mut rad);
        if !down {
            self.node_mut(i)
                .energy
                .set_mode(now, RadioMode::Transmit, power);
        }
        self.forward_radio_events(i, rad, now);
        self.sched(
            end,
            SimEvent::TxEnd {
                node: NodeId(i as u32),
            },
        );
        if down {
            // A crashed node's MAC still goes through the motions (its
            // state machine stays consistent for recovery), but nothing
            // is radiated: no arrivals, no energy.
            return;
        }
        self.commit_energy(i, power, airtime, end);
        self.hot.tx_power_mw[i] = power.value();
        if let Some(m) = &mut self.metrics {
            m.note_data_tx(self.hot.tx_power_mw[i]);
        }

        self.collect_receivers(i, power, now);
        self.cull_down_receivers();
        let impair = self.faults.as_ref().map_or(1.0, |f| f.impair_gain);
        let frame = Arc::new(frame);
        let key = self.tx_key(i);
        let src_pos = self.hot.positions[i];
        self.fill_gains(i);
        for c in 0..self.candidates.len() {
            let j = self.candidates[c] as usize;
            let owned = self.owns(j);
            let dst_pos = self.hot.positions[j];
            let pr = power * (self.gains[c] * impair);
            if pr.value() < self.cfg.interference_floor.value() {
                continue;
            }
            let delay = self.prop_delay(src_pos.distance(dst_pos));
            if owned {
                self.sched(
                    now + delay,
                    SimEvent::ArrivalStart {
                        node: NodeId(j as u32),
                        key,
                        power: pr,
                        end: end + delay,
                        frame: frame.clone(),
                    },
                );
                self.sched(
                    end + delay,
                    SimEvent::ArrivalEnd {
                        node: NodeId(j as u32),
                        key,
                    },
                );
            } else {
                // Another region owns the receiver: ship the ready-made
                // arrival pair; the owner culls against its authoritative
                // down-state at our send instant (`tx`) when it drains.
                let tx = self.cur;
                let ctx = self.shard.as_mut().expect("non-owned implies sharded");
                ctx.outbox[ctx.owner[j] as usize].push(Shipment::Data {
                    at: now + delay,
                    node: NodeId(j as u32),
                    key,
                    power: pr,
                    end: end + delay,
                    frame: frame.clone(),
                    tx,
                });
            }
        }
    }

    fn transmit_ctrl(&mut self, i: usize, frame: CtrlFrame, power: Milliwatts, now: SimTime) {
        let airtime = CtrlFrame::airtime(self.node(i).mac.config().pcmac.ctrl_rate_bps);
        let end = now + airtime;

        let mut rad = self.ctrl_pool.take();
        self.node_mut(i).ctrl_radio.start_tx(end, &mut rad);
        self.ctrl_pool.put(rad);
        // The ctrl broadcast radiates too (the data radio may be mid-rx;
        // energy is attributed per-channel, transmit wins for the overlap).
        self.sched(
            end,
            SimEvent::CtrlTxEnd {
                node: NodeId(i as u32),
            },
        );
        if self.node_is_down(i) {
            return; // dead radios broadcast nothing
        }
        if let Some(m) = &mut self.metrics {
            m.note_ctrl_tx();
        }

        self.collect_receivers(i, power, now);
        self.cull_down_receivers();
        let impair = self.faults.as_ref().map_or(1.0, |f| f.impair_gain);
        let key = self.tx_key(i);
        let src_pos = self.hot.positions[i];
        self.fill_gains(i);
        for c in 0..self.candidates.len() {
            let j = self.candidates[c] as usize;
            let owned = self.owns(j);
            let dst_pos = self.hot.positions[j];
            let pr = power * (self.gains[c] * impair);
            if pr.value() < self.cfg.interference_floor.value() {
                continue;
            }
            let delay = self.prop_delay(src_pos.distance(dst_pos));
            if owned {
                self.sched(
                    now + delay,
                    SimEvent::CtrlArrivalStart {
                        node: NodeId(j as u32),
                        key,
                        power: pr,
                        end: end + delay,
                        frame: frame.clone(),
                    },
                );
                self.sched(
                    end + delay,
                    SimEvent::CtrlArrivalEnd {
                        node: NodeId(j as u32),
                        key,
                    },
                );
            } else {
                let tx = self.cur;
                let ctx = self.shard.as_mut().expect("non-owned implies sharded");
                ctx.outbox[ctx.owner[j] as usize].push(Shipment::Ctrl {
                    at: now + delay,
                    node: NodeId(j as u32),
                    key,
                    power: pr,
                    end: end + delay,
                    frame: frame.clone(),
                    tx,
                });
            }
        }
    }
}

// ----------------------------------------------------------------------
// Checkpoint capture and restore (see the `snapshot` module docs)
// ----------------------------------------------------------------------

/// What one execution lane (the single-threaded simulator, or one region
/// shard) contributes to a collective snapshot at a cut. Contributions
/// are owned clones — merging them needs no further synchronization with
/// the lanes that produced them.
pub(crate) struct SnapContribution {
    /// This lane's full pending population in `(time, rank, insertion)`
    /// order.
    pending: Vec<(SimTime, u128, SimEvent)>,
    /// Raw events ever scheduled on this lane's queue.
    scheduled_total: u64,
    /// Probe events scheduled on this lane (every lane schedules its own
    /// replica of the probe chain).
    probes_scheduled: u64,
    sent_packets: u64,
    /// Cold-state blobs for owned nodes (`None` where the cold state
    /// lives on another shard).
    node_blobs: Vec<Option<Vec<u8>>>,
    tx_key_ctr: Vec<u32>,
    faults: Option<FaultState>,
    metrics: Option<MetricsState>,
    /// Mobility models advanced to the cut; primary lane only (every
    /// lane holds the identical full replica).
    mobility: Option<Vec<Mobility>>,
}

impl Simulator {
    /// Capture the complete deterministic state at the current instant —
    /// every event dispatched so far is reflected, every pending event is
    /// recorded. Restoring the snapshot (under this or any equivalent
    /// execution mode) and running to the end is bit-identical to never
    /// having stopped.
    ///
    /// # Panics
    /// If called on one shard of a sharded run (shards snapshot
    /// *collectively* at epoch boundaries; see `parallel`).
    pub fn snapshot(&self) -> SimSnapshot {
        assert!(
            self.shard.is_none(),
            "snapshot() captures the full simulator, not one region shard"
        );
        self.snapshot_at(self.queue.now())
    }

    /// Single-lane capture at `cut` (every event strictly before `cut`
    /// has been dispatched; callers guarantee `cut` is at most the next
    /// pending event's time).
    pub(crate) fn snapshot_at(&self, cut: SimTime) -> SimSnapshot {
        let owner = vec![0u32; self.cfg.nodes.count()];
        let contrib = self.snap_contribution(cut);
        Self::merge_contributions(&self.cfg, cut, &owner, vec![contrib])
    }

    /// This lane's share of a snapshot at `cut`.
    pub(crate) fn snap_contribution(&self, cut: SimTime) -> SnapContribution {
        let pending: Vec<(SimTime, u128, SimEvent)> = self
            .queue
            .pending_in_order()
            .into_iter()
            .map(|(t, r, e)| (t, r, e.clone()))
            .collect();
        // One scratch writer for every node: per-node `SnapWriter`s pay
        // allocator growth 64k times over at scale.
        let mut scratch = SnapWriter::new();
        let node_blobs: Vec<Option<Vec<u8>>> = self
            .nodes
            .iter()
            .map(|b| {
                b.as_deref().map(|node| {
                    scratch.clear();
                    node.save_state(&mut scratch);
                    scratch.payload().to_vec()
                })
            })
            .collect();
        // Advance the mobility clones exactly to the cut: waypoint
        // queries are non-decreasing and idempotent, so this is the
        // state an uninterrupted run carries at `cut` regardless of when
        // each node was last sampled.
        let primary = self.shard.as_ref().is_none_or(|c| c.id == 0);
        let mobility = primary.then(|| {
            let mut m = self.hot.mobility.clone();
            for mm in &mut m {
                let _ = mm.position(cut);
            }
            m
        });
        SnapContribution {
            pending,
            scheduled_total: self.queue.scheduled_total(),
            probes_scheduled: self.metrics.as_ref().map_or(0, |m| m.probes_scheduled),
            sent_packets: self.sent_packets,
            node_blobs,
            tx_key_ctr: self.hot.tx_key_ctr.clone(),
            faults: self.faults.clone(),
            metrics: self.metrics.clone(),
            mobility,
        }
    }

    /// Fold per-lane contributions into the canonical (single-equivalent)
    /// snapshot. `owner` maps each node to the contributing lane holding
    /// its state (all zeros for a single-threaded capture).
    pub(crate) fn merge_contributions(
        cfg: &ScenarioConfig,
        cut: SimTime,
        owner: &[u32],
        mut parts: Vec<SnapContribution>,
    ) -> SimSnapshot {
        let s = parts.len() as u64;
        let n = owner.len();
        let n_bursts = cfg
            .faults
            .as_ref()
            .and_then(|f| f.impairments.as_ref())
            .map_or(0, Vec::len) as u64;
        let probes_scheduled = parts[0].probes_scheduled;
        debug_assert!(parts.iter().all(|p| p.probes_scheduled == probes_scheduled));
        // Canonical scheduled total: replicated machinery — the
        // impairment edges every shard schedules, each shard's own probe
        // chain — counted once, exactly like the merged event count.
        let scheduled_total = parts
            .iter()
            .map(|p| p.scheduled_total - p.probes_scheduled)
            .sum::<u64>()
            - (s - 1) * 2 * n_bursts
            + probes_scheduled;
        let sent_packets = parts.iter().map(|p| p.sent_packets).sum();
        // Canonical pending population: the primary lane contributes
        // everything (it holds one replica of the impairment/probe
        // events); other shards contribute their node-addressed events.
        // The sort is stable, so events sharing a full `(time, rank)`
        // key — necessarily same-node, hence same-lane — keep their
        // queue-insertion order.
        let mut pending = std::mem::take(&mut parts[0].pending);
        for p in parts.iter_mut().skip(1) {
            pending.extend(
                p.pending
                    .drain(..)
                    .filter(|(_, _, e)| e.node_index().is_some()),
            );
        }
        pending.sort_by_key(|&(at, rank, _)| (at, rank));
        let mut nodes = vec![Vec::new(); n];
        let mut tx_key_ctr = vec![0u32; n];
        for (i, &o) in owner.iter().enumerate() {
            let p = &mut parts[o as usize];
            nodes[i] = p.node_blobs[i].take().expect("owner holds the node");
            tx_key_ctr[i] = p.tx_key_ctr[i];
        }
        let mobility = parts[0].mobility.take().expect("primary carries mobility");
        let fault_parts: Vec<FaultState> =
            parts.iter_mut().filter_map(|p| p.faults.take()).collect();
        let faults =
            (!fault_parts.is_empty()).then(|| FaultState::merge(fault_parts, owner).capture());
        let metric_parts: Vec<MetricsState> =
            parts.iter_mut().filter_map(|p| p.metrics.take()).collect();
        let metrics =
            (!metric_parts.is_empty()).then(|| MetricsState::merge(metric_parts).capture());
        SimSnapshot {
            cfg_digest: crate::snapshot::config_digest(cfg),
            time: cut,
            scheduled_total,
            sent_packets,
            probes_scheduled,
            pending,
            mobility,
            tx_key_ctr,
            nodes,
            faults,
            metrics,
        }
    }

    /// Bring a snapshot back to life under `cfg`. The configuration must
    /// describe the same scenario the snapshot was captured from
    /// ([`SimSnapshot::matches`]); execution strategy, channel-index,
    /// refresh and cache modes may differ freely — a snapshot taken
    /// single-threaded restores into a sharded run and vice versa.
    /// Running the result to the end is bit-identical to the
    /// uninterrupted run.
    pub fn restore(cfg: ScenarioConfig, snap: &SimSnapshot) -> Result<Simulator, SnapError> {
        if !snap.matches(&cfg) {
            return Err(SnapError::CfgMismatch);
        }
        let n = cfg.nodes.count();
        if snap.nodes.len() != n || snap.mobility.len() != n || snap.tx_key_ctr.len() != n {
            return Err(SnapError::Corrupt("snapshot node count"));
        }
        if (snap.pending.len() as u64) > snap.scheduled_total {
            return Err(SnapError::Corrupt("pending exceeds scheduled total"));
        }
        let sharded = matches!(cfg.execution_mode(), ExecutionMode::Sharded { .. });
        let mut sim = Simulator::new(cfg);
        if sharded {
            // Shard builds re-initialise the donated cold state, so the
            // overlay must happen per shard, after each shard is built;
            // park the snapshot for `parallel::run_sharded` to apply.
            // Validate the blobs now so worker threads cannot hit a
            // corrupt one mid-run.
            for (blob, node) in snap.nodes.iter().zip(sim.nodes.iter_mut()) {
                let mut r = SnapReader::over(blob);
                node.as_deref_mut()
                    .expect("full build owns every node")
                    .load_state(&mut r)?;
                if !r.is_exhausted() {
                    return Err(SnapError::Corrupt("node blob trailing bytes"));
                }
            }
            sim.resume = Some(Arc::new(snap.clone()));
        } else {
            sim.apply_restore(snap)?;
        }
        Ok(sim)
    }

    /// Take the parked snapshot, if any (the sharded-restore handoff).
    pub(crate) fn take_resume(&mut self) -> Option<Arc<SimSnapshot>> {
        self.resume.take()
    }

    /// Overlay `snap` on this freshly-built simulator (single-threaded,
    /// or one owner-only region shard). Exactly one lane — single mode,
    /// or shard 0 — restores as primary and receives the cumulative
    /// counters; see `FaultState::restore_from` / `MetricsState::
    /// restore_from` for the replication roles.
    pub(crate) fn apply_restore(&mut self, snap: &SimSnapshot) -> Result<(), SnapError> {
        let n = self.cfg.nodes.count();
        let cut = snap.time;
        let shard_info: Option<(Arc<Vec<u32>>, u32)> = self
            .shard
            .as_ref()
            .map(|ctx| (Arc::clone(&ctx.owner), ctx.id));
        let primary = self.shard.as_ref().is_none_or(|c| c.id == 0);

        // The event queue: restart the sequence counter at the cut and
        // re-schedule this lane's slice of the canonical pending set in
        // canonical order, so insertion sequence numbers break same-key
        // ties exactly as they did in the original run.
        let pending_bursts = snap
            .pending
            .iter()
            .filter(|(_, _, e)| {
                matches!(
                    e,
                    SimEvent::ImpairmentStart { .. } | SimEvent::ImpairmentEnd { .. }
                )
            })
            .count() as u64;
        let pending_probes = snap
            .pending
            .iter()
            .filter(|(_, _, e)| matches!(e, SimEvent::MetricsProbe))
            .count() as u64;
        let n_bursts = self
            .cfg
            .faults
            .as_ref()
            .and_then(|f| f.impairments.as_ref())
            .map_or(0, Vec::len) as u64;
        let base = if primary {
            // The canonical total already counts this lane's replicated
            // events exactly once.
            snap.scheduled_total
                .checked_sub(snap.pending.len() as u64)
                .ok_or(SnapError::Corrupt("pending exceeds scheduled total"))?
        } else {
            // A foreign shard's scheduled total counts only the
            // replicated machinery it scheduled at build — both edges of
            // every impairment burst and its own probe-chain replica —
            // minus whatever is still pending (and re-scheduled below).
            (2 * n_bursts)
                .checked_sub(pending_bursts)
                .and_then(|b| {
                    snap.probes_scheduled
                        .checked_sub(pending_probes)
                        .map(|p| b + p)
                })
                .ok_or(SnapError::Corrupt("replicated pending exceeds schedule"))?
        };
        self.queue = pcmac_engine::EventQueue::restored(cut, base);
        for (at, rank, ev) in &snap.pending {
            let mine = match ev.node_index() {
                Some(j) => shard_info
                    .as_ref()
                    .is_none_or(|(owner, id)| owner[j] == *id),
                None => true, // replicated events live on every lane
            };
            if mine {
                self.queue.schedule_ranked(*at, *rank, ev.clone());
            }
        }

        // Cold per-node state, owned nodes only.
        for (blob, node) in snap.nodes.iter().zip(self.nodes.iter_mut()) {
            if let Some(node) = node.as_deref_mut() {
                let mut r = SnapReader::over(blob);
                node.load_state(&mut r)?;
                if !r.is_exhausted() {
                    return Err(SnapError::Corrupt("node blob trailing bytes"));
                }
            }
        }

        // Hot state: mobility models arrive advanced exactly to the cut,
        // so sampling them at the cut is exact and free of history.
        self.hot.mobility = snap.mobility.clone();
        self.hot.tx_key_ctr = snap.tx_key_ctr.clone();
        if self.any_mobile {
            for i in 0..n {
                let p = self.hot.mobility[i].position(cut);
                self.hot.positions[i] = p;
                if self.use_grid {
                    self.grid.update(i as u32, p);
                    if let GainCacheState::Sparse(c) = &mut self.gain_cache {
                        c.note_move(i as u32, self.grid.node_cell(i as u32));
                    }
                }
            }
            self.positions_at = Some(cut);
        }
        if self.lazy_refresh {
            // One live deadline chain per node, re-seeded from the cut
            // (positions are exact there, like at t = 0 for a fresh
            // build).
            self.refresh_heap.clear();
            for i in 0..n {
                self.hot.sampled_at[i] = cut;
                let d = self.hot.mobility[i].stale_after(cut, self.pad_m);
                self.hot.deadline[i] = d;
                if d != SimTime::MAX {
                    self.refresh_heap.push(Reverse((d, i as u32)));
                }
            }
        }
        self.sent_packets = if primary { snap.sent_packets } else { 0 };
        self.cur = (cut, 0);

        // The fault layer.
        match (self.faults.as_mut(), snap.faults.as_ref()) {
            (Some(fs), Some(fsnap)) => {
                let shard = self
                    .shard
                    .as_ref()
                    .map(|ctx| (ctx.owner.as_slice(), ctx.id));
                fs.restore_from(fsnap, primary, shard)
                    .map_err(SnapError::Corrupt)?;
            }
            (None, None) => {}
            _ => return Err(SnapError::Corrupt("fault section presence")),
        }
        if let Some(fsnap) = snap.faults.as_ref() {
            let down = fsnap.down();
            for (alive, &d) in self.hot.alive.iter_mut().zip(down.iter()).take(n) {
                *alive = !d;
            }
            // Seed the shard transition logs: a node down at the cut
            // must cull in-window arrivals from transmissions after it,
            // exactly as the flip event recorded pre-cut would have.
            if let Some(ctx) = &mut self.shard {
                let seed = SimTime::from_nanos(cut.as_nanos().saturating_sub(1));
                for (i, t) in ctx.transitions.iter_mut().enumerate() {
                    if down[i] && ctx.owner[i] == ctx.id {
                        t.push((seed, u128::MAX, true));
                    }
                }
            }
        }

        // The metrics layer.
        match (self.metrics.as_mut(), snap.metrics.as_ref()) {
            (Some(ms), Some(msnap)) => {
                ms.restore_from(msnap, primary)
                    .map_err(SnapError::Corrupt)?;
            }
            (None, None) => {}
            _ => return Err(SnapError::Corrupt("metrics section presence")),
        }

        // Re-derive the hot mirrors from the restored cold state.
        for i in 0..n {
            self.sync_hot(i);
        }
        Ok(())
    }
}

// ----------------------------------------------------------------------
// Region-shard support (crate-internal; orchestrated by `parallel`)
// ----------------------------------------------------------------------

impl Simulator {
    /// The scenario this simulator was built from.
    pub(crate) fn cfg(&self) -> &ScenarioConfig {
        &self.cfg
    }

    /// The spatial index's cell size — region boundaries snap to grid
    /// columns so a cell (and the candidate rings around it) never
    /// straddles more than two regions.
    pub(crate) fn shard_cell_size(&self) -> f64 {
        self.grid.cell_size()
    }

    /// Initial x-coordinates (positions are exact at t = 0), the input
    /// to the column partition.
    pub(crate) fn start_xs(&self) -> Vec<f64> {
        self.hot.positions.iter().map(|p| p.x).collect()
    }

    /// Next event time in nanoseconds for the window negotiation:
    /// `u64::MAX` when the queue is drained past `end`.
    pub(crate) fn shard_peek_ns(&self, end: SimTime) -> u64 {
        match self.queue.peek_time() {
            Some(t) if t <= end => t.as_nanos(),
            _ => u64::MAX,
        }
    }

    /// The conservative lookahead (ns) a region run may use: at least
    /// the configured delay floor, and — for static scenarios — one less
    /// than the propagation time across the narrowest gap between
    /// adjacent ownership bands, since the earliest cross-shard effect
    /// of any event is an arrival that must cross that gap. Mobile
    /// scenarios fall back to the floor (bands do not confine moving
    /// positions); a single populated band has no cross-shard traffic at
    /// all, so the whole run is one window.
    pub(crate) fn derived_lookahead_ns(&self, owner: &[u32], shards: usize) -> u64 {
        let floor = self.delay_floor_ns;
        if self.any_mobile {
            return floor;
        }
        let mut min_x = vec![f64::INFINITY; shards];
        let mut max_x = vec![f64::NEG_INFINITY; shards];
        for (i, p) in self.hot.positions.iter().enumerate() {
            let s = owner[i] as usize;
            min_x[s] = min_x[s].min(p.x);
            max_x[s] = max_x[s].max(p.x);
        }
        let mut gap = f64::INFINITY;
        let mut prev: Option<usize> = None;
        for (k, (&lo, &hi)) in min_x.iter().zip(&max_x).enumerate() {
            if lo > hi {
                continue; // empty band
            }
            if let Some(p) = prev {
                gap = gap.min(lo - max_x[p]);
            }
            prev = Some(k);
        }
        if gap == f64::INFINITY {
            // One populated band: nothing ever crosses a boundary.
            return self.cfg.duration.as_nanos().max(floor);
        }
        if gap <= 0.0 {
            return floor;
        }
        // An arrival crossing `gap` metres is delayed at least
        // `floor(gap_ns)` ns (the scheduler rounds), so any lookahead at
        // or under `gap_ns - 1` can never miss a cross-shard effect.
        let gap_ns = (gap / C * 1e9).floor() as u64;
        gap_ns.saturating_sub(1).max(floor)
    }

    /// Dispatch every local event strictly before `horizon_ns` (and not
    /// past `end`). Cross-region arrivals pile up in the outboxes; when
    /// `trace` is given, dispatched events are buffered under their
    /// global `(time, rank)` for the post-run observer replay (shard 0
    /// records the replicated impairment/probe events for everyone).
    pub(crate) fn run_window(
        &mut self,
        horizon_ns: u64,
        end: SimTime,
        mut trace: Option<&mut Vec<(SimTime, u128, SimEvent)>>,
    ) {
        while let Some(t) = self.queue.peek_time() {
            if t > end || t.as_nanos() >= horizon_ns {
                break;
            }
            let ev = self.queue.pop().expect("peeked");
            self.cur = (ev.at, ev.rank);
            if let Some(buf) = trace.as_deref_mut() {
                let replicated = matches!(
                    ev.event,
                    SimEvent::ImpairmentStart { .. }
                        | SimEvent::ImpairmentEnd { .. }
                        | SimEvent::MetricsProbe
                );
                if !replicated || self.shard.as_ref().is_some_and(|c| c.id == 0) {
                    buf.push((ev.at, ev.rank, ev.event.clone()));
                }
            }
            self.dispatch(ev.event, ev.at);
        }
    }

    /// Take the window's outgoing shipments (one bucket per shard).
    pub(crate) fn take_outboxes(&mut self) -> Vec<Vec<Shipment>> {
        let ctx = self.shard.as_mut().expect("sharded");
        ctx.outbox.iter_mut().map(std::mem::take).collect()
    }

    /// Was owned node `j` down at the instant of the event keyed `tx`?
    /// Replays the transition log: the last flip strictly before `tx`
    /// decides (a flip can never share a full `(time, rank)` key with
    /// another shard's transmission — ranks pin events to nodes).
    fn down_at(&self, j: usize, tx: (SimTime, u128)) -> bool {
        if self.faults.is_none() {
            return false;
        }
        let Some(ctx) = &self.shard else { return false };
        ctx.transitions[j]
            .iter()
            .rev()
            .find(|&&(t, r, _)| (t, r) < tx)
            .is_some_and(|&(_, _, down)| down)
    }

    /// Drain one window's incoming shipments (already ordered: callers
    /// pass the per-sender batches in fixed shard order). Each shipment
    /// is culled against the receiver's authoritative down-state at the
    /// sender's transmit instant — the exact test the single-threaded
    /// sender loop applies inline — then scheduled under its content
    /// rank, landing in the identical queue position.
    pub(crate) fn accept_shipments(&mut self, batches: Vec<Vec<Shipment>>) {
        for batch in batches {
            for s in batch {
                match s {
                    Shipment::Data {
                        at,
                        node,
                        key,
                        power,
                        end,
                        frame,
                        tx,
                    } => {
                        if self.down_at(node.index(), tx) {
                            continue;
                        }
                        self.sched(
                            at,
                            SimEvent::ArrivalStart {
                                node,
                                key,
                                power,
                                end,
                                frame,
                            },
                        );
                        self.sched(end, SimEvent::ArrivalEnd { node, key });
                    }
                    Shipment::Ctrl {
                        at,
                        node,
                        key,
                        power,
                        end,
                        frame,
                        tx,
                    } => {
                        if self.down_at(node.index(), tx) {
                            continue;
                        }
                        self.sched(
                            at,
                            SimEvent::CtrlArrivalStart {
                                node,
                                key,
                                power,
                                end,
                                frame,
                            },
                        );
                        self.sched(end, SimEvent::CtrlArrivalEnd { node, key });
                    }
                }
            }
        }
    }

    /// Finalize this shard after its queue drains: close the energy
    /// ledgers and surrender the pieces the merge needs.
    pub(crate) fn into_shard_parts(mut self, end: SimTime) -> ShardParts {
        for node in self.nodes.iter_mut().flatten() {
            node.energy.finish(end);
        }
        let cache_stats = match &self.gain_cache {
            GainCacheState::Sparse(c) => Some(c.stats()),
            _ => None,
        };
        let probes = self.metrics.as_ref().map_or(0, |m| m.probes_scheduled);
        ShardParts {
            nodes: self.nodes,
            sent_packets: self.sent_packets,
            events: self.queue.scheduled_total() - probes,
            faults: self.faults,
            metrics: self.metrics,
            cache_stats,
        }
    }
}

/// Schedule `ev` with its content-derived rank (build-time sites; the
/// running simulator uses [`Simulator::sched`]).
fn sched_into(queue: &mut EventQueue<SimEvent>, at: SimTime, ev: SimEvent) {
    queue.schedule_ranked(at, ev.rank(), ev);
}

/// The radius beyond which a transmission at `power` cannot reach
/// `floor` under any realisation of `model` (slightly inflated for
/// float-inversion safety). Infinite when the floor is disabled.
fn cull_radius(model: &PropagationModel, power: Milliwatts, floor: Milliwatts) -> f64 {
    if floor.value() <= 0.0 || power.value() <= 0.0 {
        return f64::INFINITY;
    }
    model.max_range_for(power, floor) * RADIUS_SLACK
}

/// Which nodes shard `id` keeps hot state (and grid membership) for:
/// owned nodes plus every node within `halo_reach` metres (in x) of the
/// owned span — the farthest any owned transmission can matter, so grid
/// queries from owned transmitters return exactly the full-grid
/// candidate set. Mobile scenarios and unbounded reach track everything
/// (no static halo is sound when positions drift across bands); the
/// cold `Node` state stays owner-only either way, which is the dominant
/// memory term.
fn compute_tracked(
    owner: &[u32],
    id: u32,
    positions: &[Point],
    any_mobile: bool,
    halo_reach: f64,
) -> Vec<bool> {
    if any_mobile || !halo_reach.is_finite() {
        return vec![true; positions.len()];
    }
    let mut min_x = f64::INFINITY;
    let mut max_x = f64::NEG_INFINITY;
    for (i, p) in positions.iter().enumerate() {
        if owner[i] == id {
            min_x = min_x.min(p.x);
            max_x = max_x.max(p.x);
        }
    }
    owner
        .iter()
        .zip(positions)
        .map(|(&o, p)| o == id || (p.x >= min_x - halo_reach && p.x <= max_x + halo_reach))
        .collect()
}
