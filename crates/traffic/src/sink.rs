//! The measuring end of a flow.
//!
//! Sinks compute exactly the two quantities the paper's evaluation plots:
//! delivered application bytes (→ aggregate network throughput, Fig. 8)
//! and end-to-end packet delay (→ average delay, Fig. 9).

use std::collections::HashMap;

use pcmac_engine::{Duration, FlowId, SimTime};
use pcmac_net::{Packet, Payload};
use pcmac_stats::Histogram;

/// Delay histogram geometry shared by all sinks so network-wide merging
/// works: 10 ms buckets out to 10 s.
const DELAY_BUCKET_MS: f64 = 10.0;
const DELAY_BUCKETS: usize = 1000;

/// Per-flow delivery statistics.
#[derive(Debug, Clone, Default)]
pub struct FlowStats {
    /// Packets delivered.
    pub received: u64,
    /// Application (UDP payload) bytes delivered.
    pub bytes: u64,
    /// Sum of end-to-end delays (for the mean).
    delay_sum: Duration,
    /// Worst delay seen.
    pub max_delay: Duration,
}

impl FlowStats {
    /// Mean end-to-end delay, if anything arrived.
    pub fn mean_delay(&self) -> Option<Duration> {
        (self.received > 0).then(|| self.delay_sum / self.received)
    }

    /// Total of all recorded delays (exact cross-node aggregation).
    pub fn delay_sum(&self) -> Duration {
        self.delay_sum
    }
}

/// Collects deliveries at a destination node.
#[derive(Debug, Clone)]
pub struct Sink {
    flows: HashMap<FlowId, FlowStats>,
    delay_hist: Histogram,
}

impl Default for Sink {
    fn default() -> Self {
        Sink {
            flows: HashMap::new(),
            delay_hist: Histogram::new(DELAY_BUCKET_MS, DELAY_BUCKETS),
        }
    }
}

impl Sink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a delivered data packet at time `now`.
    pub fn deliver(&mut self, packet: &Packet, now: SimTime) {
        let Payload::Data { bytes } = packet.payload else {
            return; // routing control is not application traffic
        };
        let Some(flow) = packet.flow else { return };
        let delay = now.saturating_since(packet.created_at);
        let s = self.flows.entry(flow).or_default();
        s.received += 1;
        s.bytes += bytes as u64;
        s.delay_sum += delay;
        s.max_delay = s.max_delay.max(delay);
        self.delay_hist.record(delay.as_millis_f64());
    }

    /// The delay distribution (ms buckets) across all flows at this sink;
    /// geometry is shared by every sink so histograms merge network-wide.
    pub fn delay_histogram(&self) -> &Histogram {
        &self.delay_hist
    }

    /// Stats for one flow.
    pub fn flow(&self, flow: FlowId) -> Option<&FlowStats> {
        self.flows.get(&flow)
    }

    /// Iterate all flows.
    pub fn flows(&self) -> impl Iterator<Item = (&FlowId, &FlowStats)> {
        self.flows.iter()
    }

    /// Total delivered packets.
    pub fn total_received(&self) -> u64 {
        self.flows.values().map(|f| f.received).sum()
    }

    /// Total delivered application bytes.
    pub fn total_bytes(&self) -> u64 {
        self.flows.values().map(|f| f.bytes).sum()
    }

    /// Mean end-to-end delay across all delivered packets.
    pub fn mean_delay(&self) -> Option<Duration> {
        let n: u64 = self.flows.values().map(|f| f.received).sum();
        if n == 0 {
            return None;
        }
        let sum_ns: u64 = self.flows.values().map(|f| f.delay_sum.as_nanos()).sum();
        Some(Duration::from_nanos(sum_ns / n))
    }
}

mod snap {
    use super::{FlowStats, Sink};

    pcmac_snap::snap_struct!(FlowStats {
        received,
        bytes,
        delay_sum,
        max_delay,
    });

    pcmac_snap::snap_struct!(Sink { flows, delay_hist });
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmac_engine::{NodeId, PacketId};

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + Duration::from_millis(ms)
    }

    fn pkt(flow: u32, n: u64, created_ms: u64) -> Packet {
        Packet::data(
            PacketId(n),
            FlowId(flow),
            NodeId(1),
            NodeId(2),
            512,
            t(created_ms),
        )
    }

    #[test]
    fn records_bytes_and_delay() {
        let mut s = Sink::new();
        s.deliver(&pkt(0, 1, 0), t(50));
        s.deliver(&pkt(0, 2, 100), t(250));
        let f = s.flow(FlowId(0)).unwrap();
        assert_eq!(f.received, 2);
        assert_eq!(f.bytes, 1024);
        assert_eq!(f.mean_delay().unwrap(), Duration::from_millis(100));
        assert_eq!(f.max_delay, Duration::from_millis(150));
    }

    #[test]
    fn separates_flows() {
        let mut s = Sink::new();
        s.deliver(&pkt(0, 1, 0), t(10));
        s.deliver(&pkt(1, 2, 0), t(30));
        assert_eq!(s.flow(FlowId(0)).unwrap().received, 1);
        assert_eq!(s.flow(FlowId(1)).unwrap().received, 1);
        assert_eq!(s.total_received(), 2);
        assert_eq!(s.total_bytes(), 1024);
    }

    #[test]
    fn aggregate_mean_weighs_all_packets() {
        let mut s = Sink::new();
        s.deliver(&pkt(0, 1, 0), t(10)); // 10 ms
        s.deliver(&pkt(1, 2, 0), t(50)); // 50 ms
        s.deliver(&pkt(1, 3, 0), t(60)); // 60 ms
        assert_eq!(s.mean_delay().unwrap(), Duration::from_millis(40));
    }

    #[test]
    fn empty_sink_has_no_delay() {
        let s = Sink::new();
        assert!(s.mean_delay().is_none());
        assert_eq!(s.total_received(), 0);
    }

    #[test]
    fn delay_histogram_tracks_percentiles() {
        let mut s = Sink::new();
        // 9 fast packets (≤10 ms) and 1 slow (1 s).
        for n in 0..9 {
            s.deliver(&pkt(0, n, 0), t(5));
        }
        s.deliver(&pkt(0, 99, 0), t(1000));
        let h = s.delay_histogram();
        assert_eq!(h.total(), 10);
        assert_eq!(h.quantile(0.5), Some(10.0), "median in first bucket");
        // 1000 ms lands in bucket [1000, 1010) → upper edge 1010.
        assert_eq!(h.quantile(1.0), Some(1010.0), "tail sees the slow one");
    }

    #[test]
    fn routing_packets_are_not_traffic() {
        use pcmac_net::Rrep;
        let mut s = Sink::new();
        let ctrl = Packet::control(
            PacketId(9),
            NodeId(1),
            NodeId(2),
            t(0),
            Payload::Rrep(Rrep {
                origin: NodeId(1),
                target: NodeId(2),
                target_seq: 0,
                hop_count: 0,
            }),
        );
        s.deliver(&ctrl, t(10));
        assert_eq!(s.total_received(), 0);
    }
}
