//! Single-pass summary statistics (Welford's algorithm).

use serde::{Deserialize, Serialize};

/// Running mean/variance/min/max without storing samples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for OnlineStats {
    fn default() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (n−1 denominator; 0 for fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Half-width of the two-sided 95% confidence interval for the mean:
    /// `t(0.975, n−1) · s / √n`, with the Student-t critical value for
    /// small samples (the seed counts campaigns actually use) and the
    /// normal 1.96 beyond the table. `0` for fewer than two samples —
    /// one seed gives a point estimate, not an interval.
    pub fn ci95_halfwidth(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        // t(0.975, df) for df = 1..=30.
        const T95: [f64; 30] = [
            12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179,
            2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
            2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
        ];
        let df = (self.count - 1) as usize;
        let t = if df <= T95.len() { T95[df - 1] } else { 1.96 };
        t * self.stddev() / (self.count as f64).sqrt()
    }

    /// Merge another accumulator into this one (parallel run aggregation).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_closed_form() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance of that set is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn empty_is_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn merge_equals_concatenation() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn ci95_matches_hand_computation() {
        let mut s = OnlineStats::new();
        for x in [10.0, 12.0, 14.0] {
            s.push(x);
        }
        // n = 3, s = 2, t(0.975, 2) = 4.303 → 4.303 · 2 / √3.
        let expect = 4.303 * 2.0 / 3.0f64.sqrt();
        assert!((s.ci95_halfwidth() - expect).abs() < 1e-9);
    }

    #[test]
    fn ci95_degenerate_cases() {
        let mut s = OnlineStats::new();
        assert_eq!(s.ci95_halfwidth(), 0.0, "empty");
        s.push(5.0);
        assert_eq!(s.ci95_halfwidth(), 0.0, "single sample has no interval");
        let mut big = OnlineStats::new();
        for i in 0..100 {
            big.push(if i % 2 == 0 { 1.0 } else { -1.0 });
        }
        // Past the t-table: normal critical value.
        let expect = 1.96 * big.stddev() / 10.0;
        assert!((big.ci95_halfwidth() - expect).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(3.0);
        let before = a.clone();
        a.merge(&OnlineStats::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());
    }
}
