//! # pcmac-phy — wireless physical layer
//!
//! Everything below the MAC: how much power arrives where, who can decode
//! what, and when the channel looks busy.
//!
//! * [`propagation`] — path-loss models. The paper (like ns-2's CMU
//!   wireless extensions) uses **two-ray ground** with the Lucent WaveLAN
//!   constants: 914 MHz carrier, 1.5 m antennas, decode range 250 m and
//!   carrier-sense range 550 m at the 281.8 mW maximum power.
//! * [`model`] — the closed [`PropagationModel`] enum (static dispatch on
//!   the channel hot path) and the dense [`GainCache`] precomputing
//!   pairwise gains for fully static scenarios.
//! * [`gain`] — the block-sparse [`SparseGainCache`]: pair gains keyed by
//!   occupied spatial-index cell pairs, invalidated per node on movement,
//!   O(touched local pairs) memory instead of N² — the cache mobile and
//!   10⁴-node scenarios use.
//! * [`levels`] — the paper's ten discrete transmit power levels
//!   (1 mW … 281.8 mW) and quantisation of a computed "needed power" up to
//!   the next level.
//! * [`radio`] — the per-node reception state machine: cumulative
//!   interference tracking, SINR-based capture (threshold 10), half-duplex
//!   transmit/receive, carrier-sense busy/idle edge notifications.
//! * [`energy`] — a per-node energy meter (transmit energy scales with the
//!   selected power level; this is what power *saving* claims measure).
//!
//! The fidelity anchors in DESIGN.md §4 — crossover distance, the
//! level→range table, threshold values — are asserted by this crate's
//! tests.

pub mod energy;
pub mod gain;
pub mod levels;
pub mod model;
pub mod propagation;
pub mod radio;
pub mod shadowing;

pub use energy::{EnergyMeter, RadioMode};
pub use gain::{SparseCacheStats, SparseGainCache};
pub use levels::PowerLevels;
pub use model::{GainCache, PropagationModel};
pub use propagation::{Propagation, TwoRayGround};
pub use radio::{CapturePolicy, Radio, RadioConfig, RadioEvent};
pub use shadowing::Shadowed;
