//! Scenario configuration.

use pcmac_aodv::AodvConfig;
use pcmac_engine::{Duration, FlowId, Milliwatts, NodeId, Point, SimTime};
use pcmac_mac::{MacConfig, Variant};
use pcmac_phy::radio::RadioConfig;
use serde::{Deserialize, Serialize};

use crate::fault::FaultConfig;
use crate::metrics::MetricsConfig;

/// How traffic of one flow is shaped.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FlowShape {
    /// Constant bit rate (the paper's workload).
    Cbr,
    /// Poisson arrivals at the same mean rate.
    Poisson,
    /// Exponential on/off bursts at the given mean phase lengths.
    OnOff {
        /// Mean ON phase (seconds).
        mean_on_s: f64,
        /// Mean OFF phase (seconds).
        mean_off_s: f64,
    },
}

/// One application flow.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowSpec {
    /// Flow identity.
    pub flow: FlowId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// UDP payload bytes per packet (512 in the paper).
    pub bytes: u32,
    /// Application bit rate (b/s).
    pub rate_bps: f64,
    /// First emission.
    pub start: SimTime,
    /// No emissions at or after this instant.
    pub stop: SimTime,
    /// Arrival process.
    pub shape: FlowShape,
}

/// Node placement and movement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum NodeSetup {
    /// `count` nodes scattered uniformly, moving by random waypoint at
    /// `speed` m/s with `pause` between legs (the paper's setup).
    UniformWaypoint {
        /// Number of nodes.
        count: usize,
        /// Constant speed (m/s).
        speed: f64,
        /// Pause at each waypoint.
        pause: Duration,
    },
    /// Fixed positions, no movement (tests, Figure 4/6 geometries).
    Static(Vec<Point>),
    /// Explicit starting positions moving by random waypoint — generated
    /// placements (clustered, corridor, ring, …) under mobility.
    WaypointFrom {
        /// Starting position of each node.
        starts: Vec<Point>,
        /// Constant speed (m/s).
        speed: f64,
        /// Pause at each waypoint.
        pause: Duration,
    },
}

impl NodeSetup {
    /// Number of nodes this setup creates.
    pub fn count(&self) -> usize {
        match self {
            NodeSetup::UniformWaypoint { count, .. } => *count,
            NodeSetup::Static(v) => v.len(),
            NodeSetup::WaypointFrom { starts, .. } => starts.len(),
        }
    }
}

/// How the channel finds candidate receivers for each transmission.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChannelIndexMode {
    /// Query the uniform-grid spatial index: only cells within the
    /// transmission's maximum reception range are visited. The default.
    #[default]
    Grid,
    /// Scan every node per transmission. The O(N) reference
    /// implementation, kept for equivalence tests and benchmarks.
    BruteForce,
}

/// When cached node positions (and the spatial index) are brought up to
/// the current instant under mobility.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum MobilityRefreshMode {
    /// Deadline-driven: the spatial index tolerates a per-node drift pad,
    /// so a node is re-sampled only when its [`stale_after`] deadline
    /// fires or it turns up as a transmission candidate — O(local) per
    /// event instead of O(N) per new timestamp. Produces bit-identical
    /// runs to [`MobilityRefreshMode::Eager`]. The default.
    ///
    /// [`stale_after`]: pcmac_mobility::RandomWaypoint::stale_after
    #[default]
    Lazy,
    /// Re-sample every node whenever the clock advances — the O(N)
    /// reference implementation, kept for equivalence tests and
    /// benchmarks.
    Eager,
}

/// Which pairwise gain cache the channel uses (effective only with
/// [`ChannelIndexMode::Grid`]; the brute-force reference always
/// evaluates the propagation model live).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum GainCacheMode {
    /// Dense precomputed table for small fully-static scenarios,
    /// block-sparse cache everywhere else. The default.
    #[default]
    Auto,
    /// The O(N²)-memory precomputed table (static scenarios up to the
    /// node guard; silently falls back to live evaluation beyond it or
    /// under mobility).
    Dense,
    /// The block-sparse cache keyed by occupied grid-cell pairs,
    /// invalidated per node on movement — works for mobile and 10⁴-node
    /// scenarios.
    Sparse,
    /// No cache: evaluate the propagation model on every lookup.
    Off,
}

/// How the event loop executes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// One thread pops one global queue — the reference. The default.
    #[default]
    Single,
    /// The field is partitioned into contiguous column ranges of the
    /// spatial grid, one region per worker thread, each running its own
    /// event queue. Conservative barrier-epoch synchronization with
    /// lookahead equal to the propagation-delay floor
    /// ([`ScenarioConfig::delay_floor_us`], which must be set) makes the
    /// run bit-identical to [`ExecutionMode::Single`].
    Sharded {
        /// Number of region shards (threads). `1` is legal and runs the
        /// sharded machinery degenerately.
        shards: usize,
    },
}

/// Log-normal shadowing on top of the two-ray model (robustness
/// experiments; the paper's channel has none).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShadowingConfig {
    /// Standard deviation of the shadowing term (dB).
    pub sigma_db: f64,
    /// `true` keeps the channel reciprocal (paper assumption 2);
    /// `false` draws independent shadowing per direction, violating it.
    pub symmetric: bool,
}

/// A complete simulation scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Human-readable label (reports, logs).
    pub name: String,
    /// MAC protocol under test.
    pub variant: Variant,
    /// Master seed; every stochastic component derives from it.
    pub seed: u64,
    /// Simulated duration.
    pub duration: Duration,
    /// Field dimensions (m).
    pub field: (f64, f64),
    /// Node placement/mobility.
    pub nodes: NodeSetup,
    /// Application flows.
    pub flows: Vec<FlowSpec>,
    /// Radio (thresholds, capture policy).
    pub radio: RadioConfig,
    /// MAC parameters.
    pub mac: MacConfig,
    /// Routing parameters.
    pub aodv: AodvConfig,
    /// Arrivals weaker than this are culled from the event stream (they
    /// could not influence carrier sense or any plausible SINR).
    pub interference_floor: Milliwatts,
    /// Optional log-normal shadowing (robustness ablations).
    pub shadowing: Option<ShadowingConfig>,
    /// Candidate-receiver lookup strategy (spatial index vs full scan).
    pub channel_index: ChannelIndexMode,
    /// Mobility refresh strategy (`None` = the default, lazy). Kept
    /// optional so scenario JSON predating the knob parses unchanged.
    pub mobility_refresh: Option<MobilityRefreshMode>,
    /// Gain cache selection (`None` = the default, auto). Kept optional
    /// so scenario JSON predating the knob parses unchanged.
    pub gain_cache: Option<GainCacheMode>,
    /// Deterministic fault plan (`None` = healthy network). Kept
    /// optional so scenario JSON predating the fault layer parses
    /// unchanged.
    pub faults: Option<FaultConfig>,
    /// Observability layer (`None` = off, zero cost). Kept optional so
    /// scenario JSON predating the knob parses unchanged.
    pub metrics: Option<MetricsConfig>,
    /// Execution strategy (`None` = the default, single-threaded). Kept
    /// optional so scenario JSON predating the knob parses unchanged.
    pub execution: Option<ExecutionMode>,
    /// Minimum propagation delay applied to every scheduled arrival, in
    /// microseconds (`None` = exact speed-of-light delays only). Sharded
    /// execution requires it: the floor is the conservative lookahead —
    /// no transmission at `t` can influence another region before
    /// `t + floor`, so regions may safely run `floor` ahead of each
    /// other. Applies identically in both execution modes, keeping
    /// Single and Sharded runs of the same scenario comparable. Must
    /// stay below the MAC slot time (20 µs with defaults): the CTS/ACK
    /// timeouts only budget two slots of grace for the control-frame
    /// round trip, so a larger floor times out every handshake —
    /// `validate()` rejects it. 10 µs is a good default.
    pub delay_floor_us: Option<f64>,
}

/// Emission start of flow `i`: 1 s warm-up plus 137 ms per flow, so
/// flows do not synchronise their first RREQ floods. The single source
/// of truth shared by the paper constructors, the declarative spec
/// materializer, and the spec validator's airtime check.
pub fn flow_start(i: usize) -> SimTime {
    SimTime::ZERO + Duration::from_millis(1000 + 137 * i as u64)
}

/// The seeded distinct `(src, dst)` pairs the paper scenarios draw their
/// flows from. Exposed so declarative scenario specs reproduce a
/// constructor-built sweep bit for bit: all protocol variants at the same
/// seed see the *same* pairs, keeping comparisons paired as in the paper.
pub fn random_flow_pairs(seed: u64, count: usize, n_flows: usize) -> Vec<(u32, u32)> {
    assert!(count >= 2, "need two nodes to form a flow");
    assert!(
        n_flows <= count * (count - 1),
        "{n_flows} distinct ordered pairs cannot be drawn from {count} nodes"
    );
    let mut rng = pcmac_engine::RngStream::derive(seed, "scenario.flows");
    let mut used: Vec<(u32, u32)> = Vec::with_capacity(n_flows);
    for _ in 0..n_flows {
        let pair = loop {
            let s = rng.below(count as u64) as u32;
            let d = rng.below(count as u64) as u32;
            if s != d && !used.contains(&(s, d)) {
                break (s, d);
            }
        };
        used.push(pair);
    }
    used
}

/// Everything wrong with a scenario, found in one pass — the load-time
/// alternative to panicking mid-run.
#[derive(Debug, Clone)]
pub struct InvalidScenario {
    /// Human-readable problems, one per defect.
    pub problems: Vec<String>,
}

impl std::fmt::Display for InvalidScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid scenario: {}", self.problems.join("; "))
    }
}

impl std::error::Error for InvalidScenario {}

impl ScenarioConfig {
    /// The paper's §IV scenario at a given aggregate offered load: 50
    /// nodes, 1000 m × 1000 m, random waypoint 3 m/s / 3 s pause, ten
    /// 512-byte CBR flows splitting `offered_load_kbps` evenly, 400 s.
    ///
    /// Source/destination pairs are drawn from the seed so that different
    /// seeds give different (but reproducible) traffic patterns; all four
    /// protocol variants at the same seed see the *same* pairs, keeping
    /// the comparison paired as in the paper.
    pub fn paper(variant: Variant, offered_load_kbps: f64, seed: u64) -> Self {
        Self::paper_with(variant, offered_load_kbps, seed, 50, 3.0)
    }

    /// [`ScenarioConfig::paper`] with the node count and mobility speed as
    /// parameters — the density and mobility extension sweeps vary them.
    pub fn paper_with(
        variant: Variant,
        offered_load_kbps: f64,
        seed: u64,
        count: usize,
        speed: f64,
    ) -> Self {
        assert!(count >= 2);
        let duration = Duration::from_secs(400);
        let n_flows = 10;
        let per_flow_bps = offered_load_kbps * 1000.0 / n_flows as f64;

        let flows: Vec<FlowSpec> = random_flow_pairs(seed, count, n_flows)
            .into_iter()
            .enumerate()
            .map(|(i, (src, dst))| FlowSpec {
                flow: FlowId(i as u32),
                src: NodeId(src),
                dst: NodeId(dst),
                bytes: 512,
                rate_bps: per_flow_bps,
                start: flow_start(i),
                stop: SimTime::ZERO + duration,
                shape: FlowShape::Cbr,
            })
            .collect();

        ScenarioConfig {
            name: format!("paper-{}-{offered_load_kbps}kbps", variant.name()),
            variant,
            seed,
            duration,
            field: (1000.0, 1000.0),
            nodes: NodeSetup::UniformWaypoint {
                count,
                speed,
                pause: Duration::from_secs(3),
            },
            flows,
            // The paper's numbers come from ns2.1b8a, whose capture model
            // is pairwise and start-only; reproduce that here. The
            // stricter cumulative-SINR model is the `capture_policy`
            // ablation (see DESIGN.md).
            radio: RadioConfig {
                capture_policy: pcmac_phy::CapturePolicy::StartOnly,
                ..RadioConfig::ns2_default()
            },
            mac: MacConfig::paper_default(variant),
            aodv: AodvConfig::default(),
            interference_floor: Milliwatts(1.559e-10), // CSThresh / 100
            shadowing: None,
            channel_index: ChannelIndexMode::default(),
            mobility_refresh: None,
            gain_cache: None,
            faults: None,
            metrics: None,
            execution: None,
            delay_floor_us: None,
        }
    }

    /// Two static nodes `distance` m apart with a single CBR flow from
    /// node 0 to node 1 — the smallest useful scenario.
    pub fn two_nodes(variant: Variant, distance: f64, rate_bps: f64, seed: u64) -> Self {
        let duration = Duration::from_secs(10);
        ScenarioConfig {
            name: format!("two-nodes-{}", variant.name()),
            variant,
            seed,
            duration,
            field: (1000.0, 1000.0),
            nodes: NodeSetup::Static(vec![
                Point::new(100.0, 500.0),
                Point::new(100.0 + distance, 500.0),
            ]),
            flows: vec![FlowSpec {
                flow: FlowId(0),
                src: NodeId(0),
                dst: NodeId(1),
                bytes: 512,
                rate_bps,
                start: SimTime::ZERO + Duration::from_millis(100),
                stop: SimTime::ZERO + duration,
                shape: FlowShape::Cbr,
            }],
            radio: RadioConfig::ns2_default(),
            mac: MacConfig::paper_default(variant),
            aodv: AodvConfig::default(),
            interference_floor: Milliwatts(1.559e-10),
            shadowing: None,
            channel_index: ChannelIndexMode::default(),
            mobility_refresh: None,
            gain_cache: None,
            faults: None,
            metrics: None,
            execution: None,
            delay_floor_us: None,
        }
    }

    /// The paper's Figure 4/6 asymmetric-link geometry: pairs A→B (close)
    /// and C→D (far) with C placed outside A/B's reduced sensing zones.
    /// Both pairs run saturating CBR.
    pub fn asymmetric_pairs(variant: Variant, rate_bps: f64, seed: u64) -> Self {
        let duration = Duration::from_secs(20);
        // A—B 100 m apart (class 7.25 mW, sense range ≈ 220 m); C 300 m
        // beyond B; C—D 180 m apart (class 75.8 mW, sense range ≈ 396 m).
        // Under the two-ray model this realises the paper's Figure 4
        // exactly: the pairs are *mutually* blind — C is outside A's
        // 220 m sensing zone (d(A,C) = 400 m) and A is just outside C's
        // 396 m zone — yet C's 75.8 mW frames arrive at B only ~7.7×
        // below A's signal, inside the 10× capture ratio, so they corrupt
        // B's receptions whenever C talks. Fixed-power schemes die here;
        // PCMAC recovers through its power step-up ladder and the
        // receiver-noise-aware CTS/DATA power computation.
        let pts = pcmac_mobility::placement::asymmetric_pairs(100.0, 180.0, 300.0);
        let mk_flow = |i: u32, src: u32, dst: u32| FlowSpec {
            flow: FlowId(i),
            src: NodeId(src),
            dst: NodeId(dst),
            bytes: 512,
            rate_bps,
            start: SimTime::ZERO + Duration::from_millis(100 + 53 * i as u64),
            stop: SimTime::ZERO + duration,
            shape: FlowShape::Cbr,
        };
        ScenarioConfig {
            name: format!("asymmetric-{}", variant.name()),
            variant,
            seed,
            duration,
            field: (1000.0, 1000.0),
            nodes: NodeSetup::Static(pts),
            flows: vec![mk_flow(0, 0, 1), mk_flow(1, 2, 3)],
            radio: RadioConfig::ns2_default(),
            mac: MacConfig::paper_default(variant),
            aodv: AodvConfig::default(),
            interference_floor: Milliwatts(1.559e-10),
            shadowing: None,
            channel_index: ChannelIndexMode::default(),
            mobility_refresh: None,
            gain_cache: None,
            faults: None,
            metrics: None,
            execution: None,
            delay_floor_us: None,
        }
    }

    /// Replace the duration (and clip flow stop times accordingly).
    pub fn with_duration(mut self, duration: Duration) -> Self {
        let stop = SimTime::ZERO + duration;
        self.duration = duration;
        for f in &mut self.flows {
            f.stop = f.stop.min(stop);
        }
        self
    }

    /// Replace the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Aggregate offered application load in kbit/s.
    pub fn offered_load_kbps(&self) -> f64 {
        self.flows.iter().map(|f| f.rate_bps).sum::<f64>() / 1000.0
    }

    /// Effective mobility refresh strategy (the default when unset).
    pub fn mobility_refresh_mode(&self) -> MobilityRefreshMode {
        self.mobility_refresh.unwrap_or_default()
    }

    /// Effective gain cache selection (the default when unset).
    pub fn gain_cache_mode(&self) -> GainCacheMode {
        self.gain_cache.unwrap_or_default()
    }

    /// Effective execution strategy (the default when unset).
    pub fn execution_mode(&self) -> ExecutionMode {
        self.execution.unwrap_or_default()
    }

    /// Number of region shards the run will use (1 in single mode).
    pub fn shards(&self) -> usize {
        match self.execution_mode() {
            ExecutionMode::Single => 1,
            ExecutionMode::Sharded { shards } => shards.max(1),
        }
    }

    /// The propagation-delay floor as a duration (zero when unset).
    pub fn delay_floor(&self) -> Duration {
        self.delay_floor_us.map_or(Duration::ZERO, |us| {
            Duration::from_nanos((us * 1e3).round() as u64)
        })
    }

    /// Check the scenario for defects that would otherwise surface as
    /// panics (or nonsense) deep inside a run: zero nodes, non-finite or
    /// non-positive rates and dimensions, flows referencing out-of-range
    /// nodes. Collects *every* problem so a bad spec file is fixed in one
    /// round trip.
    pub fn validate(&self) -> Result<(), InvalidScenario> {
        let mut problems = Vec::new();
        let count = self.nodes.count();
        if count == 0 {
            problems.push("scenario has zero nodes".to_string());
        }
        match &self.nodes {
            NodeSetup::UniformWaypoint { speed, .. } | NodeSetup::WaypointFrom { speed, .. } => {
                if !speed.is_finite() || *speed < 0.0 {
                    problems.push(format!(
                        "mobility speed {speed} must be finite and non-negative"
                    ));
                }
            }
            NodeSetup::Static(_) => {}
        }
        for (which, dim) in [("width", self.field.0), ("height", self.field.1)] {
            if !dim.is_finite() || dim <= 0.0 {
                problems.push(format!("field {which} {dim} must be positive and finite"));
            }
        }
        if self.duration.as_nanos() == 0 {
            problems.push("duration is zero: nothing would run".to_string());
        }
        for f in &self.flows {
            let id = f.flow.0;
            if f.src.index() >= count {
                problems.push(format!(
                    "flow {id}: source node {} out of range (scenario has {count} nodes)",
                    f.src.0
                ));
            }
            if f.dst.index() >= count {
                problems.push(format!(
                    "flow {id}: destination node {} out of range (scenario has {count} nodes)",
                    f.dst.0
                ));
            }
            if f.src == f.dst {
                problems.push(format!(
                    "flow {id}: source and destination are both node {}",
                    f.src.0
                ));
            }
            if f.bytes == 0 {
                problems.push(format!("flow {id}: packet size is zero bytes"));
            }
            if !f.rate_bps.is_finite() || f.rate_bps <= 0.0 {
                problems.push(format!(
                    "flow {id}: rate {} b/s must be positive and finite",
                    f.rate_bps
                ));
            }
            if let FlowShape::OnOff {
                mean_on_s,
                mean_off_s,
            } = f.shape
            {
                for (which, mean) in [("on", mean_on_s), ("off", mean_off_s)] {
                    if !mean.is_finite() || mean <= 0.0 {
                        problems.push(format!(
                            "flow {id}: mean {which} phase {mean} s must be positive and finite"
                        ));
                    }
                }
            }
        }
        // --- protocol / radio parameter surface (spec-overlay knobs) ---
        let pc = &self.mac.pcmac;
        if !pc.safety_factor.is_finite() || pc.safety_factor <= 0.0 {
            problems.push(format!(
                "PCMAC safety factor {} must be positive and finite",
                pc.safety_factor
            ));
        }
        if pc.capture_ratio.is_nan() || pc.capture_ratio < 1.0 {
            problems.push(format!(
                "PCMAC capture ratio {} must be at least 1 (a weaker signal cannot capture)",
                pc.capture_ratio
            ));
        }
        if pc.ctrl_rate_bps == 0 {
            problems
                .push("control channel rate is zero: PCMAC broadcasts would never finish".into());
        }
        if self.mac.queue_capacity == 0 {
            problems.push("interface queue capacity is zero: every packet would drop".into());
        }
        for (which, w) in [
            ("MAC decode threshold", self.mac.rx_thresh),
            ("radio decode threshold", self.radio.rx_thresh),
            ("carrier-sense threshold", self.radio.cs_thresh),
            ("noise floor", self.radio.noise_floor),
        ] {
            if !w.value().is_finite() || w.value() <= 0.0 {
                problems.push(format!(
                    "{which} {} mW must be positive and finite",
                    w.value()
                ));
            }
        }
        if self.radio.rx_thresh.value() <= self.radio.noise_floor.value() {
            problems.push(format!(
                "decode threshold {} mW must exceed the noise floor {} mW — nothing could ever be decoded",
                self.radio.rx_thresh.value(),
                self.radio.noise_floor.value()
            ));
        }
        if self.radio.capture_ratio.is_nan() || self.radio.capture_ratio < 1.0 {
            problems.push(format!(
                "radio capture ratio {} must be at least 1",
                self.radio.capture_ratio
            ));
        }
        let floor = self.interference_floor.value();
        if floor.is_nan() || floor < 0.0 {
            problems.push(format!(
                "interference floor {:?} must be non-negative",
                self.interference_floor
            ));
        }
        if let Some(s) = &self.shadowing {
            if !s.sigma_db.is_finite() || s.sigma_db < 0.0 {
                problems.push(format!(
                    "shadowing sigma {} dB must be finite and non-negative",
                    s.sigma_db
                ));
            }
        }
        if let Some(fc) = &self.faults {
            fc.collect_problems(count, self.duration.as_secs_f64(), &mut problems);
        }
        if let Some(mc) = &self.metrics {
            if !mc.probe_interval_s.is_finite() || mc.probe_interval_s <= 0.0 {
                problems.push(format!(
                    "metrics probe interval {} s must be positive and finite",
                    mc.probe_interval_s
                ));
            }
        }
        if let Some(us) = self.delay_floor_us {
            if !us.is_finite() || us <= 0.0 {
                problems.push(format!("delay floor {us} µs must be positive and finite"));
            } else {
                // The CTS/ACK timeouts budget two slots of grace for the
                // whole control-frame round trip; a floor at or past one
                // slot eats it all and times out every RTS/CTS handshake
                // (zero delivery, silently).
                let slot_us = self.mac.timing.slot.as_nanos() as f64 / 1e3;
                if us >= slot_us {
                    problems.push(format!(
                        "delay floor {us} µs must stay below the slot time ({slot_us} µs): \
                         CTS/ACK timeouts grant two slots of round-trip grace, so a floor \
                         of a slot or more times out every RTS/CTS handshake"
                    ));
                }
            }
        }
        if let Some(ExecutionMode::Sharded { shards }) = self.execution {
            if shards == 0 {
                problems.push("sharded execution with zero shards: nothing would run".into());
            }
            if self.delay_floor().is_zero() {
                problems.push(
                    "sharded execution requires a positive delay_floor_us: the floor is the \
                     conservative lookahead that lets regions run ahead of each other"
                        .into(),
                );
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(InvalidScenario { problems })
        }
    }

    /// Serialize the scenario to pretty JSON (experiment provenance,
    /// shareable configs).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("scenario configs always serialize")
    }

    /// Load a scenario from JSON produced by [`ScenarioConfig::to_json`].
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenario_matches_section_iv() {
        let c = ScenarioConfig::paper(Variant::Pcmac, 600.0, 1);
        assert_eq!(c.nodes.count(), 50);
        assert_eq!(c.flows.len(), 10);
        assert_eq!(c.duration, Duration::from_secs(400));
        assert!((c.offered_load_kbps() - 600.0).abs() < 1e-9);
        assert!(c.flows.iter().all(|f| f.bytes == 512));
        assert!(c.flows.iter().all(|f| f.src != f.dst));
        match c.nodes {
            NodeSetup::UniformWaypoint { speed, pause, .. } => {
                assert_eq!(speed, 3.0);
                assert_eq!(pause, Duration::from_secs(3));
            }
            _ => panic!("paper scenario is mobile"),
        }
    }

    #[test]
    fn same_seed_same_flow_pairs_across_variants() {
        let a = ScenarioConfig::paper(Variant::Basic, 500.0, 7);
        let b = ScenarioConfig::paper(Variant::Pcmac, 500.0, 7);
        for (fa, fb) in a.flows.iter().zip(&b.flows) {
            assert_eq!((fa.src, fa.dst), (fb.src, fb.dst));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = ScenarioConfig::paper(Variant::Basic, 500.0, 1);
        let b = ScenarioConfig::paper(Variant::Basic, 500.0, 2);
        let pa: Vec<_> = a.flows.iter().map(|f| (f.src, f.dst)).collect();
        let pb: Vec<_> = b.flows.iter().map(|f| (f.src, f.dst)).collect();
        assert_ne!(pa, pb);
    }

    #[test]
    fn with_duration_clips_flows() {
        let c =
            ScenarioConfig::paper(Variant::Basic, 500.0, 1).with_duration(Duration::from_secs(30));
        assert!(c
            .flows
            .iter()
            .all(|f| f.stop <= SimTime::ZERO + Duration::from_secs(30)));
    }

    #[test]
    fn json_round_trip_preserves_scenario() {
        let a = ScenarioConfig::paper(Variant::Pcmac, 700.0, 9);
        let json = a.to_json();
        let b = ScenarioConfig::from_json(&json).expect("parses back");
        assert_eq!(a.name, b.name);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.duration, b.duration);
        assert_eq!(a.flows.len(), b.flows.len());
        for (fa, fb) in a.flows.iter().zip(&b.flows) {
            assert_eq!((fa.src, fa.dst, fa.bytes), (fb.src, fb.dst, fb.bytes));
        }
        assert_eq!(a.offered_load_kbps(), b.offered_load_kbps());
        // And a round-tripped config runs identically.
        use crate::Simulator;
        let short = pcmac_engine::Duration::from_secs(3);
        let ra = Simulator::new(a.with_duration(short)).run();
        let rb = Simulator::new(b.with_duration(short)).run();
        assert_eq!(ra.delivered_packets, rb.delivered_packets);
        assert_eq!(ra.events, rb.events);
    }

    #[test]
    fn pre_knob_json_still_parses() {
        // Scenario JSON written before the refresh/cache knobs and the
        // fault layer existed has none of the keys; all must come back
        // as `None` (the defaults).
        let a = ScenarioConfig::paper(Variant::Pcmac, 500.0, 3);
        let v: serde_json::Value = serde_json::from_str(&a.to_json()).unwrap();
        let stripped = match v {
            serde_json::Value::Map(m) => serde_json::Value::Map(
                m.into_iter()
                    .filter(|(k, _)| {
                        k != "mobility_refresh"
                            && k != "gain_cache"
                            && k != "faults"
                            && k != "metrics"
                            && k != "execution"
                            && k != "delay_floor_us"
                    })
                    .collect(),
            ),
            _ => unreachable!("configs serialize to maps"),
        };
        let b = ScenarioConfig::from_json(&serde_json::to_string(&stripped).unwrap())
            .expect("pre-knob JSON parses");
        assert_eq!(b.mobility_refresh, None);
        assert_eq!(b.gain_cache, None);
        assert_eq!(b.faults, None);
        assert_eq!(b.metrics, None);
        assert_eq!(b.execution, None);
        assert_eq!(b.delay_floor_us, None);
        assert_eq!(b.mobility_refresh_mode(), MobilityRefreshMode::Lazy);
        assert_eq!(b.gain_cache_mode(), GainCacheMode::Auto);
        assert_eq!(b.execution_mode(), ExecutionMode::Single);
        assert_eq!(b.shards(), 1);
        assert!(b.delay_floor().is_zero());
    }

    #[test]
    fn sharded_execution_defects_are_rejected() {
        let mut c = ScenarioConfig::paper(Variant::Pcmac, 500.0, 1);
        c.execution = Some(ExecutionMode::Sharded { shards: 4 });
        let err = c
            .validate()
            .expect_err("sharded without a delay floor must be rejected");
        assert!(err.problems.iter().any(|p| p.contains("delay_floor_us")));
        c.delay_floor_us = Some(10.0);
        c.validate().expect("floor set: valid");
        assert_eq!(c.shards(), 4);
        assert_eq!(c.delay_floor(), Duration::from_micros(10));
        // A floor at or past the 20 µs slot would eat the CTS/ACK
        // timeouts' two-slot round-trip grace and kill every handshake.
        c.delay_floor_us = Some(50.0);
        let err = c.validate().expect_err("slot-sized floor must be rejected");
        assert!(err.problems.iter().any(|p| p.contains("slot time")));
        c.delay_floor_us = Some(10.0);
        c.execution = Some(ExecutionMode::Sharded { shards: 0 });
        let err = c.validate().expect_err("zero shards must be rejected");
        assert!(err.problems.iter().any(|p| p.contains("zero shards")));
        c.execution = Some(ExecutionMode::Single);
        c.delay_floor_us = Some(-1.0);
        let err = c.validate().expect_err("negative floor must be rejected");
        assert!(err.problems.iter().any(|p| p.contains("delay floor")));
    }

    #[test]
    fn fault_plan_defects_are_collected_by_validate() {
        let mut c = ScenarioConfig::paper(Variant::Pcmac, 500.0, 1);
        c.faults = Some(crate::fault::FaultConfig {
            crashes: Some(vec![crate::fault::CrashWindow {
                node: 500,
                at_s: 1.0,
                recover_s: None,
            }]),
            energy_budget_mj: Some(-1.0),
            ..Default::default()
        });
        let err = c.validate().expect_err("bad fault plan must be rejected");
        assert!(err.problems.iter().any(|p| p.contains("out of range")));
        assert!(err.problems.iter().any(|p| p.contains("energy budget")));
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(ScenarioConfig::from_json("{not json").is_err());
        assert!(ScenarioConfig::from_json("{}").is_err());
    }

    #[test]
    fn protocol_and_radio_defects_are_rejected() {
        let base = || ScenarioConfig::paper(Variant::Pcmac, 500.0, 1);
        let has = |cfg: ScenarioConfig, needle: &str| {
            let err = cfg.validate().expect_err("must be rejected");
            assert!(
                err.problems.iter().any(|p| p.contains(needle)),
                "expected problem containing {needle:?}, got {:?}",
                err.problems
            );
        };
        let mut c = base();
        c.mac.pcmac.safety_factor = 0.0;
        has(c, "safety factor");
        let mut c = base();
        c.mac.pcmac.capture_ratio = 0.5;
        has(c, "capture ratio");
        let mut c = base();
        c.mac.pcmac.ctrl_rate_bps = 0;
        has(c, "control channel rate");
        let mut c = base();
        c.radio.rx_thresh = Milliwatts(1e-12); // below the 1e-9 noise floor
        has(c, "noise floor");
        let mut c = base();
        c.radio.capture_ratio = f64::NAN;
        has(c, "radio capture ratio");
        let mut c = base();
        c.mac.queue_capacity = 0;
        has(c, "queue capacity");
        base().validate().expect("paper scenario stays valid");
    }

    #[test]
    fn flow_pairs_are_distinct() {
        let c = ScenarioConfig::paper(Variant::Basic, 500.0, 3);
        let mut pairs: Vec<_> = c.flows.iter().map(|f| (f.src, f.dst)).collect();
        pairs.sort_by_key(|(s, d)| (s.0, d.0));
        pairs.dedup();
        assert_eq!(pairs.len(), 10);
    }
}
