//! Versioned, checksummed binary state serialization — the wire layer
//! under checkpoint/restore.
//!
//! Snapshots must be **bit-identical** (the restore guarantee is defined
//! in terms of byte equality of downstream artifacts), **host-portable**
//! (a checkpoint written on one machine resumes on another), and
//! **tamper-evident** (a truncated or corrupted file is a structured
//! error, never a panic or a silently wrong resume). That rules out both
//! `Debug`-style text and anything pointer- or layout-dependent, and it
//! is why this crate exists instead of a JSON round-trip: the simulator's
//! hot state contains `f64`s whose exact bit patterns matter and maps
//! whose iteration order must not leak into the artifact.
//!
//! The format is deliberately boring:
//!
//! * every integer is little-endian fixed-width; `usize` travels as `u64`;
//! * `f64` travels as its IEEE-754 bit pattern ([`f64::to_bits`]) so
//!   NaN payloads and signed zeros survive exactly;
//! * variable-length collections are a `u64` count followed by elements;
//! * `HashMap`s serialize sorted by key, making the byte stream a pure
//!   function of the *content* (two equal maps always serialize equally);
//! * the outer envelope ([`SnapWriter::finish`] / [`SnapReader::open`])
//!   is `magic ‖ version ‖ payload-length ‖ payload ‖ checksum64(payload)`.
//!
//! No wall-clock values, thread ids, or addresses ever enter the stream.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Magic prefix of every snapshot envelope (`b"PCSN"`).
pub const MAGIC: [u8; 4] = *b"PCSN";

/// Current envelope version. Bump on any incompatible layout change; old
/// versions are rejected with [`SnapError::BadVersion`] rather than
/// misread.
pub const VERSION: u32 = 1;

/// Everything that can go wrong reading a snapshot. All variants are
/// recoverable by design: a caller falls back to recomputing from
/// scratch, never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The stream ended before the declared content did (short read,
    /// truncated file).
    Truncated,
    /// The envelope does not start with [`MAGIC`] — not a snapshot.
    BadMagic,
    /// The envelope version is not [`VERSION`].
    BadVersion(u32),
    /// The payload checksum does not match — bit rot or torn write.
    BadChecksum,
    /// The snapshot was taken under a different scenario configuration
    /// than the one it is being restored into.
    CfgMismatch,
    /// The bytes decoded but violate an invariant (impossible enum tag,
    /// inconsistent lengths, non-canonical ordering).
    Corrupt(&'static str),
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapError::Truncated => write!(f, "snapshot truncated: stream ended early"),
            SnapError::BadMagic => write!(f, "not a snapshot: bad magic prefix"),
            SnapError::BadVersion(v) => {
                write!(f, "unsupported snapshot version {v} (expected {VERSION})")
            }
            SnapError::BadChecksum => write!(f, "snapshot checksum mismatch: corrupted payload"),
            SnapError::CfgMismatch => {
                write!(f, "snapshot was taken under a different scenario config")
            }
            SnapError::Corrupt(what) => write!(f, "snapshot corrupt: {what}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// FNV-1a 64-bit over `bytes` — small, dependency-free, and stable
/// across platforms. Detection-only (torn writes, truncation past the
/// length field, bit rot), not cryptographic.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Word-at-a-time xor-multiply checksum: the FNV-1a structure applied
/// to 8-byte little-endian words (tail zero-padded, total length folded
/// in). Byte-wise FNV is a strict multiply-latency chain — ~4 cycles
/// *per byte* — which made checksumming a 75 MB checkpoint cost more
/// than serializing it; this variant runs 8× fewer sequential
/// multiplies for the same torn-write/bit-rot detection power. Stable
/// across platforms (explicit little-endian), detection-only, not
/// cryptographic.
pub fn checksum64(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h ^= u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        h = h.wrapping_mul(PRIME);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h ^= u64::from_le_bytes(tail);
        h = h.wrapping_mul(PRIME);
    }
    // Fold the length in so a zero-padded tail cannot alias a longer
    // input, and give the final state one more mix.
    h ^= bytes.len() as u64;
    h.wrapping_mul(PRIME)
}

/// Append-only byte sink for snapshot payloads.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> Self {
        SnapWriter { buf: Vec::new() }
    }

    /// Reset to empty, keeping the allocation — for callers serializing
    /// many small payloads (per-node state blobs) through one scratch
    /// writer instead of paying allocator growth per payload.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Raw little-endian primitive writes.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    /// Write a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Write a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Write a `u128`.
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Write an `f64` as its exact bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    /// Write raw bytes (caller is responsible for length framing).
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
    /// Write a length-prefixed byte blob in one bulk copy. Wire-identical
    /// to `Vec::<u8>::save` through the generic per-element path, but a
    /// single `memcpy` — node-state blobs reach tens of megabytes per
    /// snapshot at N = 64k, where per-byte `Snap` calls were the
    /// checkpoint serialization bottleneck.
    pub fn blob(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.bytes(v);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The raw payload written so far (no envelope).
    pub fn payload(&self) -> &[u8] {
        &self.buf
    }

    /// Seal the payload into the versioned, checksummed envelope:
    /// `MAGIC ‖ version:u32 ‖ len:u64 ‖ payload ‖ checksum64(payload)`.
    pub fn finish(self) -> Vec<u8> {
        let sum = checksum64(&self.buf);
        let mut out = Vec::with_capacity(self.buf.len() + 24);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.buf.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.buf);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }
}

/// Cursor over a verified snapshot payload.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Verify the envelope of `bytes` (magic, version, length, checksum)
    /// and return a reader positioned at the start of the payload.
    pub fn open(bytes: &'a [u8]) -> Result<SnapReader<'a>, SnapError> {
        if bytes.len() < 16 {
            return Err(SnapError::Truncated);
        }
        if bytes[..4] != MAGIC {
            return Err(SnapError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(SnapError::BadVersion(version));
        }
        let len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
        let need = 16usize
            .checked_add(len)
            .and_then(|n| n.checked_add(8))
            .ok_or(SnapError::Corrupt("payload length overflows"))?;
        if bytes.len() < need {
            return Err(SnapError::Truncated);
        }
        let payload = &bytes[16..16 + len];
        let sum = u64::from_le_bytes(bytes[16 + len..16 + len + 8].try_into().expect("8 bytes"));
        if checksum64(payload) != sum {
            return Err(SnapError::BadChecksum);
        }
        Ok(SnapReader {
            buf: payload,
            pos: 0,
        })
    }

    /// A reader over a bare payload (no envelope) — for nested sections
    /// and tests.
    pub fn over(payload: &'a [u8]) -> SnapReader<'a> {
        SnapReader {
            buf: payload,
            pos: 0,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        let end = self.pos.checked_add(n).ok_or(SnapError::Truncated)?;
        if end > self.buf.len() {
            return Err(SnapError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }
    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }
    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
    /// Read a `u128`.
    pub fn u128(&mut self) -> Result<u128, SnapError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().expect("16")))
    }
    /// Read an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }
    /// Read a length-prefix and sanity-cap it against the bytes that
    /// could plausibly remain (every element costs at least one byte).
    pub fn len_prefix(&mut self) -> Result<usize, SnapError> {
        let n = self.u64()?;
        if n > (self.buf.len() - self.pos) as u64 {
            return Err(SnapError::Corrupt("length prefix exceeds remaining bytes"));
        }
        Ok(n as usize)
    }

    /// Read a length-prefixed byte blob written by [`SnapWriter::blob`]
    /// (or the generic `Vec<u8>` path) in one bulk copy.
    pub fn blob(&mut self) -> Result<Vec<u8>, SnapError> {
        let n = self.len_prefix()?;
        Ok(self.take(n)?.to_vec())
    }

    /// `true` when the whole payload has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// A type that can serialize its complete deterministic state into a
/// [`SnapWriter`] and rebuild itself from a [`SnapReader`].
pub trait Snap: Sized {
    /// Append this value's canonical byte representation.
    fn save(&self, w: &mut SnapWriter);
    /// Rebuild a value from the stream.
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError>;
}

impl Snap for u8 {
    fn save(&self, w: &mut SnapWriter) {
        w.u8(*self);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.u8()
    }
}

impl Snap for u32 {
    fn save(&self, w: &mut SnapWriter) {
        w.u32(*self);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.u32()
    }
}

impl Snap for u64 {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(*self);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.u64()
    }
}

impl Snap for u128 {
    fn save(&self, w: &mut SnapWriter) {
        w.u128(*self);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.u128()
    }
}

impl Snap for usize {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(*self as u64);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let v = r.u64()?;
        usize::try_from(v).map_err(|_| SnapError::Corrupt("usize out of range"))
    }
}

impl Snap for bool {
    fn save(&self, w: &mut SnapWriter) {
        w.u8(*self as u8);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::Corrupt("bool tag")),
        }
    }
}

impl Snap for f64 {
    fn save(&self, w: &mut SnapWriter) {
        w.f64(*self);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.f64()
    }
}

impl Snap for String {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.len() as u64);
        w.bytes(self.as_bytes());
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.len_prefix()?;
        let bytes = r.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapError::Corrupt("string not utf-8"))
    }
}

impl<T: Snap> Snap for Vec<T> {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.len() as u64);
        for item in self {
            item.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.len_prefix()?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(T::load(r)?);
        }
        Ok(v)
    }
}

impl<T: Snap> Snap for VecDeque<T> {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.len() as u64);
        for item in self {
            item.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.len_prefix()?;
        let mut v = VecDeque::with_capacity(n);
        for _ in 0..n {
            v.push_back(T::load(r)?);
        }
        Ok(v)
    }
}

impl<T: Snap> Snap for Option<T> {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            None => w.u8(0),
            Some(v) => {
                w.u8(1);
                v.save(w);
            }
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::load(r)?)),
            _ => Err(SnapError::Corrupt("option tag")),
        }
    }
}

impl<T: Snap> Snap for Box<T> {
    fn save(&self, w: &mut SnapWriter) {
        (**self).save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Box::new(T::load(r)?))
    }
}

impl<T: Snap> Snap for Arc<T> {
    fn save(&self, w: &mut SnapWriter) {
        (**self).save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Arc::new(T::load(r)?))
    }
}

impl<A: Snap, B: Snap> Snap for (A, B) {
    fn save(&self, w: &mut SnapWriter) {
        self.0.save(w);
        self.1.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::load(r)?, B::load(r)?))
    }
}

impl<A: Snap, B: Snap, C: Snap> Snap for (A, B, C) {
    fn save(&self, w: &mut SnapWriter) {
        self.0.save(w);
        self.1.save(w);
        self.2.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::load(r)?, B::load(r)?, C::load(r)?))
    }
}

impl<const N: usize> Snap for [u64; N] {
    fn save(&self, w: &mut SnapWriter) {
        for v in self {
            w.u64(*v);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let mut out = [0u64; N];
        for slot in &mut out {
            *slot = r.u64()?;
        }
        Ok(out)
    }
}

/// `HashMap`s serialize **sorted by key** so the byte stream is a pure
/// function of the map's content, never of its iteration order.
impl<K: Snap + Ord + Clone + std::hash::Hash + Eq, V: Snap> Snap for HashMap<K, V> {
    fn save(&self, w: &mut SnapWriter) {
        let mut keys: Vec<&K> = self.keys().collect();
        keys.sort();
        w.u64(keys.len() as u64);
        for k in keys {
            k.save(w);
            self[k].save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.len_prefix()?;
        let mut m = HashMap::with_capacity(n);
        for _ in 0..n {
            let k = K::load(r)?;
            let v = V::load(r)?;
            if m.insert(k, v).is_some() {
                return Err(SnapError::Corrupt("duplicate map key"));
            }
        }
        Ok(m)
    }
}

/// Implement [`Snap`] for a struct by listing its fields in a fixed
/// order. Invoke from the struct's own module so private fields resolve.
#[macro_export]
macro_rules! snap_struct {
    ($ty:ty { $($field:ident),* $(,)? }) => {
        impl $crate::Snap for $ty {
            fn save(&self, w: &mut $crate::SnapWriter) {
                $( $crate::Snap::save(&self.$field, w); )*
            }
            fn load(r: &mut $crate::SnapReader<'_>) -> Result<Self, $crate::SnapError> {
                Ok(Self { $( $field: $crate::Snap::load(r)? ),* })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_round_trips() {
        let mut w = SnapWriter::new();
        w.u64(42);
        w.f64(-0.0);
        w.u128(u128::MAX);
        let bytes = w.finish();
        let mut r = SnapReader::open(&bytes).expect("valid envelope");
        assert_eq!(r.u64().unwrap(), 42);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.u128().unwrap(), u128::MAX);
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncation_at_every_offset_is_a_structured_error() {
        let mut w = SnapWriter::new();
        for i in 0..32u64 {
            w.u64(i);
        }
        let bytes = w.finish();
        for cut in 0..bytes.len() {
            let err =
                SnapReader::open(&bytes[..cut]).expect_err("truncated stream must not verify");
            assert!(
                matches!(
                    err,
                    SnapError::Truncated | SnapError::BadMagic | SnapError::BadVersion(_)
                ),
                "cut at {cut}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn corruption_fails_checksum() {
        let mut w = SnapWriter::new();
        w.u64(7);
        let mut bytes = w.finish();
        let mid = 16 + 3; // inside the payload
        bytes[mid] ^= 0x40;
        assert_eq!(SnapReader::open(&bytes).err(), Some(SnapError::BadChecksum));
    }

    #[test]
    fn bad_magic_and_version_are_detected() {
        let mut w = SnapWriter::new();
        w.u64(7);
        let mut bytes = w.finish();
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 0xEE;
        assert!(matches!(
            SnapReader::open(&wrong_version).err(),
            Some(SnapError::BadVersion(_))
        ));
        bytes[0] = b'X';
        assert_eq!(SnapReader::open(&bytes).err(), Some(SnapError::BadMagic));
    }

    #[test]
    fn maps_serialize_content_deterministically() {
        let mut a = HashMap::new();
        let mut b = HashMap::new();
        for i in 0..64u64 {
            a.insert(i, i * 3);
        }
        for i in (0..64u64).rev() {
            b.insert(i, i * 3);
        }
        let (mut wa, mut wb) = (SnapWriter::new(), SnapWriter::new());
        a.save(&mut wa);
        b.save(&mut wb);
        assert_eq!(wa.finish(), wb.finish());
    }

    #[test]
    fn collections_round_trip() {
        #[derive(Debug, PartialEq)]
        struct S {
            a: u32,
            b: Vec<f64>,
            c: Option<String>,
        }
        snap_struct!(S { a, b, c });
        let v = S {
            a: 9,
            b: vec![1.5, f64::NAN, -2.25],
            c: Some("hello".to_string()),
        };
        let mut w = SnapWriter::new();
        v.save(&mut w);
        let bytes = w.finish();
        let mut r = SnapReader::open(&bytes).unwrap();
        let back = S::load(&mut r).unwrap();
        assert_eq!(back.a, v.a);
        assert_eq!(back.b.len(), 3);
        assert_eq!(back.b[0], 1.5);
        assert!(back.b[1].is_nan());
        assert_eq!(back.c.as_deref(), Some("hello"));
        assert!(r.is_exhausted());
    }

    #[test]
    fn hostile_length_prefix_is_rejected() {
        let mut w = SnapWriter::new();
        w.u64(u64::MAX); // absurd Vec length
        let bytes = w.finish();
        let mut r = SnapReader::open(&bytes).unwrap();
        assert!(matches!(
            Vec::<u64>::load(&mut r),
            Err(SnapError::Corrupt(_))
        ));
    }
}
