//! Behavioural tests of the AODV agent, scripted the same way as the MAC
//! tests: feed packets and timers, assert on actions.

use pcmac_aodv::{AodvAction, AodvAgent, AodvConfig, DropReason};
use pcmac_engine::{Duration, FlowId, NodeId, PacketId, SimTime, TimerToken};
use pcmac_net::{Packet, Payload, Rerr, Rrep, Rreq};

fn t(ms: u64) -> SimTime {
    SimTime::ZERO + Duration::from_millis(ms)
}

fn agent(id: u32) -> AodvAgent {
    AodvAgent::new(NodeId(id), AodvConfig::default())
}

fn data(n: u64, src: u32, dst: u32) -> Packet {
    Packet::data(
        PacketId(n),
        FlowId(0),
        NodeId(src),
        NodeId(dst),
        512,
        SimTime::ZERO,
    )
}

fn transmits(out: &[AodvAction]) -> Vec<(&Packet, NodeId)> {
    out.iter()
        .filter_map(|a| match a {
            AodvAction::Transmit { packet, next_hop } => Some((packet, *next_hop)),
            _ => None,
        })
        .collect()
}

fn armed(out: &[AodvAction]) -> Option<(NodeId, TimerToken)> {
    out.iter().find_map(|a| match a {
        AodvAction::Arm { dst, token, .. } => Some((*dst, *token)),
        _ => None,
    })
}

#[test]
fn send_without_route_floods_rreq() {
    let mut a = agent(1);
    let mut out = Vec::new();
    a.send(data(1, 1, 5), t(0), &mut out);
    let txs = transmits(&out);
    assert_eq!(txs.len(), 1);
    let (p, hop) = txs[0];
    assert!(hop.is_broadcast());
    match &p.payload {
        Payload::Rreq(r) => {
            assert_eq!(r.origin, NodeId(1));
            assert_eq!(r.target, NodeId(5));
            assert_eq!(r.hop_count, 0);
        }
        other => panic!("expected RREQ, got {other:?}"),
    }
    assert!(armed(&out).is_some(), "discovery timer armed");
}

#[test]
fn second_packet_same_destination_reuses_discovery() {
    let mut a = agent(1);
    let mut out = Vec::new();
    a.send(data(1, 1, 5), t(0), &mut out);
    out.clear();
    a.send(data(2, 1, 5), t(10), &mut out);
    assert!(transmits(&out).is_empty(), "no duplicate flood");
}

#[test]
fn destination_replies_with_rrep_and_peer_reset() {
    let mut a = agent(5);
    let mut out = Vec::new();
    let mut rreq = Packet::control(
        PacketId(100),
        NodeId(1),
        NodeId::BROADCAST,
        t(0),
        Payload::Rreq(Rreq {
            rreq_id: 1,
            origin: NodeId(1),
            origin_seq: 3,
            target: NodeId(5),
            target_seq: None,
            hop_count: 1, // one hop already travelled
        }),
    );
    rreq.ttl = 30;
    a.on_packet(rreq, NodeId(3), t(1), &mut out);
    let txs = transmits(&out);
    assert_eq!(txs.len(), 1);
    let (p, hop) = txs[0];
    assert_eq!(hop, NodeId(3), "RREP unicast to the previous hop");
    match &p.payload {
        Payload::Rrep(r) => {
            assert_eq!(r.origin, NodeId(1));
            assert_eq!(r.target, NodeId(5));
            assert_eq!(r.hop_count, 0);
        }
        other => panic!("expected RREP, got {other:?}"),
    }
    assert!(
        out.iter()
            .any(|x| matches!(x, AodvAction::PeerReset { peer } if *peer == NodeId(3))),
        "PCMAC table reset toward the downstream peer"
    );
    // Reverse route to the originator was learned.
    let r = a.table().lookup(NodeId(1), t(2)).expect("reverse route");
    assert_eq!(r.next_hop, NodeId(3));
    assert_eq!(r.hop_count, 2);
}

#[test]
fn intermediate_rebroadcasts_rreq_with_incremented_hops() {
    let mut a = agent(3);
    let mut out = Vec::new();
    let mut rreq = Packet::control(
        PacketId(100),
        NodeId(1),
        NodeId::BROADCAST,
        t(0),
        Payload::Rreq(Rreq {
            rreq_id: 1,
            origin: NodeId(1),
            origin_seq: 3,
            target: NodeId(5),
            target_seq: None,
            hop_count: 0,
        }),
    );
    rreq.ttl = 30;
    a.on_packet(rreq.clone(), NodeId(1), t(1), &mut out);
    let txs = transmits(&out);
    assert_eq!(txs.len(), 1);
    assert!(txs[0].1.is_broadcast());
    match &txs[0].0.payload {
        Payload::Rreq(r) => assert_eq!(r.hop_count, 1),
        other => panic!("{other:?}"),
    }
    assert_eq!(txs[0].0.ttl, 29, "TTL decremented");

    // The same flood again is suppressed.
    out.clear();
    a.on_packet(rreq, NodeId(2), t(2), &mut out);
    assert!(transmits(&out).is_empty(), "duplicate flood suppressed");
}

#[test]
fn rrep_completes_discovery_and_flushes_buffer() {
    let mut a = agent(1);
    let mut out = Vec::new();
    a.send(data(1, 1, 5), t(0), &mut out);
    a.send(data(2, 1, 5), t(1), &mut out);
    out.clear();

    let rrep = Packet::control(
        PacketId(200),
        NodeId(3),
        NodeId(1),
        t(5),
        Payload::Rrep(Rrep {
            origin: NodeId(1),
            target: NodeId(5),
            target_seq: 7,
            hop_count: 1,
        }),
    );
    a.on_packet(rrep, NodeId(3), t(5), &mut out);
    let txs = transmits(&out);
    assert_eq!(txs.len(), 2, "both buffered packets flushed: {out:?}");
    assert!(txs.iter().all(|(_, hop)| *hop == NodeId(3)));
    assert_eq!(txs[0].0.id, PacketId(1), "FIFO order preserved");
    assert_eq!(txs[1].0.id, PacketId(2));
    // Route installed: 2 hops via 3.
    let r = a.table().lookup(NodeId(5), t(6)).unwrap();
    assert_eq!((r.next_hop, r.hop_count, r.dst_seq), (NodeId(3), 2, 7));
}

#[test]
fn intermediate_forwards_rrep_along_reverse_path() {
    let mut a = agent(3);
    let mut out = Vec::new();
    // Build the reverse route with the flood.
    let mut rreq = Packet::control(
        PacketId(100),
        NodeId(1),
        NodeId::BROADCAST,
        t(0),
        Payload::Rreq(Rreq {
            rreq_id: 1,
            origin: NodeId(1),
            origin_seq: 3,
            target: NodeId(5),
            target_seq: None,
            hop_count: 0,
        }),
    );
    rreq.ttl = 30;
    a.on_packet(rreq, NodeId(1), t(1), &mut out);
    out.clear();

    // The RREP comes back from node 5.
    let rrep = Packet::control(
        PacketId(200),
        NodeId(5),
        NodeId(1),
        t(5),
        Payload::Rrep(Rrep {
            origin: NodeId(1),
            target: NodeId(5),
            target_seq: 7,
            hop_count: 0,
        }),
    );
    a.on_packet(rrep, NodeId(5), t(5), &mut out);
    let txs = transmits(&out);
    assert_eq!(txs.len(), 1);
    assert_eq!(txs[0].1, NodeId(1), "forwarded toward the originator");
    match &txs[0].0.payload {
        Payload::Rrep(r) => assert_eq!(r.hop_count, 1),
        other => panic!("{other:?}"),
    }
    // Forward route to 5 learned as 1 hop.
    assert_eq!(a.table().lookup(NodeId(5), t(6)).unwrap().hop_count, 1);
}

#[test]
fn data_forwards_along_route() {
    let mut a = agent(3);
    let mut out = Vec::new();
    // Install a route to 5 via 4.
    let rrep = Packet::control(
        PacketId(200),
        NodeId(4),
        NodeId(3),
        t(0),
        Payload::Rrep(Rrep {
            origin: NodeId(3),
            target: NodeId(5),
            target_seq: 7,
            hop_count: 0,
        }),
    );
    a.on_packet(rrep, NodeId(4), t(0), &mut out);
    out.clear();

    let mut pkt = data(9, 1, 5);
    pkt.ttl = 10;
    a.on_packet(pkt, NodeId(2), t(1), &mut out);
    let txs = transmits(&out);
    assert_eq!(txs.len(), 1);
    assert_eq!(txs[0].1, NodeId(4));
    assert_eq!(txs[0].0.ttl, 9);
    assert_eq!(a.counters.data_forwarded, 1);
}

#[test]
fn data_for_self_is_delivered() {
    let mut a = agent(5);
    let mut out = Vec::new();
    a.on_packet(data(9, 1, 5), NodeId(4), t(1), &mut out);
    assert!(out
        .iter()
        .any(|x| matches!(x, AodvAction::DeliverLocal { packet } if packet.id == PacketId(9))));
    assert_eq!(a.counters.data_delivered, 1);
}

#[test]
fn forwarding_without_route_emits_rerr_and_drop() {
    let mut a = agent(3);
    let mut out = Vec::new();
    let mut pkt = data(9, 1, 5);
    pkt.ttl = 10;
    a.on_packet(pkt, NodeId(2), t(1), &mut out);
    assert!(out.iter().any(|x| matches!(
        x,
        AodvAction::Drop {
            reason: DropReason::NoRoute,
            ..
        }
    )));
    let txs = transmits(&out);
    assert_eq!(txs.len(), 1);
    match &txs[0].0.payload {
        Payload::Rerr(e) => assert_eq!(e.unreachable[0].0, NodeId(5)),
        other => panic!("expected RERR, got {other:?}"),
    }
}

#[test]
fn ttl_exhaustion_drops_instead_of_looping() {
    let mut a = agent(3);
    let mut out = Vec::new();
    let mut pkt = data(9, 1, 5);
    pkt.ttl = 1;
    a.on_packet(pkt, NodeId(2), t(1), &mut out);
    assert!(out.iter().any(|x| matches!(
        x,
        AodvAction::Drop {
            reason: DropReason::TtlExpired,
            ..
        }
    )));
    assert!(transmits(&out).is_empty());
}

#[test]
fn link_failure_invalidates_routes_and_rerrs() {
    let mut a = agent(3);
    let mut out = Vec::new();
    // Routes to 5 and 6 via 4.
    for (dst, seq) in [(5u32, 7u32), (6, 9)] {
        let rrep = Packet::control(
            PacketId(200 + dst as u64),
            NodeId(4),
            NodeId(3),
            t(0),
            Payload::Rrep(Rrep {
                origin: NodeId(3),
                target: NodeId(dst),
                target_seq: seq,
                hop_count: 0,
            }),
        );
        a.on_packet(rrep, NodeId(4), t(0), &mut out);
    }
    out.clear();

    // MAC reports the link to 4 broke while carrying a forwarded packet.
    a.on_link_failure(data(9, 1, 5), NodeId(4), t(1), &mut out);
    // Both routes through 4 die (5, 6, and the neighbour entry for 4).
    assert!(a.table().lookup(NodeId(5), t(2)).is_none());
    assert!(a.table().lookup(NodeId(6), t(2)).is_none());
    let txs = transmits(&out);
    let rerr = txs
        .iter()
        .find_map(|(p, _)| match &p.payload {
            Payload::Rerr(e) => Some(e.clone()),
            _ => None,
        })
        .expect("RERR broadcast");
    let dsts: Vec<u32> = rerr.unreachable.iter().map(|(d, _)| d.0).collect();
    assert!(dsts.contains(&5) && dsts.contains(&6));
    // The forwarded packet is dropped (we are not its source).
    assert!(out.iter().any(|x| matches!(
        x,
        AodvAction::Drop {
            reason: DropReason::NoRoute,
            ..
        }
    )));
}

#[test]
fn link_failure_at_source_rebuffers_and_rediscovers() {
    let mut a = agent(1);
    let mut out = Vec::new();
    // Install a route to 5 via 3, then break it.
    let rrep = Packet::control(
        PacketId(200),
        NodeId(3),
        NodeId(1),
        t(0),
        Payload::Rrep(Rrep {
            origin: NodeId(1),
            target: NodeId(5),
            target_seq: 7,
            hop_count: 1,
        }),
    );
    a.on_packet(rrep, NodeId(3), t(0), &mut out);
    out.clear();
    a.on_link_failure(data(9, 1, 5), NodeId(3), t(1), &mut out);
    // A fresh RREQ goes out (we are the source, so we salvage).
    assert!(transmits(&out)
        .iter()
        .any(|(p, _)| matches!(p.payload, Payload::Rreq(_))));
}

#[test]
fn rerr_from_neighbor_cascades() {
    let mut a = agent(2);
    let mut out = Vec::new();
    // Route to 5 via 3.
    let rrep = Packet::control(
        PacketId(200),
        NodeId(3),
        NodeId(2),
        t(0),
        Payload::Rrep(Rrep {
            origin: NodeId(2),
            target: NodeId(5),
            target_seq: 7,
            hop_count: 1,
        }),
    );
    a.on_packet(rrep, NodeId(3), t(0), &mut out);
    out.clear();

    let rerr = Packet::control(
        PacketId(300),
        NodeId(3),
        NodeId::BROADCAST,
        t(1),
        Payload::Rerr(Rerr {
            unreachable: vec![(NodeId(5), 8)],
        }),
    );
    a.on_packet(rerr, NodeId(3), t(1), &mut out);
    assert!(
        a.table().lookup(NodeId(5), t(2)).is_none(),
        "route invalidated"
    );
    assert!(
        transmits(&out)
            .iter()
            .any(|(p, _)| matches!(p.payload, Payload::Rerr(_))),
        "cascaded RERR"
    );
    assert!(
        out.iter()
            .any(|x| matches!(x, AodvAction::PeerReset { peer } if *peer == NodeId(3))),
        "PCMAC reset toward the RERR sender"
    );
}

#[test]
fn rerr_for_unrelated_next_hop_is_absorbed() {
    let mut a = agent(2);
    let mut out = Vec::new();
    let rrep = Packet::control(
        PacketId(200),
        NodeId(3),
        NodeId(2),
        t(0),
        Payload::Rrep(Rrep {
            origin: NodeId(2),
            target: NodeId(5),
            target_seq: 7,
            hop_count: 1,
        }),
    );
    a.on_packet(rrep, NodeId(3), t(0), &mut out);
    out.clear();
    // RERR arrives from node 9, but our route to 5 goes via 3.
    let rerr = Packet::control(
        PacketId(300),
        NodeId(9),
        NodeId::BROADCAST,
        t(1),
        Payload::Rerr(Rerr {
            unreachable: vec![(NodeId(5), 8)],
        }),
    );
    a.on_packet(rerr, NodeId(9), t(1), &mut out);
    assert!(
        a.table().lookup(NodeId(5), t(2)).is_some(),
        "route survives"
    );
    assert!(
        !transmits(&out)
            .iter()
            .any(|(p, _)| matches!(p.payload, Payload::Rerr(_))),
        "no cascade"
    );
}

#[test]
fn discovery_retries_then_gives_up() {
    let mut a = agent(1);
    let mut out = Vec::new();
    a.send(data(1, 1, 5), t(0), &mut out);
    let (_, tok) = armed(&out).unwrap();
    let mut token = tok;
    let mut now = t(1000);
    // Default config: 3 retries after the initial attempt.
    for retry in 0..3 {
        out.clear();
        a.on_discovery_timeout(NodeId(5), token, now, &mut out);
        assert!(
            transmits(&out)
                .iter()
                .any(|(p, _)| matches!(p.payload, Payload::Rreq(_))),
            "retry {retry} resends the RREQ"
        );
        token = armed(&out).unwrap().1;
        now += Duration::from_secs(4);
    }
    out.clear();
    a.on_discovery_timeout(NodeId(5), token, now, &mut out);
    assert!(
        out.iter().any(|x| matches!(
            x,
            AodvAction::Drop {
                reason: DropReason::NoRoute,
                ..
            }
        )),
        "buffered packet dropped after final retry: {out:?}"
    );
    assert_eq!(a.counters.discoveries_failed, 1);
}

#[test]
fn stale_discovery_timer_is_ignored() {
    let mut a = agent(1);
    let mut out = Vec::new();
    a.send(data(1, 1, 5), t(0), &mut out);
    let (_, token) = armed(&out).unwrap();
    out.clear();
    // Discovery completes first.
    let rrep = Packet::control(
        PacketId(200),
        NodeId(3),
        NodeId(1),
        t(5),
        Payload::Rrep(Rrep {
            origin: NodeId(1),
            target: NodeId(5),
            target_seq: 7,
            hop_count: 1,
        }),
    );
    a.on_packet(rrep, NodeId(3), t(5), &mut out);
    out.clear();
    a.on_discovery_timeout(NodeId(5), token, t(1000), &mut out);
    assert!(out.is_empty(), "completed discovery ignores its old timer");
}

#[test]
fn hearing_any_packet_learns_the_neighbor() {
    let mut a = agent(2);
    let mut out = Vec::new();
    a.on_packet(data(9, 1, 2), NodeId(7), t(0), &mut out);
    let r = a.table().lookup(NodeId(7), t(1)).expect("neighbor learned");
    assert_eq!(r.next_hop, NodeId(7));
    assert_eq!(r.hop_count, 1);
}
