//! Per-point aggregation of run reports.
//!
//! A campaign point runs once per seed; the figures need the seeds
//! collapsed to mean ± confidence interval per metric. Aggregation is
//! built on [`pcmac_stats::OnlineStats`] (Welford mean/variance plus the
//! Student-t 95% interval), and the result serializes to the
//! machine-readable `CAMPAIGN_*.json` artifact.

use pcmac::RunReport;
use pcmac_stats::{OnlineStats, Table};
use serde::{Deserialize, Serialize};

use crate::campaign::PointKey;

/// Mean ± spread of one metric across the seeds of one point.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MetricSummary {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1).
    pub stddev: f64,
    /// Half-width of the two-sided 95% confidence interval (Student t).
    pub ci95: f64,
    /// Smallest seed value.
    pub min: f64,
    /// Largest seed value.
    pub max: f64,
}

impl MetricSummary {
    fn from_samples(samples: impl Iterator<Item = f64>) -> Self {
        let mut s = OnlineStats::new();
        for x in samples {
            s.push(x);
        }
        MetricSummary {
            mean: s.mean(),
            stddev: s.stddev(),
            ci95: s.ci95_halfwidth(),
            min: s.min().unwrap_or(0.0),
            max: s.max().unwrap_or(0.0),
        }
    }
}

/// One aggregated grid point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PointSummary {
    /// Grid coordinates.
    pub key: PointKey,
    /// Seeds averaged.
    pub seeds: Vec<u64>,
    /// Aggregate network throughput (kbps) — the Figure 8 metric.
    pub throughput_kbps: MetricSummary,
    /// Mean end-to-end delay (ms) — the Figure 9 metric.
    pub mean_delay_ms: MetricSummary,
    /// Packet delivery ratio in [0, 1].
    pub pdr: MetricSummary,
    /// Jain fairness index over per-flow deliveries.
    pub jain_fairness: MetricSummary,
    /// Total radiated energy (mJ).
    pub radiated_mj: MetricSummary,
}

impl PointSummary {
    /// Collapse one point's per-seed reports.
    pub fn from_reports(key: PointKey, seeds: Vec<u64>, reports: &[RunReport]) -> Self {
        let metric = |f: fn(&RunReport) -> f64| MetricSummary::from_samples(reports.iter().map(f));
        PointSummary {
            key,
            seeds,
            throughput_kbps: metric(|r| r.throughput_kbps),
            mean_delay_ms: metric(|r| r.mean_delay_ms),
            pdr: metric(|r| r.pdr()),
            jain_fairness: metric(|r| r.jain_fairness()),
            radiated_mj: metric(|r| r.radiated_mj),
        }
    }
}

/// Why one `(point × seed)` run produced no report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureKind {
    /// The cell's spec failed to materialize for this seed.
    Invalid,
    /// The simulator (or injected run function) panicked.
    Panicked,
    /// The run exceeded the campaign watchdog's wall-clock budget and
    /// was abandoned.
    TimedOut,
}

/// A structured record of one failed `(point × seed)` run. The runner
/// records these instead of aborting the sweep; a resumed campaign
/// re-executes every point that has one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointFailure {
    /// Coordinates of the failing grid point.
    pub key: PointKey,
    /// The seed that failed (`None` when the failure predates seeding).
    pub seed: Option<u64>,
    /// Failure class.
    pub kind: FailureKind,
    /// Human-readable detail (panic message, validation problems, or
    /// the watchdog budget that was exceeded).
    pub error: String,
}

/// The machine-readable outcome of a whole campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Campaign label.
    pub campaign: String,
    /// Total runs executed (points × seeds).
    pub runs: usize,
    /// Simulated seconds per run.
    pub duration_s: f64,
    /// Total wall-clock seconds across all runs (sum over workers).
    pub wall_s: f64,
    /// One aggregated summary per grid point, in expansion order.
    pub points: Vec<PointSummary>,
    /// `Some(false)` while the runner is still persisting points
    /// incrementally (an interrupted artifact resumes from here),
    /// `Some(true)` once every point ran cleanly. `None` in artifacts
    /// predating the resilient runner — treated as complete.
    pub complete: Option<bool>,
    /// Structured failures (panics, watchdog timeouts, invalid points).
    /// `None`/empty when the whole grid ran cleanly.
    pub failures: Option<Vec<PointFailure>>,
}

impl CampaignReport {
    /// Serialize to pretty JSON (the `CAMPAIGN_*.json` artifact).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("reports always serialize")
    }

    /// Parse a `CAMPAIGN_*.json` artifact back.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Render the per-point table the CLI prints: one row per grid
    /// point, mean ± 95% CI for the headline metrics.
    pub fn render_table(&self) -> String {
        let mut t = Table::new(&[
            "protocol",
            "load kbps",
            "nodes",
            "levels",
            "knobs",
            "thpt kbps (±ci95)",
            "delay ms (±ci95)",
            "pdr %",
            "fairness",
        ]);
        for p in &self.points {
            t.row(&[
                p.key.variant.clone(),
                format!("{:.0}", p.key.load_kbps),
                format!("{}", p.key.node_count),
                p.key
                    .power_levels_mw
                    .as_ref()
                    .map(|l| format!("{}-level", l.len()))
                    .unwrap_or_else(|| "paper".into()),
                p.key.patches_label(),
                format!(
                    "{:.1} ± {:.1}",
                    p.throughput_kbps.mean, p.throughput_kbps.ci95
                ),
                format!("{:.1} ± {:.1}", p.mean_delay_ms.mean, p.mean_delay_ms.ci95),
                format!("{:.1}", p.pdr.mean * 100.0),
                format!("{:.3}", p.jain_fairness.mean),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_summary_collapses_samples() {
        let m = MetricSummary::from_samples([10.0, 12.0, 14.0].into_iter());
        assert!((m.mean - 12.0).abs() < 1e-12);
        assert!((m.stddev - 2.0).abs() < 1e-12);
        assert_eq!(m.min, 10.0);
        assert_eq!(m.max, 14.0);
        assert!(m.ci95 > 0.0);
    }

    #[test]
    fn single_sample_has_no_interval() {
        let m = MetricSummary::from_samples([7.0].into_iter());
        assert_eq!(m.mean, 7.0);
        assert_eq!(m.ci95, 0.0);
        assert_eq!(m.stddev, 0.0);
    }
}
