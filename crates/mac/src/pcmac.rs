//! PCMAC-specific protocol state.
//!
//! Three pieces of machinery from paper §III:
//!
//! * [`ActiveReceivers`] — what this node knows about ongoing receptions in
//!   its neighbourhood, learned from the power-control channel. Before any
//!   transmission at power `P`, the node checks every advertised receiver
//!   `C`: the noise it would induce, `P · G(self→C)`, must stay within the
//!   safety-factored tolerance `0.7 × tol_C`, else it defers until `C`'s
//!   reception completes.
//! * [`SentTable`] / [`ReceivedTable`] — the implicit-acknowledgment
//!   bookkeeping replacing the ACK: senders remember the last data packet
//!   (with a retransmission copy) per neighbour; receivers remember the
//!   last (session, seq) they accepted and echo it in every CTS.
//! * [`noise_tolerance`] — the receiver-side computation
//!   `S_r / η_cp − N_r` broadcast when a DATA reception starts.

use std::collections::HashMap;

use pcmac_engine::{Milliwatts, NodeId, SessionId, SimTime};
use pcmac_net::Packet;

/// Compute the noise a receiver can still endure: `S_r / η_cp − N_r`
/// (paper §III). Non-positive results mean the reception is already at the
/// capture limit and *any* extra noise would kill it.
pub fn noise_tolerance(signal: Milliwatts, noise: Milliwatts, capture_ratio: f64) -> Milliwatts {
    Milliwatts(signal.value() / capture_ratio - noise.value())
}

/// One advertised ongoing reception in the neighbourhood.
#[derive(Debug, Clone, Copy)]
pub struct ActiveRx {
    /// Advertised noise tolerance at the receiver.
    pub tolerance: Milliwatts,
    /// Propagation gain from *us* to that receiver (measured off the
    /// max-power control broadcast).
    pub gain: f64,
    /// When the protected reception ends.
    pub until: SimTime,
}

/// The set of currently-protected receivers this node has heard about.
#[derive(Debug, Clone, Default)]
pub struct ActiveReceivers {
    map: HashMap<NodeId, ActiveRx>,
}

impl ActiveReceivers {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record (or refresh) an advertisement heard on the control channel.
    ///
    /// `heard_at` is our measured receive power of the broadcast and
    /// `broadcast_power` the (maximum) power it was sent at; their ratio is
    /// the channel gain between us and the receiver — the paper's
    /// reciprocity assumption makes it valid in our transmit direction too.
    pub fn record(
        &mut self,
        receiver: NodeId,
        tolerance: Milliwatts,
        heard_at: Milliwatts,
        broadcast_power: Milliwatts,
        until: SimTime,
    ) {
        if broadcast_power.value() <= 0.0 {
            return;
        }
        let gain = heard_at.value() / broadcast_power.value();
        self.map.insert(
            receiver,
            ActiveRx {
                tolerance,
                gain,
                until,
            },
        );
    }

    /// Check whether transmitting at `power` would violate any protected
    /// reception (paper §III step 2):
    /// `P · G(self→C) ≤ safety_factor · tolerance_C` for every fresh entry
    /// `C`, skipping `exempt` (our own intended receiver: our signal *is*
    /// its reception, not noise).
    ///
    /// Returns `Ok(())` when clear, or `Err(until)` with the latest expiry
    /// among the violated entries — the instant to retry at.
    pub fn check(
        &self,
        power: Milliwatts,
        safety_factor: f64,
        exempt: Option<NodeId>,
        now: SimTime,
    ) -> Result<(), SimTime> {
        let mut blocked_until: Option<SimTime> = None;
        for (node, rx) in &self.map {
            if rx.until <= now || Some(*node) == exempt {
                continue;
            }
            let induced = power.value() * rx.gain;
            if induced > safety_factor * rx.tolerance.value().max(0.0) {
                blocked_until = Some(match blocked_until {
                    Some(t) => t.max(rx.until),
                    None => rx.until,
                });
            }
        }
        match blocked_until {
            Some(t) => Err(t),
            None => Ok(()),
        }
    }

    /// Remove entries whose protected reception already ended.
    pub fn purge(&mut self, now: SimTime) {
        self.map.retain(|_, rx| rx.until > now);
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if no receivers are being tracked.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Sender-side record for one neighbour.
#[derive(Debug, Clone)]
pub struct SentEntry {
    /// Session of the last data frame sent to this neighbour.
    pub session: SessionId,
    /// Sequence number of the last data frame sent.
    pub seq: u32,
    /// Retransmission copy ("every time a data packet is transmitted, it
    /// has a copy at the sender"). `None` once delivery is confirmed or
    /// abandoned.
    pub stored: Option<Packet>,
    /// How many times the stored copy has been retransmitted.
    pub retx: u8,
}

/// What a CTS echo tells the sender to do next (paper §III step 4).
#[derive(Debug, Clone, PartialEq)]
pub enum EchoVerdict {
    /// Last packet confirmed (or nothing outstanding): send the next one.
    Proceed,
    /// Echo mismatch and a copy exists: retransmit it.
    Retransmit(Box<Packet>),
    /// Echo mismatch but the copy was abandoned (retransmission cap):
    /// proceed with new data and accept the loss.
    GiveUp,
}

/// The sender-side table of the three-way handshake.
#[derive(Debug, Clone, Default)]
pub struct SentTable {
    map: HashMap<NodeId, SentEntry>,
    /// Per-session sequence counters.
    next_seq: HashMap<NodeId, u32>,
    /// Retransmission cap before a stored copy is abandoned.
    max_retx: u8,
}

impl SentTable {
    /// A table abandoning copies after `max_retx` retransmissions.
    pub fn new(max_retx: u8) -> Self {
        SentTable {
            map: HashMap::new(),
            next_seq: HashMap::new(),
            max_retx,
        }
    }

    /// Allocate the next sequence number toward `to`.
    pub fn allocate_seq(&mut self, to: NodeId) -> u32 {
        let seq = self.next_seq.entry(to).or_insert(0);
        let out = *seq;
        *seq += 1;
        out
    }

    /// Record a (re)transmitted data packet (keeps the retransmission copy).
    pub fn record_sent(&mut self, to: NodeId, session: SessionId, seq: u32, packet: Packet) {
        let retx = match self.map.get(&to) {
            Some(e) if e.session == session && e.seq == seq => e.retx,
            _ => 0,
        };
        self.map.insert(
            to,
            SentEntry {
                session,
                seq,
                stored: Some(packet),
                retx,
            },
        );
    }

    /// Judge a CTS echo from `from` against the table.
    pub fn judge_echo(&mut self, from: NodeId, echo: Option<(SessionId, u32)>) -> EchoVerdict {
        let Some(entry) = self.map.get_mut(&from) else {
            // Nothing outstanding toward this neighbour.
            return EchoVerdict::Proceed;
        };
        if entry.stored.is_none() {
            return EchoVerdict::Proceed;
        }
        let confirmed = echo == Some((entry.session, entry.seq));
        if confirmed {
            entry.stored = None;
            entry.retx = 0;
            return EchoVerdict::Proceed;
        }
        if entry.retx >= self.max_retx {
            entry.stored = None;
            entry.retx = 0;
            return EchoVerdict::GiveUp;
        }
        entry.retx += 1;
        EchoVerdict::Retransmit(Box::new(
            entry.stored.clone().expect("checked stored above"),
        ))
    }

    /// The session/seq pair a retransmission of the stored copy must use.
    pub fn stored_identity(&self, to: NodeId) -> Option<(SessionId, u32)> {
        self.map
            .get(&to)
            .filter(|e| e.stored.is_some())
            .map(|e| (e.session, e.seq))
    }

    /// Reset state toward `peer` (paper: on RREP sent / RERR received, the
    /// tables for the affected up/downstream terminal are cleared and the
    /// stored copy deleted).
    pub fn reset_peer(&mut self, peer: NodeId) {
        self.map.remove(&peer);
        // The seq counter deliberately survives the reset: `SessionId` is
        // a pair constant, so restarting at 0 would replay an identity the
        // peer's duplicate filter may have already accepted (a rediscovery
        // RREP would be swallowed as a stale retransmission and the route
        // could never re-form). Monotonic seqs keep dedup sound.
    }
}

/// Receiver-side table: last accepted (session, seq) per sender.
#[derive(Debug, Clone, Default)]
pub struct ReceivedTable {
    map: HashMap<NodeId, (SessionId, u32)>,
}

impl ReceivedTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The echo to piggyback on a CTS toward `from`.
    pub fn echo_for(&self, from: NodeId) -> Option<(SessionId, u32)> {
        self.map.get(&from).copied()
    }

    /// Record an accepted data frame. Returns `false` when it is a
    /// duplicate (same identity as the last accepted one) which must not
    /// be delivered upward again.
    pub fn accept(&mut self, from: NodeId, session: SessionId, seq: u32) -> bool {
        if self.map.get(&from) == Some(&(session, seq)) {
            return false;
        }
        self.map.insert(from, (session, seq));
        true
    }

    /// Reset state toward `peer` (route change, see [`SentTable::reset_peer`]).
    pub fn reset_peer(&mut self, peer: NodeId) {
        self.map.remove(&peer);
    }
}

mod snap {
    use super::{ActiveReceivers, ActiveRx, ReceivedTable, SentEntry, SentTable};

    pcmac_snap::snap_struct!(ActiveRx {
        tolerance,
        gain,
        until,
    });

    pcmac_snap::snap_struct!(ActiveReceivers { map });

    pcmac_snap::snap_struct!(SentEntry {
        session,
        seq,
        stored,
        retx,
    });

    pcmac_snap::snap_struct!(SentTable {
        map,
        next_seq,
        max_retx,
    });

    pcmac_snap::snap_struct!(ReceivedTable { map });
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmac_engine::{Duration, FlowId, PacketId};

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + Duration::from_micros(us)
    }

    fn pkt(n: u64) -> Packet {
        Packet::data(
            PacketId(n),
            FlowId(0),
            NodeId(1),
            NodeId(2),
            512,
            SimTime::ZERO,
        )
    }

    #[test]
    fn tolerance_formula() {
        // S=10, η=10 → S/η = 1; N = 0.2 → tolerance 0.8
        let tol = noise_tolerance(Milliwatts(10.0), Milliwatts(0.2), 10.0);
        assert!((tol.value() - 0.8).abs() < 1e-12);
        // At the capture limit the tolerance hits zero.
        let zero = noise_tolerance(Milliwatts(2.0), Milliwatts(0.2), 10.0);
        assert!(zero.value().abs() < 1e-12);
    }

    #[test]
    fn check_blocks_violating_power() {
        let mut ar = ActiveReceivers::new();
        // Tolerance 1e-6 mW at a receiver we reach with gain 1e-6.
        ar.record(
            NodeId(5),
            Milliwatts(1e-6),
            Milliwatts(281.83815 * 1e-6),
            Milliwatts(281.83815),
            t(1000),
        );
        // 1 mW × 1e-6 = 1e-6 > 0.7 × 1e-6 → blocked.
        assert_eq!(
            ar.check(Milliwatts(1.0), 0.7, None, t(0)),
            Err(t(1000)),
            "must defer until the reception completes"
        );
        // A quieter power passes: 0.5 mW × 1e-6 = 5e-7 ≤ 7e-7.
        assert!(ar.check(Milliwatts(0.5), 0.7, None, t(0)).is_ok());
    }

    #[test]
    fn check_exempts_own_receiver() {
        let mut ar = ActiveReceivers::new();
        ar.record(
            NodeId(5),
            Milliwatts(1e-9),
            Milliwatts(281.83815 * 1e-3),
            Milliwatts(281.83815),
            t(1000),
        );
        assert!(ar
            .check(Milliwatts(281.0), 0.7, Some(NodeId(5)), t(0))
            .is_ok());
        assert!(ar.check(Milliwatts(281.0), 0.7, None, t(0)).is_err());
    }

    #[test]
    fn check_ignores_expired_entries() {
        let mut ar = ActiveReceivers::new();
        ar.record(
            NodeId(5),
            Milliwatts(1e-9),
            Milliwatts(281.83815 * 1e-3),
            Milliwatts(281.83815),
            t(100),
        );
        assert!(ar.check(Milliwatts(281.0), 0.7, None, t(100)).is_ok());
        ar.purge(t(100));
        assert!(ar.is_empty());
    }

    #[test]
    fn check_reports_latest_blocking_expiry() {
        let mut ar = ActiveReceivers::new();
        let p_max = Milliwatts(281.83815);
        ar.record(NodeId(5), Milliwatts(1e-9), p_max * 1e-3, p_max, t(500));
        ar.record(NodeId(6), Milliwatts(1e-9), p_max * 1e-3, p_max, t(900));
        assert_eq!(ar.check(Milliwatts(100.0), 0.7, None, t(0)), Err(t(900)));
    }

    #[test]
    fn safety_factor_tightens_the_bound() {
        let mut ar = ActiveReceivers::new();
        let p_max = Milliwatts(281.83815);
        // induced = 1 mW × 1e-6 = 1e-6; tolerance 1.2e-6.
        ar.record(NodeId(5), Milliwatts(1.2e-6), p_max * 1e-6, p_max, t(1000));
        // factor 1.0: 1e-6 ≤ 1.2e-6 → ok.
        assert!(ar.check(Milliwatts(1.0), 1.0, None, t(0)).is_ok());
        // paper's 0.7: 1e-6 > 0.84e-6 → blocked.
        assert!(ar.check(Milliwatts(1.0), 0.7, None, t(0)).is_err());
    }

    #[test]
    fn sent_table_confirms_on_matching_echo() {
        let mut st = SentTable::new(4);
        let s = SessionId::for_pair(NodeId(1), NodeId(2));
        let seq = st.allocate_seq(NodeId(2));
        st.record_sent(NodeId(2), s, seq, pkt(1));
        assert_eq!(
            st.judge_echo(NodeId(2), Some((s, seq))),
            EchoVerdict::Proceed
        );
        // Confirmed: a later mismatching echo has nothing to retransmit.
        assert_eq!(st.judge_echo(NodeId(2), None), EchoVerdict::Proceed);
    }

    #[test]
    fn sent_table_retransmits_on_mismatch() {
        let mut st = SentTable::new(4);
        let s = SessionId::for_pair(NodeId(1), NodeId(2));
        let seq = st.allocate_seq(NodeId(2));
        st.record_sent(NodeId(2), s, seq, pkt(1));
        match st.judge_echo(NodeId(2), None) {
            EchoVerdict::Retransmit(p) => assert_eq!(p.id, PacketId(1)),
            v => panic!("expected retransmit, got {v:?}"),
        }
        // Identity of the stored copy is stable for the retransmission.
        assert_eq!(st.stored_identity(NodeId(2)), Some((s, seq)));
    }

    #[test]
    fn sent_table_gives_up_after_cap() {
        let mut st = SentTable::new(2);
        let s = SessionId::for_pair(NodeId(1), NodeId(2));
        let seq = st.allocate_seq(NodeId(2));
        st.record_sent(NodeId(2), s, seq, pkt(1));
        assert!(matches!(
            st.judge_echo(NodeId(2), None),
            EchoVerdict::Retransmit(_)
        ));
        st.record_sent(NodeId(2), s, seq, pkt(1)); // retransmitted
        assert!(matches!(
            st.judge_echo(NodeId(2), None),
            EchoVerdict::Retransmit(_)
        ));
        st.record_sent(NodeId(2), s, seq, pkt(1));
        assert_eq!(st.judge_echo(NodeId(2), None), EchoVerdict::GiveUp);
        // After giving up, the sender proceeds.
        assert_eq!(st.judge_echo(NodeId(2), None), EchoVerdict::Proceed);
    }

    #[test]
    fn sequence_numbers_are_per_neighbour() {
        let mut st = SentTable::new(4);
        assert_eq!(st.allocate_seq(NodeId(2)), 0);
        assert_eq!(st.allocate_seq(NodeId(2)), 1);
        assert_eq!(st.allocate_seq(NodeId(3)), 0);
    }

    #[test]
    fn reset_peer_clears_sender_state() {
        let mut st = SentTable::new(4);
        let s = SessionId::for_pair(NodeId(1), NodeId(2));
        let seq = st.allocate_seq(NodeId(2));
        st.record_sent(NodeId(2), s, seq, pkt(1));
        st.reset_peer(NodeId(2));
        assert_eq!(st.judge_echo(NodeId(2), None), EchoVerdict::Proceed);
        assert_eq!(
            st.allocate_seq(NodeId(2)),
            1,
            "seq stays monotonic across resets so the peer's duplicate \
             filter can never mistake a new session's frame for an old one"
        );
    }

    #[test]
    fn received_table_detects_duplicates() {
        let mut rt = ReceivedTable::new();
        let s = SessionId::for_pair(NodeId(1), NodeId(2));
        assert!(rt.accept(NodeId(1), s, 0), "first copy is fresh");
        assert!(!rt.accept(NodeId(1), s, 0), "second copy is a duplicate");
        assert!(rt.accept(NodeId(1), s, 1));
        assert_eq!(rt.echo_for(NodeId(1)), Some((s, 1)));
    }

    #[test]
    fn received_table_echo_empty_initially() {
        let rt = ReceivedTable::new();
        assert_eq!(rt.echo_for(NodeId(1)), None);
    }

    #[test]
    fn received_table_reset_clears_echo() {
        let mut rt = ReceivedTable::new();
        let s = SessionId::for_pair(NodeId(1), NodeId(2));
        rt.accept(NodeId(1), s, 5);
        rt.reset_peer(NodeId(1));
        assert_eq!(rt.echo_for(NodeId(1)), None);
    }
}
