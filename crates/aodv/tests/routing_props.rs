//! Property-based routing tests: run real discovery floods over random
//! abstract topologies (no PHY — ideal message delivery between adjacent
//! nodes) and check AODV's global invariants: discovery completes on
//! connected graphs, installed routes are loop-free, and hop counts never
//! beat the true shortest path.

use std::collections::VecDeque;

use pcmac_aodv::{AodvAction, AodvAgent, AodvConfig};
use pcmac_engine::{Duration, FlowId, NodeId, PacketId, SimTime};
use pcmac_net::Packet;
use proptest::prelude::*;

/// An ideal-medium mini-simulator: delivers Transmit actions instantly to
/// adjacent nodes, in deterministic order.
struct IdealNet {
    agents: Vec<AodvAgent>,
    adj: Vec<Vec<bool>>,
    /// (packet, receiver, previous hop)
    inbox: VecDeque<(Packet, NodeId, NodeId)>,
    delivered_local: Vec<(NodeId, PacketId)>,
}

impl IdealNet {
    fn new(n: usize, adj: Vec<Vec<bool>>) -> Self {
        IdealNet {
            agents: (0..n)
                .map(|i| AodvAgent::new(NodeId(i as u32), AodvConfig::default()))
                .collect(),
            adj,
            inbox: VecDeque::new(),
            delivered_local: Vec::new(),
        }
    }

    fn apply(&mut self, from: NodeId, actions: Vec<AodvAction>) {
        for a in actions {
            match a {
                AodvAction::Transmit { packet, next_hop } => {
                    if next_hop.is_broadcast() {
                        for j in 0..self.agents.len() {
                            if j != from.index() && self.adj[from.index()][j] {
                                self.inbox
                                    .push_back((packet.clone(), NodeId(j as u32), from));
                            }
                        }
                    } else if self.adj[from.index()][next_hop.index()] {
                        self.inbox.push_back((packet, next_hop, from));
                    }
                    // Unicast to a non-neighbour is silently lost (the
                    // real MAC would fail and report; irrelevant here).
                }
                AodvAction::DeliverLocal { packet } => {
                    self.delivered_local.push((from, packet.id));
                }
                _ => {}
            }
        }
    }

    fn run_to_quiescence(&mut self, now: SimTime) {
        let mut budget = 100_000; // safety valve against livelock
        while let Some((packet, to, prev)) = self.inbox.pop_front() {
            let mut out = Vec::new();
            self.agents[to.index()].on_packet(packet, prev, now, &mut out);
            self.apply(to, out);
            budget -= 1;
            assert!(budget > 0, "message storm never quiesced");
        }
    }

    /// BFS hop distance in the raw graph.
    fn bfs_dist(&self, from: usize, to: usize) -> Option<u32> {
        let n = self.agents.len();
        let mut dist = vec![None; n];
        dist[from] = Some(0u32);
        let mut q = VecDeque::from([from]);
        while let Some(u) = q.pop_front() {
            for v in 0..n {
                if self.adj[u][v] && dist[v].is_none() {
                    dist[v] = Some(dist[u].unwrap() + 1);
                    q.push_back(v);
                }
            }
        }
        dist[to]
    }

    /// Follow next hops from `from` toward `to`; returns the path or
    /// panics on a loop / dead end.
    fn trace_route(&self, from: usize, to: usize, now: SimTime) -> Vec<usize> {
        let mut path = vec![from];
        let mut cur = from;
        let mut visited = vec![false; self.agents.len()];
        visited[from] = true;
        while cur != to {
            let route = self.agents[cur]
                .table()
                .lookup(NodeId(to as u32), now)
                .unwrap_or_else(|| panic!("node {cur} lost the route to {to}"));
            let nxt = route.next_hop.index();
            assert!(
                self.adj[cur][nxt],
                "route at {cur} points to non-neighbour {nxt}"
            );
            assert!(!visited[nxt], "routing loop through {nxt}: {path:?}");
            visited[nxt] = true;
            path.push(nxt);
            cur = nxt;
        }
        path
    }
}

/// Random connected graph: a random spanning tree plus extra edges.
fn connected_graph(n: usize, extra: &[(usize, usize)], tree_perm: &[usize]) -> Vec<Vec<bool>> {
    let mut adj = vec![vec![false; n]; n];
    // Spanning tree over the permutation order.
    for w in 1..n {
        let parent = tree_perm[w % tree_perm.len()] % w;
        let a = w;
        adj[a][parent] = true;
        adj[parent][a] = true;
    }
    for &(a, b) in extra {
        let (a, b) = (a % n, b % n);
        if a != b {
            adj[a][b] = true;
            adj[b][a] = true;
        }
    }
    adj
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On any connected topology, a discovery from `src` to `dst`
    /// completes, the data packet arrives, and the installed route is
    /// loop-free with hop count ≥ the BFS distance.
    #[test]
    fn discovery_completes_loop_free(
        n in 3usize..12,
        tree_perm in proptest::collection::vec(0usize..100, 4..12),
        extra in proptest::collection::vec((0usize..12, 0usize..12), 0..8),
        src_raw in 0usize..12,
        dst_raw in 0usize..12,
    ) {
        let src = src_raw % n;
        let dst = dst_raw % n;
        prop_assume!(src != dst);

        let adj = connected_graph(n, &extra, &tree_perm);
        let mut net = IdealNet::new(n, adj);
        let now = SimTime::ZERO + Duration::from_millis(1);

        let pkt = Packet::data(
            PacketId(777),
            FlowId(0),
            NodeId(src as u32),
            NodeId(dst as u32),
            512,
            now,
        );
        let mut out = Vec::new();
        net.agents[src].send(pkt, now, &mut out);
        net.apply(NodeId(src as u32), out);
        net.run_to_quiescence(now);

        // The data packet reached its destination.
        prop_assert!(
            net.delivered_local.contains(&(NodeId(dst as u32), PacketId(777))),
            "packet never delivered over {n} nodes"
        );

        // The source's route is installed, loop-free, and no shorter than
        // physically possible.
        let path = net.trace_route(src, dst, now);
        let bfs = net.bfs_dist(src, dst).expect("graph is connected") as usize;
        prop_assert!(path.len() > bfs, "route shorter than BFS distance?!");
        // AODV routes may be longer than shortest but must stay bounded.
        prop_assert!(path.len() - 1 <= n, "route longer than node count");
    }

    /// Every intermediate node along the discovered route also holds a
    /// consistent (loop-free) route to the destination.
    #[test]
    fn intermediate_routes_consistent(
        n in 3usize..10,
        tree_perm in proptest::collection::vec(0usize..100, 4..10),
        extra in proptest::collection::vec((0usize..10, 0usize..10), 0..6),
    ) {
        let src = 0usize;
        let dst = n - 1;
        let adj = connected_graph(n, &extra, &tree_perm);
        let mut net = IdealNet::new(n, adj);
        let now = SimTime::ZERO + Duration::from_millis(1);
        let pkt = Packet::data(
            PacketId(1),
            FlowId(0),
            NodeId(src as u32),
            NodeId(dst as u32),
            512,
            now,
        );
        let mut out = Vec::new();
        net.agents[src].send(pkt, now, &mut out);
        net.apply(NodeId(src as u32), out);
        net.run_to_quiescence(now);

        let path = net.trace_route(src, dst, now);
        for &hop in &path[..path.len() - 1] {
            // trace_route itself asserts loop-freedom from each point.
            let _ = net.trace_route(hop, dst, now);
        }
    }
}
