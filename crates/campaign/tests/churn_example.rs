//! The checked-in `examples/churn_campaign.json` is the PR's acceptance
//! artifact: it must validate, expand to a PCM-vs-DCF churn grid, and
//! reproduce bit-identical reports for a fixed seed across reruns and
//! across the Lazy/Eager mobility-refresh modes.

use pcmac::{GainCacheMode, MobilityRefreshMode, RunReport, ScenarioConfig, Simulator, Variant};
use pcmac_campaign::CampaignSpec;

fn example_spec() -> CampaignSpec {
    let text = std::fs::read_to_string("../../examples/churn_campaign.json")
        .expect("checked-in churn campaign exists");
    let mut spec = CampaignSpec::from_json(&text).expect("example parses");
    // Smoke-shrink exactly like `pcmac-campaign run --duration` does;
    // the churn window starts at 2 s, so it is still exercised.
    spec.duration_s = Some(5.0);
    spec
}

fn fingerprint(r: &RunReport) -> serde_json::Value {
    let text = serde_json::to_string(r).expect("reports serialize");
    let v: serde_json::Value = serde_json::from_str(&text).unwrap();
    match v {
        serde_json::Value::Map(entries) => {
            serde_json::Value::Map(entries.into_iter().filter(|(k, _)| k != "wall_s").collect())
        }
        other => other,
    }
}

/// Materialize every grid cell of the shrunk example at seed 1.
fn example_configs() -> Vec<ScenarioConfig> {
    let spec = example_spec();
    spec.validate().expect("example is valid");
    let grid = spec.grid().expect("example expands");
    grid.scenarios()
        .map(|r| r.expect("example cells materialize"))
        .filter(|cfg| cfg.seed == 1)
        .collect()
}

#[test]
fn churn_example_expands_to_a_pcm_vs_dcf_grid() {
    let cfgs = example_configs();
    assert_eq!(cfgs.len(), 8, "2 loads x 2 variants x 2 downtime patches");
    assert!(cfgs.iter().any(|c| c.variant == Variant::Basic));
    assert!(cfgs.iter().any(|c| c.variant == Variant::Pcmac));
    for cfg in &cfgs {
        let churn = cfg
            .faults
            .as_ref()
            .and_then(|f| f.churn.as_ref())
            .expect("every cell carries the churn plan");
        assert_eq!(churn.mean_uptime_s, 12.0);
        assert!(churn.mean_downtime_s == 1.0 || churn.mean_downtime_s == 3.0);
    }
}

#[test]
fn churn_example_is_bit_identical_across_reruns_and_refresh_modes() {
    // One Basic and one Pcmac cell are enough to pin determinism; the
    // full matrix lives in core's channel_equivalence tests.
    let picked: Vec<ScenarioConfig> = {
        let cfgs = example_configs();
        let basic = cfgs
            .iter()
            .find(|c| c.variant == Variant::Basic)
            .unwrap()
            .clone();
        let pcmac = cfgs
            .iter()
            .find(|c| c.variant == Variant::Pcmac)
            .unwrap()
            .clone();
        vec![basic, pcmac]
    };
    for cfg in picked {
        let again = Simulator::new(cfg.clone()).run();
        let first = Simulator::new(cfg.clone()).run();
        assert_eq!(
            fingerprint(&first),
            fingerprint(&again),
            "rerun diverged ({})",
            cfg.name
        );
        let modal = |refresh| {
            let mut c = cfg.clone();
            c.mobility_refresh = Some(refresh);
            c.gain_cache = Some(GainCacheMode::Auto);
            Simulator::new(c).run()
        };
        let lazy = modal(MobilityRefreshMode::Lazy);
        let eager = modal(MobilityRefreshMode::Eager);
        assert!(lazy.events > 0, "degenerate churn run");
        assert!(
            lazy.resilience.is_some(),
            "churn plan must produce a resilience section"
        );
        assert_eq!(
            fingerprint(&lazy),
            fingerprint(&eager),
            "Lazy and Eager refresh diverged ({})",
            cfg.name
        );
    }
}
