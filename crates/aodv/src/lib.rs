//! # pcmac-aodv — Ad hoc On-demand Distance Vector routing
//!
//! The routing substrate the paper runs above its MAC variants
//! ("routing protocol: AODV, which has been implemented into NS-2").
//! A from-scratch implementation of the protocol's on-demand core:
//!
//! * **Route discovery** — RREQ flooding with duplicate suppression,
//!   reverse-route learning, destination (and fresh-intermediate) RREPs
//!   unicast back along the reverse path.
//! * **Route maintenance** — MAC-layer link-failure feedback invalidates
//!   routes and propagates RERRs; destination sequence numbers enforce
//!   loop freedom.
//! * **Send buffering** — packets wait (bounded, with timeout) while their
//!   discovery runs, then flush in order.
//!
//! Like the MAC, the agent is a pure state machine emitting
//! [`AodvAction`]s; the simulation core owns delivery and timers. Hello
//! beacons are omitted: link breakage detection comes from the MAC's
//! retry-exhaustion callback, matching the CMU/ns-2 configuration the
//! paper used (link-layer detection, no periodic hellos).
//!
//! The `PeerReset` action surfaces the paper's PCMAC coupling: "every time
//! a terminal successfully sends a RREP to a downstream terminal, its
//! received-table as to this downstream terminal is reset […] when a
//! terminal receives a RRER from an upstream terminal, its received-table
//! as to this upstream terminal is also reset" (§III). The core forwards
//! it to the MAC's `reset_peer_state`.

pub mod agent;
pub mod config;
pub mod seq;
pub mod table;

pub use agent::{AodvAction, AodvAgent, AodvTimer, DropReason};
pub use config::AodvConfig;
pub use seq::seq_newer;
pub use table::{Route, RouteTable};
