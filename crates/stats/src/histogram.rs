//! Fixed-width bucket histograms with percentile queries.

use serde::{Deserialize, Serialize};

/// A histogram over `[0, width × buckets)` with an overflow bucket.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    width: f64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// `buckets` buckets of `width` each.
    pub fn new(width: f64, buckets: usize) -> Self {
        assert!(width > 0.0 && buckets > 0);
        Histogram {
            width,
            counts: vec![0; buckets],
            overflow: 0,
            total: 0,
        }
    }

    /// Record one sample (negatives clamp into the first bucket).
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        let idx = (x.max(0.0) / self.width) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Number of samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Upper edge of the bucket containing the `q`-quantile (0 ≤ q ≤ 1),
    /// or `None` when empty. Overflowed quantiles report `infinity`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some((i + 1) as f64 * self.width);
            }
        }
        Some(f64::INFINITY)
    }

    /// Count in the overflow bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Merge another histogram with identical geometry (bucket width and
    /// count) into this one.
    ///
    /// # Panics
    /// If the geometries differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.width, other.width, "bucket width mismatch");
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "bucket count mismatch"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.total += other.total;
    }
}

mod snap {
    use super::Histogram;
    use pcmac_snap::{Snap, SnapError, SnapReader, SnapWriter};

    /// Histograms snapshot **sparsely**: geometry and totals, then only
    /// the non-zero buckets as strictly-ascending `(index, count)`
    /// pairs. A sink's delay histogram is almost entirely zeros (most
    /// nodes terminate no flows at all), and the dense encoding made
    /// every node's blob pay ~8 KB for 1000 empty buckets — at
    /// N = 64000 that alone put half a gigabyte into each periodic
    /// checkpoint. The ascending-index rule keeps the stream canonical:
    /// equal histograms serialize to equal bytes, and any other
    /// ordering is rejected as corrupt.
    impl Snap for Histogram {
        fn save(&self, w: &mut SnapWriter) {
            w.f64(self.width);
            w.u64(self.counts.len() as u64);
            w.u64(self.overflow);
            w.u64(self.total);
            let nz = self.counts.iter().filter(|&&c| c != 0).count() as u64;
            w.u64(nz);
            for (i, &c) in self.counts.iter().enumerate() {
                if c != 0 {
                    w.u32(i as u32);
                    w.u64(c);
                }
            }
        }

        fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            let width = r.f64()?;
            let buckets = r.u64()?;
            // `partial_cmp` so NaN widths (None) are rejected too.
            let width_ok = width.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater);
            if !width_ok || buckets == 0 || buckets > (1 << 24) {
                return Err(SnapError::Corrupt("histogram geometry"));
            }
            let overflow = r.u64()?;
            let total = r.u64()?;
            let nz = r.len_prefix()?;
            let mut counts = vec![0u64; buckets as usize];
            let mut in_buckets: u64 = 0;
            let mut prev: Option<u32> = None;
            for _ in 0..nz {
                let i = r.u32()?;
                let c = r.u64()?;
                if prev.is_some_and(|p| p >= i) {
                    return Err(SnapError::Corrupt("histogram buckets not ascending"));
                }
                if u64::from(i) >= buckets || c == 0 {
                    return Err(SnapError::Corrupt("histogram bucket"));
                }
                counts[i as usize] = c;
                in_buckets = in_buckets
                    .checked_add(c)
                    .ok_or(SnapError::Corrupt("histogram counts overflow"))?;
                prev = Some(i);
            }
            if in_buckets.checked_add(overflow) != Some(total) {
                return Err(SnapError::Corrupt("histogram totals disagree"));
            }
            Ok(Histogram {
                width,
                counts,
                overflow,
                total,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_uniform_ramp() {
        let mut h = Histogram::new(1.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        assert_eq!(h.total(), 100);
        assert_eq!(h.quantile(0.5), Some(50.0));
        assert_eq!(h.quantile(0.95), Some(95.0));
        assert_eq!(h.quantile(1.0), Some(100.0));
    }

    #[test]
    fn overflow_reports_infinity() {
        let mut h = Histogram::new(1.0, 10);
        h.record(5.0);
        h.record(1e9);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.quantile(1.0), Some(f64::INFINITY));
        assert_eq!(h.quantile(0.25), Some(6.0));
    }

    #[test]
    fn empty_has_no_quantiles() {
        let h = Histogram::new(1.0, 10);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn negatives_clamp_to_first_bucket() {
        let mut h = Histogram::new(2.0, 4);
        h.record(-5.0);
        assert_eq!(h.quantile(1.0), Some(2.0));
    }

    #[test]
    fn merge_equals_concatenation() {
        let mut a = Histogram::new(1.0, 50);
        let mut b = Histogram::new(1.0, 50);
        let mut whole = Histogram::new(1.0, 50);
        for i in 0..40 {
            let x = (i * 7 % 45) as f64;
            if i % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            whole.record(x);
        }
        a.merge(&b);
        assert_eq!(a.total(), whole.total());
        for q in [0.1, 0.5, 0.9, 1.0] {
            assert_eq!(a.quantile(q), whole.quantile(q));
        }
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn merge_rejects_different_geometry() {
        let mut a = Histogram::new(1.0, 10);
        let b = Histogram::new(2.0, 10);
        a.merge(&b);
    }

    #[test]
    fn sparse_snapshot_round_trips_and_stays_small() {
        use pcmac_snap::{Snap, SnapReader, SnapWriter};
        let mut h = Histogram::new(10.0, 1000);
        h.record(5.0);
        h.record(5.0);
        h.record(4321.0);
        h.record(1e12); // overflow
        let mut w = SnapWriter::new();
        h.save(&mut w);
        // Geometry + totals + 2 sparse (index, count) pairs — nowhere
        // near the 8 KB a dense 1000-bucket dump would cost.
        assert!(w.len() < 100, "sparse encoding stayed small: {}", w.len());
        let bytes = w.finish();
        let back = Histogram::load(&mut SnapReader::open(&bytes).unwrap()).unwrap();
        assert_eq!(back.total(), h.total());
        assert_eq!(back.overflow(), h.overflow());
        for q in [0.1, 0.5, 0.75, 1.0] {
            assert_eq!(back.quantile(q), h.quantile(q));
        }
    }

    #[test]
    fn snapshot_rejects_inconsistent_buckets() {
        use pcmac_snap::{Snap, SnapReader, SnapWriter};
        // Hand-craft a stream whose sparse pairs are out of order.
        let mut w = SnapWriter::new();
        w.f64(1.0); // width
        w.u64(10); // buckets
        w.u64(0); // overflow
        w.u64(3); // total
        w.u64(2); // two pairs, descending indices
        w.u32(5);
        w.u64(2);
        w.u32(1);
        w.u64(1);
        let bytes = w.finish();
        assert!(Histogram::load(&mut SnapReader::open(&bytes).unwrap()).is_err());

        // Totals that do not add up are corrupt, not silently accepted.
        let mut w = SnapWriter::new();
        w.f64(1.0);
        w.u64(10);
        w.u64(0);
        w.u64(99); // claimed total
        w.u64(1);
        w.u32(3);
        w.u64(2); // only 2 samples present
        let bytes = w.finish();
        assert!(Histogram::load(&mut SnapReader::open(&bytes).unwrap()).is_err());
    }
}
