//! # pcmac-campaign — scenarios as data
//!
//! The paper's results are all *parameter sweeps over scenarios*; this
//! crate makes both layers declarative:
//!
//! * [`ScenarioSpec`] — one JSON-loadable scenario: a placement from the
//!   `pcmac-mobility` generator library (uniform, density, grid, chain,
//!   ring, clustered hotspots, corridor, explicit points), optional
//!   random-waypoint mobility, and a traffic block whose arrival process
//!   can be any `pcmac-traffic` source (CBR, Poisson, on/off).
//!   [`ScenarioSpec::materialize`] turns it into a seeded, validated
//!   [`pcmac::ScenarioConfig`].
//! * [`CampaignSpec`] — a base spec expanded across parameter grids
//!   (offered load × node count × variant × power-level set) × a seed
//!   list into concrete runs.
//! * [`run_campaign`] — executes the expansion through the parallel
//!   driver and collapses each grid point's seeds into mean / stddev /
//!   95% confidence interval per metric ([`CampaignReport`], written as
//!   the machine-readable `CAMPAIGN_*.json` artifact).
//!
//! The `pcmac-campaign` binary drives all of this from the command line:
//!
//! ```text
//! pcmac-campaign run examples/paper_load_sweep.json --out CAMPAIGN.json
//! pcmac-campaign expand <spec.json>     # show the grid without running
//! pcmac-campaign validate <spec.json>   # actionable errors, exit code
//! pcmac-campaign scenario <spec.json>   # run a single ScenarioSpec
//! pcmac-campaign example                # print a starter campaign spec
//! ```
//!
//! Adding a new workload is now a JSON file, not a Rust constructor.

pub mod aggregate;
pub mod campaign;
pub mod runner;
pub mod spec;

pub use aggregate::{CampaignReport, MetricSummary, PointSummary};
pub use campaign::{AxesSpec, CampaignPoint, CampaignSpec, PointKey};
pub use runner::{run_campaign, CampaignOutcome};
pub use spec::{
    MobilitySpec, NodesSpec, PlacementSpec, ScenarioSpec, SpecError, TrafficPattern, TrafficSpec,
};
