//! Offline shim for `serde_json`.
//!
//! Renders the local serde shim's [`Value`] tree to JSON text and parses
//! JSON text back into it. Follows `serde_json` conventions where they
//! matter to this repository: non-finite floats serialize as `null`,
//! pretty output uses two-space indentation, and map/struct key order is
//! preserved.

use std::fmt;

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

/// JSON error (parse or shape mismatch).
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serialize `value` to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` to pretty JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any [`Deserialize`] type (including [`Value`]).
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// --- writer ------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => write_compound(out, indent, depth, items.len(), '[', ']', |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Map(entries) => {
            write_compound(out, indent, depth, entries.len(), '{', '}', |out, i| {
                let (k, v) = &entries[i];
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth + 1);
            })
        }
    }
}

fn write_compound(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        // JSON has no Infinity/NaN; serde_json emits null.
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    // Keep the float/integer distinction through a round-trip.
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser ------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(Error("truncated \\u escape".into()));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error(format!("bad escape `\\{}`", other as char)));
                        }
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let v = Value::Map(vec![
            ("a".into(), Value::U64(1)),
            ("b".into(), Value::F64(2.5)),
            ("c".into(), Value::Seq(vec![Value::Bool(true), Value::Null])),
            ("d".into(), Value::Str("x \"y\" \n z".into())),
            ("e".into(), Value::I64(-3)),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back2);
    }

    #[test]
    fn floats_keep_floatness() {
        let text = to_string(&Value::F64(4.0)).unwrap();
        assert_eq!(text, "4.0");
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, Value::F64(4.0));
    }

    #[test]
    fn non_finite_is_null() {
        assert_eq!(to_string(&Value::F64(f64::INFINITY)).unwrap(), "null");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{not json").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn big_u64_exact() {
        let n = u64::MAX;
        let text = to_string(&Value::U64(n)).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, Value::U64(n));
    }
}
