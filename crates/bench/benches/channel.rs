//! Channel fan-out: spatial index vs brute-force scan.
//!
//! Runs the same static sparse-field scenario under
//! `ChannelIndexMode::Grid` and `ChannelIndexMode::BruteForce`, timing
//! whole simulation runs (the channel fan-out dominates them: every
//! transmission fans out to its audible neighbourhood). Two things keep
//! the rows comparable so the speedup column actually measures index
//! scaling:
//!
//! * **Constant node density.** The field grows with N at one node per
//!   250 m × 250 m (16 nodes/km², recorded per row as
//!   `density_per_km2`), and the interference floor is ns-2's
//!   carrier-sense threshold, giving a 550 m reach at maximum power —
//!   a transmission's cell block covers a fixed *fraction* of the field
//!   at every N, which is exactly the regime the paper's large-network
//!   claims live in.
//! * **Uniform per-row workload.** Every flow runs from a random source
//!   to its *nearest neighbour* — single-hop traffic, N/10 flows — so
//!   per-node offered load and route lengths are the same at every N.
//!   (Random cross-field pairs, as this bench originally used, made
//!   AODV route length a second variable: multi-hop discovery dominated
//!   some rows and not others, which is why brute force at N=100 once
//!   measured *slower* than at N=200.)
//!
//! Besides the usual criterion output, the comparison is written to
//! `BENCH_channel.json` at the repository root, and the run **fails**
//! if the indexed channel does not beat the brute-force scan at
//! N ≥ 200 (the regression bar from PR 1's acceptance criteria).
//!
//! With `PCMAC_BENCH_QUICK=1` (the CI perf-smoke step) the bench runs
//! reduced sizes, asserts the indexed channel stays within a 10%
//! tolerance band of brute force (≥ 0.9×) at the largest reduced size,
//! and does **not** rewrite `BENCH_channel.json`.

use criterion::{criterion_group, Criterion};
use std::hint::black_box;

use pcmac::{ChannelIndexMode, NodeSetup, ScenarioConfig, Simulator, Variant};
use pcmac_bench::support::{
    density_per_km2, field_side, nearest_neighbour_flows, quick_mode, scatter,
};
use pcmac_engine::{Duration, Milliwatts};

/// Node counts under comparison (full mode).
const SIZES: [usize; 4] = [50, 100, 200, 400];

/// Node counts in `PCMAC_BENCH_QUICK` mode.
const QUICK_SIZES: [usize; 2] = [50, 100];

fn sizes() -> &'static [usize] {
    if quick_mode() {
        &QUICK_SIZES
    } else {
        &SIZES
    }
}

/// The benchmark scenario: N static nodes scattered uniformly, N/10
/// single-hop CBR flows (random source → nearest neighbour), 1 simulated
/// second, basic 802.11 (every frame at maximum power — the heaviest
/// fan-out).
fn scenario(n: usize, mode: ChannelIndexMode) -> ScenarioConfig {
    let side = field_side(n);
    let duration = Duration::from_secs(1);
    let mut cfg = ScenarioConfig::two_nodes(Variant::Basic, 100.0, 1000.0, 1);
    cfg.name = format!("channel-bench-{n}");
    cfg.field = (side, side);
    cfg.duration = duration;
    // ns-2's CSThresh: reach 550 m at max power, so reception is local
    // relative to the field — the regime a spatial index exists for.
    cfg.interference_floor = Milliwatts(1.559e-8);
    cfg.channel_index = mode;
    let pts = scatter(7, "bench.channel.placement", n, side);
    cfg.flows = nearest_neighbour_flows(
        7,
        "bench.channel.flows",
        &pts,
        (n / 10).max(2) as u32,
        80_000.0,
        (50, 13),
        duration,
    );
    cfg.nodes = NodeSetup::Static(pts);
    cfg
}

fn bench_channel(c: &mut Criterion) {
    let mut g = c.benchmark_group("channel");
    g.sample_size(10);
    for &n in sizes() {
        g.bench_function(format!("brute/{n}"), |b| {
            b.iter(|| {
                let r = Simulator::new(scenario(n, ChannelIndexMode::BruteForce)).run();
                black_box(r.events)
            });
        });
        g.bench_function(format!("grid/{n}"), |b| {
            b.iter(|| {
                let r = Simulator::new(scenario(n, ChannelIndexMode::Grid)).run();
                black_box(r.events)
            });
        });
    }
    g.finish();
}

criterion_group!(
    name = channel;
    config = Criterion::default().sample_size(10);
    targets = bench_channel
);

fn main() {
    channel();

    let quick = quick_mode();
    let measurements = criterion::take_measurements();
    let mean = |id: &str| {
        measurements
            .iter()
            .find(|m| m.id == id)
            .map(|m| m.mean_ns)
            .expect("benchmark ran")
    };

    let mut rows = Vec::new();
    let mut failures = Vec::new();
    println!(
        "\n{:>6} {:>12} {:>12} {:>9}",
        "N", "brute", "grid", "speedup"
    );
    for &n in sizes() {
        let brute_ns = mean(&format!("channel/brute/{n}"));
        let grid_ns = mean(&format!("channel/grid/{n}"));
        let speedup = brute_ns / grid_ns;
        println!(
            "{n:>6} {:>10.2}ms {:>10.2}ms {speedup:>8.2}x",
            brute_ns / 1e6,
            grid_ns / 1e6
        );
        if quick {
            // Perf smoke: a 10% tolerance band at reduced N absorbs CI
            // noise while still catching an index that stopped working.
            if n == *sizes().last().unwrap() && speedup < 0.9 {
                failures.push(format!(
                    "perf smoke: indexed channel fell below 0.9x of brute force at N={n} \
                     (got {speedup:.2}x)"
                ));
            }
        } else if n >= 200 && speedup <= 1.0 {
            failures.push(format!(
                "indexed channel must beat brute force at N={n} (got {speedup:.2}x)"
            ));
        }
        rows.push(serde_json::Value::Map(vec![
            ("n".into(), serde_json::Value::U64(n as u64)),
            (
                "field_m".into(),
                serde_json::Value::F64(field_side(n).round()),
            ),
            (
                "density_per_km2".into(),
                serde_json::Value::F64(density_per_km2(n)),
            ),
            ("brute_ns".into(), serde_json::Value::F64(brute_ns)),
            ("grid_ns".into(), serde_json::Value::F64(grid_ns)),
            ("speedup".into(), serde_json::Value::F64(speedup)),
        ]));
    }

    if quick {
        println!("\nquick mode: BENCH_channel.json left untouched");
    } else {
        let doc = serde_json::Value::Map(vec![
            ("bench".into(), serde_json::Value::Str("channel".into())),
            (
                "description".into(),
                serde_json::Value::Str(
                    "whole-run wall time, static field at constant density (16 nodes/km2, \
                     floor = CSThresh, single-hop nearest-neighbour flows), brute-force O(N) \
                     channel vs uniform-grid index"
                        .into(),
                ),
            ),
            ("results".into(), serde_json::Value::Seq(rows)),
        ]);
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_channel.json");
        std::fs::write(path, serde_json::to_string_pretty(&doc).unwrap() + "\n")
            .expect("write BENCH_channel.json");
        println!("\nwrote {path}");
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
