//! [`Snap`] implementations for the kernel's value types.
//!
//! Everything here is a plain-old-data wrapper (times, ids, geometry,
//! power units, RNG state, timer generations); the representations are
//! exact — `f64`s travel as bit patterns, integers as fixed-width
//! little-endian — so a restored value is indistinguishable from the
//! original.

use pcmac_snap::{Snap, SnapError, SnapReader, SnapWriter};

use crate::geom::{Point, Vector};
use crate::ids::{FlowId, NodeId, PacketId, SessionId};
use crate::rng::RngStream;
use crate::time::{Duration, SimTime};
use crate::timer::{TimerSlot, TimerToken};

impl Snap for SimTime {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.as_nanos());
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(SimTime::from_nanos(r.u64()?))
    }
}

impl Snap for Duration {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.as_nanos());
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Duration::from_nanos(r.u64()?))
    }
}

impl Snap for NodeId {
    fn save(&self, w: &mut SnapWriter) {
        w.u32(self.0);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(NodeId(r.u32()?))
    }
}

impl Snap for FlowId {
    fn save(&self, w: &mut SnapWriter) {
        w.u32(self.0);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(FlowId(r.u32()?))
    }
}

impl Snap for PacketId {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.0);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(PacketId(r.u64()?))
    }
}

impl Snap for SessionId {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.0);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(SessionId(r.u64()?))
    }
}

impl Snap for Point {
    fn save(&self, w: &mut SnapWriter) {
        w.f64(self.x);
        w.f64(self.y);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Point {
            x: r.f64()?,
            y: r.f64()?,
        })
    }
}

impl Snap for Vector {
    fn save(&self, w: &mut SnapWriter) {
        w.f64(self.x);
        w.f64(self.y);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Vector {
            x: r.f64()?,
            y: r.f64()?,
        })
    }
}

impl Snap for crate::units::Milliwatts {
    fn save(&self, w: &mut SnapWriter) {
        w.f64(self.0);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(crate::units::Milliwatts(r.f64()?))
    }
}

impl Snap for RngStream {
    fn save(&self, w: &mut SnapWriter) {
        self.state().save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(RngStream::from_state(<[u64; 4]>::load(r)?))
    }
}

impl Snap for TimerToken {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.value());
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(TimerToken::from_value(r.u64()?))
    }
}

impl Snap for TimerSlot {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.generation());
        self.is_armed().save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let generation = r.u64()?;
        let armed = bool::load(r)?;
        Ok(TimerSlot::from_parts(generation, armed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Snap>(v: &T) -> T {
        let mut w = SnapWriter::new();
        v.save(&mut w);
        let bytes = w.finish();
        let mut r = SnapReader::open(&bytes).expect("envelope");
        let back = T::load(&mut r).expect("load");
        assert!(r.is_exhausted());
        back
    }

    #[test]
    fn rng_stream_resumes_exactly() {
        let mut a = RngStream::derive(99, "snapshot");
        for _ in 0..17 {
            a.below(1000);
        }
        let mut b = round_trip(&a);
        for _ in 0..100 {
            assert_eq!(a.below(1_000_000), b.below(1_000_000));
            assert_eq!(a.unit().to_bits(), b.unit().to_bits());
        }
    }

    #[test]
    fn timer_slot_round_trips_mid_generation() {
        let mut s = TimerSlot::new();
        let _ = s.arm();
        let t = s.arm();
        let mut back = round_trip(&s);
        assert_eq!(back.generation(), 2);
        assert!(back.is_armed());
        assert!(back.fire(round_trip(&t)));
    }

    #[test]
    fn value_types_round_trip() {
        assert_eq!(
            round_trip(&SimTime::from_nanos(123_456_789)),
            SimTime::from_nanos(123_456_789)
        );
        assert_eq!(
            round_trip(&Duration::from_nanos(42)),
            Duration::from_nanos(42)
        );
        assert_eq!(round_trip(&NodeId(7)), NodeId(7));
        let p = round_trip(&Point::new(1.25, -0.0));
        assert_eq!(p.x.to_bits(), 1.25f64.to_bits());
        assert_eq!(p.y.to_bits(), (-0.0f64).to_bits());
    }
}
