//! Non-CBR arrival processes end to end: Poisson and on/off sources must
//! be reachable from a scenario (and thus from spec files) and deliver
//! traffic through the full PHY/MAC/routing stack, not just in source
//! unit tests.

use pcmac::{FlowShape, ScenarioConfig, Simulator, Variant};

fn two_node_run(shape: FlowShape) -> pcmac::RunReport {
    let mut cfg = ScenarioConfig::two_nodes(Variant::Pcmac, 80.0, 100_000.0, 11);
    cfg.flows[0].shape = shape;
    cfg.name = format!("shape-{shape:?}");
    Simulator::new(cfg).run()
}

#[test]
fn poisson_flows_deliver_end_to_end() {
    let r = two_node_run(FlowShape::Poisson);
    assert!(r.sent_packets > 0, "poisson source emits");
    assert!(r.pdr() > 0.8, "two static nodes deliver, pdr {}", r.pdr());
    // Poisson arrivals are irregular: the emission count differs from
    // the deterministic CBR count at the same mean rate.
    let cbr = two_node_run(FlowShape::Cbr);
    assert_ne!(r.sent_packets, cbr.sent_packets, "jitter changes the count");
}

#[test]
fn onoff_flows_deliver_end_to_end() {
    let r = two_node_run(FlowShape::OnOff {
        mean_on_s: 1.0,
        mean_off_s: 1.0,
    });
    assert!(r.sent_packets > 0, "on/off source emits during on phases");
    assert!(r.pdr() > 0.8, "two static nodes deliver, pdr {}", r.pdr());
    let cbr = two_node_run(FlowShape::Cbr);
    assert!(
        r.sent_packets < cbr.sent_packets,
        "50% duty cycle sends less than CBR ({} vs {})",
        r.sent_packets,
        cbr.sent_packets
    );
}

#[test]
fn shapes_are_seed_deterministic() {
    for shape in [
        FlowShape::Poisson,
        FlowShape::OnOff {
            mean_on_s: 0.5,
            mean_off_s: 0.5,
        },
    ] {
        let a = two_node_run(shape);
        let b = two_node_run(shape);
        assert_eq!(a.sent_packets, b.sent_packets);
        assert_eq!(a.delivered_packets, b.delivered_packets);
        assert_eq!(a.events, b.events);
    }
}
