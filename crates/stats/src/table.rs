//! Aligned text tables for harness output.

/// A simple column-aligned table builder.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render with right-padded columns and a separator rule.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                line.push_str(cell);
                line.push_str(&" ".repeat(widths[i] - cell.len()));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["proto", "kbps"]);
        t.row(&["Basic 802.11".into(), "520.1".into()]);
        t.row(&["PCMAC".into(), "571.9".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "proto         kbps");
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines[2], "Basic 802.11  520.1");
        assert_eq!(lines[3], "PCMAC         571.9");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_wrong_arity() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only one".into()]);
    }
}
