//! Within-run checkpoint/resume through the campaign runner: a run
//! cancelled mid-flight leaves a checkpoint in the artifact's sidecar
//! directory, a resume pass restores from it instead of recomputing
//! from scratch, and the final artifact is byte-identical (modulo
//! wall-clock time) to an uninterrupted reference campaign.

use std::sync::atomic::{AtomicUsize, Ordering};

use pcmac::{FlowShape, RunHooks, RunOutcome, SimSnapshot, Simulator, Variant};
use pcmac_campaign::{
    run_campaign_with, CampaignReport, CampaignSpec, FailureKind, NodesSpec, PlacementSpec,
    RunOptions, ScenarioSpec, TrafficPattern, TrafficSpec,
};
use pcmac_engine::Duration as SimDuration;

/// One cell, one seed, with faults and mobility exercised so the
/// checkpoint has non-trivial state to carry.
fn campaign() -> CampaignSpec {
    CampaignSpec {
        name: "ckpt-resume".into(),
        base: ScenarioSpec {
            name: "ckpt-resume".into(),
            variant: Variant::Pcmac,
            duration_s: 3.0,
            field: (600.0, 600.0),
            nodes: NodesSpec {
                count: Some(8),
                placement: PlacementSpec::Ring { radius: 100.0 },
                mobility: None,
            },
            traffic: TrafficSpec {
                pattern: TrafficPattern::NeighbourPairs { flows: 4 },
                bytes: 512,
                offered_load_kbps: 200.0,
                shape: FlowShape::Cbr,
            },
            power_levels_mw: None,
            shadowing: None,
            protocol: None,
            radio: None,
            aodv: None,
            faults: None,
            metrics: None,
            trace: None,
            execution: None,
        },
        duration_s: None,
        seeds: vec![1],
        axes: None,
        sweep: None,
    }
}

fn scratch(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("pcmac-ckpt-{}-{}.json", tag, std::process::id()))
}

/// Load an artifact and strip its only volatile field.
fn normalized(path: &std::path::Path) -> String {
    let text = std::fs::read_to_string(path).expect("artifact readable");
    let mut report: CampaignReport = serde_json::from_str(&text).expect("artifact parses");
    report.wall_s = 0.0;
    serde_json::to_string(&report).expect("report serializes")
}

#[test]
fn interrupted_campaign_resumes_from_checkpoint_bit_identically() {
    let spec = campaign();

    // Uninterrupted reference.
    let ref_out = scratch("reference");
    let _ = std::fs::remove_file(&ref_out);
    run_campaign_with(
        &spec,
        RunOptions {
            threads: 0,
            out: Some(ref_out.clone()),
            ..RunOptions::default()
        },
        |cfg, ctl| ctl.run(cfg),
    )
    .expect("reference campaign runs");

    // Interrupted pass: checkpoint every 300 ms of simulated time,
    // cancel deterministically at the 4th checkpoint (t = 1.2 s of a
    // 3 s run), persisting the freshest snapshot exactly the way
    // `JobCtl::run` does.
    let out = scratch("resume");
    let _ = std::fs::remove_file(&out);
    let ckpt_dir = out.with_extension("ckpt");
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let opts = RunOptions {
        threads: 0,
        checkpoint_every: Some(SimDuration::from_millis(300)),
        out: Some(out.clone()),
        ..RunOptions::default()
    };
    let outcome = run_campaign_with(&spec, opts, |cfg, ctl| {
        let path = ctl
            .checkpoint_file
            .clone()
            .expect("checkpoint sidecar is configured");
        let cancel = ctl.cancel.clone();
        let seen = AtomicUsize::new(0);
        let sink = move |snap: SimSnapshot| {
            std::fs::write(&path, snap.to_bytes()).expect("checkpoint write");
            if seen.fetch_add(1, Ordering::SeqCst) + 1 == 4 {
                cancel.cancel();
            }
        };
        let outcome = Simulator::new(cfg).run_with_hooks(RunHooks {
            cancel: Some(&ctl.cancel),
            checkpoint_every: ctl.checkpoint_every,
            checkpoint_sink: Some(&sink),
        });
        if let RunOutcome::Cancelled(Some(snap)) = &outcome {
            let path = ctl.checkpoint_file.as_ref().unwrap();
            std::fs::write(path, snap.to_bytes()).expect("final checkpoint write");
        }
        outcome
    })
    .expect("interrupted pass survives");

    // The interruption is a structured clean stop, the artifact is
    // partial, and the checkpoint survives in the sidecar directory
    // under the runner's naming convention.
    assert_eq!(outcome.report.complete, Some(false));
    let failures = outcome.report.failures.expect("cancelled point recorded");
    assert_eq!(failures[0].kind, FailureKind::TimedOut);
    assert!(failures[0].error.contains("stopped cleanly"));
    let ckpt_file = ckpt_dir.join("cell000_seed1.snap");
    assert!(ckpt_file.exists(), "checkpoint retained for resume");

    // Resume pass: the standard `JobCtl::run` path must pick the
    // checkpoint up, finish the run from t = 1.2 s, and produce a
    // summary bit-identical to the uninterrupted reference.
    let opts = RunOptions {
        threads: 0,
        checkpoint_every: Some(SimDuration::from_millis(300)),
        out: Some(out.clone()),
        resume: true,
        ..RunOptions::default()
    };
    let ckpt_probe = ckpt_file.clone();
    let resumed = run_campaign_with(&spec, opts, move |cfg, ctl| {
        assert!(
            ckpt_probe.exists(),
            "the resume pass starts from the retained checkpoint"
        );
        ctl.run(cfg)
    })
    .expect("resume pass runs");
    assert_eq!(resumed.report.complete, Some(true));

    // The consumed checkpoint and its sidecar directory are gone.
    assert!(!ckpt_file.exists(), "finished run deletes its checkpoint");
    assert!(!ckpt_dir.exists(), "empty sidecar directory removed");

    // Final artifact == uninterrupted artifact, modulo wall time.
    assert_eq!(normalized(&out), normalized(&ref_out));

    let _ = std::fs::remove_file(&out);
    let _ = std::fs::remove_file(&ref_out);
}
