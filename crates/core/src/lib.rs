//! # pcmac — the PCMAC reproduction, assembled
//!
//! This is the crate downstream users drive. It composes the substrate
//! crates — DES kernel, PHY, 802.11 MAC (four power-control variants),
//! AODV, mobility, traffic — into runnable ad hoc network simulations,
//! and reproduces the evaluation of
//!
//! > Lin, Kwok, Lau. *Power Control for IEEE 802.11 Ad Hoc Networks:
//! > Issues and A New Algorithm.* ICPP 2003.
//!
//! ## Quickstart
//!
//! ```
//! use pcmac::{ScenarioConfig, Simulator, Variant};
//! use pcmac_engine::Duration;
//!
//! // Two static nodes 80 m apart, one 100 kbps CBR flow, 5 seconds.
//! let cfg = ScenarioConfig::two_nodes(Variant::Pcmac, 80.0, 100_000.0, 42)
//!     .with_duration(Duration::from_secs(5));
//! let report = Simulator::new(cfg).run();
//! assert!(report.delivered_packets > 0);
//! assert!(report.pdr() > 0.9);
//! ```
//!
//! ## The paper's scenario
//!
//! [`ScenarioConfig::paper`] builds the §IV setup: 50 nodes, random
//! waypoint over 1000 m × 1000 m at 3 m/s (3 s pause), ten 512-byte CBR
//! flows, AODV routing, one of the four MAC variants. The `pcmac-bench`
//! crate sweeps it over offered load to regenerate Figures 8 and 9.
//!
//! ## Architecture
//!
//! ```text
//!   ScenarioConfig ──► Simulator ──► RunReport
//!                        │  owns
//!        ┌───────────────┼────────────────────┐
//!        ▼               ▼                    ▼
//!    EventQueue      Vec<Node>           TwoRayGround
//!   (pcmac-engine)   ├ Radio (data)      (pcmac-phy)
//!                    ├ Radio (ctrl)
//!                    ├ DcfMac   (pcmac-mac)
//!                    ├ AodvAgent (pcmac-aodv)
//!                    ├ Mobility  (pcmac-mobility)
//!                    ├ sources/Sink (pcmac-traffic)
//!                    └ EnergyMeter (pcmac-phy)
//! ```
//!
//! Every component is a pure state machine; the [`Simulator`] routes
//! events to the owning node and applies the returned actions, which is
//! where cross-node effects (the wireless channel) happen.

pub mod config;
pub mod event;
pub mod fault;
pub mod metrics;
pub mod node;
pub mod parallel;
pub mod report;
pub mod runner;
pub mod sim;
pub mod snapshot;
pub(crate) mod soa;
pub mod trace;

pub use config::{
    flow_start, random_flow_pairs, ChannelIndexMode, ExecutionMode, FlowShape, FlowSpec,
    GainCacheMode, InvalidScenario, MobilityRefreshMode, NodeSetup, ScenarioConfig,
    ShadowingConfig,
};
pub use event::SimEvent;
pub use fault::{ChurnConfig, CrashWindow, FaultConfig, ImpairmentBurst};
pub use metrics::{
    DropTaxonomy, HotPathProfile, MacMetrics, MetricsConfig, PhyMetrics, ProbeSample,
    RoutingMetrics, SimMetrics, TxPowerMetrics,
};
pub use report::{LatencySummary, ResilienceReport, RunReport};
pub use runner::{run_parallel, run_parallel_iter};
pub use sim::Simulator;
pub use snapshot::{CancelToken, RunHooks, RunOutcome, SimSnapshot};
pub use trace::{TraceFilter, TraceWriter};

// Checkpoint files surface the snap crate's structured errors.
pub use pcmac_snap::SnapError;

// The protocol selector is the most-used re-export.
pub use pcmac_mac::Variant;
