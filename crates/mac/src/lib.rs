//! # pcmac-mac — IEEE 802.11 DCF with power control, and PCMAC
//!
//! The medium access layer of the reproduction. One DCF engine
//! ([`DcfMac`]) implements all four protocols compared in the paper's
//! evaluation:
//!
//! | Variant | RTS/CTS | DATA/ACK | Extras |
//! |---|---|---|---|
//! | [`Variant::Basic`]   | max power | max power | — |
//! | [`Variant::Scheme1`] | max power | needed power | power history table |
//! | [`Variant::Scheme2`] | needed | needed | power history table |
//! | [`Variant::Pcmac`]   | needed | needed, **no ACK** | control channel, 3-way handshake, tolerance checks |
//!
//! Modules:
//!
//! * [`timing`] — DSSS slot/SIFS/DIFS/EIFS and frame airtimes.
//! * [`frame`] — RTS/CTS/DATA/ACK frames and the PCMAC control-channel
//!   frame (48 bits).
//! * [`nav`] — virtual carrier sense.
//! * [`backoff`] — binary exponential backoff with freeze/resume.
//! * [`power`] — the needed-power history table and per-variant policies.
//! * [`pcmac`] — noise tolerances, protected-receiver registry, and the
//!   sent/received tables of the three-way handshake.
//! * [`dcf`] — the full state machine.
//! * [`config`], [`counters`] — knobs and statistics.

pub mod backoff;
pub mod config;
pub mod counters;
pub mod dcf;
pub mod frame;
pub mod nav;
pub mod pcmac;
pub mod power;
pub mod timing;

pub use config::{MacConfig, PcmacParams, Variant};
pub use counters::MacCounters;
pub use dcf::{DcfMac, MacAction, MacTimerKind};
pub use frame::{CtrlFrame, Frame, FrameBody, FrameKind};
pub use power::{PowerHistory, PowerPolicy};
pub use timing::Dot11Timing;
