//! Regenerate the paper's §IV **power-level table**: the ten transmit
//! power classes and their decode ranges under two-ray ground.
//!
//! ```text
//! cargo run -p pcmac-bench --release --bin table_power_levels
//! ```

use pcmac_engine::Milliwatts;
use pcmac_phy::{PowerLevels, Propagation, TwoRayGround};
use pcmac_stats::Table;

fn main() {
    let model = TwoRayGround::ns2_default();
    let levels = PowerLevels::paper_defaults();
    let rx_thresh = Milliwatts(3.652e-7);
    let cs_thresh = Milliwatts(1.559e-8);
    let paper = [
        40.0, 60.0, 80.0, 90.0, 100.0, 110.0, 120.0, 150.0, 180.0, 250.0,
    ];

    println!("Power level table (paper §IV) — two-ray ground, 914 MHz, 1.5 m antennas");
    println!("crossover distance: {:.2} m\n", model.crossover());

    let mut table = Table::new(&[
        "class", "power mW", "decode m", "paper m", "delta m", "sense m",
    ]);
    let mut worst: f64 = 0.0;
    for (i, (&p, &want)) in levels.all().iter().zip(paper.iter()).enumerate() {
        let decode = model.range_for(p, rx_thresh);
        let sense = model.range_for(p, cs_thresh);
        worst = worst.max((decode - want).abs());
        table.row(&[
            format!("{}", i + 1),
            format!("{:.2}", p.value()),
            format!("{decode:.1}"),
            format!("{want:.0}"),
            format!("{:+.1}", decode - want),
            format!("{sense:.1}"),
        ]);
    }
    println!("{}", table.render());
    println!("worst deviation from the paper's quoted ranges: {worst:.1} m");
    if worst <= 4.0 {
        println!("table reproduction: PASS (the paper itself says ranges 'roughly correspond')");
    } else {
        println!("table reproduction: FAIL");
        std::process::exit(1);
    }
}
