//! Log-normal shadowing over a base path-loss model.
//!
//! The paper (assumption 2) requires reciprocal gains: `G_sd = G_ds`.
//! Real channels add log-normal shadowing, and if the shadowing field is
//! not perfectly symmetric the gain PCMAC *estimates* from a received
//! frame differs from the gain its own transmission will see — its power
//! choices and tolerance checks become noisy. This module supplies both
//! flavours so the robustness of the protocol to its own assumption can
//! be measured (the `reciprocity` ablation):
//!
//! * symmetric: one shadowing value per unordered position pair —
//!   assumption 2 holds exactly;
//! * asymmetric: independent values per *ordered* pair — assumption 2 is
//!   violated with controllable σ.
//!
//! Shadowing is deterministic: the value for a pair is derived by hashing
//! the quantized endpoint cells with the scenario seed, so runs remain
//! reproducible and positions close to each other see coherent shadowing
//! (a crude spatial correlation, cell-sized).

use pcmac_engine::{Milliwatts, Point};

use crate::propagation::Propagation;

/// Log-normal shadowing wrapper.
#[derive(Debug, Clone)]
pub struct Shadowed<P> {
    base: P,
    /// Standard deviation of the shadowing term (dB). 0 disables.
    sigma_db: f64,
    /// Spatial quantisation cell (m); endpoints within the same cell see
    /// the same shadowing.
    cell_m: f64,
    /// Scenario seed folded into the hash.
    seed: u64,
    /// `true` → one value per unordered pair (reciprocal channel).
    symmetric: bool,
}

impl<P: Propagation> Shadowed<P> {
    /// Wrap `base` with log-normal shadowing of `sigma_db`.
    pub fn new(base: P, sigma_db: f64, symmetric: bool, seed: u64) -> Self {
        assert!(sigma_db >= 0.0);
        Shadowed {
            base,
            sigma_db,
            cell_m: 10.0,
            seed,
            symmetric,
        }
    }

    /// The underlying model.
    pub fn base(&self) -> &P {
        &self.base
    }

    /// Standard deviation of the shadowing term (dB).
    pub fn sigma_db(&self) -> f64 {
        self.sigma_db
    }

    fn cell(&self, p: Point) -> (i64, i64) {
        (
            (p.x / self.cell_m).floor() as i64,
            (p.y / self.cell_m).floor() as i64,
        )
    }

    /// Deterministic standard-normal draw for an (ordered) cell pair.
    fn normal_for(&self, a: (i64, i64), b: (i64, i64)) -> f64 {
        let mut h = self.seed ^ 0x9E37_79B9_7F4A_7C15;
        for v in [a.0, a.1, b.0, b.1] {
            h ^= v as u64;
            h = h.wrapping_mul(0x100_0000_01B3);
            h ^= h >> 29;
        }
        // Irwin–Hall(12) − 6 approximates N(0,1) and needs only cheap
        // integer hashing.
        let mut sum = 0.0;
        let mut state = h;
        for _ in 0..12 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            sum += (state >> 11) as f64 / (1u64 << 53) as f64;
        }
        sum - 6.0
    }

    /// The shadowing multiplier for a directed link.
    fn shadow_gain(&self, from: Point, to: Point) -> f64 {
        if self.sigma_db == 0.0 {
            return 1.0;
        }
        let (ca, cb) = (self.cell(from), self.cell(to));
        let (x, y) = if self.symmetric && (cb < ca) {
            (cb, ca)
        } else {
            (ca, cb)
        };
        let db = self.normal_for(x, y) * self.sigma_db;
        10f64.powf(db / 10.0)
    }
}

impl<P: Propagation> Propagation for Shadowed<P> {
    fn gain(&self, a: Point, b: Point) -> f64 {
        // Shadowing never amplifies above unity overall gain.
        (self.base.gain(a, b) * self.shadow_gain(a, b)).min(1.0)
    }

    /// Range queries use the *median* channel (shadowing has median 1),
    /// i.e. the base model.
    fn range_for(&self, p_tx: Milliwatts, threshold: Milliwatts) -> f64 {
        self.base.range_for(p_tx, threshold)
    }

    fn power_for_range(&self, d: f64, threshold: Milliwatts) -> Milliwatts {
        self.base.power_for_range(d, threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagation::TwoRayGround;

    fn model(sigma: f64, symmetric: bool) -> Shadowed<TwoRayGround> {
        Shadowed::new(TwoRayGround::ns2_default(), sigma, symmetric, 7)
    }

    #[test]
    fn zero_sigma_is_transparent() {
        let m = model(0.0, true);
        let a = Point::new(10.0, 10.0);
        let b = Point::new(200.0, 300.0);
        assert_eq!(m.gain(a, b), m.base().gain(a, b));
    }

    #[test]
    fn symmetric_mode_is_reciprocal() {
        let m = model(8.0, true);
        for i in 0..50 {
            let a = Point::new(13.0 * i as f64, 40.0);
            let b = Point::new(500.0, 7.0 * i as f64);
            assert_eq!(m.gain(a, b), m.gain(b, a), "pair {i}");
        }
    }

    #[test]
    fn asymmetric_mode_breaks_reciprocity() {
        let m = model(8.0, false);
        let broken = (0..50)
            .filter(|i| {
                let a = Point::new(13.0 * *i as f64, 40.0);
                let b = Point::new(500.0, 7.0 * *i as f64);
                m.gain(a, b) != m.gain(b, a)
            })
            .count();
        assert!(broken > 30, "only {broken}/50 pairs asymmetric");
    }

    #[test]
    fn shadowing_is_deterministic() {
        let m1 = model(6.0, true);
        let m2 = model(6.0, true);
        let a = Point::new(100.0, 100.0);
        let b = Point::new(300.0, 250.0);
        assert_eq!(m1.gain(a, b), m2.gain(a, b));
    }

    #[test]
    fn different_seeds_shadow_differently() {
        let m1 = Shadowed::new(TwoRayGround::ns2_default(), 6.0, true, 1);
        let m2 = Shadowed::new(TwoRayGround::ns2_default(), 6.0, true, 2);
        let a = Point::new(100.0, 100.0);
        let b = Point::new(300.0, 250.0);
        assert_ne!(m1.gain(a, b), m2.gain(a, b));
    }

    #[test]
    fn gain_stays_physical() {
        let m = model(12.0, true);
        for i in 0..200 {
            let a = Point::new(5.0 * i as f64, 3.0 * i as f64);
            let b = Point::new(999.0 - i as f64, 500.0);
            let g = m.gain(a, b);
            assert!((0.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn shadowing_spread_grows_with_sigma() {
        // Empirical check: the dispersion of gain ratios vs the base
        // model grows with sigma.
        let spread = |sigma: f64| {
            let m = model(sigma, true);
            let mut ratios = Vec::new();
            for i in 0..300 {
                let a = Point::new((i * 17 % 997) as f64, (i * 29 % 991) as f64);
                let b = Point::new((i * 41 % 983) as f64, (i * 53 % 977) as f64);
                let base = m.base().gain(a, b);
                if base > 0.0 && base < 1.0 {
                    ratios.push((m.gain(a, b) / base).ln().abs());
                }
            }
            ratios.iter().sum::<f64>() / ratios.len() as f64
        };
        let narrow = spread(2.0);
        let wide = spread(10.0);
        assert!(
            wide > 2.0 * narrow,
            "sigma 10 spread {wide:.3} vs sigma 2 spread {narrow:.3}"
        );
    }

    #[test]
    fn same_cell_pairs_share_shadowing() {
        let m = model(8.0, true);
        // Points within the same 10 m cells → identical shadowing.
        let a1 = Point::new(101.0, 101.0);
        let a2 = Point::new(104.0, 108.0);
        let b = Point::new(507.0, 333.0);
        let r1 = m.gain(a1, b) / m.base().gain(a1, b);
        let r2 = m.gain(a2, b) / m.base().gain(a2, b);
        assert!((r1 - r2).abs() < 1e-12);
    }

    #[test]
    fn range_queries_use_median_channel() {
        let m = model(8.0, true);
        let p = Milliwatts(281.83815);
        let th = Milliwatts(3.652e-7);
        assert_eq!(m.range_for(p, th), m.base().range_for(p, th));
    }
}
