//! Declarative scenario specifications.
//!
//! A [`ScenarioSpec`] is the JSON-loadable description of *one kind of
//! experiment*: how nodes are placed (via the `pcmac-mobility` generator
//! library), whether they move, what traffic they carry and with which
//! arrival process, and which MAC variant runs. It stays abstract —
//! "50 nodes clustered in 3 hotspots, ten random Poisson pairs at
//! 600 kbps" — until [`ScenarioSpec::materialize`] turns it into a
//! concrete, seeded [`ScenarioConfig`] the simulator can run.
//!
//! Materialization is deterministic in the seed, and the `Uniform` +
//! `RandomPairs` path reproduces [`ScenarioConfig::paper`] bit for bit,
//! so spec-driven sweeps extend the constructor-built figures instead of
//! forking them.
//!
//! The *entire* [`ScenarioConfig`] surface is declarative: the optional
//! [`ProtocolSpec`] / [`RadioSpec`] / [`AodvSpec`] sections overlay the
//! MAC (including the PCMAC §III knobs: safety factor, capture ratio,
//! control-channel rate, handshake arity), radio (thresholds, capture
//! policy), and AODV parameters on top of the paper defaults. Campaign
//! sweep axes reach every one of those knobs through
//! [`ScenarioSpec::apply_patch`] and its dotted [`PATCH_PATHS`].

use pcmac::{
    ChurnConfig, ExecutionMode, FaultConfig, FlowShape, FlowSpec, MetricsConfig, NodeSetup,
    ScenarioConfig, ShadowingConfig, TraceFilter, Variant,
};
use pcmac_aodv::AodvConfig;
use pcmac_engine::{Duration, FlowId, Milliwatts, NodeId, Point, RngStream, SimTime};
use pcmac_mac::MacConfig;
use pcmac_mobility::placement;
use pcmac_phy::{CapturePolicy, PowerLevels, RadioConfig};
use serde::{Deserialize, Serialize, Value};

/// Everything wrong with a spec, found in one pass.
#[derive(Debug, Clone)]
pub struct SpecError {
    /// Human-readable problems, one per defect.
    pub problems: Vec<String>,
}

impl SpecError {
    pub(crate) fn one(msg: impl Into<String>) -> Self {
        SpecError {
            problems: vec![msg.into()],
        }
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid spec: {}", self.problems.join("; "))
    }
}

impl std::error::Error for SpecError {}

impl From<pcmac::InvalidScenario> for SpecError {
    fn from(e: pcmac::InvalidScenario) -> Self {
        SpecError {
            problems: e.problems,
        }
    }
}

/// How nodes are laid out, in terms of the `pcmac-mobility` generator
/// library. Stochastic placements draw from an RNG stream derived from
/// the scenario seed, so the same seed always yields the same layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlacementSpec {
    /// Uniform scatter over the whole field (the paper's layout).
    Uniform,
    /// Uniform scatter at a target density; the node count is computed
    /// from the field area (`count` is ignored).
    Density {
        /// Nodes per square kilometre.
        per_km2: f64,
    },
    /// Square grid centred pitch-by-pitch from the origin.
    Grid {
        /// Pitch between neighbours (m).
        spacing: f64,
    },
    /// Horizontal chain from the field's left edge midline.
    Chain {
        /// Distance between consecutive nodes (m).
        spacing: f64,
    },
    /// Evenly spaced on a circle around the field centre.
    Ring {
        /// Circle radius (m).
        radius: f64,
    },
    /// Hotspots: cluster centres uniform, members uniform in a disc
    /// around their centre.
    Clustered {
        /// Number of hotspots.
        clusters: usize,
        /// Disc radius around each centre (m).
        spread_m: f64,
    },
    /// Uniform over a thin horizontal strip across the field's vertical
    /// centre.
    Corridor {
        /// Strip height (m); the strip spans the full field width.
        width_m: f64,
    },
    /// Exact positions, as given.
    Explicit {
        /// One point per node.
        points: Vec<Point>,
    },
}

/// Random-waypoint movement parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MobilitySpec {
    /// Constant speed (m/s).
    pub speed_mps: f64,
    /// Pause at each waypoint (s).
    pub pause_s: f64,
}

/// Node population: how many, where, and whether they move.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodesSpec {
    /// Node count. `None` is allowed only where the placement implies it
    /// (`Density`, `Explicit`).
    pub count: Option<usize>,
    /// Layout generator.
    pub placement: PlacementSpec,
    /// Random-waypoint mobility; `None` means static.
    pub mobility: Option<MobilitySpec>,
}

/// Which node pairs carry flows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// Seeded distinct random pairs — the paper's workload shape.
    RandomPairs {
        /// Number of flows.
        flows: usize,
    },
    /// Adjacent pairs by id: 0→1, 2→3, … (deterministic geometries where
    /// ids encode positions, e.g. chains and rings).
    NeighbourPairs {
        /// Number of flows (needs `2·flows ≤ count`).
        flows: usize,
    },
    /// Exact `(src, dst)` node pairs.
    Explicit {
        /// One pair per flow.
        pairs: Vec<(u32, u32)>,
    },
}

/// Application traffic: pattern, packet size, aggregate load, arrival
/// process. The aggregate load splits evenly across flows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficSpec {
    /// Which pairs talk.
    pub pattern: TrafficPattern,
    /// UDP payload bytes per packet.
    pub bytes: u32,
    /// Aggregate offered load (kbit/s) across all flows.
    pub offered_load_kbps: f64,
    /// Arrival process (CBR, Poisson, or bursty on/off — all three
    /// sources from `pcmac-traffic` are reachable here).
    pub shape: FlowShape,
}

/// Overlay on the MAC configuration, covering the PCMAC §III knobs the
/// paper's arguments are made of. Every field is optional; `None` keeps
/// [`MacConfig::paper_default`], so existing spec files stay valid.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProtocolSpec {
    /// Redundancy coefficient on the advertised noise tolerance
    /// (paper: 0.7).
    pub safety_factor: Option<f64>,
    /// Capture threshold η_cp used in the tolerance computation
    /// (paper: 10).
    pub capture_ratio: Option<f64>,
    /// Power-control channel bandwidth in bit/s (paper: 500 000).
    pub ctrl_rate_bps: Option<u64>,
    /// Power-history entry lifetime in seconds (paper: 3).
    pub history_expiry_s: Option<f64>,
    /// Cap on implicit-ack retransmissions of one stored packet.
    pub max_retx: Option<u8>,
    /// Keep the ACK (four-way handshake) even under PCMAC — the
    /// handshake-arity ablation. The paper's protocol uses `false`.
    pub four_way_handshake: Option<bool>,
    /// Interface queue capacity (ns-2: 50).
    pub queue_capacity: Option<usize>,
    /// dot11RTSThreshold in bytes (paper/ns-2: 0 — RTS for everything).
    pub rts_threshold: Option<u32>,
}

impl ProtocolSpec {
    pub(crate) fn apply(&self, mac: &mut MacConfig) {
        if let Some(v) = self.safety_factor {
            mac.pcmac.safety_factor = v;
        }
        if let Some(v) = self.capture_ratio {
            mac.pcmac.capture_ratio = v;
        }
        if let Some(v) = self.ctrl_rate_bps {
            mac.pcmac.ctrl_rate_bps = v;
        }
        if let Some(v) = self.history_expiry_s {
            mac.pcmac.history_expiry = Duration::from_secs_f64(v);
        }
        if let Some(v) = self.max_retx {
            mac.pcmac.max_retx = v;
        }
        if let Some(v) = self.four_way_handshake {
            mac.pcmac.four_way_handshake = v;
        }
        if let Some(v) = self.queue_capacity {
            mac.queue_capacity = v;
        }
        if let Some(v) = self.rts_threshold {
            mac.rts_threshold = v;
        }
    }

    fn validate(&self, problems: &mut Vec<String>) {
        if let Some(v) = self.safety_factor {
            if !v.is_finite() || v <= 0.0 {
                problems.push(format!(
                    "PCMAC safety factor {v} must be positive and finite"
                ));
            }
        }
        if let Some(v) = self.capture_ratio {
            if v.is_nan() || v < 1.0 {
                problems.push(format!("PCMAC capture ratio {v} must be at least 1"));
            }
        }
        if self.ctrl_rate_bps == Some(0) {
            problems.push("control channel rate is zero".into());
        }
        if let Some(v) = self.history_expiry_s {
            if !v.is_finite() || v <= 0.0 {
                problems.push(format!(
                    "power history expiry {v} s must be positive and finite"
                ));
            }
        }
        if self.queue_capacity == Some(0) {
            problems.push("interface queue capacity is zero".into());
        }
    }
}

/// Overlay on the radio configuration (thresholds and capture model).
/// `None` keeps the ns-2 defaults with the paper's pairwise start-only
/// capture policy.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RadioSpec {
    /// Decode threshold in mW (ns-2 `RXThresh`, 3.652e-7). Applied to
    /// both the radio and the MAC's needed-power computation, which must
    /// agree for power control to close the loop.
    pub rx_thresh_mw: Option<f64>,
    /// Carrier-sense threshold in mW (ns-2 `CSThresh`, 1.559e-8).
    pub cs_thresh_mw: Option<f64>,
    /// Linear SINR required to keep a locked frame (ns-2 `CPThresh`, 10).
    pub capture_ratio: Option<f64>,
    /// Receiver noise floor in mW (1e-9).
    pub noise_floor_mw: Option<f64>,
    /// Pairwise start-only (ns-2, the paper's model) vs cumulative-SINR
    /// capture — the capture-policy ablation.
    pub capture_policy: Option<CapturePolicy>,
}

impl RadioSpec {
    pub(crate) fn apply(&self, radio: &mut RadioConfig, mac: &mut MacConfig) {
        if let Some(v) = self.rx_thresh_mw {
            radio.rx_thresh = Milliwatts(v);
            mac.rx_thresh = Milliwatts(v);
        }
        if let Some(v) = self.cs_thresh_mw {
            radio.cs_thresh = Milliwatts(v);
        }
        if let Some(v) = self.capture_ratio {
            radio.capture_ratio = v;
        }
        if let Some(v) = self.noise_floor_mw {
            radio.noise_floor = Milliwatts(v);
        }
        if let Some(v) = self.capture_policy {
            radio.capture_policy = v;
        }
    }

    fn validate(&self, problems: &mut Vec<String>) {
        for (which, v) in [
            ("decode threshold", self.rx_thresh_mw),
            ("carrier-sense threshold", self.cs_thresh_mw),
            ("noise floor", self.noise_floor_mw),
        ] {
            if let Some(v) = v {
                if !v.is_finite() || v <= 0.0 {
                    problems.push(format!("{which} {v} mW must be positive and finite"));
                }
            }
        }
        if let Some(v) = self.capture_ratio {
            if v.is_nan() || v < 1.0 {
                problems.push(format!("radio capture ratio {v} must be at least 1"));
            }
        }
        // Effective values after the overlay: the decode threshold must
        // stay above the noise floor or nothing could ever be received.
        let defaults = RadioConfig::ns2_default();
        let rx = self.rx_thresh_mw.unwrap_or(defaults.rx_thresh.value());
        let noise = self.noise_floor_mw.unwrap_or(defaults.noise_floor.value());
        if rx.is_finite() && noise.is_finite() && rx > 0.0 && noise > 0.0 && rx <= noise {
            problems.push(format!(
                "decode threshold {rx} mW must exceed the noise floor {noise} mW"
            ));
        }
    }
}

/// Overlay on the AODV routing parameters. `None` keeps the CMU ns-2
/// era defaults ([`AodvConfig::default`]).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AodvSpec {
    /// Lifetime of an actively-used route in seconds (10).
    pub active_route_timeout_s: Option<f64>,
    /// Duplicate-flood suppression window in seconds (6).
    pub rreq_cache_timeout_s: Option<f64>,
    /// Wait for an RREP before retrying a discovery, in seconds (1).
    pub rreq_wait_s: Option<f64>,
    /// Discovery attempts before giving up (3).
    pub rreq_retries: Option<u8>,
    /// Send-buffer capacity in packets (64).
    pub buffer_capacity: Option<usize>,
    /// Maximum send-buffer wait in seconds (30).
    pub buffer_timeout_s: Option<f64>,
    /// TTL for flooded RREQs (32).
    pub rreq_ttl: Option<u8>,
}

impl AodvSpec {
    pub(crate) fn apply(&self, aodv: &mut AodvConfig) {
        if let Some(v) = self.active_route_timeout_s {
            aodv.active_route_timeout = Duration::from_secs_f64(v);
        }
        if let Some(v) = self.rreq_cache_timeout_s {
            aodv.rreq_cache_timeout = Duration::from_secs_f64(v);
        }
        if let Some(v) = self.rreq_wait_s {
            aodv.rreq_wait = Duration::from_secs_f64(v);
        }
        if let Some(v) = self.rreq_retries {
            aodv.rreq_retries = v;
        }
        if let Some(v) = self.buffer_capacity {
            aodv.buffer_capacity = v;
        }
        if let Some(v) = self.buffer_timeout_s {
            aodv.buffer_timeout = Duration::from_secs_f64(v);
        }
        if let Some(v) = self.rreq_ttl {
            aodv.rreq_ttl = v;
        }
    }

    fn validate(&self, problems: &mut Vec<String>) {
        for (which, v) in [
            ("active route timeout", self.active_route_timeout_s),
            ("RREQ cache timeout", self.rreq_cache_timeout_s),
            ("RREQ wait", self.rreq_wait_s),
            ("buffer timeout", self.buffer_timeout_s),
        ] {
            if let Some(v) = v {
                if !v.is_finite() || v <= 0.0 {
                    problems.push(format!("AODV {which} {v} s must be positive and finite"));
                }
            }
        }
        if self.rreq_retries == Some(0) {
            problems.push("AODV needs at least one RREQ attempt".into());
        }
        if self.buffer_capacity == Some(0) {
            problems.push("AODV send-buffer capacity is zero".into());
        }
        if self.rreq_ttl == Some(0) {
            problems.push("AODV RREQ TTL is zero: floods would die at the source".into());
        }
    }
}

/// Execution-strategy overlay: how the event loop runs, not what it
/// simulates. `shards: None` keeps the single-threaded reference;
/// `Some(n)` runs the region-sharded engine on `n` worker threads
/// (bit-identical results either way). The delay floor applies in both
/// modes — it is the sharded engine's conservative lookahead, and
/// setting it on single-threaded runs keeps them comparable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecutionSpec {
    /// Region-shard (worker thread) count; `None` = single-threaded.
    pub shards: Option<usize>,
    /// Minimum propagation delay in microseconds, applied to every
    /// arrival. Required whenever `shards` is set.
    pub delay_floor_us: Option<f64>,
}

impl ExecutionSpec {
    fn validate(&self, problems: &mut Vec<String>) {
        if self.shards == Some(0) {
            problems.push("sharded execution with zero shards: nothing would run".into());
        }
        if let Some(us) = self.delay_floor_us {
            if !us.is_finite() || us <= 0.0 {
                problems.push(format!("delay floor {us} µs must be positive and finite"));
            }
        }
        if self.shards.is_some() && self.delay_floor_us.is_none() {
            problems.push(
                "sharded execution requires delay_floor_us: the floor is the \
                 lookahead that makes region-parallel runs bit-identical"
                    .into(),
            );
        }
    }
}

/// Every dotted path [`ScenarioSpec::apply_patch`] accepts — the
/// sweepable parameter surface of a scenario. Paths mirror the
/// materialized [`ScenarioConfig`] layout (`mac.pcmac.*`, `radio.*`,
/// `aodv.*`) plus the spec's own top-level knobs.
pub const PATCH_PATHS: &[&str] = &[
    "duration_s",
    "variant",
    "field.width",
    "field.height",
    "nodes.count",
    "nodes.placement",
    "nodes.mobility.speed_mps",
    "nodes.mobility.pause_s",
    "traffic.pattern",
    "traffic.offered_load_kbps",
    "traffic.bytes",
    "power_levels_mw",
    "shadowing.sigma_db",
    "shadowing.symmetric",
    "faults.crashes",
    "faults.churn.mean_uptime_s",
    "faults.churn.mean_downtime_s",
    "faults.churn.start_s",
    "faults.churn.stop_s",
    "faults.expire_routes",
    "faults.impairments",
    "faults.energy_budget_mj",
    "mac.pcmac.safety_factor",
    "mac.pcmac.capture_ratio",
    "mac.pcmac.ctrl_rate_bps",
    "mac.pcmac.history_expiry_s",
    "mac.pcmac.max_retx",
    "mac.pcmac.four_way_handshake",
    "mac.queue_capacity",
    "mac.rts_threshold",
    "radio.rx_thresh_mw",
    "radio.cs_thresh_mw",
    "radio.capture_ratio",
    "radio.noise_floor_mw",
    "radio.capture_policy",
    "aodv.active_route_timeout_s",
    "aodv.rreq_cache_timeout_s",
    "aodv.rreq_wait_s",
    "aodv.rreq_retries",
    "aodv.buffer_capacity",
    "aodv.buffer_timeout_s",
    "aodv.rreq_ttl",
    "metrics.probe_interval_s",
    "execution.shards",
    "execution.delay_floor_us",
    "trace.channel",
    "trace.ctrl",
    "trace.timers",
    "trace.traffic",
];

/// Deserialize one patch value as the target type, naming the path on
/// mismatch.
fn patch_value<T: Deserialize>(path: &str, v: &Value) -> Result<T, SpecError> {
    T::from_value(v).map_err(|e| SpecError::one(format!("patch `{path}`: {e}")))
}

/// A declarative scenario: data, not code. Load from JSON, validate,
/// then [`materialize`](ScenarioSpec::materialize) with a seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Human-readable label; materialized scenario names derive from it.
    pub name: String,
    /// MAC protocol under test.
    pub variant: Variant,
    /// Simulated seconds.
    pub duration_s: f64,
    /// Field dimensions (m).
    pub field: (f64, f64),
    /// Node population.
    pub nodes: NodesSpec,
    /// Application traffic.
    pub traffic: TrafficSpec,
    /// Override the paper's ten discrete transmit power classes (mW,
    /// strictly increasing). `None` keeps the defaults.
    pub power_levels_mw: Option<Vec<f64>>,
    /// Optional log-normal shadowing (robustness ablations).
    pub shadowing: Option<ShadowingConfig>,
    /// MAC / PCMAC parameter overlay. `None` (or an omitted JSON field)
    /// keeps [`MacConfig::paper_default`].
    pub protocol: Option<ProtocolSpec>,
    /// Radio threshold / capture-model overlay. `None` keeps the ns-2
    /// defaults with the paper's start-only capture.
    pub radio: Option<RadioSpec>,
    /// AODV parameter overlay. `None` keeps [`AodvConfig::default`].
    pub aodv: Option<AodvSpec>,
    /// Deterministic fault plan — scheduled crashes, seeded churn,
    /// channel impairment bursts, energy budgets. `None` (or an omitted
    /// JSON field) runs the network healthy.
    pub faults: Option<FaultConfig>,
    /// Observability metrics layer. `None` (or an omitted JSON field)
    /// keeps the hot path untouched; `Some` collects the per-layer
    /// counters, drop taxonomy, and time-series probes into the report's
    /// `metrics` section without changing protocol behaviour.
    pub metrics: Option<MetricsConfig>,
    /// ns-2-style event-trace request. `None` runs untraced; `Some`
    /// asks the scenario runner to attach a [`pcmac::TraceWriter`] with
    /// this filter and write the trace next to the report.
    pub trace: Option<TraceFilter>,
    /// Execution-strategy overlay (region-sharded parallel runs and the
    /// propagation-delay floor). `None` (or an omitted JSON field) keeps
    /// the single-threaded reference with exact speed-of-light delays.
    pub execution: Option<ExecutionSpec>,
}

impl ScenarioSpec {
    /// The paper's §IV scenario as a declarative spec: 50 nodes uniform
    /// waypoint at 3 m/s / 3 s pause over 1000 m², ten random 512-byte
    /// CBR pairs, 400 s. Materializes identically to
    /// [`ScenarioConfig::paper`].
    pub fn paper() -> Self {
        ScenarioSpec {
            name: "paper".into(),
            variant: Variant::Pcmac,
            duration_s: 400.0,
            field: (1000.0, 1000.0),
            nodes: NodesSpec {
                count: Some(50),
                placement: PlacementSpec::Uniform,
                mobility: Some(MobilitySpec {
                    speed_mps: 3.0,
                    pause_s: 3.0,
                }),
            },
            traffic: TrafficSpec {
                pattern: TrafficPattern::RandomPairs { flows: 10 },
                bytes: 512,
                offered_load_kbps: 600.0,
                shape: FlowShape::Cbr,
            },
            power_levels_mw: None,
            shadowing: None,
            protocol: None,
            radio: None,
            aodv: None,
            faults: None,
            metrics: None,
            trace: None,
            execution: None,
        }
    }

    /// Set one parameter by its dotted path (see [`PATCH_PATHS`]) — the
    /// mechanism behind generic campaign sweep axes. The value is a raw
    /// JSON value and is type-checked against the target field; unknown
    /// paths and mismatched types fail with an actionable message.
    pub fn apply_patch(&mut self, path: &str, value: &Value) -> Result<(), SpecError> {
        match path {
            "duration_s" => self.duration_s = patch_value(path, value)?,
            "variant" => self.variant = patch_value(path, value)?,
            "field.width" => self.field.0 = patch_value(path, value)?,
            "field.height" => self.field.1 = patch_value(path, value)?,
            "nodes.count" => self.nodes.count = Some(patch_value(path, value)?),
            "nodes.placement" => self.nodes.placement = patch_value(path, value)?,
            "nodes.mobility.speed_mps" => {
                self.mobility_mut().speed_mps = patch_value(path, value)?;
            }
            "nodes.mobility.pause_s" => {
                self.mobility_mut().pause_s = patch_value(path, value)?;
            }
            "traffic.pattern" => self.traffic.pattern = patch_value(path, value)?,
            "traffic.offered_load_kbps" => {
                self.traffic.offered_load_kbps = patch_value(path, value)?;
            }
            "traffic.bytes" => self.traffic.bytes = patch_value(path, value)?,
            "power_levels_mw" => self.power_levels_mw = Some(patch_value(path, value)?),
            "shadowing.sigma_db" => self.shadowing_mut().sigma_db = patch_value(path, value)?,
            "shadowing.symmetric" => self.shadowing_mut().symmetric = patch_value(path, value)?,
            "faults.crashes" => self.faults_mut().crashes = Some(patch_value(path, value)?),
            "faults.churn.mean_uptime_s" => {
                self.churn_mut().mean_uptime_s = patch_value(path, value)?;
            }
            "faults.churn.mean_downtime_s" => {
                self.churn_mut().mean_downtime_s = patch_value(path, value)?;
            }
            "faults.churn.start_s" => {
                self.churn_mut().start_s = Some(patch_value(path, value)?);
            }
            "faults.churn.stop_s" => {
                self.churn_mut().stop_s = Some(patch_value(path, value)?);
            }
            "faults.expire_routes" => {
                self.faults_mut().expire_routes = Some(patch_value(path, value)?);
            }
            "faults.impairments" => {
                self.faults_mut().impairments = Some(patch_value(path, value)?);
            }
            "faults.energy_budget_mj" => {
                self.faults_mut().energy_budget_mj = Some(patch_value(path, value)?);
            }
            "mac.pcmac.safety_factor" => {
                self.protocol_mut().safety_factor = Some(patch_value(path, value)?);
            }
            "mac.pcmac.capture_ratio" => {
                self.protocol_mut().capture_ratio = Some(patch_value(path, value)?);
            }
            "mac.pcmac.ctrl_rate_bps" => {
                self.protocol_mut().ctrl_rate_bps = Some(patch_value(path, value)?);
            }
            "mac.pcmac.history_expiry_s" => {
                self.protocol_mut().history_expiry_s = Some(patch_value(path, value)?);
            }
            "mac.pcmac.max_retx" => {
                self.protocol_mut().max_retx = Some(patch_value(path, value)?);
            }
            "mac.pcmac.four_way_handshake" => {
                self.protocol_mut().four_way_handshake = Some(patch_value(path, value)?);
            }
            "mac.queue_capacity" => {
                self.protocol_mut().queue_capacity = Some(patch_value(path, value)?);
            }
            "mac.rts_threshold" => {
                self.protocol_mut().rts_threshold = Some(patch_value(path, value)?);
            }
            "radio.rx_thresh_mw" => {
                self.radio_mut().rx_thresh_mw = Some(patch_value(path, value)?);
            }
            "radio.cs_thresh_mw" => {
                self.radio_mut().cs_thresh_mw = Some(patch_value(path, value)?);
            }
            "radio.capture_ratio" => {
                self.radio_mut().capture_ratio = Some(patch_value(path, value)?);
            }
            "radio.noise_floor_mw" => {
                self.radio_mut().noise_floor_mw = Some(patch_value(path, value)?);
            }
            "radio.capture_policy" => {
                self.radio_mut().capture_policy = Some(patch_value(path, value)?);
            }
            "aodv.active_route_timeout_s" => {
                self.aodv_mut().active_route_timeout_s = Some(patch_value(path, value)?);
            }
            "aodv.rreq_cache_timeout_s" => {
                self.aodv_mut().rreq_cache_timeout_s = Some(patch_value(path, value)?);
            }
            "aodv.rreq_wait_s" => {
                self.aodv_mut().rreq_wait_s = Some(patch_value(path, value)?);
            }
            "aodv.rreq_retries" => {
                self.aodv_mut().rreq_retries = Some(patch_value(path, value)?);
            }
            "aodv.buffer_capacity" => {
                self.aodv_mut().buffer_capacity = Some(patch_value(path, value)?);
            }
            "aodv.buffer_timeout_s" => {
                self.aodv_mut().buffer_timeout_s = Some(patch_value(path, value)?);
            }
            "aodv.rreq_ttl" => self.aodv_mut().rreq_ttl = Some(patch_value(path, value)?),
            "metrics.probe_interval_s" => {
                self.metrics_mut().probe_interval_s = patch_value(path, value)?;
            }
            "execution.shards" => {
                self.execution_mut().shards = Some(patch_value(path, value)?);
            }
            "execution.delay_floor_us" => {
                self.execution_mut().delay_floor_us = Some(patch_value(path, value)?);
            }
            "trace.channel" => self.trace_mut().channel = patch_value(path, value)?,
            "trace.ctrl" => self.trace_mut().ctrl = patch_value(path, value)?,
            "trace.timers" => self.trace_mut().timers = patch_value(path, value)?,
            "trace.traffic" => self.trace_mut().traffic = patch_value(path, value)?,
            unknown => {
                return Err(SpecError::one(format!(
                    "unknown patch path `{unknown}`; supported paths: {}",
                    PATCH_PATHS.join(", ")
                )));
            }
        }
        Ok(())
    }

    fn protocol_mut(&mut self) -> &mut ProtocolSpec {
        self.protocol.get_or_insert_with(ProtocolSpec::default)
    }

    fn radio_mut(&mut self) -> &mut RadioSpec {
        self.radio.get_or_insert_with(RadioSpec::default)
    }

    fn aodv_mut(&mut self) -> &mut AodvSpec {
        self.aodv.get_or_insert_with(AodvSpec::default)
    }

    fn mobility_mut(&mut self) -> &mut MobilitySpec {
        self.nodes.mobility.get_or_insert(MobilitySpec {
            speed_mps: 0.0,
            pause_s: 0.0,
        })
    }

    fn shadowing_mut(&mut self) -> &mut ShadowingConfig {
        self.shadowing.get_or_insert(ShadowingConfig {
            sigma_db: 0.0,
            symmetric: true,
        })
    }

    fn faults_mut(&mut self) -> &mut FaultConfig {
        self.faults.get_or_insert_with(FaultConfig::default)
    }

    fn metrics_mut(&mut self) -> &mut MetricsConfig {
        self.metrics.get_or_insert_with(MetricsConfig::default)
    }

    fn execution_mut(&mut self) -> &mut ExecutionSpec {
        self.execution.get_or_insert_with(ExecutionSpec::default)
    }

    fn trace_mut(&mut self) -> &mut TraceFilter {
        self.trace.get_or_insert_with(TraceFilter::default)
    }

    fn churn_mut(&mut self) -> &mut ChurnConfig {
        self.faults_mut().churn.get_or_insert(ChurnConfig {
            mean_uptime_s: 60.0,
            mean_downtime_s: 10.0,
            start_s: None,
            stop_s: None,
        })
    }

    /// The node count this spec materializes (resolving density- and
    /// placement-implied counts).
    pub fn node_count(&self) -> Result<usize, SpecError> {
        match (&self.nodes.placement, self.nodes.count) {
            (PlacementSpec::Density { per_km2 }, maybe_count) => {
                if !per_km2.is_finite() || *per_km2 <= 0.0 {
                    return Err(SpecError::one(format!(
                        "density {per_km2} nodes/km² must be positive and finite"
                    )));
                }
                let computed = placement::density_count(*per_km2, self.field.0, self.field.1);
                match maybe_count {
                    None => Ok(computed),
                    Some(c) if c == computed => Ok(c),
                    Some(c) => Err(SpecError::one(format!(
                        "count {c} conflicts with the density placement, which computes \
                         {computed} nodes; omit count"
                    ))),
                }
            }
            (PlacementSpec::Explicit { points }, None) => Ok(points.len()),
            (PlacementSpec::Explicit { points }, Some(c)) if c == points.len() => Ok(c),
            (PlacementSpec::Explicit { points }, Some(c)) => Err(SpecError::one(format!(
                "count {c} disagrees with the {} explicit points",
                points.len()
            ))),
            (_, Some(c)) => Ok(c),
            (_, None) => Err(SpecError::one(
                "node count is required unless the placement implies it (Density, Explicit)",
            )),
        }
    }

    /// Number of flows the traffic pattern creates.
    pub fn flow_count(&self) -> usize {
        match &self.traffic.pattern {
            TrafficPattern::RandomPairs { flows } | TrafficPattern::NeighbourPairs { flows } => {
                *flows
            }
            TrafficPattern::Explicit { pairs } => pairs.len(),
        }
    }

    /// The duration a run must *exceed* for every flow to get airtime:
    /// the last flow's staggered start ([`pcmac::flow_start`], the same
    /// schedule materialization uses).
    pub fn min_duration_s(&self) -> f64 {
        pcmac::flow_start(self.flow_count().saturating_sub(1)).as_secs_f64()
    }

    /// Check the spec for defects with actionable messages, without
    /// materializing it.
    pub fn validate(&self) -> Result<(), SpecError> {
        let mut problems = Vec::new();
        if !self.duration_s.is_finite() || self.duration_s <= 0.0 {
            problems.push(format!(
                "duration {} s must be positive and finite",
                self.duration_s
            ));
        }
        for (which, dim) in [("width", self.field.0), ("height", self.field.1)] {
            if !dim.is_finite() || dim <= 0.0 {
                problems.push(format!("field {which} {dim} must be positive and finite"));
            }
        }
        let count = match self.node_count() {
            Ok(0) => {
                problems.push("scenario has zero nodes".to_string());
                0
            }
            Ok(c) => c,
            Err(e) => {
                problems.extend(e.problems);
                0
            }
        };
        match &self.nodes.placement {
            PlacementSpec::Grid { spacing } => {
                if !spacing.is_finite() || *spacing <= 0.0 {
                    problems.push(format!("spacing {spacing} m must be positive and finite"));
                } else if count > 0 {
                    let cols = (count as f64).sqrt().ceil() as usize;
                    let rows = count.div_ceil(cols);
                    if (cols - 1) as f64 * spacing > self.field.0
                        || (rows - 1) as f64 * spacing > self.field.1
                    {
                        problems.push(format!(
                            "a {cols}x{rows} grid at {spacing} m pitch does not fit the {} m x {} m field",
                            self.field.0, self.field.1
                        ));
                    }
                }
            }
            PlacementSpec::Chain { spacing } => {
                if !spacing.is_finite() || *spacing <= 0.0 {
                    problems.push(format!("spacing {spacing} m must be positive and finite"));
                } else if count > 1 && (count - 1) as f64 * spacing > self.field.0 {
                    problems.push(format!(
                        "a {count}-node chain at {spacing} m spacing exceeds the field width {}",
                        self.field.0
                    ));
                }
            }
            PlacementSpec::Ring { radius } => {
                if !radius.is_finite() || *radius <= 0.0 {
                    problems.push(format!(
                        "ring radius {radius} m must be positive and finite"
                    ));
                } else if *radius > self.field.0.min(self.field.1) / 2.0 {
                    problems.push(format!(
                        "ring radius {radius} m does not fit the {} m x {} m field",
                        self.field.0, self.field.1
                    ));
                }
            }
            PlacementSpec::Clustered { clusters, spread_m } => {
                if *clusters == 0 {
                    problems.push("clustered placement needs at least one cluster".into());
                }
                if !spread_m.is_finite() || *spread_m <= 0.0 {
                    problems.push(format!(
                        "cluster spread {spread_m} m must be positive and finite"
                    ));
                }
            }
            PlacementSpec::Corridor { width_m } => {
                if !width_m.is_finite() || *width_m <= 0.0 || *width_m > self.field.1 {
                    problems.push(format!(
                        "corridor width {width_m} m must be positive and fit the field height {}",
                        self.field.1
                    ));
                }
            }
            PlacementSpec::Explicit { points } => {
                if points.is_empty() {
                    problems.push("explicit placement has no points".into());
                }
                for (i, p) in points.iter().enumerate() {
                    if !p.x.is_finite()
                        || !p.y.is_finite()
                        || !(0.0..=self.field.0).contains(&p.x)
                        || !(0.0..=self.field.1).contains(&p.y)
                    {
                        problems.push(format!(
                            "point {i} ({}, {}) lies outside the {} m x {} m field",
                            p.x, p.y, self.field.0, self.field.1
                        ));
                    }
                }
            }
            PlacementSpec::Uniform | PlacementSpec::Density { .. } => {}
        }
        if let Some(m) = &self.nodes.mobility {
            if !m.speed_mps.is_finite() || m.speed_mps < 0.0 {
                problems.push(format!(
                    "mobility speed {} m/s must be finite and non-negative",
                    m.speed_mps
                ));
            }
            if !m.pause_s.is_finite() || m.pause_s < 0.0 {
                problems.push(format!(
                    "mobility pause {} s must be finite and non-negative",
                    m.pause_s
                ));
            }
        }
        let load = self.traffic.offered_load_kbps;
        if !load.is_finite() || load <= 0.0 {
            problems.push(format!(
                "offered load {load} kbps must be positive and finite"
            ));
        }
        if self.traffic.bytes == 0 {
            problems.push("packet size is zero bytes".into());
        }
        if let FlowShape::OnOff {
            mean_on_s,
            mean_off_s,
        } = self.traffic.shape
        {
            for (which, mean) in [("on", mean_on_s), ("off", mean_off_s)] {
                if !mean.is_finite() || mean <= 0.0 {
                    problems.push(format!(
                        "mean {which} phase {mean} s must be positive and finite"
                    ));
                }
            }
        }
        // A duration at or below the last flow's staggered start would
        // silently strand flows with zero airtime — the classic
        // over-shrunk smoke campaign.
        if self.duration_s.is_finite()
            && self.duration_s > 0.0
            && self.duration_s <= self.min_duration_s()
        {
            problems.push(format!(
                "duration {} s leaves later flows no airtime (flow starts are staggered up to {:.3} s)",
                self.duration_s,
                self.min_duration_s()
            ));
        }
        match &self.traffic.pattern {
            TrafficPattern::RandomPairs { flows } => {
                if *flows == 0 {
                    problems.push("traffic has zero flows".into());
                } else if count > 0 && count * (count.saturating_sub(1)) < *flows {
                    problems.push(format!(
                        "{flows} distinct random pairs cannot be drawn from {count} nodes"
                    ));
                }
            }
            TrafficPattern::NeighbourPairs { flows } => {
                if *flows == 0 {
                    problems.push("traffic has zero flows".into());
                } else if count > 0 && 2 * flows > count {
                    problems.push(format!(
                        "{flows} neighbour pairs need {} nodes, scenario has {count}",
                        2 * flows
                    ));
                }
            }
            TrafficPattern::Explicit { pairs } => {
                if pairs.is_empty() {
                    problems.push("traffic has zero flows".into());
                }
                for (i, (s, d)) in pairs.iter().enumerate() {
                    if s == d {
                        problems.push(format!(
                            "flow {i}: source and destination are both node {s}"
                        ));
                    }
                    if count > 0 {
                        for (role, node) in [("source", s), ("destination", d)] {
                            if *node as usize >= count {
                                problems.push(format!(
                                    "flow {i}: {role} node {node} out of range (scenario has {count} nodes)"
                                ));
                            }
                        }
                    }
                }
            }
        }
        if let Some(levels) = &self.power_levels_mw {
            if levels.is_empty() {
                problems.push("power level set is empty".into());
            }
            if levels.iter().any(|l| !l.is_finite() || *l <= 0.0) {
                problems.push("power levels must all be positive and finite (mW)".into());
            } else if levels.windows(2).any(|w| w[0] >= w[1]) {
                problems.push("power levels must be strictly increasing".into());
            }
        }
        if let Some(s) = &self.shadowing {
            if !s.sigma_db.is_finite() || s.sigma_db < 0.0 {
                problems.push(format!(
                    "shadowing sigma {} dB must be finite and non-negative",
                    s.sigma_db
                ));
            }
        }
        if let Some(p) = &self.protocol {
            p.validate(&mut problems);
        }
        if let Some(r) = &self.radio {
            r.validate(&mut problems);
        }
        if let Some(a) = &self.aodv {
            a.validate(&mut problems);
        }
        if let Some(fc) = &self.faults {
            fc.collect_problems(count, self.duration_s, &mut problems);
        }
        if let Some(mc) = &self.metrics {
            if !mc.probe_interval_s.is_finite() || mc.probe_interval_s <= 0.0 {
                problems.push(format!(
                    "metrics probe interval {} s must be positive and finite",
                    mc.probe_interval_s
                ));
            }
        }
        if let Some(e) = &self.execution {
            e.validate(&mut problems);
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(SpecError { problems })
        }
    }

    /// Turn the spec into a concrete, runnable [`ScenarioConfig`] for
    /// `seed`. Validates first; the result additionally passes
    /// [`ScenarioConfig::validate`].
    pub fn materialize(&self, seed: u64) -> Result<ScenarioConfig, SpecError> {
        self.validate()?;
        let count = self.node_count()?;
        let duration = Duration::from_secs_f64(self.duration_s);
        let (w, h) = self.field;

        let starts: Option<Vec<Point>> = match &self.nodes.placement {
            // Uniform placement is left symbolic: the simulator derives
            // it from the seed exactly as `ScenarioConfig::paper` does,
            // keeping spec-built and constructor-built runs identical.
            PlacementSpec::Uniform => None,
            PlacementSpec::Density { .. } => {
                let mut rng = RngStream::derive(seed, "scenario.placement");
                Some(placement::uniform(count, w, h, &mut rng))
            }
            PlacementSpec::Grid { spacing } => {
                let cols = (count as f64).sqrt().ceil() as usize;
                let rows = count.div_ceil(cols);
                let mut pts = placement::grid(cols, rows, Point::new(0.0, 0.0), *spacing);
                pts.truncate(count);
                Some(pts)
            }
            PlacementSpec::Chain { spacing } => {
                Some(placement::chain(count, Point::new(0.0, h / 2.0), *spacing))
            }
            PlacementSpec::Ring { radius } => Some(placement::ring(
                count,
                Point::new(w / 2.0, h / 2.0),
                *radius,
            )),
            PlacementSpec::Clustered { clusters, spread_m } => {
                let mut rng = RngStream::derive(seed, "spec.placement.clustered");
                Some(placement::clustered(
                    count, *clusters, w, h, *spread_m, &mut rng,
                ))
            }
            PlacementSpec::Corridor { width_m } => {
                let mut rng = RngStream::derive(seed, "spec.placement.corridor");
                Some(placement::corridor(
                    count,
                    Point::new(0.0, (h - width_m) / 2.0),
                    w,
                    *width_m,
                    &mut rng,
                ))
            }
            PlacementSpec::Explicit { points } => Some(points.clone()),
        };

        let nodes = match (starts, &self.nodes.mobility) {
            (None, Some(m)) => NodeSetup::UniformWaypoint {
                count,
                speed: m.speed_mps,
                pause: Duration::from_secs_f64(m.pause_s),
            },
            (None, None) => {
                // Static uniform scatter still needs concrete points.
                let mut rng = RngStream::derive(seed, "scenario.placement");
                NodeSetup::Static(placement::uniform(count, w, h, &mut rng))
            }
            (Some(starts), Some(m)) => NodeSetup::WaypointFrom {
                starts,
                speed: m.speed_mps,
                pause: Duration::from_secs_f64(m.pause_s),
            },
            (Some(starts), None) => NodeSetup::Static(starts),
        };

        let pairs: Vec<(u32, u32)> = match &self.traffic.pattern {
            TrafficPattern::RandomPairs { flows } => pcmac::random_flow_pairs(seed, count, *flows),
            TrafficPattern::NeighbourPairs { flows } => (0..*flows)
                .map(|i| (2 * i as u32, 2 * i as u32 + 1))
                .collect(),
            TrafficPattern::Explicit { pairs } => pairs.clone(),
        };
        let per_flow_bps = self.traffic.offered_load_kbps * 1000.0 / pairs.len() as f64;
        let flows: Vec<FlowSpec> = pairs
            .into_iter()
            .enumerate()
            .map(|(i, (src, dst))| FlowSpec {
                flow: FlowId(i as u32),
                src: NodeId(src),
                dst: NodeId(dst),
                bytes: self.traffic.bytes,
                rate_bps: per_flow_bps,
                start: pcmac::flow_start(i),
                stop: SimTime::ZERO + duration,
                shape: self.traffic.shape,
            })
            .collect();

        let mut mac = MacConfig::paper_default(self.variant);
        if let Some(levels) = &self.power_levels_mw {
            mac.levels = PowerLevels::new(levels.iter().map(|&l| Milliwatts(l)).collect());
        }
        // The paper's numbers come from ns2.1b8a, whose capture model is
        // pairwise and start-only (see `ScenarioConfig::paper`); overlays
        // then patch individual knobs on top of those defaults.
        let mut radio = RadioConfig {
            capture_policy: CapturePolicy::StartOnly,
            ..RadioConfig::ns2_default()
        };
        let mut aodv = AodvConfig::default();
        if let Some(p) = &self.protocol {
            p.apply(&mut mac);
        }
        if let Some(r) = &self.radio {
            r.apply(&mut radio, &mut mac);
        }
        if let Some(a) = &self.aodv {
            a.apply(&mut aodv);
        }

        let cfg = ScenarioConfig {
            name: format!(
                "{}-{}-{:.0}kbps-s{seed}",
                self.name,
                self.variant.name(),
                self.traffic.offered_load_kbps
            ),
            variant: self.variant,
            seed,
            duration,
            field: self.field,
            nodes,
            flows,
            radio,
            mac,
            aodv,
            interference_floor: Milliwatts(1.559e-10), // CSThresh / 100
            shadowing: self.shadowing,
            channel_index: Default::default(),
            mobility_refresh: None,
            gain_cache: None,
            faults: self.faults.clone(),
            metrics: self.metrics,
            execution: self
                .execution
                .and_then(|e| e.shards)
                .map(|shards| ExecutionMode::Sharded { shards }),
            delay_floor_us: self.execution.and_then(|e| e.delay_floor_us),
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("specs always serialize")
    }

    /// Parse from JSON (no validation — call [`ScenarioSpec::validate`]).
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}
