//! Fixed-memory streaming latency summaries.
//!
//! Latency populations (route-discovery waits, route-repair times) used
//! to accumulate in per-node `Vec<f64>`s, growing linearly with run
//! length. [`StreamingQuantile`] caps that at a constant: it keeps the
//! first [`EXACT_CAP`] samples verbatim (so short runs summarize *bit
//! for bit* like a sorted sample vector) and, in parallel, always feeds
//! a fixed bank of power-of-two latency buckets plus integer-quantized
//! running moments. Past the cap the summary degrades gracefully to the
//! bucket estimate — still deterministic, still mergeable.
//!
//! Merge discipline: every reduction here is commutative and
//! associative — bucket counts and the nanosecond-quantized sum add as
//! integers, the maximum folds, and the exact path is only consulted
//! when the *combined* population fits the cap (where the consumer
//! sorts before summarizing). A sharded run can therefore merge
//! per-shard estimators in any grouping and obtain exactly the summary
//! of the single-threaded run.

use serde::{Deserialize, Serialize};

/// Population size up to which samples are kept verbatim. Summaries of
/// populations at or under the cap are exact (identical to sorting the
/// raw sample vector); larger populations fall back to the buckets.
pub const EXACT_CAP: usize = 512;

/// Smallest distinguished binary exponent: 2⁻²⁰ s ≈ 0.95 µs. Anything
/// faster lands in the first bucket.
const MIN_EXP: i32 = -20;
/// Largest distinguished binary exponent: 2¹⁰ s = 1024 s. Anything
/// slower lands in the last bucket.
const MAX_EXP: i32 = 10;
/// Number of power-of-two buckets covering `[2^MIN_EXP, 2^(MAX_EXP+1))`.
const BUCKETS: usize = (MAX_EXP - MIN_EXP + 1) as usize;

/// Bucket index of a latency in seconds, by raw binary exponent — no
/// transcendental functions, so the mapping is exact on every platform.
#[inline]
fn bucket_of(v: f64) -> usize {
    if v <= 0.0 || !v.is_finite() {
        return 0;
    }
    let exp = ((v.to_bits() >> 52) & 0x7ff) as i32 - 1023;
    (exp.clamp(MIN_EXP, MAX_EXP) - MIN_EXP) as usize
}

/// A constant-memory latency population summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamingQuantile {
    /// The first [`EXACT_CAP`] samples, insertion order. Only consulted
    /// while `count <= EXACT_CAP`.
    exact: Vec<f64>,
    /// Total samples recorded.
    count: u64,
    /// Sum quantized to nanoseconds — integer addition is associative,
    /// so merge grouping cannot perturb the mean.
    sum_ns: u64,
    /// Largest sample.
    max_s: f64,
    /// Power-of-two latency histogram (always populated).
    buckets: Vec<u64>,
}

impl Default for StreamingQuantile {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingQuantile {
    /// An empty summary.
    pub fn new() -> Self {
        StreamingQuantile {
            exact: Vec::new(),
            count: 0,
            sum_ns: 0,
            max_s: 0.0,
            buckets: vec![0; BUCKETS],
        }
    }

    /// Record one latency (seconds).
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum_ns = self
            .sum_ns
            .saturating_add((v.max(0.0) * 1e9).round() as u64);
        if v > self.max_s {
            self.max_s = v;
        }
        self.buckets[bucket_of(v)] += 1;
        if self.exact.len() < EXACT_CAP {
            self.exact.push(v);
        }
    }

    /// Fold `other` into `self`. Commutative up to the insertion order
    /// of the exact sample list, which only matters while the combined
    /// population fits [`EXACT_CAP`] — and there the consumer sorts.
    pub fn merge(&mut self, other: &StreamingQuantile) {
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        if other.max_s > self.max_s {
            self.max_s = other.max_s;
        }
        for (b, &o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        let room = EXACT_CAP.saturating_sub(self.exact.len());
        self.exact
            .extend_from_slice(&other.exact[..other.exact.len().min(room)]);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` while every sample is still held verbatim — summaries are
    /// then exactly those of the raw sample vector.
    pub fn is_exact(&self) -> bool {
        self.count <= EXACT_CAP as u64
    }

    /// The verbatim samples (meaningful only while [`Self::is_exact`]).
    pub fn exact_samples(&self) -> &[f64] {
        &self.exact
    }

    /// Mean latency from the quantized running sum (seconds).
    pub fn mean_s(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.sum_ns as f64 / self.count as f64) * 1e-9
        }
    }

    /// Largest recorded latency (seconds).
    pub fn max_s(&self) -> f64 {
        self.max_s
    }

    /// Bucket-resolution quantile: the upper edge of the power-of-two
    /// bucket holding the `ceil(q·count)`-th smallest sample (matching
    /// the sorted-vector index convention), clamped to the observed
    /// maximum so the tail bucket's 2× overshoot never exceeds reality.
    pub fn quantile_s(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let k = ((self.count as f64 * q).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= k {
                let edge = 2f64.powi(MIN_EXP + b as i32 + 1);
                return edge.min(self.max_s);
            }
        }
        self.max_s
    }
}

mod snap {
    use super::StreamingQuantile;

    pcmac_snap::snap_struct!(StreamingQuantile {
        exact,
        count,
        sum_ns,
        max_s,
        buckets,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted(mut v: Vec<f64>) -> Vec<f64> {
        v.sort_by(|a, b| a.total_cmp(b));
        v
    }

    #[test]
    fn exact_path_holds_all_samples_under_cap() {
        let mut q = StreamingQuantile::new();
        let samples: Vec<f64> = (0..100).map(|i| (i as f64 + 1.0) * 1e-3).collect();
        for &s in &samples {
            q.record(s);
        }
        assert!(q.is_exact());
        assert_eq!(sorted(q.exact_samples().to_vec()), sorted(samples));
        assert_eq!(q.count(), 100);
        assert!((q.max_s() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn overflow_degrades_to_buckets_with_exact_moments() {
        let mut q = StreamingQuantile::new();
        let n = 10_000u64;
        for i in 0..n {
            q.record(1e-3 * (1.0 + (i % 100) as f64)); // 1 ms .. 100 ms
        }
        assert!(!q.is_exact());
        assert_eq!(q.count(), n);
        let mean = 1e-3 * (1.0 + 99.0 / 2.0 + 0.5); // 1..100 uniform + 0.5 offset? exact:
        let expect = (1..=100).map(|v| v as f64 * 1e-3).sum::<f64>() / 100.0;
        assert!((q.mean_s() - expect).abs() < 1e-9, "mean {}", q.mean_s());
        let _ = mean;
        // p95 lands in the bucket containing 0.095..0.1 s: [2^-4, 2^-3).
        let p95 = q.quantile_s(0.95);
        assert!((0.095..=0.125).contains(&p95), "p95 {p95}");
        // Max clamps the tail-bucket overshoot.
        assert!(q.quantile_s(1.0) <= q.max_s() + 1e-12);
    }

    #[test]
    fn merge_is_grouping_independent() {
        let samples: Vec<f64> = (0..2000)
            .map(|i| 1e-4 * ((i * 37 % 997) + 1) as f64)
            .collect();
        // One big estimator vs two different merge groupings.
        let mut whole = StreamingQuantile::new();
        for &s in &samples {
            whole.record(s);
        }
        let chunks: Vec<StreamingQuantile> = samples
            .chunks(173)
            .map(|c| {
                let mut q = StreamingQuantile::new();
                for &s in c {
                    q.record(s);
                }
                q
            })
            .collect();
        let mut left = StreamingQuantile::new();
        for c in &chunks {
            left.merge(c);
        }
        let mut right = StreamingQuantile::new();
        for c in chunks.iter().rev() {
            right.merge(c);
        }
        for q in [&left, &right] {
            assert_eq!(q.count(), whole.count());
            assert_eq!(q.mean_s().to_bits(), whole.mean_s().to_bits());
            assert_eq!(q.max_s().to_bits(), whole.max_s().to_bits());
            assert_eq!(
                q.quantile_s(0.95).to_bits(),
                whole.quantile_s(0.95).to_bits()
            );
        }
    }

    #[test]
    fn degenerate_values_land_in_edge_buckets() {
        let mut q = StreamingQuantile::new();
        q.record(0.0);
        q.record(-1.0);
        q.record(1e-12);
        q.record(1e6);
        assert_eq!(q.count(), 4);
        assert!(q.quantile_s(0.5) >= 0.0);
        assert!(q.max_s() == 1e6);
    }
}
