//! Offline shim for the `serde` crate.
//!
//! The build environment has no registry access, so this crate provides a
//! small value-tree serialization framework under serde's names:
//!
//! * [`Value`] — a JSON-shaped data model (null, bool, integers, floats,
//!   strings, sequences, ordered maps);
//! * [`Serialize`] / [`Deserialize`] — convert a type to / from a
//!   [`Value`];
//! * `#[derive(Serialize, Deserialize)]` — re-exported from the local
//!   `serde_derive` proc-macro crate, supporting plain structs, tuple
//!   structs, and enums with unit / tuple / struct variants (the shapes
//!   this repository uses; serde field attributes are not supported).
//!
//! The `serde_json` shim renders a [`Value`] to JSON text and parses it
//! back; the encoding conventions (externally-tagged enums, transparent
//! newtypes) follow real serde so the on-disk artifacts look familiar.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// The self-describing data model every [`Serialize`] impl produces and
/// every [`Deserialize`] impl consumes.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer (JSON number without sign/fraction/exponent).
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number. Non-finite values render as `null`.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Map with insertion-ordered string keys.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as a map entry list, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as a sequence, if this is one.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as a string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Numeric value as `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) => u64::try_from(*v).ok(),
            Value::F64(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// Numeric value as `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::U64(v) => i64::try_from(*v).ok(),
            Value::I64(v) => Some(*v),
            Value::F64(v) if v.fract() == 0.0 && *v >= i64::MIN as f64 && *v <= i64::MAX as f64 => {
                Some(*v as i64)
            }
            _ => None,
        }
    }

    /// Boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// `true` when this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Map lookup (`None` for missing keys or non-maps).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    /// Map indexing; missing keys yield `null` like `serde_json`.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    /// Sequence indexing; out-of-range yields `null` like `serde_json`.
    fn index(&self, i: usize) -> &Value {
        self.as_seq().and_then(|s| s.get(i)).unwrap_or(&NULL)
    }
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// Build from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Convert a value of this type into the [`Value`] data model.
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Reconstruct a value of this type from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parse from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// --- primitive impls ---------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_u64()
                    .and_then(|u| <$t>::try_from(u).ok())
                    .ok_or_else(|| DeError::custom(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 { Value::I64(v) } else { Value::U64(v as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_i64()
                    .and_then(|u| <$t>::try_from(u).ok())
                    .ok_or_else(|| DeError::custom(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| DeError::custom(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::custom("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::custom("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+),)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let s = v.as_seq().ok_or_else(|| DeError::custom("expected tuple sequence"))?;
                Ok(($($t::from_value(
                    s.get($n).ok_or_else(|| DeError::custom("tuple too short"))?
                )?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_map()
            .ok_or_else(|| DeError::custom("expected map"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_null_round_trip() {
        let none: Option<u32> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::U64(7)).unwrap(), Some(7));
    }

    #[test]
    fn indexing_missing_yields_null() {
        let v = Value::Map(vec![("a".into(), Value::U64(1))]);
        assert_eq!(v["a"].as_u64(), Some(1));
        assert!(v["missing"].is_null());
        assert!(v[3].is_null());
    }

    #[test]
    fn int_bounds_checked() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert_eq!(u8::from_value(&Value::U64(255)).unwrap(), 255);
        assert_eq!(i32::from_value(&Value::I64(-5)).unwrap(), -5);
    }

    #[test]
    fn tuple_round_trip() {
        let t = (1.5f64, 2.5f64);
        let v = t.to_value();
        assert_eq!(<(f64, f64)>::from_value(&v).unwrap(), t);
    }
}
