//! Binary-exponential backoff.
//!
//! Tracks the contention window and the remaining backoff slots. The DCF
//! engine drives it: draw a count after transmissions and failures, count
//! down while the medium is idle, freeze on busy. Freezing is implemented
//! by *accounting*, not per-slot events: the engine records when counting
//! started and, when interrupted, tells the backoff how much wall time was
//! spent; whole elapsed slots are deducted.

use pcmac_engine::{Duration, RngStream};

/// Contention window and slot counter.
#[derive(Debug, Clone)]
pub struct Backoff {
    cw_min: u32,
    cw_max: u32,
    cw: u32,
    slots: u32,
}

impl Backoff {
    /// A fresh backoff at `CW_min` with no pending slots.
    pub fn new(cw_min: u32, cw_max: u32) -> Self {
        assert!(cw_min > 0 && cw_max >= cw_min);
        Backoff {
            cw_min,
            cw_max,
            cw: cw_min,
            slots: 0,
        }
    }

    /// Current contention window.
    pub fn cw(&self) -> u32 {
        self.cw
    }

    /// Remaining slots to count down.
    pub fn slots(&self) -> u32 {
        self.slots
    }

    /// `true` when no countdown is pending.
    pub fn is_done(&self) -> bool {
        self.slots == 0
    }

    /// Double the contention window after a failed attempt:
    /// `CW ← min(2·(CW+1)−1, CW_max)` (31 → 63 → … → 1023).
    pub fn grow(&mut self) {
        self.cw = ((self.cw + 1) * 2 - 1).min(self.cw_max);
    }

    /// Reset the contention window after success or final drop.
    pub fn reset_cw(&mut self) {
        self.cw = self.cw_min;
    }

    /// Draw a fresh uniform count in `[0, CW]` (only if none is pending;
    /// 802.11 keeps a frozen residual count across medium-busy periods).
    pub fn draw_if_idle(&mut self, rng: &mut RngStream) {
        if self.slots == 0 {
            self.slots = rng.range_inclusive(0, self.cw as u64) as u32;
        }
    }

    /// Force a fresh draw (used for the mandatory post-transmission
    /// backoff, which always re-draws).
    pub fn draw(&mut self, rng: &mut RngStream) {
        self.slots = rng.range_inclusive(0, self.cw as u64) as u32;
    }

    /// Deduct the slots fully elapsed in `idle_time` (counting was
    /// interrupted by a busy medium). Returns the remaining count.
    pub fn consume(&mut self, idle_time: Duration, slot: Duration) -> u32 {
        let whole = (idle_time.as_nanos() / slot.as_nanos()) as u32;
        self.slots = self.slots.saturating_sub(whole);
        self.slots
    }

    /// Mark the countdown complete (its timer fired unharassed).
    pub fn complete(&mut self) {
        self.slots = 0;
    }

    /// Wall time needed to finish the remaining count.
    pub fn remaining_time(&self, slot: Duration) -> Duration {
        slot * self.slots as u64
    }
}

mod snap {
    use super::Backoff;

    pcmac_snap::snap_struct!(Backoff {
        cw_min,
        cw_max,
        cw,
        slots,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> RngStream {
        RngStream::derive(7, "backoff-test")
    }

    #[test]
    fn grows_along_standard_ladder() {
        let mut b = Backoff::new(31, 1023);
        let mut seen = vec![b.cw()];
        for _ in 0..7 {
            b.grow();
            seen.push(b.cw());
        }
        assert_eq!(seen, vec![31, 63, 127, 255, 511, 1023, 1023, 1023]);
    }

    #[test]
    fn reset_returns_to_cw_min() {
        let mut b = Backoff::new(31, 1023);
        b.grow();
        b.grow();
        b.reset_cw();
        assert_eq!(b.cw(), 31);
    }

    #[test]
    fn draw_is_within_cw() {
        let mut r = rng();
        for _ in 0..200 {
            let mut b = Backoff::new(31, 1023);
            b.draw(&mut r);
            assert!(b.slots() <= 31);
        }
    }

    #[test]
    fn draw_if_idle_preserves_residual() {
        let mut r = rng();
        let mut b = Backoff::new(31, 1023);
        b.draw(&mut r);
        // force a nonzero residual
        while b.slots() == 0 {
            b.draw(&mut r);
        }
        let residual = b.slots();
        b.draw_if_idle(&mut r);
        assert_eq!(b.slots(), residual, "residual must survive busy periods");
    }

    #[test]
    fn consume_deducts_whole_slots_only() {
        let mut r = rng();
        let mut b = Backoff::new(31, 1023);
        while b.slots() < 5 {
            b.draw(&mut r);
        }
        let start = b.slots();
        let slot = Duration::from_micros(20);
        // 2.9 slots of idle time → 2 slots consumed
        b.consume(Duration::from_micros(58), slot);
        assert_eq!(b.slots(), start - 2);
    }

    #[test]
    fn consume_saturates_at_zero() {
        let mut b = Backoff::new(31, 1023);
        let slot = Duration::from_micros(20);
        b.consume(Duration::from_secs(1), slot);
        assert_eq!(b.slots(), 0);
        assert!(b.is_done());
    }

    #[test]
    fn remaining_time_is_slots_times_slot() {
        let mut r = rng();
        let mut b = Backoff::new(31, 1023);
        b.draw(&mut r);
        let slot = Duration::from_micros(20);
        assert_eq!(b.remaining_time(slot), slot * b.slots() as u64);
    }

    #[test]
    fn draw_distribution_covers_window() {
        // Sanity: over many draws from CW=31 we should see both small and
        // large counts — a stuck RNG or off-by-one would show here.
        let mut r = rng();
        let mut b = Backoff::new(31, 1023);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..500 {
            b.draw(&mut r);
            if b.slots() <= 3 {
                lo = true;
            }
            if b.slots() >= 28 {
                hi = true;
            }
        }
        assert!(lo && hi);
    }
}
