//! Regenerate the paper's power-level ↔ range table (§IV).
//!
//! The ten transmit power classes and their decode ranges under the
//! two-ray ground model with ns-2's Lucent WaveLAN thresholds. The
//! paper quotes 40/60/80/90/100/110/120/150/180/250 m — "roughly
//! correspond[ing]" to these computed values.
//!
//! ```text
//! cargo run --release --example power_table
//! ```

use pcmac_engine::Milliwatts;
use pcmac_phy::{PowerLevels, Propagation, TwoRayGround};
use pcmac_stats::Table;

fn main() {
    let model = TwoRayGround::ns2_default();
    let levels = PowerLevels::paper_defaults();
    let rx_thresh = Milliwatts(3.652e-7); // decode
    let cs_thresh = Milliwatts(1.559e-8); // carrier sense
    let paper = [
        40.0, 60.0, 80.0, 90.0, 100.0, 110.0, 120.0, 150.0, 180.0, 250.0,
    ];

    println!(
        "two-ray ground @ 914 MHz, antennas 1.5 m, crossover {:.1} m\n",
        model.crossover()
    );

    let mut table = Table::new(&[
        "class",
        "power (mW)",
        "decode range (m)",
        "paper (m)",
        "sense range (m)",
    ]);
    for (i, (&p, &want)) in levels.all().iter().zip(paper.iter()).enumerate() {
        let decode = model.range_for(p, rx_thresh);
        let sense = model.range_for(p, cs_thresh);
        table.row(&[
            format!("{}", i + 1),
            format!("{:.2}", p.value()),
            format!("{decode:.1}"),
            format!("{want:.0}"),
            format!("{sense:.1}"),
        ]);
        assert!(
            (decode - want).abs() <= 4.0,
            "class {} range {decode:.1} deviates from the paper's {want}",
            i + 1
        );
    }
    println!("{}", table.render());
    println!("all ten classes within ±4 m of the paper's table ✓");
}
