//! The paper's §IV scenario at one load point, all four protocols.
//!
//! 50 nodes, random waypoint over 1000 m × 1000 m, ten 512-byte CBR
//! flows, AODV. Compares Basic 802.11, PCMAC, Scheme 1 and Scheme 2 at a
//! single offered load (default 600 kbps, near saturation).
//!
//! ```text
//! cargo run --release --example adhoc_network [-- <load_kbps> <secs> <seed>]
//! ```

use pcmac::{run_parallel, ScenarioConfig, Variant};
use pcmac_engine::Duration;

fn main() {
    let mut args = std::env::args().skip(1);
    let load: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(600.0);
    let secs: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(60);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);

    println!("paper scenario: 50 nodes, 10 CBR flows, {load} kbps offered, {secs}s, seed {seed}");
    println!("running all four protocols in parallel...\n");

    let scenarios: Vec<_> = Variant::ALL
        .iter()
        .map(|v| ScenarioConfig::paper(*v, load, seed).with_duration(Duration::from_secs(secs)))
        .collect();
    let reports = run_parallel(scenarios, 0);

    for r in &reports {
        println!("{}", r.summary());
    }
    println!();
    for r in &reports {
        println!(
            "{:<13} rts {:>7} ctsT/O {:>6} rxErr {:>7} retryDrop {:>4} qDrop {:>5} rreq {:>5} ctrlBcast {:>6} ctrlDefer {:>5}",
            r.protocol,
            r.mac.rts_sent,
            r.mac.cts_timeouts,
            r.mac.rx_errors,
            r.mac.retry_drops,
            r.mac.queue_drops,
            r.routing.rreq_originated + r.routing.rreq_forwarded,
            r.mac.ctrl_broadcasts,
            r.mac.ctrl_deferrals,
        );
    }
    println!();
    for r in &reports {
        println!(
            "{:<13} radiated {:>10.1} mJ  ({:.4} mJ/pkt)  | {:>9} events, {:>6.2}s wall",
            r.protocol, r.radiated_mj, r.radiated_mj_per_packet, r.events, r.wall_s
        );
    }
}
