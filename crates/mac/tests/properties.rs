//! Property-based tests of MAC-layer invariants.

use pcmac_engine::{Duration, Milliwatts, NodeId, RngStream, SessionId, SimTime};
use pcmac_mac::backoff::Backoff;
use pcmac_mac::nav::Nav;
use pcmac_mac::pcmac::{ActiveReceivers, EchoVerdict, ReceivedTable, SentTable};
use pcmac_mac::{Dot11Timing, PowerHistory};
use pcmac_net::Packet;
use pcmac_phy::PowerLevels;
use proptest::prelude::*;

fn t(us: u64) -> SimTime {
    SimTime::ZERO + Duration::from_micros(us)
}

proptest! {
    /// NAV expiry is monotone under any reservation sequence, and the
    /// medium reads idle exactly at/after expiry.
    #[test]
    fn nav_monotone(resvs in proptest::collection::vec((0u64..10_000, 0u64..10_000), 1..50)) {
        let mut nav = Nav::new();
        let mut last_expiry = SimTime::ZERO;
        let mut clock = 0u64;
        for (advance, dur) in resvs {
            clock += advance;
            nav.reserve(t(clock), Duration::from_micros(dur));
            prop_assert!(nav.expiry() >= last_expiry);
            last_expiry = nav.expiry();
            prop_assert!(!nav.is_busy(nav.expiry()));
            if dur > 0 {
                prop_assert!(nav.is_busy(t(clock)) || dur == 0);
            }
        }
    }

    /// The contention window walks 31→…→1023 and never leaves
    /// [cw_min, cw_max]; draws always fit the window.
    #[test]
    fn backoff_window_bounded(grows in 0usize..20, seed in any::<u64>()) {
        let mut rng = RngStream::derive(seed, "prop.backoff");
        let mut b = Backoff::new(31, 1023);
        for _ in 0..grows {
            b.grow();
            prop_assert!((31..=1023).contains(&b.cw()));
            b.draw(&mut rng);
            prop_assert!(b.slots() <= b.cw());
        }
        b.reset_cw();
        prop_assert_eq!(b.cw(), 31);
    }

    /// Consuming idle time never increases the slot count, and consuming
    /// the full remaining time zeroes it.
    #[test]
    fn backoff_consume_monotone(seed in any::<u64>(), chunks in proptest::collection::vec(0u64..100, 1..20)) {
        let mut rng = RngStream::derive(seed, "prop.consume");
        let slot = Duration::from_micros(20);
        let mut b = Backoff::new(31, 1023);
        b.grow(); b.grow();
        b.draw(&mut rng);
        let mut last = b.slots();
        for c in chunks {
            b.consume(Duration::from_micros(c * 20), slot);
            prop_assert!(b.slots() <= last);
            last = b.slots();
        }
        let rem = b.remaining_time(slot);
        b.consume(rem, slot);
        prop_assert!(b.is_done() || rem.is_zero());
    }

    /// The power history only ever returns a configured class (or max),
    /// regardless of the observation pattern.
    #[test]
    fn history_returns_valid_classes(
        obs in proptest::collection::vec((1u32..50, 1e-12f64..1e-2, 0u64..10_000_000), 1..60),
        query in 0u64..20_000_000,
    ) {
        let levels = PowerLevels::paper_defaults();
        let classes: Vec<f64> = levels.all().iter().map(|l| l.value()).collect();
        let mut h = PowerHistory::new(levels, Milliwatts(3.652e-7));
        for (node, gain, at) in obs {
            h.observe(
                NodeId(node),
                Milliwatts(281.83815 * gain),
                Milliwatts(281.83815),
                t(at),
            );
        }
        for node in 0..50u32 {
            let lvl = h.level_for(NodeId(node), t(query)).value();
            prop_assert!(
                classes.iter().any(|c| (c - lvl).abs() < 1e-12),
                "level {lvl} is not a class"
            );
        }
    }

    /// Sent-table liveness: under ANY echo pattern, a packet is
    /// retransmitted at most `max_retx` times before the sender moves on.
    #[test]
    fn sent_table_cannot_livelock(
        echoes in proptest::collection::vec(any::<bool>(), 1..30),
        max_retx in 1u8..6,
    ) {
        let mut st = SentTable::new(max_retx);
        let peer = NodeId(2);
        let session = SessionId::for_pair(NodeId(1), peer);
        let seq = st.allocate_seq(peer);
        let packet = Packet::data(
            pcmac_engine::PacketId(1),
            pcmac_engine::FlowId(0),
            NodeId(1),
            peer,
            512,
            SimTime::ZERO,
        );
        st.record_sent(peer, session, seq, packet);
        let mut retransmissions = 0;
        for confirm in echoes {
            let echo = confirm.then_some((session, seq));
            match st.judge_echo(peer, echo) {
                EchoVerdict::Retransmit(_) => {
                    retransmissions += 1;
                    // The MAC re-records the retransmitted copy.
                    let p = Packet::data(
                        pcmac_engine::PacketId(1),
                        pcmac_engine::FlowId(0),
                        NodeId(1),
                        peer,
                        512,
                        SimTime::ZERO,
                    );
                    st.record_sent(peer, session, seq, p);
                }
                EchoVerdict::Proceed | EchoVerdict::GiveUp => break,
            }
        }
        prop_assert!(retransmissions <= max_retx as usize);
    }

    /// Receiver dedup: replays of the same (session, seq) are flagged as
    /// duplicates exactly once per replay; new sequence numbers are fresh.
    #[test]
    fn received_table_dedup_exact(seqs in proptest::collection::vec(0u32..5, 1..40)) {
        let mut rt = ReceivedTable::new();
        let session = SessionId::for_pair(NodeId(1), NodeId(2));
        let mut last_accepted: Option<u32> = None;
        for s in seqs {
            let fresh = rt.accept(NodeId(1), session, s);
            // Fresh iff it differs from the immediately-preceding accept.
            prop_assert_eq!(fresh, last_accepted != Some(s));
            last_accepted = Some(s);
        }
    }

    /// ActiveReceivers::check is exactly the conjunction of per-entry
    /// constraints (matches a straightforward reference computation).
    #[test]
    fn tolerance_check_matches_reference(
        entries in proptest::collection::vec((1u32..20, 1e-12f64..1e-4, 1e-9f64..1e-3, 1u64..5000), 0..12),
        power in 1e-3f64..300.0,
        factor in 0.1f64..1.0,
    ) {
        let p_max = Milliwatts(281.83815);
        let mut ar = ActiveReceivers::new();
        let now = t(0);
        for (node, tol, gain, until_us) in &entries {
            ar.record(
                NodeId(*node),
                Milliwatts(*tol),
                p_max * *gain,
                p_max,
                t(*until_us),
            );
        }
        let verdict = ar.check(Milliwatts(power), factor, None, now);
        // Reference: any live entry with induced > factor×tol blocks.
        // (Later records overwrite earlier ones for the same node.)
        let mut last: std::collections::HashMap<u32, (f64, f64, u64)> = Default::default();
        for (node, tol, gain, until_us) in &entries {
            last.insert(*node, (*tol, *gain, *until_us));
        }
        let blocked = last.values().any(|(tol, gain, until_us)| {
            t(*until_us) > now && power * gain > factor * tol.max(0.0)
        });
        prop_assert_eq!(verdict.is_err(), blocked);
    }

    /// Frame airtime is positive, finite and increases with size for
    /// arbitrary data payloads.
    #[test]
    fn airtime_monotone_in_size(a in 1u32..2000, b in 1u32..2000) {
        let t11 = Dot11Timing::ns2_default();
        let (small, large) = if a < b { (a, b) } else { (b, a) };
        let ta = t11.airtime_data(small);
        let tb = t11.airtime_data(large);
        prop_assert!(ta <= tb);
        prop_assert!(ta > Duration::ZERO);
    }
}
