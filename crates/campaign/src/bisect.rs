//! The divergence bisector: given two scenarios that are *supposed* to
//! be bit-identical but produce different results, localize the first
//! divergent event instead of staring at two multi-megabyte reports.
//!
//! The procedure leans on two checkpoint/restore guarantees:
//!
//! 1. periodic checkpoints land on an **absolute grid** of simulated
//!    instants, so both runs cut at exactly the same times, and
//! 2. [`SimSnapshot::state_fingerprint`] digests the complete
//!    behavioral state at a cut (excluding the config digest and the
//!    diagnostic metrics counters), so two runs are behaviorally equal
//!    at a cut iff their fingerprints match.
//!
//! Both runs execute once with checkpointing on, giving a fingerprint
//! per grid cut. The divergence is bracketed by the last cut where the
//! fingerprints agree (binary-searching the cut array; fingerprints are
//! equal on a prefix and differ on the suffix, because a deterministic
//! simulation cannot re-converge after its state has split). Both runs
//! are then **restored from that common cut** and replayed with an
//! event observer, and the first position where the dispatched event
//! streams differ — in time, rank, or content — is the answer: the
//! exact simulated instant, event class, and node where the two
//! executions part ways.

use pcmac::{RunHooks, RunOutcome, ScenarioConfig, SimEvent, SimSnapshot, Simulator};
use pcmac_engine::{Duration, SimTime};

/// Human name of a rank class (the event taxonomy, in rank order).
fn class_name(class: u32) -> &'static str {
    match class {
        0 => "ArrivalEnd",
        1 => "CtrlArrivalEnd",
        2 => "TxEnd",
        3 => "CtrlTxEnd",
        4 => "ArrivalStart",
        5 => "CtrlArrivalStart",
        6 => "MacTimer",
        7 => "AodvTimer",
        8 => "TrafficEmit",
        9 => "NodeDown",
        10 => "NodeUp",
        11 => "ImpairmentStart",
        12 => "ImpairmentEnd",
        13 => "MetricsProbe",
        _ => "Unknown",
    }
}

/// The first point where two event streams part ways.
#[derive(Debug, Clone)]
pub struct EventDivergence {
    /// Simulated instant of the divergent dispatch.
    pub at: SimTime,
    /// Full `(class, node, discriminator)` ordering key of the
    /// divergent event (the side that dispatches first).
    pub rank: u128,
    /// Event class, by name.
    pub class: &'static str,
    /// The node the divergent event addresses, when it addresses one.
    pub node: Option<u32>,
    /// Dispatch position, counted from the replay start.
    pub index: usize,
    /// What run A dispatched at that position (`None`: A's stream ended).
    pub a: Option<String>,
    /// What run B dispatched at that position (`None`: B's stream ended).
    pub b: Option<String>,
}

/// What [`bisect_configs`] found.
#[derive(Debug, Clone)]
pub struct BisectReport {
    /// The checkpoint grid interval used.
    pub interval: Duration,
    /// Grid cuts compared (both runs cut at the same instants).
    pub cuts_compared: usize,
    /// The last grid cut where both runs had identical behavioral
    /// state; `None` when they already differ at the first cut (a
    /// config-induced divergence, present from the start).
    pub last_common_cut: Option<SimTime>,
    /// The first grid cut where the state fingerprints differ; `None`
    /// when every compared cut agreed.
    pub first_divergent_cut: Option<SimTime>,
    /// The first divergent dispatched event in the replay window;
    /// `None` when the streams never diverged.
    pub divergence: Option<EventDivergence>,
    /// The two runs are bit-identical: every cut fingerprint and the
    /// entire replayed event stream agreed.
    pub identical: bool,
}

impl BisectReport {
    /// Human-readable triage summary, one finding per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.identical {
            out.push_str(&format!(
                "identical: {} grid cuts and the full event stream agree\n",
                self.cuts_compared
            ));
            return out;
        }
        out.push_str(&format!(
            "compared {} grid cuts every {:.3} s\n",
            self.cuts_compared,
            self.interval.as_nanos() as f64 / 1e9
        ));
        match self.last_common_cut {
            Some(t) => out.push_str(&format!(
                "last common state     t = {:.6} s\n",
                t.as_nanos() as f64 / 1e9
            )),
            None => out.push_str("runs differ from the very first cut (config-induced)\n"),
        }
        if let Some(t) = self.first_divergent_cut {
            out.push_str(&format!(
                "first divergent state t = {:.6} s\n",
                t.as_nanos() as f64 / 1e9
            ));
        }
        match &self.divergence {
            Some(d) => {
                out.push_str(&format!(
                    "first divergent event t = {:.9} s  class {}  node {}  rank {:#034x}  \
                     (dispatch #{} after the replay start)\n",
                    d.at.as_nanos() as f64 / 1e9,
                    d.class,
                    d.node.map(|n| n.to_string()).unwrap_or_else(|| "-".into()),
                    d.rank,
                    d.index
                ));
                out.push_str(&format!(
                    "  A: {}\n  B: {}\n",
                    d.a.as_deref().unwrap_or("<stream ended>"),
                    d.b.as_deref().unwrap_or("<stream ended>")
                ));
            }
            None => out.push_str(
                "event streams agree; the state difference is in event *content* \
                 carried forward silently — inspect the divergent cut's snapshot\n",
            ),
        }
        out
    }
}

/// One run's grid fingerprints plus the snapshots behind them.
fn grid_snapshots(cfg: &ScenarioConfig, interval: Duration) -> Vec<SimSnapshot> {
    let sink = std::sync::Mutex::new(Vec::new());
    let push = |s: SimSnapshot| sink.lock().unwrap().push(s);
    let outcome = Simulator::new(cfg.clone()).run_with_hooks(RunHooks {
        cancel: None,
        checkpoint_every: Some(interval),
        checkpoint_sink: Some(&push),
    });
    match outcome {
        RunOutcome::Completed(_) => {}
        RunOutcome::Cancelled(_) => unreachable!("no cancel token was supplied"),
    }
    sink.into_inner().unwrap()
}

/// Replay `cfg` from `from` (or from scratch), recording every
/// dispatched event as `(time, rank, debug)`.
fn replay(cfg: &ScenarioConfig, from: Option<&SimSnapshot>) -> Vec<(SimTime, u128, String)> {
    let sim = match from {
        Some(snap) => Simulator::restore(cfg.clone(), snap)
            .expect("replaying a snapshot this very run captured"),
        None => Simulator::new(cfg.clone()),
    };
    let mut events = Vec::new();
    sim.run_with_observer(|ev: &SimEvent, at| {
        events.push((at, ev.rank(), format!("{ev:?}")));
    });
    events
}

/// Localize the first divergence between two scenarios that should be
/// bit-identical. Both are forced onto the single-threaded engine (the
/// replay observer sees the canonical dispatch order there; sharded
/// runs are bit-identical to it anyway, so nothing is lost).
pub fn bisect_configs(
    mut cfg_a: ScenarioConfig,
    mut cfg_b: ScenarioConfig,
    interval: Duration,
) -> BisectReport {
    cfg_a.execution = None;
    cfg_b.execution = None;

    let snaps_a = grid_snapshots(&cfg_a, interval);
    let snaps_b = grid_snapshots(&cfg_b, interval);
    let cuts = snaps_a.len().min(snaps_b.len());

    // Binary search for the state split. Fingerprints agree on a prefix
    // and disagree on the suffix — a deterministic run cannot
    // re-converge once its state differs — so the first disagreeing cut
    // is a monotone boundary.
    let agrees = |i: usize| -> bool {
        snaps_a[i].state_fingerprint() == snaps_b[i].state_fingerprint()
            && snaps_a[i].time() == snaps_b[i].time()
    };
    let first_bad = if cuts == 0 || agrees(cuts - 1) {
        cuts // every compared cut agrees
    } else if !agrees(0) {
        0
    } else {
        // Invariant: agrees(lo), !agrees(hi).
        let (mut lo, mut hi) = (0usize, cuts - 1);
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if agrees(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        hi
    };

    // The replay window starts at the last behaviorally-common cut:
    // when every cut agrees the split (if any) is past the final cut;
    // when even the first cut disagrees the runs must replay from
    // scratch (a config-induced divergence, live from t = 0).
    let last_common: Option<usize> = if cuts == 0 {
        None
    } else if first_bad == cuts {
        Some(cuts - 1)
    } else {
        first_bad.checked_sub(1)
    };

    let events_a = replay(&cfg_a, last_common.map(|i| &snaps_a[i]));
    let events_b = replay(&cfg_b, last_common.map(|i| &snaps_b[i]));

    let mut divergence = None;
    let n = events_a.len().max(events_b.len());
    for i in 0..n {
        let a = events_a.get(i);
        let b = events_b.get(i);
        if a != b {
            // Report the side that dispatches first (smaller key), so
            // the answer names the event that *introduced* the split.
            let lead = match (a, b) {
                (Some(x), Some(y)) => {
                    if (y.0, y.1) < (x.0, x.1) {
                        y
                    } else {
                        x
                    }
                }
                (one, other) => one
                    .or(other)
                    .expect("one side has an event at a divergent index"),
            };
            divergence = Some(EventDivergence {
                at: lead.0,
                rank: lead.1,
                class: class_name((lead.1 >> 96) as u32),
                node: Some(((lead.1 >> 64) & 0xFFFF_FFFF) as u32).filter(|_| (lead.1 >> 96) < 11),
                index: i,
                a: a.map(|e| e.2.clone()),
                b: b.map(|e| e.2.clone()),
            });
            break;
        }
    }

    let identical = first_bad == cuts && divergence.is_none();
    BisectReport {
        interval,
        cuts_compared: cuts,
        last_common_cut: last_common.map(|i| snaps_a[i].time()),
        first_divergent_cut: (first_bad < cuts).then(|| snaps_a[first_bad].time()),
        divergence,
        identical,
    }
}
