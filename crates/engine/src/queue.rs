//! Deterministic event queue.
//!
//! A binary heap keyed on `(time, rank, sequence)`. The rank is a
//! caller-supplied content-derived priority ([`EventQueue::schedule_ranked`];
//! plain [`EventQueue::schedule_at`] uses rank 0), so same-instant ordering
//! can be made a pure function of event *content* rather than scheduling
//! history — the property that lets independently built queues (e.g. one per
//! spatial shard) agree on tie order. The sequence number is a monotone
//! insertion counter breaking any remaining ties in scheduling order. This
//! is the property that makes whole simulation runs reproducible: with
//! `(time)` alone, heap internals would decide tie order and results would
//! vary across std versions.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{Duration, SimTime};

/// An event in the queue: a payload tagged with its due time, rank, and
/// insertion sequence.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// Instant at which the event fires.
    pub at: SimTime,
    /// Content-derived same-instant priority (0 unless scheduled through
    /// [`EventQueue::schedule_ranked`]).
    pub rank: u128,
    /// Insertion-order tiebreaker (unique per queue).
    pub seq: u64,
    /// The domain payload.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.rank == other.rank && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    /// Reversed so the `BinaryHeap` (a max-heap) pops the *earliest* event.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.rank.cmp(&self.rank))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The simulation event queue.
///
/// ```
/// use pcmac_engine::{EventQueue, SimTime, Duration};
///
/// let mut q: EventQueue<&'static str> = EventQueue::new();
/// q.schedule_at(SimTime::from_nanos(20), "later");
/// q.schedule_at(SimTime::from_nanos(10), "sooner");
/// assert_eq!(q.pop().unwrap().event, "sooner");
/// assert_eq!(q.pop().unwrap().event, "later");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    seq: u64,
    now: SimTime,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at t=0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            scheduled_total: 0,
        }
    }

    /// An empty queue with pre-reserved capacity (the hot loop of a 50-node
    /// run keeps tens of thousands of in-flight events).
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
            now: SimTime::ZERO,
            scheduled_total: 0,
        }
    }

    /// Current simulation time: the due time of the last popped event.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are waiting.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (diagnostics).
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Schedule `event` at the absolute instant `at`.
    ///
    /// Scheduling in the past is a logic error and panics in debug builds;
    /// in release it clamps to `now` (the event fires immediately but in
    /// deterministic order).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        self.schedule_ranked(at, 0, event);
    }

    /// Schedule `event` at `at` with a content-derived same-instant `rank`.
    ///
    /// Events due at the same instant pop in ascending rank order, with the
    /// insertion sequence breaking any remaining tie. Callers that derive the
    /// rank purely from event content make same-instant ordering independent
    /// of scheduling history, which is what allows independently constructed
    /// queues (one per spatial shard, say) to agree on tie order.
    pub fn schedule_ranked(&mut self, at: SimTime, rank: u128, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {:?} < {:?}",
            at,
            self.now
        );
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.scheduled_total += 1;
        self.heap.push(ScheduledEvent {
            at,
            rank,
            seq,
            event,
        });
    }

    /// Keep only the events for which `keep` returns `true`, discarding the
    /// rest as if they had never been scheduled (their contribution to
    /// [`EventQueue::scheduled_total`] is removed too). Surviving events keep
    /// their original due times, ranks, and sequence numbers, so relative
    /// ordering is untouched. Used to carve a shard's queue out of a full
    /// replica at build time.
    pub fn retain(&mut self, mut keep: impl FnMut(&E) -> bool) {
        let events = std::mem::take(&mut self.heap).into_vec();
        let mut kept = BinaryHeap::with_capacity(events.len());
        for ev in events {
            if keep(&ev.event) {
                kept.push(ev);
            } else {
                self.scheduled_total -= 1;
            }
        }
        self.heap = kept;
    }

    /// Schedule `event` after `delay` from the current time.
    #[inline]
    pub fn schedule_in(&mut self, delay: Duration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Pop the earliest event and advance the clock to its due time.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.at >= self.now, "time went backwards");
        self.now = ev.at;
        Some(ev)
    }

    /// Due time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Every pending event in canonical pop order — `(at, rank, seq)`
    /// ascending. The sequence numbers themselves are not returned: they
    /// are queue-local scheduling history, and two queues holding the
    /// same events in the same *relative* order behave identically. Used
    /// by checkpointing to capture the queue content-deterministically.
    pub fn pending_in_order(&self) -> Vec<(SimTime, u128, &E)> {
        let mut refs: Vec<&ScheduledEvent<E>> = self.heap.iter().collect();
        refs.sort_by_key(|e| (e.at, e.rank, e.seq));
        refs.into_iter().map(|e| (e.at, e.rank, &e.event)).collect()
    }

    /// An empty queue whose clock starts at `now` and whose
    /// [`EventQueue::scheduled_total`] starts at `base_total` — the
    /// restore-side counterpart of [`EventQueue::pending_in_order`].
    /// Re-scheduling the captured events in their canonical order hands
    /// them fresh ascending sequence numbers, preserving tie order, and
    /// brings the schedule count back to its pre-capture value.
    pub fn restored(now: SimTime, base_total: u64) -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now,
            scheduled_total: base_total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(30), 3);
        q.schedule_at(SimTime::from_nanos(10), 1);
        q.schedule_at(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_to_popped_time() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(42), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(42));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(100), "a");
        q.pop();
        q.schedule_in(Duration::from_nanos(50), "b");
        let e = q.pop().unwrap();
        assert_eq!(e.at, SimTime::from_nanos(150));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_schedule_pop_preserves_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(10), 1);
        q.schedule_at(SimTime::from_nanos(30), 3);
        assert_eq!(q.pop().unwrap().event, 1);
        q.schedule_at(SimTime::from_nanos(20), 2);
        assert_eq!(q.pop().unwrap().event, 2);
        assert_eq!(q.pop().unwrap().event, 3);
        assert!(q.is_empty());
    }

    #[test]
    fn ranked_ties_pop_in_rank_order_regardless_of_insertion() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        q.schedule_ranked(t, 30, "c");
        q.schedule_ranked(t, 10, "a");
        q.schedule_ranked(t, 20, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_ranks_fall_back_to_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..50 {
            q.schedule_ranked(t, 7, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn retain_drops_events_and_their_schedule_count() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.schedule_at(SimTime::from_nanos(i), i);
        }
        q.retain(|e| e % 2 == 0);
        assert_eq!(q.scheduled_total(), 5);
        assert_eq!(q.len(), 5);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn counts_scheduled_total() {
        let mut q = EventQueue::new();
        for i in 0..5u64 {
            q.schedule_at(SimTime::from_nanos(i), ());
        }
        while q.pop().is_some() {}
        assert_eq!(q.scheduled_total(), 5);
    }
}
