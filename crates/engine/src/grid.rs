//! Uniform-grid spatial index over node positions.
//!
//! The wireless channel must answer one query per transmission: *which
//! nodes could possibly receive this frame above the interference
//! floor?* The naive answer scans all N nodes. [`UniformGrid`] buckets
//! nodes into square cells sized to the maximum reception range, so a
//! query visits only the cells whose squares intersect the reception
//! disc — O(k) in the local neighbourhood instead of O(N) in the
//! network.
//!
//! Guarantees the channel relies on:
//!
//! * **Superset**: [`UniformGrid::query_circle`] returns every node
//!   whose position lies within the query radius of the centre (it may
//!   also return nearby misses — callers re-check exactly, which they
//!   must do anyway to apply the propagation model).
//! * **Determinism**: results are sorted by node id, so event schedules
//!   derived from a query are independent of bucket iteration order and
//!   of the update history that produced the current bucket layout.
//!
//! Updates are incremental: [`UniformGrid::update`] moves one node
//! between buckets only when it crossed a cell boundary, so refreshing
//! positions under mobility costs a few integer operations per node and
//! allocates nothing in the steady state.

use crate::geom::Point;

/// Sentinel cell id marking a node dropped from the index by
/// [`UniformGrid::retain_nodes`] — it sits in no bucket and never
/// appears in query results.
pub const UNTRACKED: u32 = u32::MAX;

/// A uniform bucket grid over a rectangular field.
#[derive(Debug, Clone)]
pub struct UniformGrid {
    /// Cell edge length (m).
    cell: f64,
    /// Grid dimensions (cells).
    nx: usize,
    ny: usize,
    /// Per-cell node buckets (row-major, `cy * nx + cx`).
    buckets: Vec<Vec<u32>>,
    /// Current cell of every node (same indexing as `buckets`).
    node_cell: Vec<u32>,
    /// Tracked positions (authoritative copy for boundary checks).
    positions: Vec<Point>,
}

impl UniformGrid {
    /// Build a grid over a `width`×`height` field with the given target
    /// cell size, holding `positions`. The cell size is clamped so the
    /// grid has at least one and at most 128×128 cells; positions
    /// outside the field are clamped onto the border cells, which only
    /// costs accuracy (bigger candidate sets), never correctness.
    pub fn new(width: f64, height: f64, cell: f64, positions: &[Point]) -> Self {
        assert!(width > 0.0 && height > 0.0, "degenerate field");
        assert!(cell > 0.0, "cell size must be positive");
        let nx = (width / cell).ceil().clamp(1.0, 128.0) as usize;
        let ny = (height / cell).ceil().clamp(1.0, 128.0) as usize;
        // Recompute the edge from the clamped dimensions so the grid
        // always covers the whole field.
        let cell = (width / nx as f64).max(height / ny as f64);
        let mut grid = UniformGrid {
            cell,
            nx,
            ny,
            buckets: vec![Vec::new(); nx * ny],
            node_cell: Vec::new(),
            positions: Vec::new(),
        };
        grid.rebuild(positions);
        grid
    }

    /// Cell edge length (m).
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// Number of tracked nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// `true` when no nodes are tracked.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    #[inline]
    fn cell_of(&self, p: Point) -> u32 {
        let cx = ((p.x / self.cell).floor().max(0.0) as usize).min(self.nx - 1);
        let cy = ((p.y / self.cell).floor().max(0.0) as usize).min(self.ny - 1);
        (cy * self.nx + cx) as u32
    }

    /// The cell id currently holding `node` — a stable key for
    /// cell-keyed caches layered on top of the grid (ids are row-major
    /// and dense in `0..nx*ny`).
    #[inline]
    pub fn node_cell(&self, node: u32) -> u32 {
        self.node_cell[node as usize]
    }

    /// Drop all state and re-bucket `positions` (reuses allocations).
    pub fn rebuild(&mut self, positions: &[Point]) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.positions.clear();
        self.positions.extend_from_slice(positions);
        self.node_cell.clear();
        for (i, &p) in positions.iter().enumerate() {
            let c = self.cell_of(p);
            self.node_cell.push(c);
            self.buckets[c as usize].push(i as u32);
        }
    }

    /// `true` while `node` still sits in a bucket (i.e. was not dropped
    /// by [`UniformGrid::retain_nodes`]).
    #[inline]
    pub fn is_tracked(&self, node: u32) -> bool {
        self.node_cell[node as usize] != UNTRACKED
    }

    /// Drop every node `keep` rejects from the buckets, marking its cell
    /// [`UNTRACKED`]. Queries then never return it and updates to it are
    /// forbidden. The owner-only region shards use this to keep only
    /// their owned nodes plus the boundary halo in the index — bucket
    /// memory (and query work) shrinks to the tracked population.
    pub fn retain_nodes(&mut self, keep: impl Fn(u32) -> bool) {
        for b in &mut self.buckets {
            b.retain(|&n| keep(n));
        }
        for (i, c) in self.node_cell.iter_mut().enumerate() {
            if !keep(i as u32) {
                *c = UNTRACKED;
            }
        }
    }

    /// Move `node` to `pos`, re-bucketing only on cell crossings.
    pub fn update(&mut self, node: u32, pos: Point) {
        let i = node as usize;
        self.positions[i] = pos;
        let new_cell = self.cell_of(pos);
        let old_cell = self.node_cell[i];
        assert!(old_cell != UNTRACKED, "update of an untracked node");
        if new_cell == old_cell {
            return;
        }
        let old = &mut self.buckets[old_cell as usize];
        let at = old
            .iter()
            .position(|&n| n == node)
            .expect("node tracked in its recorded cell");
        old.swap_remove(at);
        self.buckets[new_cell as usize].push(node);
        self.node_cell[i] = new_cell;
    }

    /// Append to `out` every node whose position can lie within `radius`
    /// of `center` — a superset of the exact disc, limited to the cells
    /// intersecting its bounding box. `exclude` drops one node (typically
    /// the querying transmitter) during bucket iteration, so callers
    /// never pay a post-hoc search-and-remove over the result. `out` is
    /// sorted ascending before returning and is **not** cleared first.
    pub fn query_circle(
        &self,
        center: Point,
        radius: f64,
        exclude: Option<u32>,
        out: &mut Vec<u32>,
    ) {
        debug_assert!(radius >= 0.0);
        let lo_x = (((center.x - radius) / self.cell).floor().max(0.0) as usize).min(self.nx - 1);
        let hi_x = (((center.x + radius) / self.cell).floor().max(0.0) as usize).min(self.nx - 1);
        let lo_y = (((center.y - radius) / self.cell).floor().max(0.0) as usize).min(self.ny - 1);
        let hi_y = (((center.y + radius) / self.cell).floor().max(0.0) as usize).min(self.ny - 1);
        let r_sq = radius * radius;
        let skip = exclude.unwrap_or(u32::MAX);
        for cy in lo_y..=hi_y {
            for cx in lo_x..=hi_x {
                for &n in &self.buckets[cy * self.nx + cx] {
                    // Exact distance pre-cull: cheap, and keeps candidate
                    // sets tight for the caller's per-node work.
                    if n != skip && self.positions[n as usize].distance_sq(center) <= r_sq {
                        out.push(n);
                    }
                }
            }
        }
        out.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute(positions: &[Point], center: Point, radius: f64) -> Vec<u32> {
        (0..positions.len() as u32)
            .filter(|&i| positions[i as usize].distance_sq(center) <= radius * radius)
            .collect()
    }

    fn scatter(n: usize, w: f64, h: f64, seed: u64) -> Vec<Point> {
        // Cheap deterministic scatter (LCG) — no RNG dependency needed.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| Point::new(next() * w, next() * h)).collect()
    }

    #[test]
    fn query_matches_brute_force() {
        let pts = scatter(200, 1000.0, 1000.0, 7);
        let grid = UniformGrid::new(1000.0, 1000.0, 120.0, &pts);
        for (i, &c) in pts.iter().enumerate().step_by(17) {
            for radius in [0.0, 35.0, 120.0, 333.3, 1500.0] {
                let mut got = Vec::new();
                grid.query_circle(c, radius, None, &mut got);
                assert_eq!(got, brute(&pts, c, radius), "center {i} radius {radius}");
            }
        }
    }

    #[test]
    fn updates_track_movement() {
        let mut pts = scatter(50, 500.0, 500.0, 3);
        let mut grid = UniformGrid::new(500.0, 500.0, 60.0, &pts);
        // Move every node a few times, checking queries stay exact.
        let moves = scatter(50 * 3, 500.0, 500.0, 99);
        for (step, &m) in moves.iter().enumerate() {
            let node = step % 50;
            pts[node] = m;
            grid.update(node as u32, m);
            let mut got = Vec::new();
            grid.query_circle(m, 130.0, None, &mut got);
            assert_eq!(got, brute(&pts, m, 130.0), "after move {step}");
        }
    }

    #[test]
    fn out_of_field_positions_are_clamped_not_lost() {
        let pts = vec![
            Point::new(-50.0, -50.0),
            Point::new(2000.0, 2000.0),
            Point::new(500.0, 500.0),
        ];
        let grid = UniformGrid::new(1000.0, 1000.0, 100.0, &pts);
        let mut got = Vec::new();
        grid.query_circle(Point::new(500.0, 500.0), 5000.0, None, &mut got);
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn tiny_cell_request_is_clamped() {
        let pts = scatter(20, 1000.0, 1000.0, 1);
        let grid = UniformGrid::new(1000.0, 1000.0, 0.001, &pts);
        // 128×128 cap ⇒ cell ≥ ~7.8 m.
        assert!(grid.cell_size() >= 1000.0 / 128.0 - 1e-9);
        let mut got = Vec::new();
        grid.query_circle(Point::new(0.0, 0.0), 2000.0, None, &mut got);
        assert_eq!(got.len(), 20);
    }

    #[test]
    fn results_sorted_regardless_of_history() {
        let pts = scatter(100, 300.0, 300.0, 11);
        let mut grid = UniformGrid::new(300.0, 300.0, 40.0, &pts);
        // Shuffle bucket orders via updates.
        for i in (0..100).rev() {
            grid.update(i as u32, pts[i]);
        }
        let mut got = Vec::new();
        grid.query_circle(Point::new(150.0, 150.0), 200.0, None, &mut got);
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(got, sorted);
    }

    #[test]
    fn exclude_drops_exactly_one_node() {
        let pts = scatter(150, 800.0, 800.0, 5);
        let grid = UniformGrid::new(800.0, 800.0, 90.0, &pts);
        for (i, &c) in pts.iter().enumerate().step_by(13) {
            let mut all = Vec::new();
            grid.query_circle(c, 250.0, None, &mut all);
            let mut without = Vec::new();
            grid.query_circle(c, 250.0, Some(i as u32), &mut without);
            let expect: Vec<u32> = all.iter().copied().filter(|&n| n != i as u32).collect();
            assert_eq!(without, expect, "center {i}");
        }
    }

    #[test]
    fn retain_nodes_prunes_queries_and_memory() {
        let pts = scatter(120, 700.0, 700.0, 21);
        let mut grid = UniformGrid::new(700.0, 700.0, 80.0, &pts);
        // Keep every third node only.
        grid.retain_nodes(|n| n % 3 == 0);
        for n in 0..120u32 {
            assert_eq!(grid.is_tracked(n), n % 3 == 0);
        }
        let mut got = Vec::new();
        grid.query_circle(Point::new(350.0, 350.0), 1000.0, None, &mut got);
        let expect: Vec<u32> = (0..120).filter(|n| n % 3 == 0).collect();
        assert_eq!(got, expect);
        // Tracked nodes still update and query exactly.
        grid.update(3, Point::new(10.0, 10.0));
        let mut near = Vec::new();
        grid.query_circle(Point::new(10.0, 10.0), 1.0, None, &mut near);
        assert_eq!(near, vec![3]);
    }

    #[test]
    #[should_panic(expected = "untracked")]
    fn updating_an_untracked_node_panics() {
        let pts = scatter(10, 100.0, 100.0, 2);
        let mut grid = UniformGrid::new(100.0, 100.0, 20.0, &pts);
        grid.retain_nodes(|n| n != 4);
        grid.update(4, Point::new(1.0, 1.0));
    }

    #[test]
    fn node_cell_tracks_updates() {
        let pts = scatter(30, 600.0, 600.0, 9);
        let mut grid = UniformGrid::new(600.0, 600.0, 100.0, &pts);
        for (i, &p) in pts.iter().enumerate() {
            assert_eq!(grid.node_cell(i as u32), grid.cell_of(p));
        }
        let dest = Point::new(599.0, 1.0);
        grid.update(4, dest);
        assert_eq!(grid.node_cell(4), grid.cell_of(dest));
    }
}
