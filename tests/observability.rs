//! Observer-hook and physical-plausibility tests: watch every event of a
//! run and cross-check the simulation against physics-level invariants.

use std::cell::RefCell;
use std::collections::HashMap;

use pcmac::{NodeSetup, ScenarioConfig, SimEvent, Simulator, Variant};
use pcmac_engine::{Duration, Milliwatts, Point, SimTime};

#[test]
fn observer_sees_events_in_time_order() {
    let cfg = ScenarioConfig::two_nodes(Variant::Pcmac, 80.0, 100_000.0, 42)
        .with_duration(Duration::from_secs(2));
    let times = RefCell::new(Vec::new());
    let report = Simulator::new(cfg).run_with_observer(|_, at| times.borrow_mut().push(at));
    let times = times.into_inner();
    assert!(!times.is_empty());
    assert!(
        times.windows(2).all(|w| w[0] <= w[1]),
        "time went backwards"
    );
    assert!(report.delivered_packets > 0);
}

#[test]
fn every_arrival_start_has_matching_end() {
    let cfg = ScenarioConfig::two_nodes(Variant::Basic, 80.0, 100_000.0, 42)
        .with_duration(Duration::from_secs(2));
    let open = RefCell::new(HashMap::new());
    let unmatched_ends;
    {
        let open = &open;
        let unmatched = RefCell::new(0u64);
        Simulator::new(cfg).run_with_observer(|ev, _| match ev {
            SimEvent::ArrivalStart { node, key, .. } => {
                open.borrow_mut().insert((*node, *key), ());
            }
            SimEvent::ArrivalEnd { node, key }
                if open.borrow_mut().remove(&(*node, *key)).is_none() =>
            {
                *unmatched.borrow_mut() += 1;
            }
            _ => {}
        });
        unmatched_ends = unmatched.into_inner();
    }
    assert_eq!(unmatched_ends, 0, "ArrivalEnd without ArrivalStart");
    // Ends scheduled past the horizon may remain open; they must be few
    // (at most the frames in flight at cutoff).
    assert!(
        open.borrow().len() < 8,
        "{} arrivals left open",
        open.borrow().len()
    );
}

#[test]
fn received_power_is_physically_bounded() {
    let cfg = ScenarioConfig::two_nodes(Variant::Basic, 80.0, 100_000.0, 42)
        .with_duration(Duration::from_secs(2));
    let max_power = Milliwatts(281.83815);
    Simulator::new(cfg).run_with_observer(|ev, _| {
        if let SimEvent::ArrivalStart { power, .. } = ev {
            assert!(power.value() > 0.0);
            assert!(
                power.value() <= max_power.value(),
                "received more power than anyone transmits: {power}"
            );
        }
    });
}

#[test]
fn arrivals_respect_propagation_delay() {
    // Two nodes 299.79 m apart: propagation delay must be 1 µs.
    let mut cfg = ScenarioConfig::two_nodes(Variant::Basic, 100.0, 50_000.0, 1)
        .with_duration(Duration::from_secs(1));
    cfg.nodes = NodeSetup::Static(vec![Point::new(0.0, 500.0), Point::new(299.792_458, 500.0)]);
    // 300 m is out of decode range for low classes but Basic transmits at
    // max (decode 250 m < 300 m...). Use carrier-sense arrivals anyway:
    // the event timing is what we check, not decodability.
    let tx_end_at = RefCell::new(None::<SimTime>);
    let arrival_at = RefCell::new(None::<SimTime>);
    Simulator::new(cfg).run_with_observer(|ev, at| match ev {
        SimEvent::ArrivalStart { .. } if arrival_at.borrow().is_none() => {
            *arrival_at.borrow_mut() = Some(at);
        }
        SimEvent::TxEnd { .. } if tx_end_at.borrow().is_none() => {
            *tx_end_at.borrow_mut() = Some(at);
        }
        _ => {}
    });
    let arrival = arrival_at.into_inner().expect("some frame arrived");
    // The first transmission starts at arrival − 1 µs… easier: arrival
    // times are offset from (unobservable) tx starts by exactly 1 µs, so
    // the arrival instant must not be a whole-µs multiple of slot-aligned
    // MAC times; assert the sub-microsecond structure directly:
    let ns_within_us = arrival.as_nanos() % 1_000;
    assert_eq!(
        ns_within_us, 0,
        "1 µs propagation delay must keep ns-level alignment"
    );
    assert_eq!(
        arrival.as_nanos() % 1_000_000 % 1_000,
        0,
        "arrival carries the exact 1 µs flight time"
    );
}

#[test]
fn interference_floor_culls_weak_arrivals() {
    // Same topology, two floors: a high floor must schedule fewer arrival
    // events (weak frames culled at the channel).
    let count_events = |floor: f64| {
        let mut cfg = ScenarioConfig::two_nodes(Variant::Basic, 100.0, 100_000.0, 5)
            .with_duration(Duration::from_secs(2));
        cfg.nodes = NodeSetup::Static(vec![
            Point::new(0.0, 500.0),
            Point::new(100.0, 500.0),
            Point::new(990.0, 500.0), // distant bystander
        ]);
        cfg.interference_floor = Milliwatts(floor);
        let n = RefCell::new(0u64);
        Simulator::new(cfg).run_with_observer(|ev, _| {
            if matches!(ev, SimEvent::ArrivalStart { .. }) {
                *n.borrow_mut() += 1;
            }
        });
        n.into_inner()
    };
    let low_floor = count_events(1.559e-12);
    let high_floor = count_events(1.559e-8); // = CSThresh: bystander culled
    assert!(
        high_floor < low_floor,
        "floor must cull: {high_floor} !< {low_floor}"
    );
}

#[test]
fn ctrl_channel_events_only_under_pcmac() {
    let count_ctrl = |variant| {
        let cfg = ScenarioConfig::two_nodes(variant, 80.0, 100_000.0, 42)
            .with_duration(Duration::from_secs(2));
        let n = RefCell::new(0u64);
        Simulator::new(cfg).run_with_observer(|ev, _| {
            if matches!(ev, SimEvent::CtrlArrivalStart { .. }) {
                *n.borrow_mut() += 1;
            }
        });
        n.into_inner()
    };
    assert!(count_ctrl(Variant::Pcmac) > 0);
    assert_eq!(count_ctrl(Variant::Basic), 0);
    assert_eq!(count_ctrl(Variant::Scheme2), 0);
}
