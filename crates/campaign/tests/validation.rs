//! Load-time validation: defective specs must fail with actionable
//! messages naming the problem, not panic mid-run.

use pcmac::{FlowShape, ScenarioConfig, Variant};
use pcmac_campaign::{
    AodvSpec, AxesSpec, Axis, CampaignSpec, ExecutionSpec, NodesSpec, PlacementSpec, ProtocolSpec,
    RadioSpec, ScenarioSpec, TrafficPattern, TrafficSpec, PATCH_PATHS,
};
use serde::Value;

fn valid_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "ok".into(),
        variant: Variant::Basic,
        duration_s: 5.0,
        field: (1000.0, 1000.0),
        nodes: NodesSpec {
            count: Some(6),
            placement: PlacementSpec::Uniform,
            mobility: None,
        },
        traffic: TrafficSpec {
            pattern: TrafficPattern::RandomPairs { flows: 3 },
            bytes: 512,
            offered_load_kbps: 200.0,
            shape: FlowShape::Cbr,
        },
        power_levels_mw: None,
        shadowing: None,
        protocol: None,
        radio: None,
        aodv: None,
        faults: None,
        metrics: None,
        trace: None,
        execution: None,
    }
}

/// The spec must fail validation and the combined message must contain
/// `needle` so users can find the defect.
fn assert_problem(spec: &ScenarioSpec, needle: &str) {
    let err = spec.validate().expect_err("spec must be rejected");
    let all = err.problems.join("\n");
    assert!(
        all.contains(needle),
        "expected problem containing {needle:?}, got:\n{all}"
    );
}

#[test]
fn the_baseline_is_valid() {
    valid_spec().validate().expect("baseline valid");
    valid_spec().materialize(1).expect("and materializes");
}

#[test]
fn zero_nodes_is_rejected() {
    let mut s = valid_spec();
    s.nodes.count = Some(0);
    assert_problem(&s, "zero nodes");
}

#[test]
fn nan_and_negative_loads_are_rejected() {
    let mut s = valid_spec();
    s.traffic.offered_load_kbps = f64::NAN;
    assert_problem(&s, "offered load");
    s.traffic.offered_load_kbps = -10.0;
    assert_problem(&s, "offered load");
    s.traffic.offered_load_kbps = 0.0;
    assert_problem(&s, "offered load");
}

#[test]
fn out_of_range_flow_endpoints_are_rejected() {
    let mut s = valid_spec();
    s.traffic.pattern = TrafficPattern::Explicit {
        pairs: vec![(0, 99)],
    };
    assert_problem(&s, "out of range");
    // Self-loops too.
    s.traffic.pattern = TrafficPattern::Explicit {
        pairs: vec![(2, 2)],
    };
    assert_problem(&s, "source and destination");
}

#[test]
fn too_many_neighbour_pairs_are_rejected() {
    let mut s = valid_spec();
    s.traffic.pattern = TrafficPattern::NeighbourPairs { flows: 4 };
    assert_problem(&s, "neighbour pairs");
}

#[test]
fn bad_power_levels_are_rejected() {
    let mut s = valid_spec();
    s.power_levels_mw = Some(vec![]);
    assert_problem(&s, "empty");
    s.power_levels_mw = Some(vec![10.0, 5.0]);
    assert_problem(&s, "strictly increasing");
    s.power_levels_mw = Some(vec![-1.0, 5.0]);
    assert_problem(&s, "positive");
}

#[test]
fn bad_mobility_and_duration_are_rejected() {
    let mut s = valid_spec();
    s.duration_s = 0.0;
    assert_problem(&s, "duration");
    let mut s = valid_spec();
    s.nodes.mobility = Some(pcmac_campaign::MobilitySpec {
        speed_mps: f64::INFINITY,
        pause_s: 1.0,
    });
    assert_problem(&s, "speed");
}

#[test]
fn placements_that_overflow_the_field_are_rejected() {
    let mut s = valid_spec();
    s.nodes.placement = PlacementSpec::Ring { radius: 5000.0 };
    assert_problem(&s, "does not fit the");
    let mut s = valid_spec();
    s.nodes.count = Some(12);
    s.nodes.placement = PlacementSpec::Chain { spacing: 150.0 };
    assert_problem(&s, "exceeds the field width");
    let mut s = valid_spec();
    s.nodes.placement = PlacementSpec::Explicit {
        points: (0..6)
            .map(|i| pcmac_engine::Point::new(400.0 * i as f64, 100.0))
            .collect(),
    };
    s.nodes.count = None;
    assert_problem(&s, "outside the");
}

#[test]
fn over_shrunk_durations_are_rejected() {
    // 3 flows start staggered up to 1.274 s; a 1 s run strands them.
    let mut s = valid_spec();
    s.duration_s = 1.0;
    assert_problem(&s, "no airtime");
    // The campaign-level duration override is checked too.
    let c = CampaignSpec {
        name: "c".into(),
        base: valid_spec(),
        duration_s: Some(1.2),
        seeds: vec![1],
        axes: None,
        sweep: None,
    };
    let err = c.validate().expect_err("override too short");
    assert!(
        err.problems.iter().any(|p| p.contains("no airtime")),
        "{:?}",
        err.problems
    );
}

#[test]
fn every_problem_is_reported_at_once() {
    let mut s = valid_spec();
    s.nodes.count = Some(0);
    s.traffic.offered_load_kbps = -1.0;
    s.duration_s = f64::NAN;
    let err = s.validate().expect_err("rejected");
    assert!(
        err.problems.len() >= 3,
        "one pass must find all defects, got {:?}",
        err.problems
    );
}

#[test]
fn campaign_axis_defects_are_rejected() {
    let base = valid_spec();
    let mut c = CampaignSpec {
        name: "c".into(),
        base,
        duration_s: None,
        seeds: vec![],
        axes: Some(AxesSpec::default()),
        sweep: None,
    };
    let err = c.validate().expect_err("no seeds");
    assert!(err.problems.iter().any(|p| p.contains("no seeds")));

    c.seeds = vec![1];
    c.axes.as_mut().unwrap().loads_kbps = Some(vec![]);
    let err = c.validate().expect_err("empty axis");
    assert!(err.problems.iter().any(|p| p.contains("loads_kbps")));

    c.axes.as_mut().unwrap().loads_kbps = Some(vec![100.0]);
    c.axes.as_mut().unwrap().node_counts = Some(vec![1]);
    let err = c.validate().expect_err("count < 2");
    assert!(err.problems.iter().any(|p| p.contains("at least 2")));
}

fn sweep_campaign(axes: Vec<Axis>) -> CampaignSpec {
    CampaignSpec {
        name: "sweep".into(),
        base: valid_spec(),
        duration_s: None,
        seeds: vec![1],
        axes: None,
        sweep: Some(axes),
    }
}

#[test]
fn sweep_axis_defects_are_rejected() {
    // Empty axis.
    let c = sweep_campaign(vec![Axis::Load { values: vec![] }]);
    let err = c.validate().expect_err("empty axis");
    assert!(err.problems.iter().any(|p| p.contains("axis is empty")));

    // Unknown patch path, with the supported surface named.
    let c = sweep_campaign(vec![Axis::Patch {
        path: "mac.bogus_knob".into(),
        values: vec![Value::F64(1.0)],
    }]);
    let err = c.validate().expect_err("unknown path");
    assert!(
        err.problems
            .iter()
            .any(|p| p.contains("unknown patch path") && p.contains("mac.pcmac.safety_factor")),
        "{:?}",
        err.problems
    );

    // Type mismatch: a string where a float belongs.
    let c = sweep_campaign(vec![Axis::Patch {
        path: "mac.pcmac.safety_factor".into(),
        values: vec![Value::Str("high".into())],
    }]);
    let err = c.validate().expect_err("type mismatch");
    assert!(
        err.problems.iter().any(|p| p.contains("safety_factor")),
        "{:?}",
        err.problems
    );

    // Semantically-bad value: validation catches it before expansion.
    let c = sweep_campaign(vec![Axis::Patch {
        path: "mac.pcmac.safety_factor".into(),
        values: vec![Value::F64(-0.5)],
    }]);
    let err = c.validate().expect_err("negative safety factor");
    assert!(
        err.problems
            .iter()
            .any(|p| p.contains("safety factor") && p.contains("positive")),
        "{:?}",
        err.problems
    );

    // Two axes sweeping the same knob.
    let mut c = sweep_campaign(vec![Axis::Load {
        values: vec![100.0],
    }]);
    c.axes = Some(AxesSpec {
        loads_kbps: Some(vec![50.0]),
        ..AxesSpec::default()
    });
    let err = c.validate().expect_err("duplicate axis");
    assert!(
        err.problems.iter().any(|p| p.contains("same knob")),
        "{:?}",
        err.problems
    );

    // A first-class axis and its Patch-path spelling collide too: the
    // later axis would silently overwrite the earlier one per cell,
    // leaving duplicate points whose keys lie about what ran.
    let c = sweep_campaign(vec![
        Axis::Load {
            values: vec![100.0, 150.0],
        },
        Axis::Patch {
            path: "traffic.offered_load_kbps".into(),
            values: vec![Value::F64(120.0)],
        },
    ]);
    let err = c.validate().expect_err("first-class vs patch duplicate");
    assert!(
        err.problems
            .iter()
            .any(|p| p.contains("same knob `traffic.offered_load_kbps`")),
        "{:?}",
        err.problems
    );
}

#[test]
fn duration_patch_axis_wins_over_the_campaign_override() {
    // The campaign `duration_s` replaces the *base* duration; a sweep
    // axis over `duration_s` must still take effect per cell (keys that
    // say duration_s=20 must actually run 20 s).
    let mut c = sweep_campaign(vec![Axis::Patch {
        path: "duration_s".into(),
        values: vec![Value::F64(20.0), Value::F64(30.0)],
    }]);
    c.duration_s = Some(10.0);
    let grid = c.grid().expect("grid builds");
    let durations: Vec<f64> = grid.cells.iter().map(|cell| cell.spec.duration_s).collect();
    assert_eq!(durations, vec![20.0, 30.0]);
    // Without the axis, the override applies as before.
    c.sweep = None;
    let grid = c.grid().expect("grid builds");
    assert_eq!(grid.cells[0].spec.duration_s, 10.0);
}

#[test]
fn every_documented_patch_path_applies() {
    // `PATCH_PATHS` is the contract surface: each entry must accept a
    // value of its documented type on the paper's base spec.
    let samples: Vec<(&str, Value)> = vec![
        ("duration_s", Value::F64(30.0)),
        ("variant", Value::Str("Basic".into())),
        ("field.width", Value::F64(800.0)),
        ("field.height", Value::F64(800.0)),
        ("nodes.count", Value::U64(20)),
        (
            "nodes.placement",
            Value::Map(vec![(
                "Grid".into(),
                Value::Map(vec![("spacing".into(), Value::F64(100.0))]),
            )]),
        ),
        ("nodes.mobility.speed_mps", Value::F64(5.0)),
        ("nodes.mobility.pause_s", Value::F64(1.0)),
        (
            "traffic.pattern",
            Value::Map(vec![(
                "NeighbourPairs".into(),
                Value::Map(vec![("flows".into(), Value::U64(10))]),
            )]),
        ),
        ("traffic.offered_load_kbps", Value::F64(400.0)),
        ("traffic.bytes", Value::U64(256)),
        (
            "power_levels_mw",
            Value::Seq(vec![Value::F64(1.0), Value::F64(281.83815)]),
        ),
        ("shadowing.sigma_db", Value::F64(4.0)),
        ("shadowing.symmetric", Value::Bool(false)),
        (
            "faults.crashes",
            Value::Seq(vec![Value::Map(vec![
                ("node".into(), Value::U64(3)),
                ("at_s".into(), Value::F64(10.0)),
                ("recover_s".into(), Value::F64(20.0)),
            ])]),
        ),
        ("faults.churn.mean_uptime_s", Value::F64(20.0)),
        ("faults.churn.mean_downtime_s", Value::F64(5.0)),
        ("faults.churn.start_s", Value::F64(5.0)),
        ("faults.churn.stop_s", Value::F64(25.0)),
        ("faults.expire_routes", Value::Bool(true)),
        (
            "faults.impairments",
            Value::Seq(vec![Value::Map(vec![
                ("start_s".into(), Value::F64(12.0)),
                ("stop_s".into(), Value::F64(18.0)),
                ("extra_loss_db".into(), Value::F64(6.0)),
                ("noise_mult".into(), Value::F64(2.0)),
            ])]),
        ),
        ("faults.energy_budget_mj", Value::F64(5000.0)),
        ("mac.pcmac.safety_factor", Value::F64(0.9)),
        ("mac.pcmac.capture_ratio", Value::F64(8.0)),
        ("mac.pcmac.ctrl_rate_bps", Value::U64(250_000)),
        ("mac.pcmac.history_expiry_s", Value::F64(2.0)),
        ("mac.pcmac.max_retx", Value::U64(6)),
        ("mac.pcmac.four_way_handshake", Value::Bool(true)),
        ("mac.queue_capacity", Value::U64(25)),
        ("mac.rts_threshold", Value::U64(512)),
        ("radio.rx_thresh_mw", Value::F64(4.0e-7)),
        ("radio.cs_thresh_mw", Value::F64(2.0e-8)),
        ("radio.capture_ratio", Value::F64(6.0)),
        ("radio.noise_floor_mw", Value::F64(2.0e-9)),
        ("radio.capture_policy", Value::Str("Continuous".into())),
        ("aodv.active_route_timeout_s", Value::F64(8.0)),
        ("aodv.rreq_cache_timeout_s", Value::F64(5.0)),
        ("aodv.rreq_wait_s", Value::F64(1.5)),
        ("aodv.rreq_retries", Value::U64(2)),
        ("aodv.buffer_capacity", Value::U64(32)),
        ("aodv.buffer_timeout_s", Value::F64(20.0)),
        ("aodv.rreq_ttl", Value::U64(16)),
        ("metrics.probe_interval_s", Value::F64(0.5)),
        ("execution.shards", Value::U64(4)),
        ("execution.delay_floor_us", Value::F64(10.0)),
        ("trace.channel", Value::Bool(true)),
        ("trace.ctrl", Value::Bool(false)),
        ("trace.timers", Value::Bool(false)),
        ("trace.traffic", Value::Bool(true)),
    ];
    let sampled: Vec<&str> = samples.iter().map(|(p, _)| *p).collect();
    assert_eq!(sampled, PATCH_PATHS, "sample table must cover PATCH_PATHS");
    let mut spec = ScenarioSpec::paper();
    for (path, value) in &samples {
        spec.apply_patch(path, value)
            .unwrap_or_else(|e| panic!("{path}: {e}"));
    }
    spec.validate().expect("fully patched spec stays valid");
    spec.materialize(1).expect("and materializes");
}

#[test]
fn execution_overlay_defects_are_rejected() {
    let mut s = valid_spec();
    s.execution = Some(ExecutionSpec {
        shards: Some(0),
        delay_floor_us: Some(10.0),
    });
    assert_problem(&s, "zero shards");

    let mut s = valid_spec();
    s.execution = Some(ExecutionSpec {
        shards: Some(4),
        delay_floor_us: None,
    });
    assert_problem(&s, "delay_floor_us");

    let mut s = valid_spec();
    s.execution = Some(ExecutionSpec {
        shards: Some(4),
        delay_floor_us: Some(-1.0),
    });
    assert_problem(&s, "delay floor");
}

#[test]
fn execution_overlay_materializes_into_sharded_config() {
    use pcmac::ExecutionMode;
    let mut s = valid_spec();
    s.execution = Some(ExecutionSpec {
        shards: Some(2),
        delay_floor_us: Some(10.0),
    });
    let cfg = s.materialize(1).expect("sharded spec materializes");
    assert_eq!(cfg.execution, Some(ExecutionMode::Sharded { shards: 2 }));
    assert_eq!(cfg.delay_floor_us, Some(10.0));
    // Floor without shards: a comparable single-threaded run.
    let mut s = valid_spec();
    s.execution = Some(ExecutionSpec {
        shards: None,
        delay_floor_us: Some(10.0),
    });
    let cfg = s.materialize(1).expect("floored single spec materializes");
    assert_eq!(cfg.execution, None);
    assert_eq!(cfg.delay_floor_us, Some(10.0));
}

#[test]
fn overlay_defects_are_rejected() {
    let mut s = valid_spec();
    s.protocol = Some(ProtocolSpec {
        safety_factor: Some(0.0),
        ..ProtocolSpec::default()
    });
    assert_problem(&s, "safety factor");

    let mut s = valid_spec();
    s.protocol = Some(ProtocolSpec {
        capture_ratio: Some(0.5),
        ..ProtocolSpec::default()
    });
    assert_problem(&s, "at least 1");

    let mut s = valid_spec();
    s.protocol = Some(ProtocolSpec {
        ctrl_rate_bps: Some(0),
        ..ProtocolSpec::default()
    });
    assert_problem(&s, "control channel rate");

    let mut s = valid_spec();
    s.radio = Some(RadioSpec {
        rx_thresh_mw: Some(1.0e-12), // below the 1e-9 default noise floor
        ..RadioSpec::default()
    });
    assert_problem(&s, "noise floor");

    let mut s = valid_spec();
    s.radio = Some(RadioSpec {
        cs_thresh_mw: Some(-1.0),
        ..RadioSpec::default()
    });
    assert_problem(&s, "carrier-sense threshold");

    let mut s = valid_spec();
    s.aodv = Some(AodvSpec {
        rreq_retries: Some(0),
        ..AodvSpec::default()
    });
    assert_problem(&s, "RREQ attempt");
}

#[test]
fn scenario_config_validate_catches_raw_defects() {
    // The same guard exists one level down, for hand-built configs.
    let mut cfg = ScenarioConfig::two_nodes(Variant::Basic, 100.0, 50_000.0, 1);
    cfg.flows[0].dst = pcmac_engine::NodeId(7);
    let err = cfg.validate().expect_err("out-of-range dst");
    assert!(err.problems[0].contains("out of range"), "{err}");

    let mut cfg = ScenarioConfig::two_nodes(Variant::Basic, 100.0, 50_000.0, 1);
    cfg.flows[0].rate_bps = f64::NAN;
    assert!(cfg.validate().is_err(), "NaN rate");

    let cfg = ScenarioConfig::two_nodes(Variant::Basic, 100.0, 50_000.0, 1);
    cfg.validate().expect("stock scenario is valid");
}

#[test]
#[should_panic(expected = "out of range")]
fn simulator_construction_surfaces_the_problem_list() {
    let mut cfg = ScenarioConfig::two_nodes(Variant::Basic, 100.0, 50_000.0, 1);
    cfg.flows[0].dst = pcmac_engine::NodeId(7);
    let _ = pcmac::Simulator::new(cfg);
}
