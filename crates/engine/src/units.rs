//! RF power units.
//!
//! The propagation model and the paper's protocol logic both work in linear
//! watts/milliwatts (tolerances add linearly); humans and the 802.11
//! literature speak dBm. [`Milliwatts`] is the canonical representation;
//! [`Dbm`] is a display/entry convenience. Conversions are exact up to
//! floating point.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Linear power in milliwatts. The workhorse unit: interference sums,
/// tolerances and propagation gains all operate on this.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Milliwatts(pub f64);

/// Logarithmic power in dB-milliwatts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Dbm(pub f64);

impl Milliwatts {
    /// Zero power.
    pub const ZERO: Milliwatts = Milliwatts(0.0);

    /// From watts.
    #[inline]
    pub fn from_watts(w: f64) -> Self {
        Milliwatts(w * 1e3)
    }

    /// To watts.
    #[inline]
    pub fn watts(self) -> f64 {
        self.0 * 1e-3
    }

    /// Raw milliwatt value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// To dBm. Zero or negative power maps to −∞ dBm.
    #[inline]
    pub fn to_dbm(self) -> Dbm {
        Dbm(10.0 * self.0.log10())
    }

    /// `true` if the value is a finite, non-negative power.
    #[inline]
    pub fn is_valid(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }

    /// Linear ratio `self / other` (e.g. an SINR). Returns `+inf` when
    /// `other` is zero and `self` is positive.
    #[inline]
    pub fn ratio(self, other: Milliwatts) -> f64 {
        self.0 / other.0
    }

    /// Clamp from below at zero (interference bookkeeping can accumulate
    /// −1e-18-style float dust when removing contributions).
    #[inline]
    pub fn clamp_non_negative(self) -> Milliwatts {
        Milliwatts(self.0.max(0.0))
    }
}

impl Dbm {
    /// To linear milliwatts.
    #[inline]
    pub fn to_milliwatts(self) -> Milliwatts {
        Milliwatts(10f64.powf(self.0 / 10.0))
    }
}

impl Add for Milliwatts {
    type Output = Milliwatts;
    #[inline]
    fn add(self, rhs: Milliwatts) -> Milliwatts {
        Milliwatts(self.0 + rhs.0)
    }
}

impl AddAssign for Milliwatts {
    #[inline]
    fn add_assign(&mut self, rhs: Milliwatts) {
        self.0 += rhs.0;
    }
}

impl Sub for Milliwatts {
    type Output = Milliwatts;
    #[inline]
    fn sub(self, rhs: Milliwatts) -> Milliwatts {
        Milliwatts(self.0 - rhs.0)
    }
}

impl SubAssign for Milliwatts {
    #[inline]
    fn sub_assign(&mut self, rhs: Milliwatts) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for Milliwatts {
    type Output = Milliwatts;
    #[inline]
    fn mul(self, k: f64) -> Milliwatts {
        Milliwatts(self.0 * k)
    }
}

impl Div<f64> for Milliwatts {
    type Output = Milliwatts;
    #[inline]
    fn div(self, k: f64) -> Milliwatts {
        Milliwatts(self.0 / k)
    }
}

impl fmt::Display for Milliwatts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0 {
            write!(f, "{:.3} mW", self.0)
        } else {
            write!(f, "{:.3e} mW", self.0)
        }
    }
}

impl fmt::Display for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dBm", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbm_roundtrip() {
        for mw in [0.001, 1.0, 281.8, 1000.0] {
            let back = Milliwatts(mw).to_dbm().to_milliwatts();
            assert!((back.0 - mw).abs() / mw < 1e-12);
        }
    }

    #[test]
    fn known_conversions() {
        assert!((Milliwatts(1.0).to_dbm().0 - 0.0).abs() < 1e-12);
        assert!((Milliwatts(100.0).to_dbm().0 - 20.0).abs() < 1e-12);
        assert!((Dbm(30.0).to_milliwatts().0 - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn watts_roundtrip() {
        let p = Milliwatts::from_watts(0.28183815);
        assert!((p.0 - 281.83815).abs() < 1e-9);
        assert!((p.watts() - 0.28183815).abs() < 1e-15);
    }

    #[test]
    fn zero_power_maps_to_neg_inf_dbm() {
        assert_eq!(Milliwatts::ZERO.to_dbm().0, f64::NEG_INFINITY);
    }

    #[test]
    fn linear_arithmetic() {
        let a = Milliwatts(2.0) + Milliwatts(3.0);
        assert_eq!(a, Milliwatts(5.0));
        assert_eq!(a - Milliwatts(1.0), Milliwatts(4.0));
        assert_eq!(a * 2.0, Milliwatts(10.0));
        assert_eq!(a / 5.0, Milliwatts(1.0));
        assert_eq!(Milliwatts(10.0).ratio(Milliwatts(2.0)), 5.0);
    }

    #[test]
    fn clamp_cleans_float_dust() {
        let p = Milliwatts(1.0) - Milliwatts(1.0 + 1e-18);
        assert!(p.0 <= 0.0);
        assert_eq!(p.clamp_non_negative(), Milliwatts::ZERO);
    }
}
