//! The simulator: event dispatch and the wireless channel.
//!
//! The channel is not an object — it is a *pattern*: when a node
//! transmits, the simulator computes the received power at every other
//! node from the propagation model and current positions, and schedules
//! `ArrivalStart`/`ArrivalEnd` events after the speed-of-light delay.
//! Each receiver's radio then decides locally what it heard. Arrivals
//! weaker than the configured interference floor are culled (they cannot
//! affect carrier sense or any plausible SINR).

use std::sync::Arc;

use pcmac_engine::{Duration, EventQueue, Milliwatts, NodeId, Point, RngStream, SimTime};
use pcmac_mac::{CtrlFrame, Frame, MacAction};
use pcmac_mobility::{placement, Mobility, RandomWaypoint};
use pcmac_phy::energy::RadioMode;
use pcmac_phy::radio::RadioEvent;
use pcmac_phy::{Propagation, Shadowed, TwoRayGround};

use crate::config::{NodeSetup, ScenarioConfig};
use crate::event::SimEvent;
use crate::node::{Node, TrafficSource};
use crate::report::RunReport;

/// Speed of light (m/s) for propagation delays.
const C: f64 = 299_792_458.0;

/// A configured, runnable simulation.
pub struct Simulator {
    cfg: ScenarioConfig,
    queue: EventQueue<SimEvent>,
    nodes: Vec<Node>,
    positions: Vec<Point>,
    positions_at: Option<SimTime>,
    any_mobile: bool,
    propagation: Box<dyn Propagation + Send>,
    next_key: u64,
    sent_packets: u64,
}

impl Simulator {
    /// Build the network described by `cfg`.
    pub fn new(cfg: ScenarioConfig) -> Self {
        let n = cfg.nodes.count();
        let mut nodes = Vec::with_capacity(n);
        let mut positions = Vec::with_capacity(n);
        let mut any_mobile = false;

        let starts: Vec<Point> = match &cfg.nodes {
            NodeSetup::UniformWaypoint { count, .. } => {
                let mut rng = RngStream::derive(cfg.seed, "scenario.placement");
                placement::uniform(*count, cfg.field.0, cfg.field.1, &mut rng)
            }
            NodeSetup::Static(pts) => pts.clone(),
        };

        for (i, start) in starts.iter().enumerate() {
            let mobility = match &cfg.nodes {
                NodeSetup::UniformWaypoint { speed, pause, .. } => {
                    any_mobile = true;
                    Mobility::Waypoint(RandomWaypoint::new(
                        *start,
                        cfg.field.0,
                        cfg.field.1,
                        *speed,
                        *pause,
                        RngStream::derive_sub(cfg.seed, "mobility", i as u64),
                    ))
                }
                NodeSetup::Static(_) => Mobility::Static(*start),
            };
            nodes.push(Node::new(
                NodeId(i as u32),
                *start,
                mobility,
                cfg.radio.clone(),
                cfg.mac.clone(),
                cfg.aodv.clone(),
                cfg.seed,
            ));
            positions.push(*start);
        }

        // Attach traffic sources to their homes and schedule first
        // emissions.
        let mut queue = EventQueue::with_capacity(1 << 16);
        for spec in &cfg.flows {
            let home = spec.src.index();
            assert!(home < nodes.len(), "flow source out of range");
            let mut src = TrafficSource::from_spec(spec, cfg.seed);
            if let Some(t0) = src.next_time() {
                let source_idx = nodes[home].sources.len();
                queue.schedule_at(
                    t0,
                    SimEvent::TrafficEmit {
                        node: spec.src,
                        source: source_idx,
                    },
                );
            }
            nodes[home].sources.push(src);
        }

        let propagation: Box<dyn Propagation + Send> = match cfg.shadowing {
            Some(s) => Box::new(Shadowed::new(
                TwoRayGround::ns2_default(),
                s.sigma_db,
                s.symmetric,
                cfg.seed,
            )),
            None => Box::new(TwoRayGround::ns2_default()),
        };
        Simulator {
            cfg,
            queue,
            nodes,
            positions,
            positions_at: None,
            any_mobile,
            propagation,
            next_key: 0,
            sent_packets: 0,
        }
    }

    /// Run to the configured duration and produce the report.
    pub fn run(self) -> RunReport {
        self.run_with_observer(|_, _| {})
    }

    /// Like [`Simulator::run`], but calls `observer` with every event
    /// just before it is dispatched — the hook for packet traces,
    /// animations, or custom measurements. The observer sees events in
    /// exact execution order.
    pub fn run_with_observer(mut self, mut observer: impl FnMut(&SimEvent, SimTime)) -> RunReport {
        let wall_start = std::time::Instant::now();
        let end = SimTime::ZERO + self.cfg.duration;
        while let Some(t) = self.queue.peek_time() {
            if t > end {
                break;
            }
            let ev = self.queue.pop().expect("peeked");
            observer(&ev.event, ev.at);
            self.dispatch(ev.event, ev.at);
        }
        for node in &mut self.nodes {
            node.energy.finish(end);
        }
        RunReport::build(
            &self.cfg,
            &self.nodes,
            self.sent_packets,
            self.queue.scheduled_total(),
            wall_start.elapsed().as_secs_f64(),
        )
    }

    // ------------------------------------------------------------------
    // Event dispatch
    // ------------------------------------------------------------------

    fn dispatch(&mut self, ev: SimEvent, now: SimTime) {
        match ev {
            SimEvent::ArrivalStart {
                node,
                key,
                power,
                end,
                frame,
            } => {
                let mut rad = Vec::new();
                self.nodes[node.index()]
                    .radio
                    .on_arrival_start(key, power, end, &frame, &mut rad);
                self.forward_radio_events(node.index(), rad, now);
            }
            SimEvent::ArrivalEnd { node, key } => {
                let mut rad = Vec::new();
                self.nodes[node.index()].radio.on_arrival_end(key, &mut rad);
                self.forward_radio_events(node.index(), rad, now);
            }
            SimEvent::TxEnd { node } => {
                let i = node.index();
                let mut rad = Vec::new();
                self.nodes[i].radio.end_tx(&mut rad);
                self.nodes[i]
                    .energy
                    .set_mode(now, RadioMode::Idle, Milliwatts::ZERO);
                self.forward_radio_events(i, rad, now);
                let mut acts = Vec::new();
                self.nodes[i].mac.on_tx_end(now, &mut acts);
                self.apply_mac_actions(i, acts, now);
            }
            SimEvent::CtrlArrivalStart {
                node,
                key,
                power,
                end,
                frame,
            } => {
                let mut rad = Vec::new();
                self.nodes[node.index()]
                    .ctrl_radio
                    .on_arrival_start(key, power, end, &frame, &mut rad);
                self.forward_ctrl_events(node.index(), rad, now);
            }
            SimEvent::CtrlArrivalEnd { node, key } => {
                let mut rad = Vec::new();
                self.nodes[node.index()]
                    .ctrl_radio
                    .on_arrival_end(key, &mut rad);
                self.forward_ctrl_events(node.index(), rad, now);
            }
            SimEvent::CtrlTxEnd { node } => {
                let i = node.index();
                let mut rad = Vec::new();
                self.nodes[i].ctrl_radio.end_tx(&mut rad);
                // The tolerance broadcast happens while the data radio is
                // mid-reception; energy for it was accounted at start.
                self.nodes[i].mac.on_ctrl_tx_end(now);
            }
            SimEvent::MacTimer { node, kind, token } => {
                let i = node.index();
                let mut acts = Vec::new();
                self.nodes[i].mac.on_timer(kind, token, now, &mut acts);
                self.apply_mac_actions(i, acts, now);
            }
            SimEvent::AodvTimer { node, dst, token } => {
                let i = node.index();
                let mut acts = Vec::new();
                self.nodes[i]
                    .aodv
                    .on_discovery_timeout(dst, token, now, &mut acts);
                self.apply_aodv_actions(i, acts, now);
            }
            SimEvent::TrafficEmit { node, source } => {
                let i = node.index();
                let (packet, next) = {
                    let src = &mut self.nodes[i].sources[source];
                    let packet = src.emit(now);
                    (packet, src.next_time())
                };
                self.sent_packets += 1;
                if let Some(t) = next {
                    self.queue
                        .schedule_at(t, SimEvent::TrafficEmit { node, source });
                }
                let mut acts = Vec::new();
                self.nodes[i].aodv.send(packet, now, &mut acts);
                self.apply_aodv_actions(i, acts, now);
            }
        }
    }

    // ------------------------------------------------------------------
    // Radio event forwarding
    // ------------------------------------------------------------------

    fn forward_radio_events(
        &mut self,
        i: usize,
        events: Vec<RadioEvent<Arc<Frame>>>,
        now: SimTime,
    ) {
        for ev in events {
            let mut acts = Vec::new();
            {
                let node = &mut self.nodes[i];
                let noise = node.radio.noise_power();
                node.mac.set_noise(noise);
                match ev {
                    RadioEvent::CarrierBusy => node.mac.on_carrier(true, now, &mut acts),
                    RadioEvent::CarrierIdle => node.mac.on_carrier(false, now, &mut acts),
                    RadioEvent::RxStart { power, frame, .. } => {
                        let remaining = node.mac.config().timing.frame_airtime(&frame);
                        node.mac
                            .on_rx_start(&frame, power, noise, remaining, now, &mut acts);
                    }
                    RadioEvent::RxEnd {
                        power, frame, ok, ..
                    } => {
                        node.mac
                            .on_rx_end((*frame).clone(), power, ok, now, &mut acts);
                    }
                }
            }
            self.apply_mac_actions(i, acts, now);
        }
    }

    fn forward_ctrl_events(&mut self, i: usize, events: Vec<RadioEvent<CtrlFrame>>, now: SimTime) {
        for ev in events {
            // The control channel is pure broadcast signalling: no carrier
            // sense, no NAV; only successfully-decoded frames matter.
            if let RadioEvent::RxEnd {
                power,
                frame,
                ok: true,
                ..
            } = ev
            {
                self.nodes[i].mac.on_ctrl_rx(frame, power, now);
            }
        }
    }

    // ------------------------------------------------------------------
    // Action application
    // ------------------------------------------------------------------

    fn apply_mac_actions(&mut self, i: usize, actions: Vec<MacAction>, now: SimTime) {
        for a in actions {
            match a {
                MacAction::TxFrame { frame, power } => self.transmit_frame(i, frame, power, now),
                MacAction::TxCtrl { frame, power } => self.transmit_ctrl(i, frame, power, now),
                MacAction::Arm { kind, delay, token } => {
                    self.queue.schedule_at(
                        now + delay,
                        SimEvent::MacTimer {
                            node: NodeId(i as u32),
                            kind,
                            token,
                        },
                    );
                }
                MacAction::Deliver { packet, from } => {
                    let mut acts = Vec::new();
                    self.nodes[i].aodv.on_packet(packet, from, now, &mut acts);
                    self.apply_aodv_actions(i, acts, now);
                }
                MacAction::LinkFailure { packet, next_hop } => {
                    // Purge other frames queued for the dead hop first, so
                    // the routing agent can salvage or drop them too.
                    let drained = self.nodes[i].mac.drain_next_hop(next_hop);
                    let mut acts = Vec::new();
                    self.nodes[i]
                        .aodv
                        .on_link_failure(packet, next_hop, now, &mut acts);
                    for qp in drained {
                        self.nodes[i]
                            .aodv
                            .on_link_failure(qp.packet, next_hop, now, &mut acts);
                    }
                    self.apply_aodv_actions(i, acts, now);
                }
                MacAction::QueueDrop { .. } => {
                    // Counted inside the MAC; nothing further to do.
                }
            }
        }
    }

    fn apply_aodv_actions(&mut self, i: usize, actions: Vec<pcmac_aodv::AodvAction>, now: SimTime) {
        use pcmac_aodv::AodvAction;
        for a in actions {
            match a {
                AodvAction::Transmit { packet, next_hop } => {
                    let mut acts = Vec::new();
                    self.nodes[i].mac.enqueue(packet, next_hop, now, &mut acts);
                    self.apply_mac_actions(i, acts, now);
                }
                AodvAction::DeliverLocal { packet } => {
                    self.nodes[i].sink.deliver(&packet, now);
                }
                AodvAction::Arm { dst, delay, token } => {
                    self.queue.schedule_at(
                        now + delay,
                        SimEvent::AodvTimer {
                            node: NodeId(i as u32),
                            dst,
                            token,
                        },
                    );
                }
                AodvAction::PeerReset { peer } => {
                    self.nodes[i].mac.reset_peer_state(peer);
                }
                AodvAction::Drop { .. } => {
                    // Counted inside the agent.
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // The wireless channel
    // ------------------------------------------------------------------

    fn refresh_positions(&mut self, now: SimTime) {
        if !self.any_mobile || self.positions_at == Some(now) {
            if self.positions_at.is_none() {
                self.positions_at = Some(now);
            }
            return;
        }
        for (i, node) in self.nodes.iter_mut().enumerate() {
            self.positions[i] = node.mobility.position(now);
        }
        self.positions_at = Some(now);
    }

    fn transmit_frame(&mut self, i: usize, frame: Frame, power: Milliwatts, now: SimTime) {
        let airtime = self.nodes[i].mac.config().timing.frame_airtime(&frame);
        let end = now + airtime;

        let mut rad = Vec::new();
        self.nodes[i].radio.start_tx(end, &mut rad);
        self.nodes[i]
            .energy
            .set_mode(now, RadioMode::Transmit, power);
        self.forward_radio_events(i, rad, now);
        self.queue.schedule_at(
            end,
            SimEvent::TxEnd {
                node: NodeId(i as u32),
            },
        );

        self.refresh_positions(now);
        let frame = Arc::new(frame);
        let key = self.next_key;
        self.next_key += 1;
        let src_pos = self.positions[i];
        for j in 0..self.nodes.len() {
            if j == i {
                continue;
            }
            let dst_pos = self.positions[j];
            let pr = power * self.propagation.gain(src_pos, dst_pos);
            if pr.value() < self.cfg.interference_floor.value() {
                continue;
            }
            let delay = Duration::from_nanos((src_pos.distance(dst_pos) / C * 1e9).round() as u64);
            self.queue.schedule_at(
                now + delay,
                SimEvent::ArrivalStart {
                    node: NodeId(j as u32),
                    key,
                    power: pr,
                    end: end + delay,
                    frame: frame.clone(),
                },
            );
            self.queue.schedule_at(
                end + delay,
                SimEvent::ArrivalEnd {
                    node: NodeId(j as u32),
                    key,
                },
            );
        }
    }

    fn transmit_ctrl(&mut self, i: usize, frame: CtrlFrame, power: Milliwatts, now: SimTime) {
        let airtime = CtrlFrame::airtime(self.nodes[i].mac.config().pcmac.ctrl_rate_bps);
        let end = now + airtime;

        let mut rad = Vec::new();
        self.nodes[i].ctrl_radio.start_tx(end, &mut rad);
        // The ctrl broadcast radiates too (the data radio may be mid-rx;
        // energy is attributed per-channel, transmit wins for the overlap).
        self.queue.schedule_at(
            end,
            SimEvent::CtrlTxEnd {
                node: NodeId(i as u32),
            },
        );

        self.refresh_positions(now);
        let key = self.next_key;
        self.next_key += 1;
        let src_pos = self.positions[i];
        for j in 0..self.nodes.len() {
            if j == i {
                continue;
            }
            let dst_pos = self.positions[j];
            let pr = power * self.propagation.gain(src_pos, dst_pos);
            if pr.value() < self.cfg.interference_floor.value() {
                continue;
            }
            let delay = Duration::from_nanos((src_pos.distance(dst_pos) / C * 1e9).round() as u64);
            self.queue.schedule_at(
                now + delay,
                SimEvent::CtrlArrivalStart {
                    node: NodeId(j as u32),
                    key,
                    power: pr,
                    end: end + delay,
                    frame: frame.clone(),
                },
            );
            self.queue.schedule_at(
                end + delay,
                SimEvent::CtrlArrivalEnd {
                    node: NodeId(j as u32),
                    key,
                },
            );
        }
    }
}
