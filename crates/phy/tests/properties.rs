//! Property-based tests for physical-layer invariants.

use pcmac_engine::{Milliwatts, Point, SimTime};
use pcmac_phy::{PowerLevels, Propagation, Radio, RadioConfig, RadioEvent, TwoRayGround};
use proptest::prelude::*;

proptest! {
    /// Path loss: received power never exceeds transmitted power and never
    /// increases with distance.
    #[test]
    fn gain_bounded_and_monotone(d1 in 0.1f64..2000.0, d2 in 0.1f64..2000.0) {
        let m = TwoRayGround::ns2_default();
        let (near, far) = if d1 < d2 { (d1, d2) } else { (d2, d1) };
        let g_near = m.gain_at(near);
        let g_far = m.gain_at(far);
        prop_assert!(g_near <= 1.0 && g_far <= 1.0);
        prop_assert!(g_near >= g_far);
    }

    /// range_for / power_for_range are mutual inverses over the usable
    /// range of the model.
    #[test]
    fn range_power_inverse(d in 5.0f64..1500.0) {
        let m = TwoRayGround::ns2_default();
        let thresh = Milliwatts(3.652e-7);
        let p = m.power_for_range(d, thresh);
        let back = m.range_for(p, thresh);
        prop_assert!((back - d).abs() < 1e-6, "d={d} back={back}");
    }

    /// The gain between two points depends only on their distance
    /// (isotropy) and is symmetric.
    #[test]
    fn gain_isotropic_symmetric(ax in 0.0f64..1000.0, ay in 0.0f64..1000.0,
                                bx in 0.0f64..1000.0, by in 0.0f64..1000.0) {
        let m = TwoRayGround::ns2_default();
        let a = Point::new(ax, ay);
        let b = Point::new(bx, by);
        prop_assert_eq!(m.gain(a, b), m.gain(b, a));
        let d = a.distance(b);
        prop_assert_eq!(m.gain(a, b), m.gain_at(d));
    }

    /// Quantisation returns a level ≥ the request, and requesting that
    /// level again is a fixed point.
    #[test]
    fn quantize_upper_bound_idempotent(needed in 0.0f64..300.0) {
        let levels = PowerLevels::paper_defaults();
        if let Some(q) = levels.quantize_up(Milliwatts(needed)) {
            prop_assert!(q.value() >= needed);
            prop_assert_eq!(levels.quantize_up(q), Some(q));
            // and it is the *smallest* adequate level
            for &l in levels.all() {
                if l.value() >= needed {
                    prop_assert!(q.value() <= l.value());
                }
            }
        } else {
            prop_assert!(needed > levels.max().value());
        }
    }

    /// step_up never decreases power and saturates at the maximum class.
    #[test]
    fn step_up_monotone(p in 0.5f64..300.0) {
        let levels = PowerLevels::paper_defaults();
        let up = levels.step_up(Milliwatts(p));
        prop_assert!(up.value() >= p.min(levels.max().value()));
        prop_assert!(up.value() <= levels.max().value());
    }

    /// Radio interference bookkeeping: after arbitrary interleavings of
    /// arrival starts/ends, total in-air power equals the sum of the open
    /// arrivals, and the radio is quiet once all of them end.
    #[test]
    fn radio_power_bookkeeping(powers in proptest::collection::vec(1e-9f64..1e-3, 1..20)) {
        let mut r: Radio<u32> = Radio::new(RadioConfig::ns2_default());
        let mut out = Vec::new();
        for (i, p) in powers.iter().enumerate() {
            r.on_arrival_start(i as u64, Milliwatts(*p), SimTime::MAX, &0, &mut out);
        }
        let sum: f64 = powers.iter().sum();
        prop_assert!((r.in_air_power().value() - sum).abs() < sum * 1e-9);
        // End in reverse order to exercise swap_remove paths.
        for i in (0..powers.len()).rev() {
            r.on_arrival_end(i as u64, &mut out);
        }
        prop_assert_eq!(r.in_air_power(), Milliwatts::ZERO);
        prop_assert!(!r.carrier_busy());
    }

    /// Carrier busy/idle events alternate strictly — the MAC can treat
    /// them as edges without debouncing.
    #[test]
    fn carrier_edges_alternate(powers in proptest::collection::vec(1e-9f64..1e-3, 1..20)) {
        let mut r: Radio<u32> = Radio::new(RadioConfig::ns2_default());
        let mut out = Vec::new();
        for (i, p) in powers.iter().enumerate() {
            r.on_arrival_start(i as u64, Milliwatts(*p), SimTime::MAX, &0, &mut out);
        }
        for i in 0..powers.len() {
            r.on_arrival_end(i as u64, &mut out);
        }
        let mut busy = false;
        for ev in &out {
            match ev {
                RadioEvent::CarrierBusy => {
                    prop_assert!(!busy, "double busy edge");
                    busy = true;
                }
                RadioEvent::CarrierIdle => {
                    prop_assert!(busy, "idle edge while idle");
                    busy = false;
                }
                _ => {}
            }
        }
        prop_assert!(!busy, "must end idle");
    }

    /// Every RxStart is eventually matched by exactly one RxEnd with the
    /// same key (when no transmission aborts it).
    #[test]
    fn rx_start_end_paired(powers in proptest::collection::vec(1e-8f64..1e-3, 1..20)) {
        let mut r: Radio<u32> = Radio::new(RadioConfig::ns2_default());
        let mut out = Vec::new();
        for (i, p) in powers.iter().enumerate() {
            r.on_arrival_start(i as u64, Milliwatts(*p), SimTime::MAX, &(i as u32), &mut out);
        }
        for i in 0..powers.len() {
            r.on_arrival_end(i as u64, &mut out);
        }
        let starts: Vec<u64> = out.iter().filter_map(|e| match e {
            RadioEvent::RxStart { key, .. } => Some(*key),
            _ => None,
        }).collect();
        let ends: Vec<u64> = out.iter().filter_map(|e| match e {
            RadioEvent::RxEnd { key, .. } => Some(*key),
            _ => None,
        }).collect();
        prop_assert_eq!(starts, ends);
    }

    /// The sparse gain cache is transparent: through arbitrary interleaved
    /// moves and lookups it returns exactly `model.gain` over the *current*
    /// positions — bit for bit, hit or miss — including under asymmetric
    /// shadowing where `G_ij ≠ G_ji`.
    #[test]
    fn sparse_gain_cache_is_transparent(
        seed in 0u64..1_000,
        coords in proptest::collection::vec((0.0f64..2000.0, 0.0f64..2000.0), 2..24),
        ops in proptest::collection::vec((any::<bool>(), 0usize..24, 0usize..24, 0.0f64..2000.0, 0.0f64..2000.0), 1..200),
        sigma in 0.0f64..8.0,
    ) {
        use pcmac_phy::{PropagationModel, Shadowed, SparseGainCache};

        let model = PropagationModel::Shadowed(Shadowed::new(
            TwoRayGround::ns2_default(), sigma, false, seed,
        ));
        let mut pts: Vec<Point> = coords.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let n = pts.len();
        let cell_of = |p: Point| ((p.y / 250.0) as u32) * 8 + (p.x / 250.0) as u32;
        let mut cache = SparseGainCache::new(n);
        for (i, &p) in pts.iter().enumerate() {
            cache.set_cell(i as u32, cell_of(p));
        }
        for &(is_move, a, b, x, y) in &ops {
            let (i, j) = (a % n, b % n);
            if is_move {
                pts[i] = Point::new(x, y);
                cache.note_move(i as u32, cell_of(pts[i]));
            } else if i != j {
                let want = model.gain(pts[i], pts[j]);
                let got = cache.gain_with(i as u32, j as u32, || model.gain(pts[i], pts[j]));
                prop_assert_eq!(got.to_bits(), want.to_bits(), "pair ({}, {})", i, j);
            }
        }
    }
}
