//! A timed-out *cooperative* run must not leak its worker thread: the
//! watchdog fires the cancel token, the simulator stops cleanly at the
//! next cut, and the runner joins the thread. This lives in its own
//! test binary (= its own process) so `/proc/self/task` counting is
//! not polluted by the deliberately-abandoned sleeper threads of
//! `resilient_runner.rs`.

use std::time::Duration;

use pcmac::{FlowShape, Variant};
use pcmac_campaign::{
    run_campaign_with, CampaignSpec, FailureKind, NodesSpec, PlacementSpec, RunOptions,
    ScenarioSpec, TrafficPattern, TrafficSpec,
};

/// One grid cell whose *simulated* duration is far beyond what the
/// wall-clock budget allows, so the watchdog must step in.
fn slow_campaign() -> CampaignSpec {
    CampaignSpec {
        name: "hygiene".into(),
        base: ScenarioSpec {
            name: "hygiene".into(),
            variant: Variant::Basic,
            duration_s: 600.0,
            field: (500.0, 500.0),
            nodes: NodesSpec {
                count: Some(8),
                placement: PlacementSpec::Ring { radius: 80.0 },
                mobility: None,
            },
            traffic: TrafficSpec {
                pattern: TrafficPattern::NeighbourPairs { flows: 4 },
                bytes: 512,
                offered_load_kbps: 200.0,
                shape: FlowShape::Cbr,
            },
            power_levels_mw: None,
            shadowing: None,
            protocol: None,
            radio: None,
            aodv: None,
            faults: None,
            metrics: None,
            trace: None,
            execution: None,
        },
        duration_s: None,
        seeds: vec![1],
        axes: None,
        sweep: None,
    }
}

fn live_threads() -> usize {
    std::fs::read_dir("/proc/self/task")
        .map(|d| d.count())
        .unwrap_or(1)
}

#[cfg(target_os = "linux")]
#[test]
fn cooperative_timeout_joins_the_worker_thread() {
    let baseline = live_threads();

    let opts = RunOptions {
        threads: 1,
        timeout: Some(Duration::from_millis(250)),
        grace: Some(Duration::from_secs(5)),
        out: None,
        resume: false,
        ..RunOptions::default()
    };
    let outcome = run_campaign_with(&slow_campaign(), opts, |cfg, ctl| ctl.run(cfg))
        .expect("the sweep survives the timed-out point");

    // The point is recorded as a structured timeout whose message says
    // the run *cooperated*: it stopped cleanly at a cut instead of
    // being abandoned mid-dispatch.
    let failures = outcome
        .report
        .failures
        .as_ref()
        .expect("the timed-out point is recorded");
    assert_eq!(failures.len(), 1);
    assert_eq!(failures[0].kind, FailureKind::TimedOut);
    assert!(
        failures[0].error.contains("stopped cleanly"),
        "clean cooperative stop recorded: {}",
        failures[0].error
    );

    // The worker thread was joined, not abandoned: the process thread
    // count returns to the pre-campaign baseline. Poll briefly — the
    // OS needs a moment to reap a just-exited thread from /proc.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        if live_threads() <= baseline {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "worker thread leaked: {} live threads vs baseline {}",
            live_threads(),
            baseline
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}
