//! The campaign runner: expand lazily → run in parallel → aggregate.

use pcmac::{run_parallel_iter, RunReport};

use crate::aggregate::{CampaignReport, PointSummary};
use crate::campaign::CampaignSpec;
use crate::spec::SpecError;

/// Everything a campaign produced: the aggregated report (the
/// `CAMPAIGN_*.json` artifact) plus the raw per-run reports for callers
/// that need more than the per-point summaries (the figure harness, flow
/// fairness analyses).
#[derive(Debug)]
pub struct CampaignOutcome {
    /// Per-point aggregation.
    pub report: CampaignReport,
    /// Raw reports, point-major and seed-minor, matching the expansion
    /// order of [`CampaignSpec::expand`].
    pub runs: Vec<RunReport>,
}

/// Expand `spec` into its grid skeleton, stream each `(point × seed)`
/// scenario into the parallel driver's bounded work channel as it is
/// materialized (`threads == 0` means one per core) — runs start before
/// the expansion finishes, and at most a handful of configs exist at any
/// moment — then aggregate each point's seeds with mean / stddev / 95%
/// CI per metric.
pub fn run_campaign(spec: &CampaignSpec, threads: usize) -> Result<CampaignOutcome, SpecError> {
    let grid = spec.grid()?;
    let per_point = grid.seeds.len();
    let duration_s = grid.cells.first().map(|c| c.spec.duration_s).unwrap_or(0.0);
    let runs = run_parallel_iter(grid.scenarios(), threads);

    let seeds = grid.seeds;
    let summaries: Vec<PointSummary> = grid
        .cells
        .into_iter()
        .zip(runs.chunks(per_point))
        .map(|(cell, reports)| PointSummary::from_reports(cell.key, seeds.clone(), reports))
        .collect();

    Ok(CampaignOutcome {
        report: CampaignReport {
            campaign: spec.name.clone(),
            runs: runs.len(),
            duration_s,
            wall_s: runs.iter().map(|r| r.wall_s).sum(),
            points: summaries,
        },
        runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{
        MobilitySpec, NodesSpec, PlacementSpec, ScenarioSpec, TrafficPattern, TrafficSpec,
    };
    use crate::AxesSpec;
    use pcmac::{FlowShape, Variant};

    fn tiny_campaign() -> CampaignSpec {
        CampaignSpec {
            name: "tiny".into(),
            base: ScenarioSpec {
                name: "tiny".into(),
                variant: Variant::Basic,
                duration_s: 2.0,
                field: (500.0, 500.0),
                nodes: NodesSpec {
                    count: Some(4),
                    placement: PlacementSpec::Ring { radius: 80.0 },
                    mobility: None,
                },
                traffic: TrafficSpec {
                    pattern: TrafficPattern::NeighbourPairs { flows: 2 },
                    bytes: 512,
                    offered_load_kbps: 100.0,
                    shape: FlowShape::Cbr,
                },
                power_levels_mw: None,
                shadowing: None,
                protocol: None,
                radio: None,
                aodv: None,
            },
            duration_s: None,
            seeds: vec![1, 2],
            axes: Some(AxesSpec {
                loads_kbps: Some(vec![50.0, 100.0]),
                ..AxesSpec::default()
            }),
            sweep: None,
        }
    }

    #[test]
    fn runner_aggregates_every_point() {
        let spec = tiny_campaign();
        assert_eq!(spec.run_count(), 4);
        let outcome = run_campaign(&spec, 0).expect("runs");
        assert_eq!(outcome.runs.len(), 4);
        assert_eq!(outcome.report.points.len(), 2);
        for p in &outcome.report.points {
            assert_eq!(p.seeds, vec![1, 2]);
            assert!(p.throughput_kbps.mean > 0.0, "static ring delivers");
            assert!(p.pdr.mean > 0.0);
            assert!(p.throughput_kbps.ci95.is_finite());
        }
        // Points follow expansion order: load 50 then load 100.
        assert_eq!(outcome.report.points[0].key.load_kbps, 50.0);
        assert_eq!(outcome.report.points[1].key.load_kbps, 100.0);
    }

    #[test]
    fn mobility_spec_on_generated_placement_runs() {
        let mut spec = tiny_campaign();
        spec.base.nodes.mobility = Some(MobilitySpec {
            speed_mps: 2.0,
            pause_s: 1.0,
        });
        spec.axes = None;
        spec.seeds = vec![3];
        let outcome = run_campaign(&spec, 0).expect("mobile ring runs");
        assert_eq!(outcome.runs.len(), 1);
        assert!(outcome.runs[0].sent_packets > 0);
    }

    #[test]
    fn patch_axis_campaign_runs_and_keys_each_point() {
        use serde::Value;
        let mut spec = tiny_campaign();
        spec.base.variant = Variant::Pcmac;
        spec.axes = None;
        spec.seeds = vec![1];
        spec.sweep = Some(vec![crate::Axis::Patch {
            path: "mac.pcmac.safety_factor".into(),
            values: vec![Value::F64(0.5), Value::F64(0.9)],
        }]);
        let outcome = run_campaign(&spec, 0).expect("patch sweep runs");
        assert_eq!(outcome.runs.len(), 2);
        assert_eq!(outcome.report.points.len(), 2);
        let labels: Vec<String> = outcome
            .report
            .points
            .iter()
            .map(|p| p.key.patches_label())
            .collect();
        assert_eq!(labels, vec!["safety_factor=0.5", "safety_factor=0.9"]);
    }
}
