//! Typed command-line flag parsing shared by every binary in the
//! workspace (`pcmac-campaign` and the `pcmac-bench` figure/ablation
//! drivers, which re-export these helpers).
//!
//! The pre-redesign binaries funnelled all flags through one `f64`
//! grabber (`grab("--seed", 1.0) as u64`), silently truncating
//! fractional input and any seed above 2⁵³, and list parsers dropped
//! unparseable elements with `filter_map`. These helpers parse the
//! target type directly and treat a present-but-malformed value as an
//! error.

use std::fmt::Display;
use std::str::FromStr;

/// The raw value following `--flag`, if the flag is present.
pub fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Typed parse of `--flag value`. `Ok(None)` when the flag is absent;
/// `Err` naming the flag when its value is missing or malformed.
pub fn try_flag<T: FromStr>(args: &[String], flag: &str) -> Result<Option<T>, String>
where
    T::Err: Display,
{
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    let Some(v) = args.get(i + 1) else {
        return Err(format!("{flag} expects a value"));
    };
    v.parse().map(Some).map_err(|e| format!("{flag} {v}: {e}"))
}

/// Typed parse of a comma-separated `--flag a,b,c` list. Rejects empty
/// lists and unparseable elements instead of silently dropping them.
pub fn try_flag_list<T: FromStr>(args: &[String], flag: &str) -> Result<Option<Vec<T>>, String>
where
    T::Err: Display,
{
    let Some(raw) = flag_value(args, flag) else {
        if args.iter().any(|a| a == flag) {
            return Err(format!("{flag} expects a comma-separated list"));
        }
        return Ok(None);
    };
    let items: Vec<T> = raw
        .split(',')
        .map(|s| s.trim().parse().map_err(|e| format!("{flag} `{s}`: {e}")))
        .collect::<Result<_, _>>()?;
    if items.is_empty() {
        return Err(format!("{flag} list is empty"));
    }
    Ok(Some(items))
}

/// Exit cleanly (status 2) with the parse error — the binaries' shared
/// failure mode for malformed flags.
fn exit_on_flag_error<T>(result: Result<T, String>) -> T {
    result.unwrap_or_else(|msg| {
        eprintln!("invalid command line: {msg}");
        std::process::exit(2);
    })
}

/// [`try_flag`] with a default, exiting (status 2) on malformed input.
pub fn flag_or<T: FromStr>(args: &[String], flag: &str, default: T) -> T
where
    T::Err: Display,
{
    exit_on_flag_error(try_flag(args, flag)).unwrap_or(default)
}

/// [`try_flag`] as an optional override, exiting (status 2) on
/// malformed input.
pub fn flag_opt<T: FromStr>(args: &[String], flag: &str) -> Option<T>
where
    T::Err: Display,
{
    exit_on_flag_error(try_flag(args, flag))
}

/// [`try_flag_list`] with a default, exiting (status 2) on malformed
/// input.
pub fn flag_list_or<T: FromStr>(args: &[String], flag: &str, default: Vec<T>) -> Vec<T>
where
    T::Err: Display,
{
    exit_on_flag_error(try_flag_list(args, flag)).unwrap_or(default)
}

/// Campaign names as artifact-file stems: every character outside
/// ASCII alphanumerics becomes `_`, so `CAMPAIGN_<sanitize(name)>.json`
/// is always a safe path component.
pub fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    #[test]
    fn absent_flag_is_none_not_error() {
        assert_eq!(try_flag::<u64>(&args("--other 3"), "--seed").unwrap(), None);
        assert_eq!(try_flag_list::<f64>(&args(""), "--loads").unwrap(), None);
    }

    #[test]
    fn malformed_values_error() {
        assert!(try_flag::<u64>(&args("--seed 1.5"), "--seed").is_err());
        assert!(try_flag::<u64>(&args("--seed"), "--seed").is_err());
        assert!(try_flag_list::<f64>(&args("--loads 1,x"), "--loads").is_err());
    }

    #[test]
    fn sanitize_keeps_alphanumerics_only() {
        assert_eq!(sanitize("ablation-safety/факт"), "ablation_safety_____");
        assert_eq!(sanitize("fig8"), "fig8");
    }
}
