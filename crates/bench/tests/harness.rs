//! Tests for the figure harness itself: CLI parsing, sweep plumbing and
//! the shape validators.

use pcmac_bench::{check_figure8_shape, check_figure9_shape, try_flag, try_flag_list, Sweep};
use pcmac_stats::Series;

fn args(s: &str) -> Vec<String> {
    s.split_whitespace().map(|x| x.to_string()).collect()
}

#[test]
fn default_sweep_matches_paper_axis() {
    let s = Sweep::default();
    assert_eq!(
        s.loads,
        vec![300.0, 400.0, 500.0, 600.0, 700.0, 800.0, 900.0, 1000.0]
    );
    assert_eq!(s.seeds, vec![1]);
}

#[test]
fn cli_flags_parse() {
    let s = Sweep::from_args(&args("--secs 30 --seeds 1,2,3 --loads 300,500 --threads 2"));
    assert_eq!(s.secs, 30);
    assert_eq!(s.seeds, vec![1, 2, 3]);
    assert_eq!(s.loads, vec![300.0, 500.0]);
    assert_eq!(s.threads, 2);
}

#[test]
fn full_flag_selects_400s() {
    let s = Sweep::from_args(&args("--full"));
    assert_eq!(s.secs, 400);
}

#[test]
fn unknown_flags_are_ignored() {
    let s = Sweep::from_args(&args("--json out.jsonl --secs 12"));
    assert_eq!(s.secs, 12);
}

#[test]
fn typed_flags_parse_without_f64_truncation() {
    // The old parser went through `f64` (`grab(...) as u64`): any seed
    // above 2^53 silently lost bits. The typed path must be exact.
    let big = u64::MAX - 1;
    let a = args(&format!("--seed {big}"));
    assert_eq!(try_flag::<u64>(&a, "--seed").unwrap(), Some(big));
    assert!(big as f64 as u64 != big, "the old path really was lossy");

    // Absent flags are None, not an error.
    assert_eq!(try_flag::<u64>(&a, "--secs").unwrap(), None);
}

#[test]
fn malformed_flag_values_are_errors_not_defaults() {
    // `--secs 1.5` used to truncate to 1; now it must be rejected.
    assert!(try_flag::<u64>(&args("--secs 1.5"), "--secs").is_err());
    assert!(try_flag::<u64>(&args("--secs abc"), "--secs").is_err());
    // A flag with no value following it is an error too.
    assert!(try_flag::<u64>(&args("--secs"), "--secs").is_err());
}

#[test]
fn flag_lists_reject_bad_elements_instead_of_dropping_them() {
    // The old list parser used filter_map: `--loads 300,x,500` silently
    // became [300, 500].
    assert!(try_flag_list::<f64>(&args("--loads 300,x,500"), "--loads").is_err());
    assert_eq!(
        try_flag_list::<f64>(&args("--loads 300,500"), "--loads").unwrap(),
        Some(vec![300.0, 500.0])
    );
    assert_eq!(
        try_flag_list::<u64>(&args("--loads 1"), "--seeds").unwrap(),
        None
    );
}

#[test]
fn explicit_secs_wins_over_full_in_any_order() {
    assert_eq!(Sweep::from_args(&args("--full --secs 30")).secs, 30);
    assert_eq!(Sweep::from_args(&args("--secs 30 --full")).secs, 30);
}

fn mk_series(name: &str, points: &[(f64, f64)]) -> Series {
    let mut s = Series::new(name);
    for &(x, y) in points {
        s.push(x, y);
    }
    s
}

#[test]
fn figure8_check_accepts_paper_shape() {
    // Approximate digitization of the paper's own Figure 8.
    let series = vec![
        mk_series(
            "Basic 802.11",
            &[(300.0, 360.0), (650.0, 500.0), (1000.0, 545.0)],
        ),
        mk_series("PCMAC", &[(300.0, 362.0), (650.0, 530.0), (1000.0, 595.0)]),
        mk_series(
            "Scheme 1",
            &[(300.0, 355.0), (650.0, 470.0), (1000.0, 520.0)],
        ),
        mk_series(
            "Scheme 2",
            &[(300.0, 350.0), (650.0, 450.0), (1000.0, 495.0)],
        ),
    ];
    assert!(check_figure8_shape(&series).is_ok());
}

#[test]
fn figure8_check_rejects_pcmac_losing() {
    let series = vec![
        mk_series("Basic 802.11", &[(300.0, 360.0), (1000.0, 600.0)]),
        mk_series("PCMAC", &[(300.0, 362.0), (1000.0, 500.0)]),
        mk_series("Scheme 1", &[(300.0, 355.0), (1000.0, 520.0)]),
        mk_series("Scheme 2", &[(300.0, 350.0), (1000.0, 495.0)]),
    ];
    assert!(check_figure8_shape(&series).is_err());
}

#[test]
fn figure9_check_accepts_paper_shape() {
    let series = vec![
        mk_series("Basic 802.11", &[(300.0, 50.0), (1000.0, 1100.0)]),
        mk_series("PCMAC", &[(300.0, 40.0), (1000.0, 800.0)]),
        mk_series("Scheme 1", &[(300.0, 80.0), (1000.0, 1200.0)]),
        mk_series("Scheme 2", &[(300.0, 90.0), (1000.0, 1400.0)]),
    ];
    assert!(check_figure9_shape(&series).is_ok());
}

#[test]
fn figure9_check_rejects_shrinking_delay() {
    let series = vec![
        mk_series("Basic 802.11", &[(300.0, 500.0), (1000.0, 100.0)]),
        mk_series("PCMAC", &[(300.0, 40.0), (1000.0, 80.0)]),
        mk_series("Scheme 1", &[(300.0, 80.0), (1000.0, 200.0)]),
        mk_series("Scheme 2", &[(300.0, 90.0), (1000.0, 300.0)]),
    ];
    assert!(check_figure9_shape(&series).is_err());
}

#[test]
fn tiny_sweep_runs_end_to_end() {
    // Smallest possible real sweep through the whole pipeline.
    let result = Sweep {
        loads: vec![300.0],
        secs: 4,
        seeds: vec![1],
        threads: 0,
    }
    .run();
    assert_eq!(result.reports.len(), 4, "one run per protocol");
    let thpt = result.throughput_series();
    assert_eq!(thpt.len(), 4);
    for s in &thpt {
        assert_eq!(s.points.len(), 1);
        assert!(s.points[0].1 > 0.0, "{} moved no data", s.name);
    }
    // JSON lines round-trip.
    let json = result.to_json_lines();
    assert_eq!(json.lines().count(), 4);
    for line in json.lines() {
        let v: serde_json::Value = serde_json::from_str(line).unwrap();
        assert!(v.get("throughput_kbps").is_some());
    }
}
