//! # pcmac-net — packet model and interface queue
//!
//! The network-layer view shared by the MAC, the routing protocol and the
//! traffic agents:
//!
//! * [`packet`] — the [`Packet`] type (application data or AODV control
//!   messages) with realistic on-air sizes (IP 20 B + UDP 8 B headers for
//!   data; RFC-3561-shaped sizes for routing messages).
//! * [`queue`] — the DropTail interface queue between routing and MAC
//!   (ns-2's 50-packet `PriQueue`, including its priority lane for routing
//!   control packets).
//!
//! Packet *formats* live here; protocol *logic* lives in `pcmac-aodv` and
//! `pcmac-mac`. This mirrors how real stacks separate wire formats from
//! engines and keeps the crate graph acyclic.

pub mod packet;
pub mod queue;

pub use packet::{Packet, Payload, Rerr, Rrep, Rreq, IP_HEADER_BYTES, UDP_HEADER_BYTES};
pub use queue::{DropTailQueue, QueuedPacket};
