//! Reduced-scale regression of the paper's Figures 8 and 9: run a small
//! load sweep and assert the qualitative claims the reproduction stands
//! on. The full-resolution sweep lives in the `pcmac-bench` binaries;
//! this keeps the shape guarded by `cargo test`.

use pcmac_bench::{check_figure8_shape, check_figure9_shape, Sweep};

fn sweep() -> pcmac_bench::SweepResult {
    Sweep {
        loads: vec![300.0, 650.0, 1000.0],
        secs: 30,
        seeds: vec![1],
        threads: 0,
    }
    .run()
}

#[test]
fn figure_8_and_9_shapes_hold_at_reduced_scale() {
    let result = sweep();

    let throughput = result.throughput_series();
    if let Err(e) = check_figure8_shape(&throughput) {
        panic!(
            "figure 8 shape violated: {e}\n{}",
            result.render_table("thpt", &throughput)
        );
    }

    let delay = result.delay_series();
    if let Err(e) = check_figure9_shape(&delay) {
        panic!(
            "figure 9 shape violated: {e}\n{}",
            result.render_table("delay", &delay)
        );
    }

    // The paper's headline: at saturation PCMAC gains on the order of
    // 10% over unmodified 802.11 (we accept anything clearly positive,
    // and nothing absurdly large, at this reduced scale).
    let p = throughput
        .iter()
        .find(|s| s.name == "PCMAC")
        .unwrap()
        .y_at(1000.0)
        .unwrap();
    let b = throughput
        .iter()
        .find(|s| s.name == "Basic 802.11")
        .unwrap()
        .y_at(1000.0)
        .unwrap();
    let gain = (p - b) / b;
    assert!(
        (0.0..0.6).contains(&gain),
        "PCMAC gain over Basic at saturation: {:.1}% (paper: 8-10%)",
        gain * 100.0
    );
}
