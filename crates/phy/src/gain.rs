//! Block-sparse pairwise gain cache for indexed channels.
//!
//! The dense [`GainCache`](crate::GainCache) precomputes all N² gains,
//! which is exact and fast but quadratic in memory and only sound when
//! every position is frozen for the whole run — mobile scenarios and
//! networks beyond a few thousand nodes get nothing. [`SparseGainCache`]
//! drops both restrictions:
//!
//! * **Block-sparse storage.** Entries live in blocks keyed by the
//!   *occupied grid-cell pair* `(cell(i), cell(j))` of their endpoints
//!   (cell ids come from the channel's spatial index). A transmission
//!   only ever touches the handful of cell pairs its signal spans, so
//!   the populated blocks mirror the channel's actual locality instead
//!   of the full N×N pair space. Within a block, pair gains materialize
//!   lazily on first lookup.
//! * **Per-node invalidation on movement.** Every node carries a
//!   generation counter, bumped by [`SparseGainCache::note_move`]
//!   whenever its position changes. Entries remember the generations
//!   they were computed at; a lookup whose generations no longer match
//!   recomputes in place. Paused and static nodes keep their entries hot
//!   while moving nodes invalidate only their own links — this is what
//!   makes *mobile* scenarios cacheable at all (random-waypoint nodes
//!   spend their pauses, and every instant between lazy refreshes, at a
//!   fixed position).
//!
//! Exactness contract: [`SparseGainCache::gain_with`] returns exactly
//! what the supplied closure would — values are only replayed while both
//! endpoint generations are unchanged — so swapping the cache into the
//! channel changes nothing about a run except its speed. Memory is
//! bounded: when the live entry count passes the configured cap the
//! whole cache flushes (an epoch flush — correctness is untouched, the
//! next lookups simply refill).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use serde::{Deserialize, Serialize};

/// Multiply-xor hasher for the packed `u64` keys used here. The std
/// SipHash is DoS-resistant but several times slower; cache keys are
/// internal (never attacker-controlled), so the cheap mix wins.
#[derive(Default)]
pub struct PairHasher(u64);

impl Hasher for PairHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Only u64 keys are ever hashed; this path exists for trait
        // completeness.
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        // splitmix64-style finalizer: full avalanche, two multiplies.
        let mut x = self.0 ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        self.0 = x;
    }
}

type FastMap<V> = HashMap<u64, V, BuildHasherDefault<PairHasher>>;

#[derive(Debug, Clone, Copy)]
struct Entry {
    gain: f64,
    /// Endpoint generations this gain was computed at.
    gi: u32,
    gj: u32,
}

/// Pair gains for one occupied cell pair, filled lazily.
#[derive(Debug, Default)]
struct Block {
    pairs: FastMap<Entry>,
}

/// Running effectiveness counters (bench + report diagnostics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SparseCacheStats {
    /// Lookups answered from a live entry.
    pub hits: u64,
    /// Lookups that (re)computed the gain.
    pub misses: u64,
    /// Occupied cell-pair blocks currently held.
    pub blocks: usize,
    /// Live pair entries currently held.
    pub entries: usize,
    /// Epoch flushes triggered by the memory cap.
    pub flushes: u64,
}

/// Block-sparse, movement-invalidated pairwise gain cache.
#[derive(Debug)]
pub struct SparseGainCache {
    /// Position generation per node (bumped on every actual move).
    gen: Vec<u32>,
    /// Current spatial-index cell per node.
    cell: Vec<u32>,
    blocks: FastMap<Block>,
    entries: usize,
    /// Entry count that triggers an epoch flush.
    cap: usize,
    hits: u64,
    misses: u64,
    flushes: u64,
}

#[inline]
fn pack(a: u32, b: u32) -> u64 {
    (a as u64) << 32 | b as u64
}

impl SparseGainCache {
    /// Cache for `n` nodes. Memory is capped at roughly 64 live entries
    /// per node (and never below 4096), a small multiple of the audible
    /// neighbourhood the channel actually touches; contrast with the
    /// dense cache's unconditional N² table.
    pub fn new(n: usize) -> Self {
        SparseGainCache {
            gen: vec![0; n],
            cell: vec![0; n],
            blocks: FastMap::default(),
            entries: 0,
            cap: (64 * n).max(4096),
            hits: 0,
            misses: 0,
            flushes: 0,
        }
    }

    /// Number of tracked nodes.
    pub fn len(&self) -> usize {
        self.gen.len()
    }

    /// `true` when tracking zero nodes.
    pub fn is_empty(&self) -> bool {
        self.gen.is_empty()
    }

    /// Set `node`'s cell without invalidating anything — initial sync
    /// with the spatial index, before any gains are cached.
    pub fn set_cell(&mut self, node: u32, cell: u32) {
        self.cell[node as usize] = cell;
    }

    /// Record that `node` moved (to a position inside `cell`): all its
    /// cached link gains become stale and will recompute on next touch.
    pub fn note_move(&mut self, node: u32, cell: u32) {
        let i = node as usize;
        self.gen[i] = self.gen[i].wrapping_add(1);
        self.cell[i] = cell;
    }

    /// The gain from `i` to `j`: replayed from the cache when both
    /// endpoints are at the generation the entry was computed at,
    /// otherwise recomputed via `compute` and stored. Returns exactly
    /// what `compute` would return.
    #[inline]
    pub fn gain_with(&mut self, i: u32, j: u32, compute: impl FnOnce() -> f64) -> f64 {
        if self.entries > self.cap {
            self.blocks.clear();
            self.entries = 0;
            self.flushes += 1;
        }
        let (gi, gj) = (self.gen[i as usize], self.gen[j as usize]);
        let block = self
            .blocks
            .entry(pack(self.cell[i as usize], self.cell[j as usize]))
            .or_default();
        match block.pairs.entry(pack(i, j)) {
            std::collections::hash_map::Entry::Occupied(mut o) => {
                let e = o.get_mut();
                if e.gi == gi && e.gj == gj {
                    self.hits += 1;
                    return e.gain;
                }
                self.misses += 1;
                *e = Entry {
                    gain: compute(),
                    gi,
                    gj,
                };
                e.gain
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                self.misses += 1;
                let gain = compute();
                v.insert(Entry { gain, gi, gj });
                self.entries += 1;
                gain
            }
        }
    }

    /// Current effectiveness counters.
    pub fn stats(&self) -> SparseCacheStats {
        SparseCacheStats {
            hits: self.hits,
            misses: self.misses,
            blocks: self.blocks.len(),
            entries: self.entries,
            flushes: self.flushes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replays_only_while_generations_match() {
        let mut c = SparseGainCache::new(4);
        assert_eq!(c.gain_with(0, 1, || 0.5), 0.5);
        // Hit: the closure's new value must NOT be observed.
        assert_eq!(c.gain_with(0, 1, || 99.0), 0.5);
        // Either endpoint moving invalidates the pair.
        c.note_move(1, 0);
        assert_eq!(c.gain_with(0, 1, || 0.25), 0.25);
        c.note_move(0, 0);
        assert_eq!(c.gain_with(0, 1, || 0.125), 0.125);
        assert_eq!(c.gain_with(0, 1, || 99.0), 0.125);
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (2, 3));
    }

    #[test]
    fn direction_matters() {
        let mut c = SparseGainCache::new(2);
        assert_eq!(c.gain_with(0, 1, || 1.0), 1.0);
        // (1,0) is a distinct pair (asymmetric shadowing support).
        assert_eq!(c.gain_with(1, 0, || 2.0), 2.0);
        assert_eq!(c.gain_with(0, 1, || 9.0), 1.0);
        assert_eq!(c.gain_with(1, 0, || 9.0), 2.0);
    }

    #[test]
    fn blocks_track_occupied_cell_pairs() {
        let mut c = SparseGainCache::new(6);
        for (node, cell) in [(0u32, 0u32), (1, 0), (2, 7), (3, 7), (4, 9), (5, 9)] {
            c.set_cell(node, cell);
        }
        // Touch pairs spanning (0,7), (0,7), (7,9): two distinct blocks.
        c.gain_with(0, 2, || 0.1);
        c.gain_with(1, 3, || 0.2);
        c.gain_with(2, 4, || 0.3);
        let s = c.stats();
        assert_eq!(s.blocks, 2);
        assert_eq!(s.entries, 3);
    }

    #[test]
    fn cell_change_reroutes_to_a_new_block() {
        let mut c = SparseGainCache::new(2);
        c.set_cell(0, 3);
        c.set_cell(1, 5);
        c.gain_with(0, 1, || 0.5);
        c.note_move(0, 4); // crossed into cell 4
                           // New block, and the generation bump forces a recompute anyway.
        assert_eq!(c.gain_with(0, 1, || 0.75), 0.75);
        assert!(c.stats().blocks >= 2);
    }

    #[test]
    fn epoch_flush_bounds_memory_without_changing_answers() {
        let mut c = SparseGainCache::new(70);
        // cap = max(64*70, 4096) = 4480 < 70*69 pairs: must flush.
        let mut total = 0.0;
        for _round in 0..3u32 {
            for i in 0..70u32 {
                for j in 0..70u32 {
                    if i != j {
                        let want = (i * 70 + j) as f64;
                        total += c.gain_with(i, j, || want) - want;
                    }
                }
            }
        }
        assert_eq!(total, 0.0, "every lookup must return the exact gain");
        let s = c.stats();
        assert!(s.flushes >= 1, "the cap must have triggered at least once");
        assert!(s.entries <= 4480 + 1);
    }
}
