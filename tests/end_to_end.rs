//! Cross-crate integration: full simulations through the public API.

use pcmac::{FlowShape, FlowSpec, NodeSetup, ScenarioConfig, Simulator, Variant};
use pcmac_engine::{Duration, FlowId, NodeId, Point, SimTime};

/// Two nodes in range must deliver essentially everything, under every
/// protocol variant.
#[test]
fn two_nodes_deliver_under_every_variant() {
    for v in Variant::ALL {
        let cfg =
            ScenarioConfig::two_nodes(v, 80.0, 100_000.0, 42).with_duration(Duration::from_secs(5));
        let r = Simulator::new(cfg).run();
        assert!(
            r.pdr() > 0.95,
            "{}: pdr {:.3} too low (sent {}, delivered {})",
            v.name(),
            r.pdr(),
            r.sent_packets,
            r.delivered_packets
        );
        assert!(
            r.mean_delay_ms < 50.0,
            "{}: delay {}",
            v.name(),
            r.mean_delay_ms
        );
    }
}

/// PCMAC's three-way handshake: data frames draw no ACKs, and the control
/// channel carries tolerance broadcasts; basic 802.11 does the opposite.
#[test]
fn handshake_arity_is_protocol_correct() {
    let run = |v| {
        let cfg =
            ScenarioConfig::two_nodes(v, 80.0, 100_000.0, 42).with_duration(Duration::from_secs(5));
        Simulator::new(cfg).run()
    };
    let pcmac = run(Variant::Pcmac);
    let basic = run(Variant::Basic);

    // Both move comparable data.
    assert!(pcmac.mac.data_sent > 100);
    assert!(basic.mac.data_sent > 100);
    // Basic ACKs every data frame; PCMAC only the few routing unicasts.
    assert!(basic.mac.ack_sent >= basic.mac.data_sent - 5);
    assert!(
        pcmac.mac.ack_sent < 10,
        "PCMAC sent {} ACKs — three-way handshake violated",
        pcmac.mac.ack_sent
    );
    // Only PCMAC uses the control channel.
    assert!(pcmac.mac.ctrl_broadcasts > 100);
    assert_eq!(basic.mac.ctrl_broadcasts, 0);
}

/// A four-hop chain forces AODV discovery and multi-hop forwarding.
#[test]
fn chain_multihop_delivers() {
    for v in [Variant::Basic, Variant::Pcmac] {
        let duration = Duration::from_secs(10);
        let mut cfg = ScenarioConfig::two_nodes(v, 80.0, 40_000.0, 7);
        cfg.name = format!("chain-{}", v.name());
        cfg.nodes = NodeSetup::Static(pcmac_mobility::placement::chain(
            5,
            Point::new(100.0, 500.0),
            200.0,
        ));
        cfg.flows = vec![FlowSpec {
            flow: FlowId(0),
            src: NodeId(0),
            dst: NodeId(4),
            bytes: 512,
            rate_bps: 40_000.0,
            start: SimTime::ZERO + Duration::from_millis(200),
            stop: SimTime::ZERO + duration,
            shape: FlowShape::Cbr,
        }];
        let r = Simulator::new(cfg.with_duration(duration)).run();
        assert!(
            r.pdr() > 0.9,
            "{}: 4-hop chain pdr {:.3} (sent {} delivered {})",
            v.name(),
            r.pdr(),
            r.sent_packets,
            r.delivered_packets
        );
        // Forwarding actually happened (3 intermediate hops).
        assert!(
            r.routing.data_forwarded >= 3 * r.delivered_packets / 2,
            "{}: forwarded {} for {} delivered",
            v.name(),
            r.routing.data_forwarded,
            r.delivered_packets
        );
        // Route discovery ran.
        assert!(r.routing.rreq_originated >= 1);
        assert!(r.routing.rrep_generated >= 1);
    }
}

/// Same seed ⇒ bit-identical outcome; different seed ⇒ different run.
#[test]
fn determinism_and_seed_sensitivity() {
    let run = |seed| {
        let cfg = ScenarioConfig::paper(Variant::Pcmac, 500.0, seed)
            .with_duration(Duration::from_secs(8));
        Simulator::new(cfg).run()
    };
    let a = run(1);
    let b = run(1);
    assert_eq!(a.delivered_packets, b.delivered_packets);
    assert_eq!(a.sent_packets, b.sent_packets);
    assert_eq!(a.mean_delay_ms, b.mean_delay_ms);
    assert_eq!(a.mac.rts_sent, b.mac.rts_sent);
    assert_eq!(a.mac.rx_errors, b.mac.rx_errors);
    assert_eq!(a.events, b.events);

    let c = run(2);
    assert_ne!(
        (a.events, a.mac.rts_sent),
        (c.events, c.mac.rts_sent),
        "different seeds must explore different trajectories"
    );
}

/// Out-of-range nodes cannot communicate: AODV gives up cleanly and no
/// data arrives (no panic, no phantom delivery).
#[test]
fn disconnected_nodes_fail_cleanly() {
    let mut cfg = ScenarioConfig::two_nodes(Variant::Basic, 80.0, 50_000.0, 3);
    // 700 m apart: outside even the max-power decode range (250 m).
    cfg.nodes = NodeSetup::Static(vec![Point::new(100.0, 500.0), Point::new(800.0, 500.0)]);
    // The discovery retry ladder (1 + 2 + 4 + 8 s binary backoff) takes
    // 15 s to exhaust; give it room.
    let r = Simulator::new(cfg.with_duration(Duration::from_secs(20))).run();
    assert_eq!(r.delivered_packets, 0);
    assert!(r.routing.discoveries_failed >= 1, "discovery must give up");
    assert!(r.routing.drops > 0, "buffered packets must be dropped");
}

/// Offered load above link capacity saturates throughput instead of
/// collapsing, and builds queueing delay.
#[test]
fn saturation_is_graceful() {
    let run = |rate: f64| {
        let cfg = ScenarioConfig::two_nodes(Variant::Basic, 80.0, rate, 11)
            .with_duration(Duration::from_secs(6));
        Simulator::new(cfg).run()
    };
    let light = run(200_000.0);
    let heavy = run(3_000_000.0); // far beyond the 2 Mbps channel
    assert!(light.pdr() > 0.95);
    assert!(
        heavy.throughput_kbps > 0.8 * light.throughput_kbps,
        "saturated throughput must not collapse: {} vs {}",
        heavy.throughput_kbps,
        light.throughput_kbps
    );
    assert!(
        heavy.mean_delay_ms > 10.0 * light.mean_delay_ms,
        "saturation must show queueing delay ({} vs {})",
        heavy.mean_delay_ms,
        light.mean_delay_ms
    );
    assert!(heavy.mac.queue_drops > 0, "DropTail must engage");
}

/// Energy accounting: power control radiates less than fixed max power
/// on the same workload.
#[test]
fn power_control_saves_radiated_energy() {
    let run = |v| {
        let cfg =
            ScenarioConfig::two_nodes(v, 60.0, 100_000.0, 5).with_duration(Duration::from_secs(5));
        Simulator::new(cfg).run()
    };
    let basic = run(Variant::Basic);
    let pcmac = run(Variant::Pcmac);
    assert!(basic.pdr() > 0.95 && pcmac.pdr() > 0.95);
    assert!(
        pcmac.radiated_mj < basic.radiated_mj / 5.0,
        "60 m apart, PCMAC should radiate ≪ max power: {} vs {} mJ",
        pcmac.radiated_mj,
        basic.radiated_mj
    );
}

/// Poisson and on/off sources run end-to-end (robustness extension).
#[test]
fn bursty_traffic_shapes_run() {
    for shape in [
        FlowShape::Poisson,
        FlowShape::OnOff {
            mean_on_s: 0.5,
            mean_off_s: 0.5,
        },
    ] {
        let duration = Duration::from_secs(6);
        let mut cfg = ScenarioConfig::two_nodes(Variant::Pcmac, 80.0, 100_000.0, 9);
        cfg.flows[0].shape = shape;
        let r = Simulator::new(cfg.with_duration(duration)).run();
        assert!(
            r.delivered_packets > 20,
            "{shape:?}: delivered {}",
            r.delivered_packets
        );
        assert!(r.pdr() > 0.9, "{shape:?}: pdr {:.3}", r.pdr());
    }
}

/// The paper's full 50-node mobile scenario runs under every protocol at
/// a light load with healthy delivery.
#[test]
fn fifty_node_mobile_smoke() {
    for v in Variant::ALL {
        let cfg = ScenarioConfig::paper(v, 300.0, 1).with_duration(Duration::from_secs(10));
        let r = Simulator::new(cfg).run();
        assert!(
            r.pdr() > 0.5,
            "{}: pdr {:.3} at light load",
            v.name(),
            r.pdr()
        );
        assert!(r.events > 10_000, "{}: suspiciously few events", v.name());
    }
}
