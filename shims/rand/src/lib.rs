//! Offline shim for the `rand` crate.
//!
//! The build environment has no registry access, so this crate provides
//! the small slice of the `rand` API the simulator uses: a fast
//! xoshiro256++ [`rngs::SmallRng`] seeded via SplitMix64, the
//! [`SeedableRng::seed_from_u64`] constructor, and the [`RngExt`]
//! extension methods `random_range` / `random_bool`.
//!
//! The streams are deterministic and platform-independent, which is all
//! the simulator requires; no claim of statistical equivalence with the
//! real `rand` crate is made (seeds were never run against it — the seed
//! repo did not build).

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types usable as the argument of [`RngExt::random_range`].
pub trait SampleRange {
    /// The produced value type.
    type Output;
    /// Draw a uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Extension methods mirroring `rand`'s `Rng`/`RngExt`.
pub trait RngExt: RngCore {
    /// Uniform draw from an integer or float range.
    fn random_range<T: SampleRange>(&mut self, range: T) -> T::Output {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[inline]
fn unit_f64(word: u64) -> f64 {
    // 53 high bits → [0, 1).
    (word >> 11) as f64 / (1u64 << 53) as f64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128) - (self.start as u128);
                let v = uniform_u128_below(rng, span);
                (self.start as u128 + v) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                let v = uniform_u128_below(rng, span);
                (lo as u128 + v) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64, isize);

/// Uniform value in `[0, n)` by rejection sampling on 64-bit words
/// (`n` ≤ 2⁶⁴ here in practice; the u128 arithmetic only avoids
/// overflow at the extremes).
#[inline]
fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, n: u128) -> u128 {
    debug_assert!(n > 0);
    if n > u64::MAX as u128 {
        // Span longer than 2⁶⁴ never occurs for the ranges the simulator
        // draws; fall back to a plain modulo draw of two words.
        let w = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        return w % n;
    }
    let n64 = n as u64;
    // Lemire-style widening multiply with rejection for exact uniformity.
    let zone = u64::MAX - (u64::MAX - n64 + 1) % n64;
    loop {
        let w = rng.next_u64();
        if w <= zone {
            return (w as u128 * n64 as u128) >> 64;
        }
    }
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                let v = self.start + (self.end - self.start) * u;
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}

impl_float_range!(f32, f64);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the same family the real `SmallRng` uses on 64-bit
    /// platforms: fast, small state, excellent for simulation.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SmallRng {
        /// The raw 256-bit xoshiro state, for checkpointing. Restoring
        /// via [`SmallRng::from_state`] continues the stream exactly.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a state captured by
        /// [`SmallRng::state`].
        pub fn from_state(s: [u64; 4]) -> Self {
            SmallRng { s }
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1000), b.random_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.random_range(5u64..=7);
            assert!((5..=7).contains(&w));
            let f = r.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut r = SmallRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| r.random_bool(0.0)));
        assert!((0..100).all(|_| r.random_bool(1.0)));
    }

    #[test]
    fn full_u64_range_not_constant() {
        let mut r = SmallRng::seed_from_u64(3);
        let a = r.random_range(0u64..u64::MAX);
        let b = r.random_range(0u64..u64::MAX);
        let c = r.random_range(0u64..u64::MAX);
        assert!(a != b || b != c);
    }
}
