//! Offline shim for `crossbeam`: the `channel::unbounded` and
//! `channel::bounded` MPMC channels the experiment driver uses, built on
//! `std::sync` primitives.

pub mod channel {
    //! Multi-producer multi-consumer channels.
    //!
    //! * [`unbounded`] — sends never block (the original shim surface).
    //! * [`bounded`] — sends block while the queue holds `cap` items, so a
    //!   producer feeding lazily-generated work (e.g. campaign expansion)
    //!   never materializes more than `cap` items ahead of the consumers.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
        /// Wakes senders blocked on a full bounded queue.
        space: Condvar,
        /// `None` means unbounded.
        cap: Option<usize>,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half. Cloneable; the channel closes when all senders drop.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// Receiving half. Cloneable (work-stealing consumers).
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Error returned when sending into a channel with no receivers left.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// Error returned when the channel is empty and all senders dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_channel(None)
    }

    /// Create a bounded MPMC channel: [`Sender::send`] blocks while `cap`
    /// items are queued (and errors once every receiver has dropped).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        new_channel(Some(cap.max(1)))
    }

    fn new_channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
            cap,
        });
        (Sender(shared.clone()), Receiver(shared))
    }

    impl<T> Sender<T> {
        /// Enqueue a value. Unbounded channels never block; bounded
        /// channels block while full and fail once all receivers dropped
        /// (otherwise a full queue could never drain).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.queue.lock().unwrap();
            if let Some(cap) = self.0.cap {
                while st.items.len() >= cap {
                    if st.receivers == 0 {
                        return Err(SendError(value));
                    }
                    st = self.0.space.wait(st).unwrap();
                }
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
            }
            st.items.push_back(value);
            drop(st);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.queue.lock().unwrap().senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.queue.lock().unwrap();
            st.senders -= 1;
            let closed = st.senders == 0;
            drop(st);
            if closed {
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or every sender has dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.queue.lock().unwrap();
            loop {
                if let Some(v) = st.items.pop_front() {
                    drop(st);
                    self.0.space.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.0.ready.wait(st).unwrap();
            }
        }

        /// Non-blocking receive: `None` when currently empty.
        pub fn try_recv(&self) -> Option<T> {
            let v = self.0.queue.lock().unwrap().items.pop_front();
            if v.is_some() {
                self.0.space.notify_one();
            }
            v
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.queue.lock().unwrap().receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.0.queue.lock().unwrap();
            st.receivers -= 1;
            let last = st.receivers == 0;
            drop(st);
            if last {
                // Unblock senders waiting on a full bounded queue.
                self.0.space.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fan_out_consumes_everything() {
        let (tx, rx) = channel::unbounded::<usize>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut got = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let rx = rx.clone();
                let got = &got;
                s.spawn(move || {
                    while let Ok(v) = rx.recv() {
                        got.lock().unwrap().push(v);
                    }
                });
            }
        });
        let mut items = std::mem::take(got.get_mut().unwrap());
        items.sort_unstable();
        assert_eq!(items, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn recv_fails_after_close() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn bounded_producer_never_runs_far_ahead() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let (tx, rx) = channel::bounded::<usize>(2);
        let in_flight = AtomicUsize::new(0);
        let max_seen = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let consumer_rx = rx.clone();
            let in_flight = &in_flight;
            let max_seen = &max_seen;
            s.spawn(move || {
                while consumer_rx.recv().is_ok() {
                    let now = in_flight.fetch_sub(1, Ordering::SeqCst);
                    max_seen.fetch_max(now, Ordering::SeqCst);
                    std::thread::yield_now();
                }
            });
            drop(rx);
            for i in 0..200 {
                in_flight.fetch_add(1, Ordering::SeqCst);
                tx.send(i).unwrap();
            }
            drop(tx);
        });
        // cap 2 in the queue, plus one item the producer counted before
        // blocking in send, plus one the consumer popped but has not yet
        // decremented — far below the 200 an unbounded channel would show.
        assert!(max_seen.load(Ordering::SeqCst) <= 4);
    }

    #[test]
    fn bounded_send_fails_without_receivers() {
        let (tx, rx) = channel::bounded::<u8>(1);
        drop(rx);
        tx.send(1).unwrap_err();
    }
}
