//! In-run durability: checkpoint/restore with bit-identical resume,
//! and cooperative cancellation.
//!
//! A [`SimSnapshot`] captures the *complete* deterministic state of a
//! run at a cut instant: the pending event population (with its
//! `(time, rank)` order), every per-node protocol machine (radios, MAC,
//! AODV, traffic sources, sink, energy meter), the mobility models with
//! their RNG streams, and the fault/metrics layers. The hard guarantee
//! — proven by the `channel_equivalence` matrix — is that restoring a
//! snapshot and running to the end produces a report **bit-identical**
//! to the uninterrupted run, in both single-threaded and region-sharded
//! execution.
//!
//! # Cut semantics
//!
//! A cut is a *globally consistent instant* `g`: every event strictly
//! before `g` has been dispatched and every event at or after `g` is
//! still pending. Single-threaded runs cut whenever the next event's
//! time reaches a checkpoint grid point; sharded runs cut at an epoch
//! top — after a barrier, when every shard has dispatched its window
//! and accepted all cross-region shipments — with the window horizon
//! clamped to the next grid point so the same grid instants are
//! reachable cuts in every execution mode. Both constructions leave the
//! run in the exact state a single-threaded replay would have at `g`,
//! which is why a snapshot taken under one shard count restores under
//! any other.
//!
//! # Wire format
//!
//! [`SimSnapshot::to_bytes`] wraps the payload in the `pcmac-snap`
//! envelope (magic, version, length, FNV-1a checksum). Checkpoint files
//! are **host-independent**: every field is fixed-width little-endian,
//! floats travel as IEEE-754 bit patterns, and hash maps serialize in
//! sorted key order, so a file written on one machine restores with
//! bit-identical results on any other.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use pcmac_engine::{Duration, SimTime};
use pcmac_mobility::Mobility;
use pcmac_snap::{checksum64, fnv1a64, Snap, SnapError, SnapReader, SnapWriter};

use crate::config::ScenarioConfig;
use crate::event::SimEvent;
use crate::metrics::MetricsSnap;
use crate::report::RunReport;
use crate::sim::FaultSnap;

/// A cooperative cancellation handle: clone it, hand one side to the
/// run via [`RunHooks::cancel`], and call [`CancelToken::cancel`] from
/// any thread (a watchdog, a Ctrl-C handler). The run observes the
/// token at safe cut boundaries, takes a final snapshot, and returns
/// [`RunOutcome::Cancelled`] instead of blocking until the simulated
/// end — no thread is ever abandoned mid-dispatch.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Optional run-control hooks for [`Simulator::run_with_hooks`]
/// (crate::Simulator::run_with_hooks). The default (all `None`) is
/// exactly [`Simulator::run`](crate::Simulator::run).
#[derive(Default)]
pub struct RunHooks<'a> {
    /// Observed at cut boundaries; when cancelled the run stops cleanly
    /// with a final snapshot.
    pub cancel: Option<&'a CancelToken>,
    /// Take a periodic checkpoint every this much *simulated* time.
    pub checkpoint_every: Option<Duration>,
    /// Receives every periodic checkpoint (called on the driving thread
    /// in single mode, on shard 0's worker thread in sharded mode).
    pub checkpoint_sink: Option<&'a (dyn Fn(SimSnapshot) + Sync)>,
}

/// How a hooked run ended.
//
// The variants differ in size, but exactly one `RunOutcome` exists per
// run — boxing the report would cost every caller a deref for nothing.
#[allow(clippy::large_enum_variant)]
pub enum RunOutcome {
    /// Ran to the simulated end; the ordinary report.
    Completed(RunReport),
    /// Stopped at a cancellation cut; carries the state at the cut so
    /// the caller can persist it and resume later. `None` only when the
    /// event queue was already empty (nothing left to resume into).
    Cancelled(Option<SimSnapshot>),
}

impl RunOutcome {
    /// The report, if the run completed.
    pub fn report(self) -> Option<RunReport> {
        match self {
            RunOutcome::Completed(r) => Some(r),
            RunOutcome::Cancelled(_) => None,
        }
    }

    /// The cancellation snapshot, if the run was cancelled mid-flight.
    pub fn cancelled_snapshot(self) -> Option<SimSnapshot> {
        match self {
            RunOutcome::Completed(_) => None,
            RunOutcome::Cancelled(s) => s,
        }
    }
}

/// The complete deterministic state of a run at a cut instant. Obtain
/// one from [`Simulator::snapshot`](crate::Simulator::snapshot), a
/// periodic [`RunHooks::checkpoint_sink`], or a cancellation; bring it
/// back to life with [`Simulator::restore`](crate::Simulator::restore).
#[derive(Clone)]
pub struct SimSnapshot {
    /// Digest of the behavior-relevant scenario configuration; restore
    /// refuses a snapshot whose digest mismatches the offered config.
    pub(crate) cfg_digest: u64,
    /// The cut instant.
    pub(crate) time: SimTime,
    /// Canonical (single-equivalent) count of events ever scheduled by
    /// the cut: replicated events — impairment edges, the probe chain —
    /// counted once.
    pub(crate) scheduled_total: u64,
    /// Application packets emitted by the cut.
    pub(crate) sent_packets: u64,
    /// `MetricsProbe` events scheduled by the cut (0 when metrics are
    /// off) — every restored lane carries this so post-cut probe
    /// accounting continues identically.
    pub(crate) probes_scheduled: u64,
    /// The pending event population in canonical `(time, rank,
    /// insertion)` order.
    pub(crate) pending: Vec<(SimTime, u128, SimEvent)>,
    /// Per-node mobility models, advanced exactly to the cut.
    pub(crate) mobility: Vec<Mobility>,
    /// Per-node transmission-key counters.
    pub(crate) tx_key_ctr: Vec<u32>,
    /// Per-node cold-state blobs ([`Node::save_state`]
    /// (crate::node::Node) wire format), indexed by node.
    pub(crate) nodes: Vec<Vec<u8>>,
    /// Fault-layer state (`Some` iff the scenario has a fault plan).
    pub(crate) faults: Option<FaultSnap>,
    /// Metrics-layer state (`Some` iff the scenario enabled metrics).
    pub(crate) metrics: Option<MetricsSnap>,
}

impl SimSnapshot {
    /// The cut instant this snapshot captures.
    pub fn time(&self) -> SimTime {
        self.time
    }

    /// Does this snapshot belong to `cfg` (same behavior-relevant
    /// configuration)? Execution strategy, channel index, refresh and
    /// cache modes are excluded — they do not change behavior, so a
    /// snapshot moves freely across them.
    pub fn matches(&self, cfg: &ScenarioConfig) -> bool {
        self.cfg_digest == config_digest(cfg)
    }

    /// Serialize into the checksummed, versioned `pcmac-snap` envelope.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        self.save_core(&mut w);
        self.metrics.save(&mut w);
        w.finish()
    }

    /// Parse an envelope produced by [`SimSnapshot::to_bytes`]. Returns
    /// a structured [`SnapError`] — never panics — on truncation, magic
    /// or version mismatch, checksum failure, or trailing garbage.
    pub fn from_bytes(bytes: &[u8]) -> Result<SimSnapshot, SnapError> {
        let mut r = SnapReader::open(bytes)?;
        let snap = SimSnapshot {
            cfg_digest: r.u64()?,
            time: Snap::load(&mut r)?,
            scheduled_total: r.u64()?,
            sent_packets: r.u64()?,
            probes_scheduled: r.u64()?,
            pending: Snap::load(&mut r)?,
            mobility: Snap::load(&mut r)?,
            tx_key_ctr: Snap::load(&mut r)?,
            nodes: {
                let n = r.len_prefix()?;
                let mut nodes = Vec::with_capacity(n);
                for _ in 0..n {
                    nodes.push(r.blob()?);
                }
                nodes
            },
            faults: Snap::load(&mut r)?,
            metrics: Snap::load(&mut r)?,
        };
        if !r.is_exhausted() {
            return Err(SnapError::Corrupt("trailing bytes after snapshot"));
        }
        Ok(snap)
    }

    /// A digest of the *behavioral* state: everything except the
    /// metrics section (whose diagnostic counters — hot-path work
    /// counts, per-shard probe tallies — legitimately differ across
    /// execution strategies). Two runs of the same scenario are at the
    /// same behavioral state at a cut iff these match; the divergence
    /// bisector binary-searches over this. The config digest is
    /// excluded — it identifies the *scenario*, not the state — so two
    /// differently-configured runs that are supposed to be bit-identical
    /// can still be compared cut by cut.
    pub fn state_fingerprint(&self) -> u64 {
        let mut w = SnapWriter::new();
        self.save_core(&mut w);
        checksum64(&w.payload()[8..])
    }

    /// Everything except the metrics section, in wire order.
    fn save_core(&self, w: &mut SnapWriter) {
        w.u64(self.cfg_digest);
        self.time.save(w);
        w.u64(self.scheduled_total);
        w.u64(self.sent_packets);
        w.u64(self.probes_scheduled);
        self.pending.save(w);
        self.mobility.save(w);
        self.tx_key_ctr.save(w);
        // Node blobs go through the bulk-copy path: the generic
        // `Vec<Vec<u8>>` impl writes the same bytes one `u8` at a time,
        // which dominated checkpoint cost at N = 64k.
        w.u64(self.nodes.len() as u64);
        for blob in &self.nodes {
            w.blob(blob);
        }
        self.faults.save(w);
    }
}

/// Digest of the behavior-relevant scenario configuration: the master
/// seed, duration, field, nodes, flows, radio/MAC/AODV parameters,
/// variant, interference floor, shadowing, fault plan, metrics config
/// and delay floor. Execution strategy, channel index, mobility-refresh
/// and gain-cache modes and the display name are normalized away —
/// proven behavior-invariant by the equivalence matrix — so a snapshot
/// restores across any of them. The digest hashes the canonical JSON
/// encoding, which is identical on every host.
pub(crate) fn config_digest(cfg: &ScenarioConfig) -> u64 {
    let mut c = cfg.clone();
    c.name = String::new();
    c.channel_index = Default::default();
    c.mobility_refresh = None;
    c.gain_cache = None;
    c.execution = None;
    let json = serde_json::to_string(&c).expect("scenario config serializes");
    fnv1a64(json.as_bytes())
}

/// The first checkpoint grid instant strictly after `after`: grid points
/// are absolute multiples of the interval, so a resumed run and an
/// uninterrupted one — and every execution mode — checkpoint at
/// identical simulated instants no matter where they started.
pub(crate) fn next_grid_point(after: SimTime, every_ns: u64) -> SimTime {
    let e = every_ns.max(1);
    SimTime::from_nanos((after.as_nanos() / e + 1).saturating_mul(e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_points_are_absolute() {
        let e = 1_000_000_000u64; // 1 s
        let g = |ns: u64| next_grid_point(SimTime::from_nanos(ns), e).as_nanos();
        assert_eq!(g(0), e);
        assert_eq!(g(1), e);
        assert_eq!(g(e - 1), e);
        assert_eq!(g(e), 2 * e); // strictly after
        assert_eq!(g(e + 1), 2 * e);
        assert_eq!(next_grid_point(SimTime::from_nanos(5), 0).as_nanos(), 6);
    }

    #[test]
    fn cancel_token_round_trip() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        let c = t.clone();
        c.cancel();
        assert!(t.is_cancelled());
        t.cancel(); // idempotent
        assert!(t.is_cancelled());
    }
}
