//! Campaign specifications: a base scenario spec expanded across named
//! parameter axes × seed lists into concrete runs.
//!
//! A campaign is the unit the paper's evaluation is actually made of —
//! Figures 8/9 are (variant × offered load × seed) grids, the power-level
//! table is a (level-set) sweep, and the design ablations (safety factor,
//! control-channel bandwidth, capture policy, handshake arity) are
//! single-knob sweeps over the [`crate::spec::PATCH_PATHS`] surface.
//!
//! The sweep dimensions are [`Axis`] values: first-class axes for the
//! common coordinates (offered load, node count, MAC variant, power-level
//! set) plus the generic [`Axis::Patch`] — a dotted path into the
//! scenario's parameter surface with a list of values. The historical
//! fixed grid ([`AxesSpec`]) is kept as sugar that lowers onto axes, so
//! existing spec files expand exactly as before.
//!
//! Expansion is lazy: [`CampaignSpec::grid`] builds only the per-point
//! *specs* (cheap), and [`CampaignGrid::scenarios`] materializes each
//! `(point × seed)` [`ScenarioConfig`] on demand as the parallel runner's
//! bounded work channel drains — a 10⁴-run campaign never holds more than
//! a few configs in memory. [`CampaignSpec::expand_vec`] keeps the eager
//! form for the CLI's `expand` subcommand and for parity tests.

use pcmac::{ScenarioConfig, Variant};
use serde::{Deserialize, Serialize, Value};

use crate::spec::{PlacementSpec, ScenarioSpec, SpecError};

/// The legacy fixed sweep grid. Every `None` axis stays at the base
/// spec's value; every `Some` axis multiplies the grid. Kept as sugar:
/// [`AxesSpec::lower`] turns it into the equivalent [`Axis`] list
/// (preserving the historical nesting order: load outermost, then node
/// count, then power-level set, then variant innermost).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AxesSpec {
    /// Aggregate offered loads (kbps).
    pub loads_kbps: Option<Vec<f64>>,
    /// Node counts (density sweeps).
    pub node_counts: Option<Vec<usize>>,
    /// MAC variants to compare.
    pub variants: Option<Vec<Variant>>,
    /// Discrete transmit power-level sets (mW, each strictly increasing).
    pub power_level_sets_mw: Option<Vec<Vec<f64>>>,
}

impl AxesSpec {
    /// Lower the fixed grid onto the general axis list.
    pub fn lower(&self) -> Vec<Axis> {
        let mut axes = Vec::new();
        if let Some(v) = &self.loads_kbps {
            axes.push(Axis::Load { values: v.clone() });
        }
        if let Some(v) = &self.node_counts {
            axes.push(Axis::Nodes { values: v.clone() });
        }
        if let Some(v) = &self.power_level_sets_mw {
            axes.push(Axis::PowerLevels { sets_mw: v.clone() });
        }
        if let Some(v) = &self.variants {
            axes.push(Axis::Variants { values: v.clone() });
        }
        axes
    }
}

/// One sweep dimension of a campaign. The cross-product of every axis's
/// values (first axis outermost) drives the expansion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Axis {
    /// Aggregate offered load (kbps).
    Load {
        /// The load points.
        values: Vec<f64>,
    },
    /// Node count (density sweeps).
    Nodes {
        /// The node counts.
        values: Vec<usize>,
    },
    /// MAC variant under test.
    Variants {
        /// The protocols to compare.
        values: Vec<Variant>,
    },
    /// Discrete transmit power-level set.
    PowerLevels {
        /// One level set (mW, strictly increasing) per axis value.
        sets_mw: Vec<Vec<f64>>,
    },
    /// Generic typed patch: a dotted path into the scenario's parameter
    /// surface (see [`crate::spec::PATCH_PATHS`]) and the values to sweep
    /// it over, e.g. `{"path": "mac.pcmac.safety_factor",
    /// "values": [0.5, 0.7, 0.9, 1.0]}`.
    Patch {
        /// Dotted parameter path.
        path: String,
        /// Raw JSON values, type-checked against the target field.
        values: Vec<Value>,
    },
}

impl Axis {
    /// Number of values on this axis.
    pub fn len(&self) -> usize {
        match self {
            Axis::Load { values } => values.len(),
            Axis::Nodes { values } => values.len(),
            Axis::Variants { values } => values.len(),
            Axis::PowerLevels { sets_mw } => sets_mw.len(),
            Axis::Patch { values, .. } => values.len(),
        }
    }

    /// `true` when the axis has no values (always a spec defect).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The canonical parameter path this axis sweeps — the identity
    /// used to detect two axes fighting over one knob (a first-class
    /// axis and the equivalent `Patch` path share it).
    pub fn knob(&self) -> &str {
        match self {
            Axis::Load { .. } => "traffic.offered_load_kbps",
            Axis::Nodes { .. } => "nodes.count",
            Axis::Variants { .. } => "variant",
            Axis::PowerLevels { .. } => "power_levels_mw",
            Axis::Patch { path, .. } => path,
        }
    }

    /// Display label: the axis kind, plus the path for patch axes.
    pub fn label(&self) -> String {
        match self {
            Axis::Load { .. } => "Load".into(),
            Axis::Nodes { .. } => "Nodes".into(),
            Axis::Variants { .. } => "Variants".into(),
            Axis::PowerLevels { .. } => "PowerLevels".into(),
            Axis::Patch { path, .. } => format!("Patch `{path}`"),
        }
    }

    fn validate(&self, base: &ScenarioSpec, base_ok: bool, problems: &mut Vec<String>) {
        if self.is_empty() {
            problems.push(format!("{} axis is empty", self.label()));
            return;
        }
        match self {
            Axis::Load { values } => {
                for l in values {
                    if !l.is_finite() || *l <= 0.0 {
                        problems.push(format!("load {l} kbps must be positive and finite"));
                    }
                }
            }
            Axis::Nodes { values } => {
                if values.iter().any(|c| *c < 2) {
                    problems.push("node counts must be at least 2".into());
                }
                if matches!(
                    base.nodes.placement,
                    PlacementSpec::Density { .. } | PlacementSpec::Explicit { .. }
                ) {
                    problems.push(
                        "Nodes axis conflicts with a placement that implies its own count".into(),
                    );
                }
            }
            Axis::Variants { .. } => {}
            Axis::PowerLevels { sets_mw } => {
                validate_level_sets(sets_mw, problems);
            }
            Axis::Patch { path, values } => {
                // Type-check every value by applying it to a scratch copy
                // of the base; when the base itself is valid, also catch
                // semantically-bad values (negative safety factor, …)
                // here rather than at expansion time.
                for (i, v) in values.iter().enumerate() {
                    let mut probe = base.clone();
                    match probe.apply_patch(path, v) {
                        Err(e) => {
                            problems.extend(
                                e.problems
                                    .into_iter()
                                    .map(|p| format!("axis `{path}` value {i}: {p}")),
                            );
                            // An unknown path fails identically for every
                            // value; one report suffices.
                            break;
                        }
                        Ok(()) => {
                            if base_ok {
                                if let Err(e) = probe.validate() {
                                    problems.extend(
                                        e.problems
                                            .into_iter()
                                            .map(|p| format!("axis `{path}` value {i}: {p}")),
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Apply value `idx` of this axis to `spec`. Patch-axis coordinates
    /// are also recorded in `patches` so the grid point's key names them.
    fn apply(
        &self,
        idx: usize,
        spec: &mut ScenarioSpec,
        patches: &mut Vec<(String, Value)>,
    ) -> Result<(), SpecError> {
        match self {
            Axis::Load { values } => spec.traffic.offered_load_kbps = values[idx],
            Axis::Nodes { values } => spec.nodes.count = Some(values[idx]),
            Axis::Variants { values } => spec.variant = values[idx],
            Axis::PowerLevels { sets_mw } => spec.power_levels_mw = Some(sets_mw[idx].clone()),
            Axis::Patch { path, values } => {
                spec.apply_patch(path, &values[idx])?;
                patches.push((path.clone(), values[idx].clone()));
            }
        }
        Ok(())
    }
}

fn validate_level_sets(sets: &[Vec<f64>], problems: &mut Vec<String>) {
    for (i, levels) in sets.iter().enumerate() {
        if levels.is_empty() {
            problems.push(format!("power level set {i} is empty"));
        } else if levels.iter().any(|l| !l.is_finite() || *l <= 0.0) {
            problems.push(format!(
                "power level set {i} must be all-positive and finite (mW)"
            ));
        } else if levels.windows(2).any(|w| w[0] >= w[1]) {
            problems.push(format!("power level set {i} must be strictly increasing"));
        }
    }
}

/// A declarative campaign: base spec × axes × seeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Campaign label; the output artifact is `CAMPAIGN_<name>.json`.
    pub name: String,
    /// The scenario every grid point starts from.
    pub base: ScenarioSpec,
    /// Override the base spec's duration (s) for every run — shrinking a
    /// published campaign for smoke tests without editing the base. It
    /// replaces the *base* duration before the axes apply, so an
    /// explicit `duration_s` Patch axis still wins.
    pub duration_s: Option<f64>,
    /// Seeds run (and later averaged) per grid point.
    pub seeds: Vec<u64>,
    /// Legacy fixed sweep grid (sugar; lowered onto axes first).
    pub axes: Option<AxesSpec>,
    /// General sweep axes, appended after the lowered legacy grid. Each
    /// axis multiplies the grid; [`Axis::Patch`] reaches any knob on the
    /// [`crate::spec::PATCH_PATHS`] surface.
    pub sweep: Option<Vec<Axis>>,
}

/// The coordinates of one grid point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointKey {
    /// Protocol name (paper naming).
    pub variant: String,
    /// Aggregate offered load (kbps).
    pub load_kbps: f64,
    /// Node count.
    pub node_count: usize,
    /// Power-level set (mW) of the point's spec, when it overrides the
    /// paper's ten classes.
    pub power_levels_mw: Option<Vec<f64>>,
    /// Generic patch-axis coordinates `(path, value)` in axis order;
    /// `None` when the campaign sweeps no patch axes.
    pub patches: Option<Vec<(String, Value)>>,
}

impl PointKey {
    /// The swept patch knobs as `name=value` pairs (`-` when none) — the
    /// column that distinguishes rows of a patch-axis campaign.
    pub fn patches_label(&self) -> String {
        match &self.patches {
            None => "-".into(),
            Some(ps) => ps
                .iter()
                .map(|(path, v)| {
                    let knob = path.rsplit('.').next().unwrap_or(path);
                    format!("{knob}={}", value_str(v))
                })
                .collect::<Vec<_>>()
                .join(" "),
        }
    }

    /// Human-readable point label: the protocol plus any swept knobs.
    pub fn label(&self) -> String {
        match &self.patches {
            None => self.variant.clone(),
            Some(_) => format!("{} {}", self.variant, self.patches_label()),
        }
    }
}

fn value_str(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        other => serde_json::to_string(other).unwrap_or_else(|_| format!("{other:?}")),
    }
}

/// One grid point: its coordinates and one concrete scenario per seed.
#[derive(Debug, Clone)]
pub struct CampaignPoint {
    /// Grid coordinates.
    pub key: PointKey,
    /// Seeds, aligned with `scenarios`.
    pub seeds: Vec<u64>,
    /// One runnable scenario per seed.
    pub scenarios: Vec<ScenarioConfig>,
}

/// One cell of an expanded grid: the point's coordinates and its fully
/// patched (but not yet materialized) spec.
#[derive(Debug, Clone)]
pub struct GridCell {
    /// Grid coordinates.
    pub key: PointKey,
    /// The base spec with every axis value and the campaign duration
    /// override applied. Validated at grid-build time.
    pub spec: ScenarioSpec,
}

/// The expanded-but-unmaterialized form of a campaign: one [`GridCell`]
/// per point. Holding specs instead of `(point × seed)` configs keeps
/// memory O(points); [`CampaignGrid::scenarios`] materializes runs
/// on demand.
#[derive(Debug, Clone)]
pub struct CampaignGrid {
    /// Seeds run per cell.
    pub seeds: Vec<u64>,
    /// Grid cells in expansion order (first axis outermost).
    pub cells: Vec<GridCell>,
}

impl CampaignGrid {
    /// Number of grid points.
    pub fn point_count(&self) -> usize {
        self.cells.len()
    }

    /// Total runs (points × seeds).
    pub fn run_count(&self) -> usize {
        self.cells.len() * self.seeds.len()
    }

    /// Lazily materialize every `(cell × seed)` scenario, point-major and
    /// seed-minor — the stream the campaign runner consumes.
    ///
    /// Every cell spec was validated when the grid was built, so a
    /// materialization failure here is a validator/materializer
    /// disagreement. It used to panic; now it propagates as an `Err`
    /// naming the cell and seed, which the runner records as a failed
    /// point instead of aborting the whole sweep.
    pub fn scenarios(&self) -> impl Iterator<Item = Result<ScenarioConfig, SpecError>> + '_ {
        self.cells.iter().flat_map(move |cell| {
            self.seeds.iter().map(move |&seed| {
                cell.spec.materialize(seed).map_err(|e| SpecError {
                    problems: e
                        .problems
                        .into_iter()
                        .map(|p| format!("grid cell `{}` seed {seed}: {p}", cell.key.label()))
                        .collect(),
                })
            })
        })
    }
}

impl CampaignSpec {
    /// Every sweep dimension in expansion order: the lowered legacy grid
    /// first, then the general `sweep` axes.
    pub fn axes_list(&self) -> Vec<Axis> {
        let mut axes = self.axes.as_ref().map(AxesSpec::lower).unwrap_or_default();
        if let Some(sweep) = &self.sweep {
            axes.extend(sweep.iter().cloned());
        }
        axes
    }

    /// Check the campaign (base spec, seeds, every axis) with actionable
    /// messages.
    pub fn validate(&self) -> Result<(), SpecError> {
        let mut problems = Vec::new();
        let base_ok = match self.base.validate() {
            Ok(()) => true,
            Err(e) => {
                problems.extend(e.problems.into_iter().map(|p| format!("base: {p}")));
                false
            }
        };
        if self.seeds.is_empty() {
            problems.push("campaign has no seeds".into());
        }
        if let Some(d) = self.duration_s {
            if !d.is_finite() || d <= 0.0 {
                problems.push(format!("duration {d} s must be positive and finite"));
            } else if d <= self.base.min_duration_s() {
                // The override replaces the base duration at expansion;
                // catch an over-shrunk campaign here, not mid-expand.
                problems.push(format!(
                    "duration override {d} s leaves later flows no airtime (flow starts are staggered up to {:.3} s)",
                    self.base.min_duration_s()
                ));
            }
        }
        // Legacy-grid defects keep their historical messages.
        if let Some(axes) = &self.axes {
            if let Some(loads) = &axes.loads_kbps {
                if loads.is_empty() {
                    problems.push("loads_kbps axis is empty".into());
                }
                for l in loads {
                    if !l.is_finite() || *l <= 0.0 {
                        problems.push(format!("load {l} kbps must be positive and finite"));
                    }
                }
            }
            if let Some(counts) = &axes.node_counts {
                if counts.is_empty() {
                    problems.push("node_counts axis is empty".into());
                }
                if counts.iter().any(|c| *c < 2) {
                    problems.push("node counts must be at least 2".into());
                }
                if matches!(
                    self.base.nodes.placement,
                    PlacementSpec::Density { .. } | PlacementSpec::Explicit { .. }
                ) {
                    problems.push(
                        "node_counts axis conflicts with a placement that implies its own count"
                            .into(),
                    );
                }
            }
            if let Some(vs) = &axes.variants {
                if vs.is_empty() {
                    problems.push("variants axis is empty".into());
                }
            }
            if let Some(sets) = &axes.power_level_sets_mw {
                if sets.is_empty() {
                    problems.push("power_level_sets_mw axis is empty".into());
                }
                validate_level_sets(sets, &mut problems);
            }
        }
        if let Some(sweep) = &self.sweep {
            for axis in sweep {
                axis.validate(&self.base, base_ok, &mut problems);
            }
        }
        // Two axes sweeping the same knob would produce duplicate points
        // whose keys collide (the later axis value silently wins). The
        // comparison is by *target knob*, not label, so a first-class
        // axis and its Patch-path equivalent (e.g. `Load` and
        // `traffic.offered_load_kbps`) collide too.
        let axes = self.axes_list();
        let mut seen: Vec<&str> = Vec::new();
        for axis in &axes {
            let knob = axis.knob();
            if seen.contains(&knob) {
                problems.push(format!(
                    "axes {} sweep the same knob `{knob}`; merge their values into one axis",
                    axes.iter()
                        .filter(|a| a.knob() == knob)
                        .map(Axis::label)
                        .collect::<Vec<_>>()
                        .join(" and ")
                ));
            } else {
                seen.push(knob);
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(SpecError { problems })
        }
    }

    /// Number of grid points (before seeds).
    pub fn point_count(&self) -> usize {
        self.axes_list().iter().map(|a| a.len().max(1)).product()
    }

    /// Total runs the campaign will execute.
    pub fn run_count(&self) -> usize {
        self.point_count() * self.seeds.len()
    }

    /// Expand the axes into the grid skeleton: validate, take the
    /// cross-product of every axis (first axis outermost), apply each
    /// combination to a copy of the base spec, and validate every cell.
    /// No scenario is materialized; use [`CampaignGrid::scenarios`] (lazy)
    /// or [`CampaignSpec::expand_vec`] (eager).
    pub fn grid(&self) -> Result<CampaignGrid, SpecError> {
        self.validate()?;
        let axes = self.axes_list();
        let lens: Vec<usize> = axes.iter().map(Axis::len).collect();
        let total: usize = lens.iter().product();

        let mut cells = Vec::with_capacity(total);
        let mut idx = vec![0usize; axes.len()];
        // Defective cells don't abort the expansion: every cell is
        // checked and the full defect list comes back in one error, so
        // `validate`/`run` report everything wrong with a campaign at
        // once instead of one cell per invocation.
        let mut problems = Vec::new();
        for mut n in 0..total {
            for (k, &len) in lens.iter().enumerate().rev() {
                idx[k] = n % len;
                n /= len;
            }
            let mut spec = self.base.clone();
            // The campaign-level duration override replaces the *base*
            // duration, so it applies before the axes: an explicit
            // `duration_s` Patch axis wins over it, keeping every
            // point's key truthful about what actually ran.
            if let Some(d) = self.duration_s {
                spec.duration_s = d;
            }
            let mut patches = Vec::new();
            let mut cell_problems = Vec::new();
            for (axis, &i) in axes.iter().zip(&idx) {
                if let Err(e) = axis.apply(i, &mut spec, &mut patches) {
                    cell_problems.extend(e.problems);
                }
            }
            let node_count = match spec.node_count() {
                Ok(c) => c,
                Err(e) => {
                    cell_problems.extend(e.problems);
                    0
                }
            };
            let key = PointKey {
                variant: spec.variant.name().to_string(),
                load_kbps: spec.traffic.offered_load_kbps,
                node_count,
                power_levels_mw: spec.power_levels_mw.clone(),
                patches: (!patches.is_empty()).then_some(patches),
            };
            if let Err(e) = spec.validate() {
                cell_problems.extend(e.problems);
            }
            if cell_problems.is_empty() {
                cells.push(GridCell { key, spec });
            } else {
                // `node_count()` runs again inside `validate`, so the
                // same defect can surface twice; report each once.
                let label = key.label();
                for p in cell_problems {
                    let msg = format!("grid cell `{label}`: {p}");
                    if !problems.contains(&msg) {
                        problems.push(msg);
                    }
                }
            }
        }
        if !problems.is_empty() {
            return Err(SpecError { problems });
        }
        Ok(CampaignGrid {
            seeds: self.seeds.clone(),
            cells,
        })
    }

    /// Eagerly materialize the whole grid: one [`CampaignPoint`] per
    /// cell, holding one [`ScenarioConfig`] per seed. Convenient for the
    /// CLI's `expand` subcommand and for parity tests; prefer
    /// [`CampaignSpec::grid`] + [`CampaignGrid::scenarios`] for running.
    pub fn expand_vec(&self) -> Result<Vec<CampaignPoint>, SpecError> {
        let grid = self.grid()?;
        let mut points = Vec::with_capacity(grid.cells.len());
        for cell in &grid.cells {
            let scenarios: Vec<ScenarioConfig> = grid
                .seeds
                .iter()
                .map(|&seed| cell.spec.materialize(seed))
                .collect::<Result<_, _>>()?;
            points.push(CampaignPoint {
                key: cell.key.clone(),
                seeds: grid.seeds.clone(),
                scenarios,
            });
        }
        Ok(points)
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("specs always serialize")
    }

    /// Parse from JSON (no validation — call [`CampaignSpec::validate`]).
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}
