//! Offline shim for `proptest`.
//!
//! Provides the slice of the proptest API this repository's property
//! tests use: the [`proptest!`] macro, `prop_assert*` / `prop_assume!`,
//! range and tuple strategies, [`collection::vec`], and `any::<T>()`.
//!
//! Unlike real proptest there is no shrinking: each test runs a fixed
//! number of deterministically-seeded random cases (default 64, override
//! with the `PROPTEST_CASES` environment variable) and reports the first
//! failing case's values via the assertion message. Cases are seeded from
//! the test name, so failures reproduce exactly across runs.

use std::ops::{Range, RangeInclusive};

/// Number of cases per property (env `PROPTEST_CASES` overrides).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Deterministic per-test random source (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed from a test name so each property gets a stable stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut st = h;
        let mut next = || {
            st = st.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = st;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let zone = u64::MAX - (u64::MAX - n + 1) % n;
        loop {
            let w = self.next_u64();
            if w <= zone {
                return ((w as u128 * n as u128) >> 64) as u64;
            }
        }
    }

    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Something that can produce random values for a property case.
pub trait Strategy {
    /// The value type produced.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Spans ≤ 2⁶⁴ for all primitive ranges.
                let v = rng.below(span.min(u64::MAX as u128) as u64) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let v = self.start + (self.end - self.start) * rng.unit() as $t;
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $t:ident),+),)*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t { rng.next_u64() as $t }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, symmetric around zero, wide dynamic range.
        let mag = rng.unit() * 1e12;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

/// Strategy wrapper for [`Arbitrary`] types.
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: the canonical whole-domain strategy.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`].
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything the property tests import.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Run each property as `cases()` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($(#[$attr:meta])* fn $name:ident($($pat:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut __rng = $crate::TestRng::deterministic(stringify!($name));
                let __cases: u32 = ($cfg).cases;
                for __case in 0..__cases {
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    // Render inputs up front: the body may consume them.
                    let __inputs = ::std::format!(
                        ::std::concat!($("\n  ", stringify!($pat), " = {:?}",)+),
                        $(&$pat),+
                    );
                    let __result: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(__msg) = __result {
                        panic!(
                            "property `{}` failed at case {}:\n{}\ninputs:{}",
                            stringify!($name),
                            __case,
                            __msg,
                            __inputs
                        );
                    }
                }
            }
        )*
    };
    ($($(#[$attr:meta])* fn $name:ident($($pat:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut __rng = $crate::TestRng::deterministic(stringify!($name));
                for __case in 0..$crate::cases() {
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    // Render inputs up front: the body may consume them.
                    let __inputs = ::std::format!(
                        ::std::concat!($("\n  ", stringify!($pat), " = {:?}",)+),
                        $(&$pat),+
                    );
                    let __result: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(__msg) = __result {
                        panic!(
                            "property `{}` failed at case {}:\n{}\ninputs:{}",
                            stringify!($name),
                            __case,
                            __msg,
                            __inputs
                        );
                    }
                }
            }
        )*
    };
}

/// Assert inside a [`proptest!`] body; failure fails only that case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), __a, __b
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Inequality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                __a
            ));
        }
    }};
}

/// Skip the current case when a precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    proptest! {
        #[test]
        fn ranges_in_bounds(x in 10u64..20, y in -5i32..5, f in 0.5f64..1.5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0u64..100, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|x| *x < 100));
        }

        #[test]
        fn tuples_sample_both(t in (0u64..10, 0u64..10)) {
            prop_assert!(t.0 < 10 && t.1 < 10);
        }

        #[test]
        fn assume_skips(n in 0u64..10) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics() {
        proptest! {
            fn always_fails(_x in 0u64..10) {
                prop_assert!(false, "intentional");
            }
        }
        always_fails();
    }
}
