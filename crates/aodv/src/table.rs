//! The routing table.
//!
//! One entry per known destination: next hop, hop count, the destination
//! sequence number certifying freshness, a validity flag and an expiry.
//! Sequence-number rules (only accept fresher, or equal-and-shorter)
//! give AODV its loop freedom; the table enforces them in one place.

use std::collections::HashMap;

use pcmac_engine::{Duration, NodeId, SimTime};

use crate::seq::seq_newer;

/// One routing-table entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Route {
    /// Neighbour to forward through.
    pub next_hop: NodeId,
    /// Hops to the destination.
    pub hop_count: u8,
    /// Destination sequence number this route was certified with.
    pub dst_seq: u32,
    /// `false` once invalidated by a failure or RERR.
    pub valid: bool,
    /// Instant the route stops being usable.
    pub expires: SimTime,
}

/// Destination-indexed route table.
#[derive(Debug, Clone, Default)]
pub struct RouteTable {
    routes: HashMap<NodeId, Route>,
}

impl RouteTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Usable route to `dst`, if any (valid and unexpired).
    pub fn lookup(&self, dst: NodeId, now: SimTime) -> Option<&Route> {
        self.routes.get(&dst).filter(|r| r.valid && r.expires > now)
    }

    /// Raw entry regardless of validity (sequence bookkeeping).
    pub fn entry(&self, dst: NodeId) -> Option<&Route> {
        self.routes.get(&dst)
    }

    /// Install or update the route to `dst` following the AODV acceptance
    /// rule: take the offer iff no entry exists, the offered sequence is
    /// newer, the current entry is invalid, or the sequence ties and the
    /// hop count improves. Returns `true` when the table changed.
    pub fn offer(
        &mut self,
        dst: NodeId,
        next_hop: NodeId,
        hop_count: u8,
        dst_seq: u32,
        lifetime: Duration,
        now: SimTime,
    ) -> bool {
        let expires = now + lifetime;
        match self.routes.get_mut(&dst) {
            None => {
                self.routes.insert(
                    dst,
                    Route {
                        next_hop,
                        hop_count,
                        dst_seq,
                        valid: true,
                        expires,
                    },
                );
                true
            }
            Some(r) => {
                let fresher = seq_newer(dst_seq, r.dst_seq);
                let tie_better = dst_seq == r.dst_seq && (hop_count < r.hop_count || !r.valid);
                if fresher || tie_better || !r.valid {
                    *r = Route {
                        next_hop,
                        hop_count,
                        dst_seq: if fresher {
                            dst_seq
                        } else {
                            r.dst_seq.max(dst_seq)
                        },
                        valid: true,
                        expires,
                    };
                    true
                } else {
                    // Same or staler info: at most refresh the lifetime of
                    // the identical route.
                    if r.next_hop == next_hop && expires > r.expires {
                        r.expires = expires;
                    }
                    false
                }
            }
        }
    }

    /// Refresh the lifetime of an actively-used route (data forwarded).
    pub fn refresh(&mut self, dst: NodeId, lifetime: Duration, now: SimTime) {
        if let Some(r) = self.routes.get_mut(&dst) {
            if r.valid {
                r.expires = r.expires.max(now + lifetime);
            }
        }
    }

    /// Invalidate every valid route using `next_hop`, bumping each
    /// destination sequence (RFC 3561 §6.11). Returns the affected
    /// `(destination, bumped seq)` pairs for the RERR.
    pub fn invalidate_via(&mut self, next_hop: NodeId) -> Vec<(NodeId, u32)> {
        let mut out = Vec::new();
        for (dst, r) in self.routes.iter_mut() {
            if r.valid && r.next_hop == next_hop {
                r.valid = false;
                r.dst_seq = r.dst_seq.wrapping_add(1);
                out.push((*dst, r.dst_seq));
            }
        }
        out.sort_by_key(|(d, _)| d.0);
        out
    }

    /// Process one RERR item from neighbour `from`: invalidate our route
    /// to `dst` if it runs through `from`. Returns the bumped pair when a
    /// route died (to forward the error).
    pub fn invalidate_from_rerr(
        &mut self,
        dst: NodeId,
        reported_seq: u32,
        from: NodeId,
    ) -> Option<(NodeId, u32)> {
        let r = self.routes.get_mut(&dst)?;
        if r.valid && r.next_hop == from {
            r.valid = false;
            if seq_newer(reported_seq, r.dst_seq) {
                r.dst_seq = reported_seq;
            }
            Some((dst, r.dst_seq))
        } else {
            None
        }
    }

    /// Last known sequence number for `dst` (valid or not).
    pub fn known_seq(&self, dst: NodeId) -> Option<u32> {
        self.routes.get(&dst).map(|r| r.dst_seq)
    }

    /// Number of entries (diagnostics).
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// `true` when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

mod snap {
    use super::{Route, RouteTable};

    pcmac_snap::snap_struct!(Route {
        next_hop,
        hop_count,
        dst_seq,
        valid,
        expires,
    });

    pcmac_snap::snap_struct!(RouteTable { routes });
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIFE: Duration = Duration::from_secs(10);

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + Duration::from_secs(s)
    }

    #[test]
    fn lookup_finds_fresh_valid_routes_only() {
        let mut rt = RouteTable::new();
        rt.offer(NodeId(5), NodeId(2), 3, 10, LIFE, t(0));
        assert!(rt.lookup(NodeId(5), t(1)).is_some());
        assert!(rt.lookup(NodeId(5), t(10)).is_none(), "expired");
        assert!(rt.lookup(NodeId(6), t(1)).is_none(), "unknown");
    }

    #[test]
    fn fresher_sequence_replaces_route() {
        let mut rt = RouteTable::new();
        rt.offer(NodeId(5), NodeId(2), 3, 10, LIFE, t(0));
        assert!(rt.offer(NodeId(5), NodeId(3), 5, 11, LIFE, t(0)));
        let r = rt.lookup(NodeId(5), t(1)).unwrap();
        assert_eq!(r.next_hop, NodeId(3));
        assert_eq!(r.dst_seq, 11);
    }

    #[test]
    fn stale_sequence_is_rejected() {
        let mut rt = RouteTable::new();
        rt.offer(NodeId(5), NodeId(2), 3, 10, LIFE, t(0));
        assert!(!rt.offer(NodeId(5), NodeId(3), 1, 9, LIFE, t(0)));
        assert_eq!(rt.lookup(NodeId(5), t(1)).unwrap().next_hop, NodeId(2));
    }

    #[test]
    fn equal_seq_takes_shorter_path() {
        let mut rt = RouteTable::new();
        rt.offer(NodeId(5), NodeId(2), 3, 10, LIFE, t(0));
        assert!(rt.offer(NodeId(5), NodeId(4), 2, 10, LIFE, t(0)));
        assert_eq!(rt.lookup(NodeId(5), t(1)).unwrap().next_hop, NodeId(4));
        assert!(!rt.offer(NodeId(5), NodeId(9), 4, 10, LIFE, t(0)));
    }

    #[test]
    fn invalid_route_accepts_any_offer() {
        let mut rt = RouteTable::new();
        rt.offer(NodeId(5), NodeId(2), 3, 10, LIFE, t(0));
        rt.invalidate_via(NodeId(2));
        assert!(rt.lookup(NodeId(5), t(1)).is_none());
        // Even an equal-seq offer revives it.
        assert!(rt.offer(NodeId(5), NodeId(3), 6, 11, LIFE, t(1)));
        assert!(rt.lookup(NodeId(5), t(2)).is_some());
    }

    #[test]
    fn invalidate_via_bumps_sequences() {
        let mut rt = RouteTable::new();
        rt.offer(NodeId(5), NodeId(2), 3, 10, LIFE, t(0));
        rt.offer(NodeId(6), NodeId(2), 4, 20, LIFE, t(0));
        rt.offer(NodeId(7), NodeId(3), 2, 30, LIFE, t(0));
        let dead = rt.invalidate_via(NodeId(2));
        assert_eq!(dead, vec![(NodeId(5), 11), (NodeId(6), 21)]);
        assert!(
            rt.lookup(NodeId(7), t(1)).is_some(),
            "other next hop survives"
        );
    }

    #[test]
    fn rerr_invalidates_matching_next_hop_only() {
        let mut rt = RouteTable::new();
        rt.offer(NodeId(5), NodeId(2), 3, 10, LIFE, t(0));
        assert!(rt.invalidate_from_rerr(NodeId(5), 12, NodeId(3)).is_none());
        let bumped = rt.invalidate_from_rerr(NodeId(5), 12, NodeId(2));
        assert_eq!(bumped, Some((NodeId(5), 12)));
        assert!(rt.lookup(NodeId(5), t(1)).is_none());
    }

    #[test]
    fn refresh_extends_lifetime() {
        let mut rt = RouteTable::new();
        rt.offer(NodeId(5), NodeId(2), 3, 10, LIFE, t(0));
        rt.refresh(NodeId(5), LIFE, t(5));
        assert!(rt.lookup(NodeId(5), t(12)).is_some(), "refreshed to t=15");
    }

    #[test]
    fn refresh_ignores_invalid_routes() {
        let mut rt = RouteTable::new();
        rt.offer(NodeId(5), NodeId(2), 3, 10, LIFE, t(0));
        rt.invalidate_via(NodeId(2));
        rt.refresh(NodeId(5), LIFE, t(1));
        assert!(rt.lookup(NodeId(5), t(2)).is_none());
    }
}
