//! Struct-of-arrays mirror audits and owner+halo shard correctness.
//!
//! The dispatch hot path reads node liveness, carrier state, and queue
//! depth from parallel arrays that *mirror* the authoritative cold
//! state, and a region shard keeps hot state (and grid membership) only
//! for the nodes it owns plus a boundary halo. Two failure modes follow:
//! a mirror drifting out of sync with the `Node` it shadows, and a halo
//! too narrow to hear a transmission from just inside a neighbouring
//! band. These tests target both.
//!
//! The mirror audit leans on the `debug_assert_eq!` cross-checks wired
//! into the metrics probe handler: every probe re-derives each sampled
//! node's alive/busy/queue observables from the cold structs and panics
//! (in debug builds, which is how the test profile compiles) on any
//! disagreement — so simply running probe-dense fuzzed scenarios *is*
//! the reconstruction check.

use pcmac::{
    ChurnConfig, CrashWindow, ExecutionMode, FaultConfig, FlowShape, FlowSpec, MetricsConfig,
    NodeSetup, RunReport, ScenarioConfig, Simulator, Variant,
};
use pcmac_engine::{Duration, FlowId, Milliwatts, NodeId, Point, RngStream, SimTime};
use proptest::prelude::*;

/// Strip the only legitimately nondeterministic field and serialize.
fn fingerprint(r: &RunReport) -> serde_json::Value {
    let text = serde_json::to_string(r).expect("reports serialize");
    let v: serde_json::Value = serde_json::from_str(&text).unwrap();
    match v {
        serde_json::Value::Map(entries) => {
            serde_json::Value::Map(entries.into_iter().filter(|(k, _)| k != "wall_s").collect())
        }
        other => other,
    }
}

/// [`fingerprint`] with `metrics.hot_path` removed: the hot-path
/// profile counts what each shard's machinery did (the replicated probe
/// chain alone scales with the shard count), while every other field
/// must be mode-invariant.
fn mode_invariant_fingerprint(r: &RunReport) -> serde_json::Value {
    let strip = |v: serde_json::Value| match v {
        serde_json::Value::Map(entries) => serde_json::Value::Map(
            entries
                .into_iter()
                .filter(|(k, _)| k != "hot_path")
                .collect(),
        ),
        other => other,
    };
    match fingerprint(r) {
        serde_json::Value::Map(entries) => serde_json::Value::Map(
            entries
                .into_iter()
                .map(|(k, v)| {
                    if k == "metrics" {
                        (k, strip(v))
                    } else {
                        (k, v)
                    }
                })
                .collect(),
        ),
        other => other,
    }
}

/// A fuzzable faulted scenario with a dense probe schedule: crashes,
/// churn, an impairment burst (noise-floor flips exercise the global
/// resync path), and probes every 50 ms auditing the mirrors all run.
fn audited_scenario(seed: u64, n: usize, mobile: bool) -> ScenarioConfig {
    let duration = Duration::from_secs(2);
    let side = 1500.0;
    let mut cfg = ScenarioConfig::two_nodes(Variant::ALL[seed as usize % 4], 100.0, 1000.0, seed);
    cfg.name = format!("soa-audit-{seed}-{n}");
    cfg.field = (side, side);
    cfg.duration = duration;
    cfg.interference_floor = Milliwatts(1.559e-10);
    if mobile {
        cfg.nodes = NodeSetup::UniformWaypoint {
            count: n,
            speed: 20.0,
            pause: Duration::from_millis(200),
        };
    } else {
        let mut rng = RngStream::derive(seed, "soa.placement");
        cfg.nodes = NodeSetup::Static(
            (0..n)
                .map(|_| Point::new(rng.uniform(0.0, side), rng.uniform(0.0, side)))
                .collect(),
        );
    }
    let mut rng = RngStream::derive(seed, "soa.flows");
    cfg.flows = (0..4)
        .map(|i| {
            let src = rng.below(n as u64) as u32;
            let dst = loop {
                let d = rng.below(n as u64) as u32;
                if d != src {
                    break d;
                }
            };
            FlowSpec {
                flow: FlowId(i),
                src: NodeId(src),
                dst: NodeId(dst),
                bytes: 512,
                rate_bps: 40_000.0,
                start: SimTime::ZERO + Duration::from_millis(100 + 37 * i as u64),
                stop: SimTime::ZERO + duration,
                shape: FlowShape::Cbr,
            }
        })
        .collect();
    cfg.faults = Some(FaultConfig {
        crashes: Some(vec![
            CrashWindow {
                node: (n as u32).saturating_sub(2),
                at_s: 0.6,
                recover_s: Some(1.4),
            },
            CrashWindow {
                node: (n as u32).saturating_sub(1),
                at_s: 1.0,
                recover_s: None,
            },
        ]),
        churn: Some(ChurnConfig {
            mean_uptime_s: 0.7,
            mean_downtime_s: 0.2,
            start_s: Some(0.2),
            stop_s: Some(1.6),
        }),
        expire_routes: Some(true),
        impairments: Some(vec![pcmac::ImpairmentBurst {
            start_s: 0.9,
            stop_s: 1.3,
            extra_loss_db: 12.0,
            noise_mult: Some(2.0),
        }]),
        energy_budget_mj: Some(0.25),
    });
    cfg.metrics = Some(MetricsConfig {
        probe_interval_s: 0.05,
    });
    cfg
}

/// Pin the execution strategy (same floor on both sides of any
/// sharded-vs-single comparison — the floor is part of the channel).
fn with_execution(mut cfg: ScenarioConfig, shards: Option<usize>) -> ScenarioConfig {
    cfg.delay_floor_us = Some(10.0);
    cfg.execution = shards.map(|shards| ExecutionMode::Sharded { shards });
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Fuzzed faulted event sequences with the probe auditing every
    /// 50 ms: the struct-of-arrays mirrors and the cold structs must
    /// never disagree, in single mode or on any shard — and the probed
    /// observables (which now *come from* the mirrors) must leave the
    /// sharded report bit-identical to the single-threaded one.
    #[test]
    fn soa_mirrors_never_disagree_with_cold_state(
        seed in 0u64..1000,
        n in 10usize..18,
        mobile in any::<bool>(),
    ) {
        let cfg = audited_scenario(seed, n, mobile);
        let single = Simulator::new(with_execution(cfg.clone(), None)).run();
        prop_assert!(single.events > 0);
        prop_assert!(
            !single.metrics.as_ref().expect("metrics on").samples.is_empty(),
            "no probes fired — the audit never ran"
        );
        for shards in [2usize, 4] {
            let sharded = Simulator::new(with_execution(cfg.clone(), Some(shards))).run();
            prop_assert_eq!(
                mode_invariant_fingerprint(&sharded),
                mode_invariant_fingerprint(&single),
                "mirror-fed observables diverged (seed {} shards {})",
                seed,
                shards
            );
        }
    }
}

/// A transmission from just inside a band boundary must be heard
/// *identically* by its neighbour across every shard count: the
/// receiver sits in the sender's halo (and vice versa), so the pruned
/// per-shard grid has to produce the exact full-grid candidate set.
/// Two 8-node clusters face each other across the x midline with a
/// boundary-straddling flow each way; any halo narrower than the
/// maximum reach would silently drop the cross-band arrivals and show
/// up here as a fingerprint (or delivery-count) mismatch.
#[test]
fn boundary_band_transmission_heard_identically_across_shard_counts() {
    let duration = Duration::from_secs(2);
    let side = 2000.0;
    let mut cfg = ScenarioConfig::two_nodes(Variant::Pcmac, 100.0, 1000.0, 7);
    cfg.name = "halo-boundary".into();
    cfg.field = (side, side);
    cfg.duration = duration;
    cfg.interference_floor = Milliwatts(1.559e-10);
    // Left cluster (x ≤ 980) and right cluster (x ≥ 1020); the closest
    // pair straddles the 2-shard boundary 40 m apart — just inside each
    // band, far closer than the communication range.
    let mut pts: Vec<Point> = (0..7)
        .map(|i| Point::new(150.0 + 110.0 * i as f64, 400.0 + 150.0 * i as f64))
        .collect();
    pts.push(Point::new(980.0, 1000.0)); // node 7: boundary sender
    pts.push(Point::new(1020.0, 1000.0)); // node 8: boundary receiver
    pts.extend((0..7).map(|i| Point::new(1850.0 - 110.0 * i as f64, 500.0 + 140.0 * i as f64)));
    cfg.nodes = NodeSetup::Static(pts);
    cfg.flows = vec![
        FlowSpec {
            flow: FlowId(0),
            src: NodeId(7),
            dst: NodeId(8),
            bytes: 512,
            rate_bps: 40_000.0,
            start: SimTime::ZERO + Duration::from_millis(100),
            stop: SimTime::ZERO + duration,
            shape: FlowShape::Cbr,
        },
        FlowSpec {
            flow: FlowId(1),
            src: NodeId(8),
            dst: NodeId(7),
            bytes: 512,
            rate_bps: 40_000.0,
            start: SimTime::ZERO + Duration::from_millis(137),
            stop: SimTime::ZERO + duration,
            shape: FlowShape::Cbr,
        },
    ];
    let single = Simulator::new(with_execution(cfg.clone(), None)).run();
    assert!(
        single.delivered_packets > 0,
        "the boundary pair must actually exchange traffic, or the halo claim is vacuous"
    );
    for shards in [1usize, 2, 4, 8] {
        let sharded = Simulator::new(with_execution(cfg.clone(), Some(shards))).run();
        assert_eq!(sharded.delivered_packets, single.delivered_packets);
        assert_eq!(
            fingerprint(&sharded),
            fingerprint(&single),
            "boundary-band transmission diverged at {shards} shards"
        );
    }
}
