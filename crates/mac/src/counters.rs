//! Per-node MAC statistics counters.

use serde::{Deserialize, Serialize};

/// Event counts collected by one node's MAC. The figure harness aggregates
/// these across nodes to explain *why* a protocol wins (retransmissions,
/// collisions heard, control-channel deferrals).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct MacCounters {
    /// RTS frames transmitted.
    pub rts_sent: u64,
    /// CTS frames transmitted.
    pub cts_sent: u64,
    /// Unicast DATA frames transmitted (including retries).
    pub data_sent: u64,
    /// Broadcast DATA frames transmitted.
    pub broadcast_sent: u64,
    /// ACK frames transmitted.
    pub ack_sent: u64,
    /// CTS timeouts (RTS attempt failed).
    pub cts_timeouts: u64,
    /// ACK timeouts (DATA attempt failed).
    pub ack_timeouts: u64,
    /// Packets dropped after exhausting retries.
    pub retry_drops: u64,
    /// Packets rejected by the full interface queue.
    pub queue_drops: u64,
    /// Frames delivered to the upper layer.
    pub delivered: u64,
    /// Duplicate data frames suppressed at the receiver.
    pub duplicates: u64,
    /// Corrupted receptions observed (collision indicator).
    pub rx_errors: u64,
    /// PCMAC: implicit-ack retransmissions triggered by CTS echo mismatch.
    pub implicit_retx: u64,
    /// PCMAC: stored copies abandoned after the retransmission cap.
    pub implicit_give_ups: u64,
    /// PCMAC: tolerance broadcasts sent on the control channel.
    pub ctrl_broadcasts: u64,
    /// PCMAC: transmission attempts deferred by the tolerance check.
    pub ctrl_deferrals: u64,
    /// PCMAC: power classes stepped up after CTS timeouts.
    pub power_step_ups: u64,
}

impl MacCounters {
    /// Element-wise accumulation (for network-wide aggregation).
    pub fn merge(&mut self, other: &MacCounters) {
        self.rts_sent += other.rts_sent;
        self.cts_sent += other.cts_sent;
        self.data_sent += other.data_sent;
        self.broadcast_sent += other.broadcast_sent;
        self.ack_sent += other.ack_sent;
        self.cts_timeouts += other.cts_timeouts;
        self.ack_timeouts += other.ack_timeouts;
        self.retry_drops += other.retry_drops;
        self.queue_drops += other.queue_drops;
        self.delivered += other.delivered;
        self.duplicates += other.duplicates;
        self.rx_errors += other.rx_errors;
        self.implicit_retx += other.implicit_retx;
        self.implicit_give_ups += other.implicit_give_ups;
        self.ctrl_broadcasts += other.ctrl_broadcasts;
        self.ctrl_deferrals += other.ctrl_deferrals;
        self.power_step_ups += other.power_step_ups;
    }
}

mod snap {
    use super::MacCounters;

    pcmac_snap::snap_struct!(MacCounters {
        rts_sent,
        cts_sent,
        data_sent,
        broadcast_sent,
        ack_sent,
        cts_timeouts,
        ack_timeouts,
        retry_drops,
        queue_drops,
        delivered,
        duplicates,
        rx_errors,
        implicit_retx,
        implicit_give_ups,
        ctrl_broadcasts,
        ctrl_deferrals,
        power_step_ups,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = MacCounters {
            rts_sent: 2,
            delivered: 5,
            ..Default::default()
        };
        let b = MacCounters {
            rts_sent: 3,
            rx_errors: 7,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.rts_sent, 5);
        assert_eq!(a.delivered, 5);
        assert_eq!(a.rx_errors, 7);
    }
}
