//! ns-2-style packet tracing.
//!
//! Runs one second of a two-node PCMAC exchange and prints the channel
//! trace — every RTS/CTS/DATA arrival, transmit end and tolerance
//! broadcast, in execution order. The same `TraceWriter` plugs into any
//! scenario via `Simulator::run_with_observer`.
//!
//! ```text
//! cargo run --release --example packet_trace [-- <lines>]
//! ```

use std::cell::RefCell;

use pcmac::{ScenarioConfig, Simulator, TraceWriter, Variant};
use pcmac_engine::Duration;

fn main() {
    let max_lines: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);

    let cfg = ScenarioConfig::two_nodes(Variant::Pcmac, 80.0, 100_000.0, 42)
        .with_duration(Duration::from_secs(1));
    let mut tracer = TraceWriter::new();
    let report = {
        let tracer = RefCell::new(&mut tracer);
        Simulator::new(cfg).run_with_observer(|ev, at| tracer.borrow_mut().record(ev, at))
    };

    println!(
        "trace ({} lines total, first {max_lines} shown):\n",
        tracer.len()
    );
    for line in tracer.text().lines().take(max_lines) {
        println!("{line}");
    }
    println!("\n{}", report.summary());
}
