//! Strongly-typed identifiers.
//!
//! Indices into the simulation's node table, flow table, etc. Newtypes keep
//! a `NodeId` from being confused with a `FlowId` at compile time while
//! compiling down to a bare `u32`/`u64`.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
                 serde::Serialize, serde::Deserialize)]
        pub struct $name(pub $inner);

        impl $name {
            /// Raw index value.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<$inner> for $name {
            #[inline]
            fn from(v: $inner) -> Self {
                Self(v)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

id_type!(
    /// A station in the network. Doubles as the MAC *and* network address
    /// (ARP elision; see DESIGN.md §3).
    NodeId,
    u32
);

id_type!(
    /// An application traffic flow (one CBR source → sink pair).
    FlowId,
    u32
);

id_type!(
    /// A unique application packet, assigned at generation time and carried
    /// end-to-end so sinks can compute per-packet delay.
    PacketId,
    u64
);

id_type!(
    /// PCMAC session identifier: names a (source, destination) MAC pair for
    /// the sent-/received-table implicit-acknowledgment mechanism.
    SessionId,
    u64
);

impl NodeId {
    /// The broadcast address (all ones), matching 802.11 semantics.
    pub const BROADCAST: NodeId = NodeId(u32::MAX);

    /// `true` if this is the broadcast address.
    #[inline]
    pub const fn is_broadcast(self) -> bool {
        self.0 == u32::MAX
    }
}

impl SessionId {
    /// Build the canonical session id for a (src, dst) MAC pair.
    ///
    /// PCMAC's sent/received tables key on the directed pair; packing both
    /// 32-bit ids into one u64 gives a collision-free key.
    #[inline]
    pub const fn for_pair(src: NodeId, dst: NodeId) -> SessionId {
        SessionId(((src.0 as u64) << 32) | dst.0 as u64)
    }

    /// Recover the (src, dst) pair from a canonical session id.
    #[inline]
    pub const fn pair(self) -> (NodeId, NodeId) {
        (NodeId((self.0 >> 32) as u32), NodeId(self.0 as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_is_distinct() {
        assert!(NodeId::BROADCAST.is_broadcast());
        assert!(!NodeId(0).is_broadcast());
        assert!(!NodeId(12).is_broadcast());
    }

    #[test]
    fn session_pair_roundtrip() {
        let s = SessionId::for_pair(NodeId(7), NodeId(42));
        assert_eq!(s.pair(), (NodeId(7), NodeId(42)));
        // direction matters
        assert_ne!(s, SessionId::for_pair(NodeId(42), NodeId(7)));
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(NodeId(1));
        set.insert(NodeId(2));
        assert!(set.contains(&NodeId(1)));
        assert!(NodeId(1) < NodeId(2));
    }

    #[test]
    fn display_is_bare_number() {
        assert_eq!(format!("{}", NodeId(9)), "9");
        assert_eq!(format!("{:?}", FlowId(3)), "FlowId(3)");
    }
}
