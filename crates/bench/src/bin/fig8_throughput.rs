//! Regenerate **Figure 8**: aggregate network throughput versus offered
//! load for Basic 802.11, PCMAC, Scheme 1 and Scheme 2.
//!
//! ```text
//! cargo run -p pcmac-bench --release --bin fig8_throughput [-- --full] \
//!     [--secs N] [--seeds 1,2,3] [--loads 300,...,1000] [--json out.jsonl] \
//!     [--campaign-json CAMPAIGN_fig8.json]
//! ```
//!
//! The paper's result (ICPP'03, Fig. 8): all four curves rise with load
//! and saturate; PCMAC saturates highest (~8–10 % above Basic 802.11),
//! while the naive power-control schemes fall *below* Basic.

use pcmac_bench::{check_figure8_shape, write_output_flag, Sweep};
use pcmac_stats::series::to_csv;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sweep = Sweep::from_args(&args);
    eprintln!(
        "fig8: loads {:?} kbps, {} s per run, {} seed(s), 4 protocols → {} runs",
        sweep.loads,
        sweep.secs,
        sweep.seeds.len(),
        sweep.loads.len() * sweep.seeds.len() * 4
    );

    let result = sweep.run();
    let series = result.throughput_series();

    println!("Figure 8 — aggregate network throughput (kbps) vs offered load (kbps)");
    println!(
        "({} s per run, {} seed(s) averaged)\n",
        sweep.secs, result.seeds
    );
    println!("{}", result.render_table("throughput kbps", &series));
    println!(
        "{}",
        pcmac_stats::ascii_plot(
            "Figure 8 (reproduced)",
            "offered load kbps",
            &series,
            64,
            16
        )
    );
    println!("CSV:\n{}", to_csv("offered_load_kbps", &series));
    println!(
        "per-point aggregation (mean ± 95% CI over seeds):\n{}",
        result.campaign.render_table()
    );

    write_output_flag(&args, "--json", "raw reports", || result.to_json_lines());
    write_output_flag(
        &args,
        "--campaign-json",
        "aggregated campaign report",
        || result.campaign.to_json(),
    );

    match check_figure8_shape(&series) {
        Ok(()) => {
            println!("shape check vs paper Fig. 8: PASS (PCMAC > Basic at saturation; no collapse)")
        }
        Err(e) => {
            println!("shape check vs paper Fig. 8: FAIL — {e}");
            std::process::exit(1);
        }
    }
}
