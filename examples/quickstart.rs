//! Quickstart: the smallest useful simulation.
//!
//! Two static nodes 80 m apart, one 100 kbps CBR flow of 512-byte
//! packets, 10 simulated seconds under PCMAC. Prints the run report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pcmac::{ScenarioConfig, Simulator, Variant};

fn main() {
    let cfg = ScenarioConfig::two_nodes(Variant::Pcmac, 80.0, 100_000.0, 42);
    println!("scenario: {}", cfg.name);
    println!(
        "offered load: {:.1} kbps over {:.0} s",
        cfg.offered_load_kbps(),
        cfg.duration.as_secs_f64()
    );

    let report = Simulator::new(cfg).run();

    println!("\n{}", report.summary());
    println!("\nMAC counters:");
    println!("  RTS sent        {}", report.mac.rts_sent);
    println!("  CTS sent        {}", report.mac.cts_sent);
    println!("  DATA sent       {}", report.mac.data_sent);
    println!("  ACK sent        {}", report.mac.ack_sent);
    println!("  CTS timeouts    {}", report.mac.cts_timeouts);
    println!("  rx errors       {}", report.mac.rx_errors);
    println!("  ctrl broadcasts {}", report.mac.ctrl_broadcasts);
    println!("  ctrl deferrals  {}", report.mac.ctrl_deferrals);
    println!("\nenergy: {:.2} mJ radiated total", report.radiated_mj);
    println!(
        "        {:.4} mJ per delivered packet",
        report.radiated_mj_per_packet
    );
    println!("\n{} events in {:.2} s wall", report.events, report.wall_s);

    assert!(report.pdr() > 0.9, "two nodes in range must deliver");
}
