//! The 802.11 DCF engine with power control.
//!
//! One state machine implements all four protocols of the evaluation —
//! Basic 802.11, Scheme 1, Scheme 2 and PCMAC — differing only at marked
//! branch points (power selection, handshake arity, control-channel
//! checks). This keeps the heavily-tested CSMA/CA core identical across
//! variants, so protocol comparisons measure the *power control design*,
//! not incidental implementation drift.
//!
//! The MAC is a pure state machine: inputs are radio indications, timer
//! fires and enqueued packets; outputs are [`MacAction`]s that the
//! simulation core applies (transmit a frame, arm a timer, deliver a
//! packet upward, report a broken link). No clocks or queues are hidden
//! inside — everything observable happens through the action stream, which
//! is what makes the unit tests below possible without a full simulator.

use pcmac_engine::{
    Duration, Milliwatts, NodeId, RngStream, SessionId, SimTime, TimerSlot, TimerToken,
};
use pcmac_net::{DropTailQueue, Packet, QueuedPacket};

use crate::backoff::Backoff;
use crate::config::{MacConfig, Variant};
use crate::counters::MacCounters;
use crate::frame::{CtrlFrame, Frame, FrameBody, FrameKind};
use crate::nav::Nav;
use crate::pcmac::{noise_tolerance, ActiveReceivers, EchoVerdict, ReceivedTable, SentTable};
use crate::power::PowerHistory;

/// Logical timers of the MAC. Each has its own [`TimerSlot`]; fired events
/// carry the token so stale (cancelled/re-armed) timers are ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MacTimerKind {
    /// DIFS (or post-busy) defer finished.
    Defer,
    /// Backoff countdown finished.
    Backoff,
    /// CTS never arrived after our RTS.
    CtsTimeout,
    /// ACK never arrived after our DATA.
    AckTimeout,
    /// A SIFS-spaced response (CTS/DATA/ACK) is due.
    Response,
    /// The NAV reservation expired.
    NavExpire,
    /// PCMAC: a tolerance-blocked attempt may retry.
    CtrlRetry,
}

/// Outputs of the MAC toward the simulation core.
#[derive(Debug, Clone)]
pub enum MacAction {
    /// Transmit `frame` on the data channel at `power`.
    TxFrame {
        /// The frame to put on the air.
        frame: Frame,
        /// Radiated power.
        power: Milliwatts,
    },
    /// Transmit a PCMAC tolerance broadcast on the control channel.
    TxCtrl {
        /// The control frame.
        frame: CtrlFrame,
        /// Radiated power (always the maximum level).
        power: Milliwatts,
    },
    /// Arm timer `kind` to fire after `delay` carrying `token`.
    Arm {
        /// Which logical timer.
        kind: MacTimerKind,
        /// Delay from now.
        delay: Duration,
        /// Liveness token to echo back into [`DcfMac::on_timer`].
        token: TimerToken,
    },
    /// Deliver a received packet to the network layer.
    Deliver {
        /// The packet.
        packet: Packet,
        /// MAC address of the previous hop.
        from: NodeId,
    },
    /// All retries exhausted toward `next_hop` — routing should treat the
    /// link as broken.
    LinkFailure {
        /// The packet that could not be delivered.
        packet: Packet,
        /// The unreachable next hop.
        next_hop: NodeId,
    },
    /// The interface queue rejected a packet.
    QueueDrop {
        /// The rejected packet.
        packet: Packet,
    },
}

/// What our radio is currently transmitting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TxKind {
    Rts,
    Cts,
    DataUnicast { needs_ack: bool },
    DataBroadcast,
    Ack,
}

/// Where we are in an exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    /// No exchange of our own in flight (access engine may run).
    Idle,
    /// Our frame is on the air.
    Tx(TxKind),
    /// RTS sent, waiting for the CTS.
    WaitCts,
    /// DATA sent, waiting for the ACK.
    WaitAck,
}

/// The packet currently being worked on.
#[derive(Debug, Clone)]
pub(crate) struct TxJob {
    packet: Packet,
    next_hop: NodeId,
    /// Sequence number once allocated (first transmission attempt).
    seq: Option<u32>,
}

/// The 802.11 DCF MAC (all four protocol variants).
#[derive(Debug, Clone)]
pub struct DcfMac {
    id: NodeId,
    cfg: MacConfig,
    rng: RngStream,

    // Medium view.
    phys_busy: bool,
    nav: Nav,

    // Channel access.
    backoff: Backoff,
    count_start: Option<SimTime>,

    // Timers.
    t_defer: TimerSlot,
    t_backoff: TimerSlot,
    t_cts: TimerSlot,
    t_ack: TimerSlot,
    t_resp: TimerSlot,
    t_nav: TimerSlot,
    t_ctrl: TimerSlot,

    // Work.
    queue: DropTailQueue,
    current: Option<TxJob>,
    /// Packet that must be retransmitted in the current exchange instead
    /// of `current` (PCMAC implicit-ack recovery).
    retransmit_override: Option<(Packet, u32)>,
    phase: Phase,
    pending_response: Option<(Frame, Milliwatts)>,
    ssrc: u8,
    slrc: u8,
    /// RTS power for the current job (PCMAC steps this up on timeouts).
    rts_power: Milliwatts,

    // Power control state.
    history: PowerHistory,
    sent: SentTable,
    recv: ReceivedTable,
    active_rx: ActiveReceivers,
    /// Latest noise measurement from our radio (PCMAC advertises it in
    /// RTS headers so responders can size their CTS power).
    last_noise: Milliwatts,

    /// Statistics.
    pub counters: MacCounters,
    /// Retry-count distribution over finished exchanges: bucket `k`
    /// counts jobs finished (delivered or dropped) after `k` retries
    /// (short + long), the last bucket is `>= 7`.
    retx_hist: [u64; 8],
}

impl DcfMac {
    /// Build the MAC for node `id`. `seed` drives the backoff RNG.
    pub fn new(id: NodeId, cfg: MacConfig, seed: u64) -> Self {
        let rng = RngStream::derive_sub(seed, "mac.backoff", id.0 as u64);
        let backoff = Backoff::new(cfg.timing.cw_min, cfg.timing.cw_max);
        let history = PowerHistory::new(cfg.levels.clone(), cfg.rx_thresh)
            .with_expiry(cfg.pcmac.history_expiry);
        let queue = DropTailQueue::new(cfg.queue_capacity);
        let max_power = cfg.max_power();
        let max_retx = cfg.pcmac.max_retx;
        DcfMac {
            id,
            cfg,
            rng,
            phys_busy: false,
            nav: Nav::new(),
            backoff,
            count_start: None,
            t_defer: TimerSlot::new(),
            t_backoff: TimerSlot::new(),
            t_cts: TimerSlot::new(),
            t_ack: TimerSlot::new(),
            t_resp: TimerSlot::new(),
            t_nav: TimerSlot::new(),
            t_ctrl: TimerSlot::new(),
            queue,
            current: None,
            retransmit_override: None,
            phase: Phase::Idle,
            pending_response: None,
            ssrc: 0,
            slrc: 0,
            rts_power: max_power,
            history,
            sent: SentTable::new(max_retx),
            recv: ReceivedTable::new(),
            active_rx: ActiveReceivers::new(),
            last_noise: Milliwatts::ZERO,
            counters: MacCounters::default(),
            retx_hist: [0; 8],
        }
    }

    /// Update the noise level observed at our radio. The simulation core
    /// refreshes this alongside radio indications; PCMAC advertises it in
    /// RTS headers (paper §III step 2).
    pub fn set_noise(&mut self, noise: Milliwatts) {
        self.last_noise = noise;
    }

    /// This node's MAC address.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The configuration in force.
    pub fn config(&self) -> &MacConfig {
        &self.cfg
    }

    /// Current interface-queue occupancy.
    pub fn queue_len(&self) -> usize {
        self.queue.len() + usize::from(self.current.is_some())
    }

    /// Retry-count distribution over finished exchanges (bucket `k` =
    /// `k` retries, last bucket `>= 7`).
    pub fn retx_histogram(&self) -> &[u64; 8] {
        &self.retx_hist
    }

    // ------------------------------------------------------------------
    // Inputs
    // ------------------------------------------------------------------

    /// Accept a packet from the network layer for transmission to
    /// `next_hop` (or broadcast).
    pub fn enqueue(
        &mut self,
        packet: Packet,
        next_hop: NodeId,
        now: SimTime,
        out: &mut Vec<MacAction>,
    ) {
        if self.current.is_none() {
            self.current = Some(TxJob {
                packet,
                next_hop,
                seq: None,
            });
            self.begin_job(now);
            self.start_access(now, out);
            return;
        }
        if let Some(rejected) = self.queue.push(QueuedPacket { packet, next_hop }) {
            self.counters.queue_drops += 1;
            out.push(MacAction::QueueDrop {
                packet: rejected.packet,
            });
        }
    }

    /// Physical carrier-sense edge from the radio.
    pub fn on_carrier(&mut self, busy: bool, now: SimTime, out: &mut Vec<MacAction>) {
        let was_idle = self.medium_idle(now);
        self.phys_busy = busy;
        if busy {
            if was_idle {
                self.medium_became_busy(now);
            }
        } else if self.medium_idle(now) {
            self.medium_became_idle(now, out);
        }
    }

    /// The radio locked onto an arriving frame (header-level knowledge).
    ///
    /// Only PCMAC acts on this: a DATA frame addressed to us triggers the
    /// noise-tolerance broadcast on the control channel (paper §III step
    /// 5). `noise` is the interference measured at the radio excluding the
    /// locked frame; `remaining` is the time until the arrival completes.
    pub fn on_rx_start(
        &mut self,
        frame: &Frame,
        power: Milliwatts,
        noise: Milliwatts,
        remaining: Duration,
        now: SimTime,
        out: &mut Vec<MacAction>,
    ) {
        let _ = now;
        if !self.cfg.variant.is_pcmac() {
            return;
        }
        if frame.kind == FrameKind::Data && frame.rx == self.id && !frame.is_broadcast() {
            let tol = noise_tolerance(power, noise, self.cfg.pcmac.capture_ratio);
            if tol.value() > 0.0 {
                self.counters.ctrl_broadcasts += 1;
                out.push(MacAction::TxCtrl {
                    frame: CtrlFrame {
                        receiver: self.id,
                        noise_tolerance: tol,
                        remaining,
                        tx_power: self.cfg.max_power(),
                    },
                    power: self.cfg.max_power(),
                });
            }
        }
    }

    /// A frame finished arriving. `ok == false` means it was corrupted
    /// (collision): the MAC defers EIFS, following ns-2's NAV treatment.
    pub fn on_rx_end(
        &mut self,
        frame: Frame,
        power: Milliwatts,
        ok: bool,
        now: SimTime,
        out: &mut Vec<MacAction>,
    ) {
        if !ok {
            self.counters.rx_errors += 1;
            self.reserve_nav(self.cfg.timing.eifs(), now, out);
            return;
        }

        // Every decoded frame teaches us the needed power toward its
        // sender (frames carry their transmit power in the header).
        if self.cfg.variant.uses_power_history() {
            self.history.observe(frame.tx, power, frame.tx_power, now);
        }

        if !frame.is_for(self.id) {
            // Virtual carrier sense from the duration field.
            if !frame.duration.is_zero() {
                self.reserve_nav(frame.duration, now, out);
            }
            return;
        }

        match frame.kind {
            FrameKind::Rts => self.handle_rts(frame, power, now, out),
            FrameKind::Cts => self.handle_cts(frame, now, out),
            FrameKind::Data => self.handle_data(frame, now, out),
            FrameKind::Ack => self.handle_ack(frame, now, out),
        }
    }

    /// Our own data-channel transmission completed.
    pub fn on_tx_end(&mut self, now: SimTime, out: &mut Vec<MacAction>) {
        let Phase::Tx(kind) = self.phase else {
            debug_assert!(false, "tx end outside Tx phase");
            return;
        };
        match kind {
            TxKind::Rts => {
                self.phase = Phase::WaitCts;
                let token = self.t_cts.arm();
                out.push(MacAction::Arm {
                    kind: MacTimerKind::CtsTimeout,
                    delay: self.cfg.timing.cts_timeout(),
                    token,
                });
            }
            TxKind::Cts | TxKind::Ack => {
                // Responder role complete (CTS: the DATA will arrive and
                // keep the medium busy; ACK: exchange done).
                self.phase = Phase::Idle;
                self.start_access(now, out);
            }
            TxKind::DataUnicast { needs_ack: true } => {
                self.phase = Phase::WaitAck;
                let token = self.t_ack.arm();
                out.push(MacAction::Arm {
                    kind: MacTimerKind::AckTimeout,
                    delay: self.cfg.timing.ack_timeout(),
                    token,
                });
            }
            TxKind::DataUnicast { needs_ack: false } => {
                // PCMAC three-way handshake: the DATA is provisionally
                // delivered; confirmation rides the next CTS echo.
                self.phase = Phase::Idle;
                if self.retransmit_override.take().is_none() {
                    // A fresh packet completed its exchange.
                    self.finish_current(true, now, out);
                } else {
                    // We just replayed a stored copy; the fresh packet in
                    // `current` still needs its own exchange.
                    self.ssrc = 0;
                    self.backoff.reset_cw();
                    self.backoff.draw(&mut self.rng);
                    self.start_access(now, out);
                }
            }
            TxKind::DataBroadcast => {
                self.phase = Phase::Idle;
                self.finish_current(true, now, out);
            }
        }
    }

    /// Our control-channel broadcast completed (PCMAC). Nothing to do —
    /// the control radio needs no turnaround bookkeeping — but the hook is
    /// kept for symmetry and future use.
    pub fn on_ctrl_tx_end(&mut self, _now: SimTime) {}

    /// A tolerance broadcast arrived on the control channel (PCMAC).
    pub fn on_ctrl_rx(&mut self, cf: CtrlFrame, heard_at: Milliwatts, now: SimTime) {
        if !self.cfg.variant.is_pcmac() || cf.receiver == self.id {
            return;
        }
        self.active_rx.record(
            cf.receiver,
            cf.noise_tolerance,
            heard_at,
            cf.tx_power,
            now + cf.remaining,
        );
        self.active_rx.purge(now);
    }

    /// A timer fired. Stale tokens (cancelled or superseded) are ignored.
    pub fn on_timer(
        &mut self,
        kind: MacTimerKind,
        token: TimerToken,
        now: SimTime,
        out: &mut Vec<MacAction>,
    ) {
        let live = match kind {
            MacTimerKind::Defer => self.t_defer.fire(token),
            MacTimerKind::Backoff => self.t_backoff.fire(token),
            MacTimerKind::CtsTimeout => self.t_cts.fire(token),
            MacTimerKind::AckTimeout => self.t_ack.fire(token),
            MacTimerKind::Response => self.t_resp.fire(token),
            MacTimerKind::NavExpire => self.t_nav.fire(token),
            MacTimerKind::CtrlRetry => self.t_ctrl.fire(token),
        };
        if !live {
            return;
        }
        match kind {
            MacTimerKind::Defer => self.on_defer_done(now, out),
            MacTimerKind::Backoff => {
                self.backoff.complete();
                self.count_start = None;
                self.attempt_tx(now, out);
            }
            MacTimerKind::CtsTimeout => self.on_cts_timeout(now, out),
            MacTimerKind::AckTimeout => self.on_ack_timeout(now, out),
            MacTimerKind::Response => self.fire_response(now, out),
            MacTimerKind::NavExpire => {
                if self.medium_idle(now) {
                    self.medium_became_idle(now, out);
                }
            }
            MacTimerKind::CtrlRetry => self.start_access(now, out),
        }
    }

    /// Routing state toward `peer` changed (RREP sent / RERR received):
    /// reset the PCMAC sent/received tables for that peer (paper §III).
    pub fn reset_peer_state(&mut self, peer: NodeId) {
        self.sent.reset_peer(peer);
        self.recv.reset_peer(peer);
    }

    /// Remove queued packets headed for `hop` (routing learned the link is
    /// dead); the packets are returned so the caller can re-route or count
    /// them.
    pub fn drain_next_hop(&mut self, hop: NodeId) -> Vec<QueuedPacket> {
        self.queue.drain_next_hop(hop)
    }

    // ------------------------------------------------------------------
    // Receive-side handlers
    // ------------------------------------------------------------------

    fn handle_rts(
        &mut self,
        frame: Frame,
        power: Milliwatts,
        now: SimTime,
        out: &mut Vec<MacAction>,
    ) {
        // Only respond when free: not mid-exchange, no queued response, NAV
        // idle (802.11: a station with a set NAV ignores RTS).
        if self.phase != Phase::Idle || self.pending_response.is_some() || self.nav.is_busy(now) {
            return;
        }
        let FrameBody::Rts { sender_noise } = &frame.body else {
            return;
        };

        let max = self.cfg.max_power();
        let policy = self.cfg.variant.power_policy();
        let (cts_power, required_data_power) = if self.cfg.variant.is_pcmac() {
            // Paper §III step 3: size the CTS so it clears decoding *and*
            // the noise floor at the requester, using the gain measured
            // off this RTS; tell the requester what power its DATA needs
            // to clear our own noise.
            let gain = (power.value() / frame.tx_power.value()).max(1e-30);
            let noise_at_sender = sender_noise.unwrap_or(Milliwatts::ZERO);
            let need_rx_at_sender = self
                .cfg
                .rx_thresh
                .value()
                .max(self.cfg.pcmac.capture_ratio * noise_at_sender.value());
            let cts_power = self
                .cfg
                .levels
                .quantize_up_or_max(Milliwatts(need_rx_at_sender / gain));
            // Paper §III step 3: "B required DATA be sent at the power
            // level P = η_cp · N_B · P_t / S" — the DATA must clear *our*
            // currently-measured noise N_B, not just the decode threshold.
            let need_rx_here = self
                .cfg
                .rx_thresh
                .value()
                .max(self.cfg.pcmac.capture_ratio * self.last_noise.value());
            let data_power = self
                .cfg
                .levels
                .quantize_up_or_max(Milliwatts(need_rx_here / gain));
            (cts_power, Some(data_power))
        } else {
            let needed = self.history.level_for(frame.tx, now);
            (policy.cts_power(needed, max), None)
        };

        // PCMAC step 3: the responder also runs the collision computation
        // before its CTS; if it would violate a protected reception it
        // stays silent and the requester retries later.
        if self.cfg.variant.is_pcmac() {
            if let Err(_until) =
                self.active_rx
                    .check(cts_power, self.cfg.pcmac.safety_factor, Some(frame.tx), now)
            {
                self.counters.ctrl_deferrals += 1;
                return;
            }
        }

        let echo = if self.cfg.variant.is_pcmac() {
            self.recv.echo_for(frame.tx)
        } else {
            None
        };
        // CTS duration: whatever the RTS reserved, minus SIFS + CTS time.
        let duration = frame
            .duration
            .saturating_sub(self.cfg.timing.sifs + self.cfg.timing.cts_time());
        let cts = Frame {
            kind: FrameKind::Cts,
            tx: self.id,
            rx: frame.tx,
            duration,
            tx_power: cts_power,
            body: FrameBody::Cts {
                required_data_power,
                last_received: echo,
            },
        };
        self.schedule_response(cts, cts_power, out);
    }

    fn handle_cts(&mut self, frame: Frame, now: SimTime, out: &mut Vec<MacAction>) {
        if self.phase != Phase::WaitCts {
            return;
        }
        let Some(job) = &self.current else {
            debug_assert!(false, "WaitCts without a job");
            return;
        };
        if frame.tx != job.next_hop {
            return;
        }
        let FrameBody::Cts {
            required_data_power,
            last_received,
        } = &frame.body
        else {
            return;
        };
        let required_data_power = *required_data_power;
        let last_received = *last_received;
        self.t_cts.cancel();
        self.ssrc = 0;

        let next_hop = job.next_hop;
        let is_routing = job.packet.is_routing();
        let three_way =
            self.cfg.variant.is_pcmac() && !is_routing && !self.cfg.pcmac.four_way_handshake;

        // Decide what data to send and whether it needs an ACK.
        let (packet, seq, needs_ack) = if three_way {
            match self.sent.judge_echo(next_hop, last_received) {
                EchoVerdict::Proceed => {
                    let seq = self.allocate_seq_for_current();
                    (self.current.as_ref().unwrap().packet.clone(), seq, false)
                }
                EchoVerdict::Retransmit(stored) => {
                    self.counters.implicit_retx += 1;
                    let (_, seq) = self
                        .sent
                        .stored_identity(next_hop)
                        .expect("retransmit implies stored identity");
                    self.retransmit_override = Some(((*stored).clone(), seq));
                    ((*stored).clone(), seq, false)
                }
                EchoVerdict::GiveUp => {
                    self.counters.implicit_give_ups += 1;
                    let seq = self.allocate_seq_for_current();
                    (self.current.as_ref().unwrap().packet.clone(), seq, false)
                }
            }
        } else {
            let seq = self.allocate_seq_for_current();
            (self.current.as_ref().unwrap().packet.clone(), seq, true)
        };

        // Power for the DATA frame.
        let max = self.cfg.max_power();
        let data_power = if self.cfg.variant.is_pcmac() {
            required_data_power.unwrap_or_else(|| self.history.level_for(next_hop, now))
        } else {
            let needed = self.history.level_for(next_hop, now);
            self.cfg.variant.power_policy().data_power(needed, max)
        };

        // PCMAC step 4: re-run the collision computation for the DATA
        // power; abort (and retry after the blocking reception) if it
        // would violate a protected reception.
        if self.cfg.variant.is_pcmac() {
            if let Err(until) = self.active_rx.check(
                data_power,
                self.cfg.pcmac.safety_factor,
                Some(next_hop),
                now,
            ) {
                self.counters.ctrl_deferrals += 1;
                self.retransmit_override = None;
                self.phase = Phase::Idle;
                let token = self.t_ctrl.arm();
                out.push(MacAction::Arm {
                    kind: MacTimerKind::CtrlRetry,
                    delay: until.saturating_since(now) + Duration::from_micros(1),
                    token,
                });
                return;
            }
        }

        let session = SessionId::for_pair(self.id, next_hop);
        if three_way {
            // Keep the retransmission copy (paper: "every time a data
            // packet is transmitted, it has a copy at the sender").
            self.sent
                .record_sent(next_hop, session, seq, packet.clone());
        }

        let duration = if needs_ack {
            self.cfg.timing.sifs + self.cfg.timing.ack_time()
        } else {
            Duration::ZERO
        };
        let data = Frame {
            kind: FrameKind::Data,
            tx: self.id,
            rx: next_hop,
            duration,
            tx_power: data_power,
            body: FrameBody::Data {
                packet,
                seq,
                session,
                needs_ack,
            },
        };
        self.phase = Phase::Idle; // response scheduling takes over
        self.schedule_response(data, data_power, out);
    }

    fn handle_data(&mut self, frame: Frame, now: SimTime, out: &mut Vec<MacAction>) {
        let FrameBody::Data {
            packet,
            seq,
            session,
            needs_ack,
        } = frame.body
        else {
            return;
        };

        if frame.rx.is_broadcast() {
            self.counters.delivered += 1;
            out.push(MacAction::Deliver {
                packet,
                from: frame.tx,
            });
            return;
        }

        // Duplicate suppression (lost ACK / lost CTS echo replays).
        let fresh = self.recv.accept(frame.tx, session, seq);
        if needs_ack && self.phase == Phase::Idle && self.pending_response.is_none() {
            let max = self.cfg.max_power();
            let needed = self.history.level_for(frame.tx, now);
            let ack_power = self.cfg.variant.power_policy().ack_power(needed, max);
            let ack = Frame {
                kind: FrameKind::Ack,
                tx: self.id,
                rx: frame.tx,
                duration: Duration::ZERO,
                tx_power: ack_power,
                body: FrameBody::Ack,
            };
            self.schedule_response(ack, ack_power, out);
        }
        if fresh {
            self.counters.delivered += 1;
            out.push(MacAction::Deliver {
                packet,
                from: frame.tx,
            });
        } else {
            self.counters.duplicates += 1;
        }
    }

    fn handle_ack(&mut self, frame: Frame, now: SimTime, out: &mut Vec<MacAction>) {
        if self.phase != Phase::WaitAck {
            return;
        }
        let Some(job) = &self.current else {
            return;
        };
        if frame.tx != job.next_hop {
            return;
        }
        self.t_ack.cancel();
        self.phase = Phase::Idle;
        self.finish_current(true, now, out);
    }

    // ------------------------------------------------------------------
    // Timeouts and retries
    // ------------------------------------------------------------------

    fn on_cts_timeout(&mut self, now: SimTime, out: &mut Vec<MacAction>) {
        debug_assert_eq!(self.phase, Phase::WaitCts);
        self.phase = Phase::Idle;
        self.counters.cts_timeouts += 1;
        self.ssrc += 1;

        if self.cfg.variant.is_pcmac() {
            // Paper §III step 2: "A increases its power level (by one
            // class until it gets to the maximal level)".
            let stepped = self.cfg.levels.step_up(self.rts_power);
            if stepped.value() > self.rts_power.value() {
                self.counters.power_step_ups += 1;
                self.rts_power = stepped;
                self.history.record_level(
                    self.current.as_ref().map(|j| j.next_hop).unwrap_or(self.id),
                    stepped,
                    now,
                );
            }
        }

        if self.ssrc >= self.cfg.timing.retry_short {
            self.drop_current(now, out);
            return;
        }
        self.backoff.grow();
        self.backoff.draw(&mut self.rng);
        self.start_access(now, out);
    }

    fn on_ack_timeout(&mut self, now: SimTime, out: &mut Vec<MacAction>) {
        debug_assert_eq!(self.phase, Phase::WaitAck);
        self.phase = Phase::Idle;
        self.counters.ack_timeouts += 1;
        self.slrc += 1;
        if self.slrc >= self.cfg.timing.retry_long {
            self.drop_current(now, out);
            return;
        }
        self.backoff.grow();
        self.backoff.draw(&mut self.rng);
        self.start_access(now, out);
    }

    fn drop_current(&mut self, now: SimTime, out: &mut Vec<MacAction>) {
        self.counters.retry_drops += 1;
        if let Some(job) = &self.current {
            if !job.next_hop.is_broadcast() {
                out.push(MacAction::LinkFailure {
                    packet: job.packet.clone(),
                    next_hop: job.next_hop,
                });
            }
        }
        self.retransmit_override = None;
        self.finish_current(false, now, out);
    }

    /// Wrap up the current job and move to the next queued packet.
    fn finish_current(&mut self, _success: bool, now: SimTime, out: &mut Vec<MacAction>) {
        if self.current.is_some() {
            let retries = (self.ssrc as usize + self.slrc as usize).min(self.retx_hist.len() - 1);
            self.retx_hist[retries] += 1;
        }
        self.ssrc = 0;
        self.slrc = 0;
        self.backoff.reset_cw();
        // Mandatory post-transmission backoff.
        self.backoff.draw(&mut self.rng);
        self.current = self.queue.pop().map(|qp| TxJob {
            packet: qp.packet,
            next_hop: qp.next_hop,
            seq: None,
        });
        if self.current.is_some() {
            self.begin_job(now);
            self.start_access(now, out);
        }
    }

    /// Initialise per-job state (RTS power ladder).
    fn begin_job(&mut self, now: SimTime) {
        let Some(job) = &self.current else { return };
        let max = self.cfg.max_power();
        self.rts_power = match self.cfg.variant {
            Variant::Basic | Variant::Scheme1 => max,
            Variant::Scheme2 | Variant::Pcmac => {
                if job.next_hop.is_broadcast() {
                    max
                } else {
                    self.history.level_for(job.next_hop, now)
                }
            }
        };
        self.ssrc = 0;
        self.slrc = 0;
    }

    fn allocate_seq_for_current(&mut self) -> u32 {
        let next_hop = self.current.as_ref().expect("job present").next_hop;
        if let Some(seq) = self.current.as_ref().and_then(|j| j.seq) {
            return seq; // retry of the same packet keeps its seq
        }
        let seq = self.sent.allocate_seq(next_hop);
        if let Some(job) = &mut self.current {
            job.seq = Some(seq);
        }
        seq
    }

    // ------------------------------------------------------------------
    // Channel access engine
    // ------------------------------------------------------------------

    fn medium_idle(&self, now: SimTime) -> bool {
        !self.phys_busy && !self.nav.is_busy(now)
    }

    fn reserve_nav(&mut self, d: Duration, now: SimTime, out: &mut Vec<MacAction>) {
        let was_idle = self.medium_idle(now);
        if self.nav.reserve(now, d) {
            let token = self.t_nav.arm();
            out.push(MacAction::Arm {
                kind: MacTimerKind::NavExpire,
                delay: self.nav.expiry().saturating_since(now),
                token,
            });
            if was_idle {
                self.medium_became_busy(now);
            }
        }
    }

    fn medium_became_busy(&mut self, now: SimTime) {
        self.t_defer.cancel();
        if self.t_backoff.is_armed() {
            self.t_backoff.cancel();
            if let Some(start) = self.count_start.take() {
                self.backoff
                    .consume(now.saturating_since(start), self.cfg.timing.slot);
            }
        }
    }

    fn medium_became_idle(&mut self, now: SimTime, out: &mut Vec<MacAction>) {
        let _ = now;
        if self.current.is_none()
            || self.phase != Phase::Idle
            || self.pending_response.is_some()
            || self.t_ctrl.is_armed()
        {
            return;
        }
        // Post-busy access always goes through backoff (802.11): make sure
        // a count exists, preserving any frozen residual.
        self.backoff.draw_if_idle(&mut self.rng);
        let token = self.t_defer.arm();
        out.push(MacAction::Arm {
            kind: MacTimerKind::Defer,
            delay: self.cfg.timing.difs(),
            token,
        });
    }

    /// Kick the access procedure for the current job (fresh job, retry, or
    /// post-deferral). No-op while the medium is busy — the idle edge will
    /// restart us.
    fn start_access(&mut self, now: SimTime, out: &mut Vec<MacAction>) {
        if self.current.is_none() || self.phase != Phase::Idle || self.pending_response.is_some() {
            return;
        }
        if !self.medium_idle(now) {
            return; // medium edge will call medium_became_idle
        }
        let token = self.t_defer.arm();
        out.push(MacAction::Arm {
            kind: MacTimerKind::Defer,
            delay: self.cfg.timing.difs(),
            token,
        });
    }

    fn on_defer_done(&mut self, now: SimTime, out: &mut Vec<MacAction>) {
        if !self.medium_idle(now) {
            return; // raced with a busy edge; it will restart us
        }
        if self.backoff.is_done() {
            self.attempt_tx(now, out);
        } else {
            self.count_start = Some(now);
            let token = self.t_backoff.arm();
            out.push(MacAction::Arm {
                kind: MacTimerKind::Backoff,
                delay: self.backoff.remaining_time(self.cfg.timing.slot),
                token,
            });
        }
    }

    /// The medium is ours: put the first frame of the exchange on the air.
    fn attempt_tx(&mut self, now: SimTime, out: &mut Vec<MacAction>) {
        if self.phase != Phase::Idle || self.pending_response.is_some() {
            return;
        }
        let Some(job) = &self.current else { return };
        if !self.medium_idle(now) {
            return;
        }

        let max = self.cfg.max_power();
        if job.next_hop.is_broadcast() {
            // Broadcasts skip RTS/CTS and go at the normal (max) power in
            // every protocol (paper §IV).
            if self.cfg.variant.is_pcmac() {
                if let Err(until) =
                    self.active_rx
                        .check(max, self.cfg.pcmac.safety_factor, None, now)
                {
                    self.defer_for_ctrl(until, now, out);
                    return;
                }
            }
            let frame = Frame {
                kind: FrameKind::Data,
                tx: self.id,
                rx: NodeId::BROADCAST,
                duration: Duration::ZERO,
                tx_power: max,
                body: FrameBody::Data {
                    packet: job.packet.clone(),
                    seq: 0,
                    session: SessionId::for_pair(self.id, NodeId::BROADCAST),
                    needs_ack: false,
                },
            };
            self.counters.broadcast_sent += 1;
            self.phase = Phase::Tx(TxKind::DataBroadcast);
            out.push(MacAction::TxFrame { frame, power: max });
            return;
        }

        // Small unicast frames may skip the RTS/CTS exchange entirely
        // (dot11RTSThreshold). PCMAC data is exempt: its reliability
        // rides on the CTS echo.
        let on_air_bytes = crate::frame::DATA_HEADER_BYTES + job.packet.size_bytes();
        let pcmac_data = self.cfg.variant.is_pcmac() && !job.packet.is_routing();
        if self.cfg.rts_threshold > 0 && on_air_bytes <= self.cfg.rts_threshold && !pcmac_data {
            let needed = self.history.level_for(job.next_hop, now);
            let data_power = self.cfg.variant.power_policy().data_power(needed, max);
            if self.cfg.variant.is_pcmac() {
                if let Err(until) = self.active_rx.check(
                    data_power,
                    self.cfg.pcmac.safety_factor,
                    Some(job.next_hop),
                    now,
                ) {
                    self.defer_for_ctrl(until, now, out);
                    return;
                }
            }
            let next_hop = job.next_hop;
            let packet = job.packet.clone();
            let seq = self.allocate_seq_for_current();
            let session = SessionId::for_pair(self.id, next_hop);
            let frame = Frame {
                kind: FrameKind::Data,
                tx: self.id,
                rx: next_hop,
                duration: self.cfg.timing.sifs + self.cfg.timing.ack_time(),
                tx_power: data_power,
                body: FrameBody::Data {
                    packet,
                    seq,
                    session,
                    needs_ack: true,
                },
            };
            self.counters.data_sent += 1;
            self.phase = Phase::Tx(TxKind::DataUnicast { needs_ack: true });
            out.push(MacAction::TxFrame {
                frame,
                power: data_power,
            });
            return;
        }

        // Unicast: RTS first.
        let rts_power = match self.cfg.variant {
            Variant::Basic | Variant::Scheme1 => max,
            Variant::Scheme2 => self.history.level_for(job.next_hop, now),
            Variant::Pcmac => self.rts_power,
        };
        if self.cfg.variant.is_pcmac() {
            // Paper §III step 2: would this power corrupt a protected
            // reception nearby? (The intended receiver is *not* exempt
            // here — if it is busy receiving from someone else, our RTS
            // would be the collision.)
            if let Err(until) =
                self.active_rx
                    .check(rts_power, self.cfg.pcmac.safety_factor, None, now)
            {
                self.defer_for_ctrl(until, now, out);
                return;
            }
        }

        let needs_ack = !self.cfg.variant.is_pcmac()
            || job.packet.is_routing()
            || self.cfg.pcmac.four_way_handshake;
        let data_bytes = crate::frame::DATA_HEADER_BYTES + job.packet.size_bytes();
        let data_time = self.cfg.timing.airtime_data(data_bytes);
        let t = &self.cfg.timing;
        let duration = if needs_ack {
            t.sifs * 3 + t.cts_time() + data_time + t.ack_time()
        } else {
            t.sifs * 2 + t.cts_time() + data_time
        };
        let sender_noise = if self.cfg.variant.is_pcmac() {
            Some(self.last_noise)
        } else {
            None
        };
        let rts = Frame {
            kind: FrameKind::Rts,
            tx: self.id,
            rx: job.next_hop,
            duration,
            tx_power: rts_power,
            body: FrameBody::Rts { sender_noise },
        };
        self.counters.rts_sent += 1;
        self.phase = Phase::Tx(TxKind::Rts);
        out.push(MacAction::TxFrame {
            frame: rts,
            power: rts_power,
        });
    }

    fn defer_for_ctrl(&mut self, until: SimTime, now: SimTime, out: &mut Vec<MacAction>) {
        self.counters.ctrl_deferrals += 1;
        let token = self.t_ctrl.arm();
        out.push(MacAction::Arm {
            kind: MacTimerKind::CtrlRetry,
            delay: until.saturating_since(now) + Duration::from_micros(1),
            token,
        });
    }

    fn schedule_response(&mut self, frame: Frame, power: Milliwatts, out: &mut Vec<MacAction>) {
        debug_assert!(self.pending_response.is_none());
        self.pending_response = Some((frame, power));
        let token = self.t_resp.arm();
        out.push(MacAction::Arm {
            kind: MacTimerKind::Response,
            delay: self.cfg.timing.sifs,
            token,
        });
    }

    fn fire_response(&mut self, _now: SimTime, out: &mut Vec<MacAction>) {
        let Some((frame, power)) = self.pending_response.take() else {
            return;
        };
        let kind = match frame.kind {
            FrameKind::Cts => {
                self.counters.cts_sent += 1;
                TxKind::Cts
            }
            FrameKind::Ack => {
                self.counters.ack_sent += 1;
                TxKind::Ack
            }
            FrameKind::Data => {
                self.counters.data_sent += 1;
                let needs_ack = matches!(
                    frame.body,
                    FrameBody::Data {
                        needs_ack: true,
                        ..
                    }
                );
                TxKind::DataUnicast { needs_ack }
            }
            FrameKind::Rts => unreachable!("RTS is never a SIFS response"),
        };
        self.phase = Phase::Tx(kind);
        out.push(MacAction::TxFrame { frame, power });
    }
}

mod snap {
    //! Checkpoint capture of the MAC state machine.
    //!
    //! `id` and `cfg` are rebuilt from the scenario config on restore, so
    //! [`DcfMac::save_state`] / [`DcfMac::load_state`] transfer only the
    //! mutable state: backoff RNG position, timers, queue, the exchange in
    //! progress and the power-control tables. The cut always falls between
    //! events, never inside a `MacAction` burst, so this is the complete
    //! reachable state.

    use super::{DcfMac, MacTimerKind, Phase, TxJob, TxKind};
    use pcmac_snap::{Snap, SnapError, SnapReader, SnapWriter};

    impl Snap for MacTimerKind {
        fn save(&self, w: &mut SnapWriter) {
            w.u8(match self {
                MacTimerKind::Defer => 0,
                MacTimerKind::Backoff => 1,
                MacTimerKind::CtsTimeout => 2,
                MacTimerKind::AckTimeout => 3,
                MacTimerKind::Response => 4,
                MacTimerKind::NavExpire => 5,
                MacTimerKind::CtrlRetry => 6,
            });
        }
        fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            match r.u8()? {
                0 => Ok(MacTimerKind::Defer),
                1 => Ok(MacTimerKind::Backoff),
                2 => Ok(MacTimerKind::CtsTimeout),
                3 => Ok(MacTimerKind::AckTimeout),
                4 => Ok(MacTimerKind::Response),
                5 => Ok(MacTimerKind::NavExpire),
                6 => Ok(MacTimerKind::CtrlRetry),
                _ => Err(SnapError::Corrupt("mac timer tag")),
            }
        }
    }

    impl Snap for TxKind {
        fn save(&self, w: &mut SnapWriter) {
            match self {
                TxKind::Rts => w.u8(0),
                TxKind::Cts => w.u8(1),
                TxKind::DataUnicast { needs_ack } => {
                    w.u8(2);
                    needs_ack.save(w);
                }
                TxKind::DataBroadcast => w.u8(3),
                TxKind::Ack => w.u8(4),
            }
        }
        fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            match r.u8()? {
                0 => Ok(TxKind::Rts),
                1 => Ok(TxKind::Cts),
                2 => Ok(TxKind::DataUnicast {
                    needs_ack: Snap::load(r)?,
                }),
                3 => Ok(TxKind::DataBroadcast),
                4 => Ok(TxKind::Ack),
                _ => Err(SnapError::Corrupt("tx kind tag")),
            }
        }
    }

    impl Snap for Phase {
        fn save(&self, w: &mut SnapWriter) {
            match self {
                Phase::Idle => w.u8(0),
                Phase::Tx(kind) => {
                    w.u8(1);
                    kind.save(w);
                }
                Phase::WaitCts => w.u8(2),
                Phase::WaitAck => w.u8(3),
            }
        }
        fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
            match r.u8()? {
                0 => Ok(Phase::Idle),
                1 => Ok(Phase::Tx(Snap::load(r)?)),
                2 => Ok(Phase::WaitCts),
                3 => Ok(Phase::WaitAck),
                _ => Err(SnapError::Corrupt("mac phase tag")),
            }
        }
    }

    pcmac_snap::snap_struct!(TxJob {
        packet,
        next_hop,
        seq,
    });

    impl DcfMac {
        /// Serialize every mutable field (everything except `id`/`cfg`).
        pub fn save_state(&self, w: &mut SnapWriter) {
            self.rng.save(w);
            self.phys_busy.save(w);
            self.nav.save(w);
            self.backoff.save(w);
            self.count_start.save(w);
            self.t_defer.save(w);
            self.t_backoff.save(w);
            self.t_cts.save(w);
            self.t_ack.save(w);
            self.t_resp.save(w);
            self.t_nav.save(w);
            self.t_ctrl.save(w);
            self.queue.save(w);
            self.current.save(w);
            self.retransmit_override.save(w);
            self.phase.save(w);
            self.pending_response.save(w);
            self.ssrc.save(w);
            self.slrc.save(w);
            self.rts_power.save(w);
            self.history.save(w);
            self.sent.save(w);
            self.recv.save(w);
            self.active_rx.save(w);
            self.last_noise.save(w);
            self.counters.save(w);
            self.retx_hist.save(w);
        }

        /// Overwrite the mutable state of a freshly built MAC with captured
        /// state. `id`/`cfg` keep their built values.
        pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
            self.rng = Snap::load(r)?;
            self.phys_busy = Snap::load(r)?;
            self.nav = Snap::load(r)?;
            self.backoff = Snap::load(r)?;
            self.count_start = Snap::load(r)?;
            self.t_defer = Snap::load(r)?;
            self.t_backoff = Snap::load(r)?;
            self.t_cts = Snap::load(r)?;
            self.t_ack = Snap::load(r)?;
            self.t_resp = Snap::load(r)?;
            self.t_nav = Snap::load(r)?;
            self.t_ctrl = Snap::load(r)?;
            self.queue = Snap::load(r)?;
            self.current = Snap::load(r)?;
            self.retransmit_override = Snap::load(r)?;
            self.phase = Snap::load(r)?;
            self.pending_response = Snap::load(r)?;
            self.ssrc = Snap::load(r)?;
            self.slrc = Snap::load(r)?;
            self.rts_power = Snap::load(r)?;
            self.history = Snap::load(r)?;
            self.sent = Snap::load(r)?;
            self.recv = Snap::load(r)?;
            self.active_rx = Snap::load(r)?;
            self.last_noise = Snap::load(r)?;
            self.counters = Snap::load(r)?;
            self.retx_hist = Snap::load(r)?;
            Ok(())
        }
    }
}
