//! Spatial-domain parallel execution: one scenario, every core,
//! bit-identical to the single-threaded reference.
//!
//! # How it works
//!
//! The field is split into vertical column bands — one region per worker
//! thread, boundaries snapped to spatial-index columns, balanced by node
//! count ([`pcmac_shard::partition_columns`]). Every worker builds an
//! *owner-only* shard directly (`Simulator::new_shard`): cold per-node
//! state — radios, MAC queues, routing tables — is materialised only for
//! owned nodes, and the struct-of-arrays hot state plus the spatial
//! index are pruned to the owned band and a boundary halo sized by the
//! maximum transmission reach. Shard memory is O(N/S + halo), not O(N).
//! Construction is deterministic, so the shards agree exactly on the
//! global picture they share (positions, ownership, event ranks). At
//! runtime a shard dispatches only events addressing its own nodes; when
//! an owned node transmits, the sender loop runs exactly as in single
//! mode — the halo guarantees the pruned index returns the full
//! candidate set, and gains are pure functions of positions, so the
//! shard computes every receiver's power and delay bit-identically — and
//! arrivals destined for foreign nodes are shipped to their owner as
//! ready-made events instead of being scheduled locally.
//!
//! # The synchronization protocol
//!
//! Conservative barrier-epoch windows. The per-run lookahead δ is
//! derived by `Simulator::derived_lookahead_ns`: at least the configured
//! [`ScenarioConfig::delay_floor`], widened for static scenarios to the
//! propagation time across the narrowest inter-band gap (arrivals are
//! the only cross-region channel, and every cross-band arrival must
//! cross that gap), so an event at `t` can only influence foreign events
//! at `t ≥ t + δ`:
//!
//! 1. each shard publishes the due time of its next event;
//! 2. barrier; the window start `ws` is the global minimum — when every
//!    queue is drained past the run end, the run is over;
//! 3. each shard dispatches every local event in `[ws, ws + δ)`,
//!    accumulating outgoing arrivals per destination shard;
//! 4. outboxes are flushed into per-pair mailboxes; barrier;
//! 5. each shard drains its mailboxes in fixed sender order, culling
//!    each shipment against its authoritative down-state at the sender's
//!    transmit instant, and scheduling the survivors under their
//!    content-derived ranks.
//!
//! Shipments land at `ws + δ` or later, so nothing a neighbour did
//! inside a window can affect events already dispatched — and since
//! same-instant order is a pure function of event content (see
//! `SimEvent::rank`), every event pops from its owner's queue in exactly
//! the global reference position. Merging per-shard results is then
//! owner-selection (per-node state), summation (counters), or key-sorted
//! replay (fault records, trace), all in fixed shard order with no
//! wall-clock input anywhere.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use pcmac_phy::SparseCacheStats;
use pcmac_shard::{partition_columns, SpinBarrier};

use pcmac_engine::SimTime;

use crate::event::SimEvent;
use crate::metrics::MetricsState;
use crate::node::Node;
use crate::report::RunReport;
use crate::sim::{FaultState, ShardParts, Shipment, Simulator, SnapContribution};
use crate::snapshot::{next_grid_point, RunHooks, RunOutcome, SimSnapshot};

/// A shard's buffered dispatch stream: `(time, rank, event)` per event.
type TracedEvents = Vec<(SimTime, u128, SimEvent)>;

/// Optional sink receiving the merged event stream after the run.
type EventObserver<'a> = Option<&'a mut dyn FnMut(&SimEvent, SimTime)>;

/// Execute `sim` as `shards` region shards and merge the report.
///
/// `observer`, when given, receives the merged event stream after the
/// run (per-shard streams are buffered and replayed in global
/// `(time, rank)` order — the exact single-threaded dispatch order).
pub(crate) fn run_sharded(sim: Simulator, shards: usize, observer: EventObserver<'_>) -> RunReport {
    match run_sharded_core(sim, shards, observer, &RunHooks::default()) {
        RunOutcome::Completed(report) => report,
        RunOutcome::Cancelled(_) => unreachable!("no cancel token was supplied"),
    }
}

/// [`run_sharded`] with durability hooks: cooperative cancellation and
/// periodic collective checkpoints (see `Simulator::run_with_hooks`).
pub(crate) fn run_sharded_hooked(
    sim: Simulator,
    shards: usize,
    hooks: &RunHooks<'_>,
) -> RunOutcome {
    run_sharded_core(sim, shards, None, hooks)
}

fn run_sharded_core(
    mut sim: Simulator,
    shards: usize,
    observer: EventObserver<'_>,
    hooks: &RunHooks<'_>,
) -> RunOutcome {
    let wall_start = std::time::Instant::now();
    let shards = shards.max(1);
    let resume = sim.take_resume();
    let cfg = sim.cfg().clone();
    let end = SimTime::ZERO + cfg.duration;
    assert!(
        cfg.delay_floor().as_nanos() > 0,
        "sharded execution requires a positive delay floor (validated at build)"
    );
    let owner: Arc<Vec<u32>> = Arc::new(partition_columns(
        &sim.start_xs(),
        cfg.field.0,
        sim.shard_cell_size(),
        shards,
    ));
    let lookahead_ns = sim.derived_lookahead_ns(&owner, shards);
    let collect_trace = observer.is_some();

    let peeks: Vec<AtomicU64> = (0..shards).map(|_| AtomicU64::new(0)).collect();
    // mail[to][from]: written by `from` between the window's two
    // barriers, drained by `to` after the second — never contended.
    let mail: Vec<Vec<Mutex<Vec<Shipment>>>> = (0..shards)
        .map(|_| (0..shards).map(|_| Mutex::new(Vec::new())).collect())
        .collect();
    let barrier = SpinBarrier::new(shards);

    // Collective-snapshot coordination: each shard parks an owned-clone
    // contribution, one barrier guarantees completeness, then shard 0
    // merges and hands the result off — no second barrier, because
    // contributions are owned data with no references into the lanes
    // that produced them (late mergers just arrive staggered at the
    // next epoch barrier, which the generation-based SpinBarrier
    // tolerates).
    let contribs: Mutex<Vec<Option<SnapContribution>>> =
        Mutex::new((0..shards).map(|_| None).collect());
    let cancel_snap: Mutex<Option<SimSnapshot>> = Mutex::new(None);
    // Shard 0 samples the cancel token once per epoch before the peek
    // barrier; every shard reads the agreed value after it, so all
    // lanes take the same branch at the same epoch.
    let cancel_epoch = AtomicBool::new(false);
    let every_ns = hooks.checkpoint_every.map(|e| e.as_nanos().max(1));
    let start_now = resume.as_ref().map_or(SimTime::ZERO, |s| s.time());
    let cp0_ns = every_ns.map(|e| next_grid_point(start_now, e).as_nanos());

    // Split the caller's full replica into S owner-only shards on this
    // thread, *recycling* its cold per-node state: each shard's build
    // moves the already-constructed boxes of its owned nodes out of the
    // donor vec instead of allocating a second copy. This keeps the
    // process peak at one full build — freeing the parent and
    // reallocating in S worker threads would double resident memory,
    // because worker-arena allocations cannot reuse what the main
    // thread's arena freed.
    let shard_sims: Vec<Simulator> = {
        let mut sim = sim;
        let mut donor = sim.take_cold_nodes();
        drop(sim);
        (0..shards)
            .map(|k| {
                Simulator::new_shard(
                    cfg.clone(),
                    k as u32,
                    shards,
                    Arc::clone(&owner),
                    &mut donor,
                )
            })
            .collect()
    };

    let results: Vec<Option<(ShardParts, TracedEvents)>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(shards);
        for (k, mut s) in shard_sims.into_iter().enumerate() {
            let (barrier, peeks, mail) = (&barrier, &peeks, &mail);
            let (contribs, cancel_snap, cancel_epoch) = (&contribs, &cancel_snap, &cancel_epoch);
            let (cfg, owner) = (&cfg, &owner);
            let resume = resume.clone();
            handles.push(scope.spawn(move || {
                // Overlay a parked restore *after* the owner-only build
                // (the build re-initialises the donated cold state, so a
                // pre-split overlay would be lost).
                if let Some(snap) = resume.as_deref() {
                    s.apply_restore(snap)
                        .expect("snapshot validated by Simulator::restore");
                }
                // One collective snapshot at `cut_ns`: park this lane's
                // contribution, wait for everyone, shard 0 merges.
                let snap_at = |s: &Simulator, cut_ns: u64| -> Option<SimSnapshot> {
                    let cut = SimTime::from_nanos(cut_ns);
                    contribs.lock().expect("contribs")[k] = Some(s.snap_contribution(cut));
                    barrier.wait();
                    if k == 0 {
                        let parts: Vec<SnapContribution> = contribs
                            .lock()
                            .expect("contribs")
                            .iter_mut()
                            .map(|c| c.take().expect("every shard contributed"))
                            .collect();
                        Some(Simulator::merge_contributions(cfg, cut, owner, parts))
                    } else {
                        None
                    }
                };
                let mut trace = collect_trace.then(Vec::new);
                let mut next_cp_ns = cp0_ns;
                loop {
                    if k == 0 {
                        cancel_epoch.store(
                            hooks.cancel.is_some_and(|c| c.is_cancelled()),
                            Ordering::SeqCst,
                        );
                    }
                    peeks[k].store(s.shard_peek_ns(end), Ordering::SeqCst);
                    barrier.wait();
                    let ws = peeks
                        .iter()
                        .map(|p| p.load(Ordering::SeqCst))
                        .min()
                        .expect("at least one shard");
                    if ws == u64::MAX {
                        break; // every queue drained past the end
                    }
                    // Periodic checkpoints: every grid instant this
                    // epoch reaches, before any of its events dispatch —
                    // the same cuts, in the same order, as single mode.
                    while let Some(cp) = next_cp_ns {
                        if ws < cp {
                            break;
                        }
                        if let Some(snap) = snap_at(&s, cp) {
                            if let Some(sink) = hooks.checkpoint_sink {
                                sink(snap);
                            }
                        }
                        next_cp_ns =
                            Some(cp.saturating_add(every_ns.expect("grid implies interval")));
                    }
                    if cancel_epoch.load(Ordering::SeqCst) {
                        // Stop at the agreed epoch top — the same cut a
                        // single-threaded run takes: the next
                        // undispatched instant.
                        let snap = snap_at(&s, ws);
                        if k == 0 {
                            *cancel_snap.lock().expect("cancel snapshot") = snap;
                        }
                        return None;
                    }
                    let mut horizon = ws.saturating_add(lookahead_ns);
                    if let Some(cp) = next_cp_ns {
                        // Clamp the window at the next grid instant so
                        // it stays an epoch boundary — that is what
                        // makes checkpoint cuts land on the same
                        // absolute simulated instants as in single mode.
                        horizon = horizon.min(cp);
                    }
                    s.run_window(horizon, end, trace.as_mut());
                    for (to, batch) in s.take_outboxes().into_iter().enumerate() {
                        if !batch.is_empty() {
                            *mail[to][k].lock().expect("mailbox") = batch;
                        }
                    }
                    barrier.wait();
                    let incoming: Vec<Vec<Shipment>> = mail[k]
                        .iter()
                        .map(|m| std::mem::take(&mut *m.lock().expect("mailbox")))
                        .collect();
                    s.accept_shipments(incoming);
                }
                Some((s.into_shard_parts(end), trace.unwrap_or_default()))
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    });

    if results.iter().any(Option::is_none) {
        // Cancellation is an epoch-wide agreement: every lane bailed at
        // the same cut, and shard 0 parked the merged snapshot.
        return RunOutcome::Cancelled(cancel_snap.into_inner().expect("cancel snapshot"));
    }
    let results: Vec<(ShardParts, TracedEvents)> = results
        .into_iter()
        .map(|r| r.expect("all lanes agreed on completion"))
        .collect();

    let mut parts = Vec::with_capacity(shards);
    let mut traces = Vec::with_capacity(shards);
    for (p, t) in results {
        parts.push(p);
        traces.push(t);
    }

    // Replicated impairment bursts are scheduled once per shard; every
    // other scheduled event exists on exactly one shard (probe chains
    // were already subtracted per shard, like in single mode).
    let n_bursts = cfg
        .faults
        .as_ref()
        .and_then(|f| f.impairments.as_ref())
        .map_or(0, Vec::len) as u64;
    let events = parts.iter().map(|p| p.events).sum::<u64>() - (shards as u64 - 1) * 2 * n_bursts;
    let sent = parts.iter().map(|p| p.sent_packets).sum::<u64>();

    // Per-node state: each node's owner holds the authoritative replica.
    let n = owner.len();
    let mut pools: Vec<Vec<Option<Box<Node>>>> = parts
        .iter_mut()
        .map(|p| std::mem::take(&mut p.nodes))
        .collect();
    let nodes: Vec<Node> = (0..n)
        .map(|i| *pools[owner[i] as usize][i].take().expect("owned node"))
        .collect();

    let fault_parts: Vec<FaultState> = parts.iter_mut().filter_map(|p| p.faults.take()).collect();
    let resilience = if fault_parts.is_empty() {
        None
    } else {
        Some(FaultState::merge(fault_parts, &owner).into_report())
    };

    // Sparse-cache effectiveness is an execution-strategy diagnostic
    // (each shard ran its own cache); sum the counters.
    let mut cache: Option<SparseCacheStats> = None;
    for p in &parts {
        if let Some(cs) = p.cache_stats {
            match &mut cache {
                None => cache = Some(cs),
                Some(acc) => {
                    acc.hits += cs.hits;
                    acc.misses += cs.misses;
                    acc.blocks += cs.blocks;
                    acc.entries += cs.entries;
                    acc.flushes += cs.flushes;
                }
            }
        }
    }

    let metric_parts: Vec<MetricsState> =
        parts.iter_mut().filter_map(|p| p.metrics.take()).collect();
    let metrics = if metric_parts.is_empty() {
        None
    } else {
        Some(MetricsState::merge(metric_parts).finish(&nodes, cache))
    };

    if let Some(obs) = observer {
        let mut all: Vec<(SimTime, u128, SimEvent)> = traces.into_iter().flatten().collect();
        // Stable: same-key events (necessarily same-shard, same-node)
        // keep their shard-local dispatch order.
        all.sort_by_key(|&(t, r, _)| (t, r));
        for (at, _, ev) in &all {
            obs(ev, *at);
        }
    }

    RunOutcome::Completed(RunReport::build(
        &cfg,
        &nodes,
        sent,
        events,
        wall_start.elapsed().as_secs_f64(),
        resilience,
        metrics,
    ))
}
